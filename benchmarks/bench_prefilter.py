"""Biconnectivity pre-filter: filtered vs. unfiltered sweep wall clock.

Two sweeps of the same workload through the service executor — once with
``prefilter="none"`` and once with ``prefilter="biconn"`` — must produce
bit-identical pair totals (the filter is sound: it only skips chain
construction on cones it *proves* pair-free), while the filtered run
amortizes a linear chain-decomposition pass against the skipped shared
index builds and chain constructions.

Workloads:

* the sequential suite's flop-cut combinational cores — register chains
  and LFSR stages are exactly the tree-shaped cones the filter certifies
  (the pipelined ALU's reconvergent cones keep the unfiltered path
  honest in the same run);
* a quick subset of the Table-1 combinational suite, where few cones
  certify — the filter's overhead bound on workloads it cannot help.

``python benchmarks/bench_prefilter.py`` writes ``BENCH_prefilter.json``
and exits nonzero if filtered and unfiltered pair totals ever diverge.
"""

import json
import statistics
import time
from pathlib import Path

from repro.circuits.suite import QUICK_SUBSET
from repro.service import (
    ExecutorConfig,
    MetricsRegistry,
    ParallelExecutor,
    sweep_sequential_suite,
    sweep_suite,
)


def _run_sweep(prefilter, scale, sequential):
    metrics = MetricsRegistry()
    executor = ParallelExecutor(
        ExecutorConfig(jobs=1, prefilter=prefilter), metrics=metrics
    )
    start = time.perf_counter()
    if sequential:
        report = sweep_sequential_suite(
            executor, scale=scale, view=("core", 0)
        )
    else:
        report = sweep_suite(executor, names=QUICK_SUBSET, scale=scale)
    wall = time.perf_counter() - start
    counters = metrics.snapshot()["counters"]
    return {
        "wall": wall,
        "pairs": report.total_pairs,
        "cones": sum(c.cones for c in report.circuits),
        "certified": counters.get("core.prefilter_certified", 0),
        "skipped": counters.get("core.prefilter_skipped", 0),
    }


def prefilter_study(scale, rounds, sequential):
    """Median filtered/unfiltered walls over ``rounds`` paired sweeps."""
    results = {"none": [], "biconn": []}
    for _ in range(rounds):
        for prefilter in ("none", "biconn"):
            results[prefilter].append(
                _run_sweep(prefilter, scale, sequential)
            )
    plain, filtered = results["none"], results["biconn"]
    if {r["pairs"] for r in plain} != {r["pairs"] for r in filtered}:
        raise SystemExit(
            f"pair totals diverge: none={plain[0]['pairs']} "
            f"biconn={filtered[0]['pairs']} — the pre-filter is unsound"
        )
    wall_none = statistics.median(r["wall"] for r in plain)
    wall_biconn = statistics.median(r["wall"] for r in filtered)
    return {
        "workload": "sequential-cores" if sequential else "table1-quick",
        "scale": scale,
        "rounds": rounds,
        "cones": filtered[0]["cones"],
        "pairs": filtered[0]["pairs"],
        "certified_cones": filtered[0]["certified"],
        "skipped_chain_constructions": filtered[0]["skipped"],
        "wall_median_s": {"none": wall_none, "biconn": wall_biconn},
        "speedup": wall_none / wall_biconn if wall_biconn else 0.0,
    }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale and few rounds (CI smoke run)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_prefilter.json",
    )
    args = parser.parse_args(argv)

    scale = 0.5 if args.quick else 1.0
    rounds = 3 if args.quick else 5
    studies = []
    for sequential in (True, False):
        study = prefilter_study(scale, rounds, sequential)
        studies.append(study)
        print(
            f"{study['workload']}: {study['certified_cones']}/"
            f"{study['cones']} cones certified, "
            f"none {study['wall_median_s']['none'] * 1e3:.1f} ms vs "
            f"biconn {study['wall_median_s']['biconn'] * 1e3:.1f} ms "
            f"({study['speedup']:.2f}x), {study['pairs']} pairs either way"
        )

    report = {
        "benchmark": "biconnectivity pre-filter sweep wall clock",
        "quick": args.quick,
        "studies": studies,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if studies[0]["certified_cones"] == 0:
        raise SystemExit(
            "sequential-core workload certified no cones; the filtered "
            "sweep never exercised the skip path"
        )


if __name__ == "__main__":
    main()
