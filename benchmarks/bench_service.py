"""Daemon load generator: shm dispatch throughput and request latency.

Two studies against a live :class:`~repro.daemon.service.DaemonService`:

* **dispatch** — repeated ``sweep`` requests over a large multi-output
  netlist with ``chunk_size=1`` (one cone per worker task, the
  worst case for payload overhead), comparing shared-memory circuit
  publication (workers attach a
  :class:`~repro.daemon.shm.CircuitRef` and decode the flat arrays
  once) against per-chunk pickling of the whole netlist.  The headline
  number is ``shm_speedup`` — sweep throughput with shared memory over
  throughput with pickling — which the CI gate requires to be >= 2x.
* **latency** — a multi-tenant closed-loop burst: worker threads
  playing distinct tenants hammer ``chain`` requests through admission
  control.  p50/p99 come from the service's own
  ``daemon.chain_seconds`` :class:`~repro.service.metrics.Histogram`
  via interpolated :meth:`~repro.service.metrics.Histogram.quantile`,
  alongside admitted/shed counts showing the token buckets working.

``python benchmarks/bench_service.py`` writes ``BENCH_service.json``
next to the repo's other ``BENCH_*`` artifacts; ``--quick`` shrinks
both studies for CI smoke runs.
"""

import json
import statistics
import threading
import time
from pathlib import Path

from repro.circuits.generators import random_circuit
from repro.daemon.protocol import Request
from repro.daemon.service import DaemonService, ServiceConfig
from repro.daemon.shm import shared_memory_available


def _dispatch_circuit(quick: bool):
    """A netlist where payload cost dominates per-cone compute.

    Many small, mostly-independent per-output cones on one big
    netlist (``shared_fraction=0.05`` keeps the common pool thin, the
    flat-mapped-design regime): pickling re-ships every node with
    every one-cone chunk while the shm path ships a ~100-byte ref to a
    segment each worker decodes once.
    """
    gates = 3_000 if quick else 8_000
    outputs = 48 if quick else 128
    return random_circuit(
        num_inputs=16,
        num_gates=gates,
        num_outputs=outputs,
        seed=42,
        shared_fraction=0.05,
        name="bench_service_dispatch",
    )


def _run_sweeps(use_shared_memory: bool, circuit, jobs: int, rounds: int):
    """Throughput of ``rounds`` sweep requests under one dispatch mode."""
    config = ServiceConfig(
        jobs=jobs,
        chunk_size=1,
        use_shared_memory=use_shared_memory,
        max_in_flight=64,
        tenant_rate=1e9,
        tenant_burst=1e9,
    )
    with DaemonService(config) as service:
        load = service.handle(
            Request(op="load", params={"definition": _definition(circuit)})
        )
        assert load["ok"], load
        key = load["result"]["circuit"]
        # Warm-up: fork the worker pool, decode/attach once, fill caches.
        warm = service.handle(Request(op="sweep", params={"circuit": key}))
        assert warm["ok"], warm
        dispatch = warm["result"]["dispatch"]
        walls = []
        start = time.perf_counter()
        for _ in range(rounds):
            t0 = time.perf_counter()
            resp = service.handle(Request(op="sweep", params={"circuit": key}))
            assert resp["ok"], resp
            walls.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - start
        total_pairs = resp["result"]["total_pairs"]
        stats = service.handle(Request(op="stats"))["result"]
    return {
        "dispatch": dispatch,
        "rounds": rounds,
        "sweeps_per_second": rounds / elapsed,
        "sweep_wall_median_ms": statistics.median(walls) * 1e3,
        "pairs_per_sweep": total_pairs,
        "shm": stats["shared_memory"],
    }


def _definition(circuit):
    return {
        "name": circuit.name,
        "nodes": [
            {
                "name": name,
                "type": circuit.node(name).type.value,
                "fanins": list(circuit.node(name).fanins),
            }
            for name in circuit
        ],
        "outputs": list(circuit.outputs),
    }


def dispatch_study(quick: bool, jobs: int):
    circuit = _dispatch_circuit(quick)
    rounds = 3 if quick else 8
    pickle_row = _run_sweeps(False, circuit, jobs, rounds)
    shm_row = _run_sweeps(True, circuit, jobs, rounds)
    assert pickle_row["dispatch"] == "pickle"
    assert shm_row["dispatch"] == "shm"
    assert shm_row["pairs_per_sweep"] == pickle_row["pairs_per_sweep"]
    return {
        "circuit_nodes": len(circuit),
        "outputs": len(circuit.outputs),
        "jobs": jobs,
        "chunk_size": 1,
        "pickle": pickle_row,
        "shm": shm_row,
        "shm_speedup": (
            shm_row["sweeps_per_second"] / pickle_row["sweeps_per_second"]
        ),
    }


def latency_study(quick: bool):
    """Multi-tenant closed-loop chain bursts through admission control."""
    tenants = 4
    requests_per_tenant = 40 if quick else 150
    circuit = random_circuit(
        num_inputs=8,
        num_gates=400,
        num_outputs=4,
        seed=7,
        name="bench_service_latency",
    )
    # Buckets sized so a closed-loop burst oversubscribes them: each
    # tenant's burst is smaller than its request count, so the tail of
    # every burst is shed with 429s — the artifact shows both served
    # latency and admission control doing its job.
    config = ServiceConfig(
        jobs=1,
        max_in_flight=8,
        tenant_rate=100.0,
        tenant_burst=25.0,
    )
    with DaemonService(config) as service:
        load = service.handle(
            Request(op="load", params={"definition": _definition(circuit)})
        )
        key = load["result"]["circuit"]
        shed = [0] * tenants
        ok = [0] * tenants
        barrier = threading.Barrier(tenants)

        def tenant_loop(i):
            barrier.wait()
            for n in range(requests_per_tenant):
                resp = service.handle(
                    Request(
                        op="chain",
                        tenant=f"tenant{i}",
                        params={
                            "circuit": key,
                            "output": circuit.outputs[n % len(circuit.outputs)],
                        },
                    )
                )
                if resp["ok"]:
                    ok[i] += 1
                else:
                    assert resp["error"]["code"] == 429, resp
                    shed[i] += 1

        threads = [
            threading.Thread(target=tenant_loop, args=(i,))
            for i in range(tenants)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        histogram = service.metrics.histograms()["daemon.chain_seconds"]
        admission = service.admission.as_dict()
    total = tenants * requests_per_tenant
    return {
        "tenants": tenants,
        "requests": total,
        "completed": sum(ok),
        "shed": sum(shed),
        "requests_per_second": total / elapsed,
        "chain_p50_ms": histogram.quantile(0.5) * 1e3,
        "chain_p99_ms": histogram.quantile(0.99) * 1e3,
        "admission": admission,
    }


def main(argv=None):
    import argparse
    import os

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small circuit and short bursts (CI smoke run)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=max(2, min(4, os.cpu_count() or 2)),
        help="worker processes for the dispatch study (min 2: the "
        "comparison needs cross-process dispatch either way)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
    )
    args = parser.parse_args(argv)

    if not shared_memory_available():
        raise SystemExit("shared memory unavailable; nothing to compare")

    dispatch = dispatch_study(args.quick, args.jobs)
    print(
        f"dispatch: shm {dispatch['shm']['sweeps_per_second']:.2f} sweeps/s, "
        f"pickle {dispatch['pickle']['sweeps_per_second']:.2f} sweeps/s "
        f"-> {dispatch['shm_speedup']:.2f}x"
    )
    latency = latency_study(args.quick)
    print(
        f"latency: {latency['completed']}/{latency['requests']} ok, "
        f"{latency['shed']} shed, p50 {latency['chain_p50_ms']:.2f} ms, "
        f"p99 {latency['chain_p99_ms']:.2f} ms"
    )

    report = {
        "benchmark": "daemon shm dispatch throughput and request latency",
        "quick": args.quick,
        "dispatch": dispatch,
        "latency": latency,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if dispatch["shm_speedup"] < 2.0:
        raise SystemExit(
            f"shm dispatch speedup {dispatch['shm_speedup']:.2f}x < 2x gate"
        )


if __name__ == "__main__":
    main()
