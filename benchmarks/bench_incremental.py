"""Incremental re-query vs full recompute under a single-gate edit stream.

The paper's closing remark — the algorithm is fast enough "for running in
an incremental manner during logic synthesis" — is the scenario this
benchmark measures.  A session holds dominator chains for every primary
input of a cone; a synthesis loop applies one local rewrite at a time
(buffer insertion on a net, the canonical single-gate edit) and re-asks
for all chains after each edit.

Three ways to serve that loop:

* ``engine="patch"`` — one :class:`~repro.incremental.IncrementalEngine`
  lives across the whole stream: each flush patches the dominator tree
  inside the edit's affected cone, evicts only the cached regions the
  edit could touch, and reuses every surviving region expansion and
  assembled chain;
* ``engine="dynamic"`` — the same session, but the tree is *maintained*
  by :class:`~repro.dominators.dynamic.DynamicDominators`: a pruned
  iterative sweep re-folds only the affected region's idoms in place, no
  per-flush full-graph pass (no RPO, no tree DFS, no shared cone index
  rebuild) happens at all;
* ``full recompute`` — what a stateless caller does: a fresh
  :class:`~repro.core.algorithm.ChainComputer` per edit (new tree, every
  region re-expanded, every chain re-assembled).

Speedups are workload-shaped, and the configs are chosen to show both
sides honestly.  The dual-rail parity headline is the canonical local-
edit workload: every PI fans into two balanced trees that reconverge
only at the output comparator, so a scattered buffer insertion stales a
couple of leaf-adjacent cells while a full recompute re-expands every
PI's whole-circuit entry region — both engines win by >20x there, the
dynamic engine by more because its flush never touches the untouched
remainder of the graph.  On a cascade where eight inputs each tap every
level, every PI's entry region spans the whole circuit and any edit
honestly invalidates it — the engines degrade to parity, never below it.

``python benchmarks/bench_incremental.py`` runs the edit-stream study
directly — every config under both engines — and writes
``BENCH_incremental.json`` next to the repo's other ``BENCH_*``
artifacts (``--quick`` shrinks the stream for CI smoke runs).  The
acceptance gate is per engine (patch >=5x, dynamic >=20x headline
median) plus ``--min-dynamic-vs-patch``, which fails the run when the
dynamic headline falls below the given multiple of the patch headline.
Under pytest, each config becomes a benchmark group whose entries are
the per-edit cost of each engine and of the full recompute.
"""

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.circuits.generators import (
    cascade,
    dual_rail_parity,
    random_series_parallel,
)
from repro.core.algorithm import ChainComputer
from repro.dominators.dynamic import ENGINES
from repro.graph import IndexedGraph
from repro.incremental import AddGate, IncrementalEngine, ReplaceSubgraph, Rewire

#: (label, circuit factory, part of the acceptance headline?)
#: Headline rows keep edits local (one tap per PI / leaf-private tree
#: cells); the trailing rows are adversarial or mid-range shapes kept
#: for honesty.
CONFIGS = [
    (
        "cascade depth=48 width=48",
        lambda: cascade(depth=48, num_inputs=48, num_outputs=1),
        True,
    ),
    (
        "dual-rail parity width=128",
        lambda: dual_rail_parity(128),
        True,
    ),
    (
        "dual-rail parity width=192",
        lambda: dual_rail_parity(192),
        True,
    ),
    (
        "series-parallel depth=10 seed=4",
        lambda: random_series_parallel(depth=10, seed=4),
        False,
    ),
    (
        "cascade depth=120 width=8 (global regions)",
        lambda: cascade(depth=120, num_inputs=8, num_outputs=1),
        False,
    ),
]

EDITS = 20
#: Per-engine threshold on the median headline speedup vs full recompute.
ACCEPTANCE_SPEEDUP = {"patch": 5.0, "dynamic": 20.0}


def _edit_at(graph, step):
    """Buffer insertion on the first fanin net of a deterministic gate.

    Walks the live gates with a prime stride so successive edits land in
    unrelated parts of the circuit, the way scattered local rewrites do.
    """
    gates = [
        v
        for v in range(graph.n)
        if graph.is_alive(v)
        and graph.pred[v]
        and v != graph.root
        and graph.name_of(v) is not None
        and all(graph.name_of(p) is not None for p in graph.pred[v])
    ]
    v = gates[(step * 7919) % len(gates)]
    fanins = [graph.name_of(p) for p in graph.pred[v]]
    buf = f"edit_buf{step}"
    return ReplaceSubgraph(
        add=(AddGate(buf, (fanins[0],), "buf"),),
        rewire=(
            Rewire(
                graph.name_of(v),
                tuple(buf if i == 0 else name for i, name in enumerate(fanins)),
            ),
        ),
    )


def _query_all(computer, sources):
    total = 0
    for u in sources:
        if computer.tree.is_reachable(u):
            total += computer.chain(u).num_dominators()
    return total


def run_stream(make_circuit, edits=EDITS, engine="patch"):
    """One config's study: per-edit incremental vs recompute timings."""
    session = IncrementalEngine.from_circuit(make_circuit(), engine=engine)
    graph = session.graph
    session.chains_for_sources()  # warm session, as a synthesis loop would be
    inc_times, full_times = [], []
    for step in range(edits):
        session.apply(_edit_at(graph, step))
        t0 = time.perf_counter()
        session.chains_for_sources()
        inc_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _query_all(ChainComputer(graph), graph.sources())
        full_times.append(time.perf_counter() - t0)
    ratios = sorted(f / i for f, i in zip(full_times, inc_times))
    alive = graph.n - len(graph.dead)
    return {
        "vertices": alive,
        "edits": edits,
        "engine": engine,
        "incremental_ms_median": statistics.median(inc_times) * 1e3,
        "full_ms_median": statistics.median(full_times) * 1e3,
        "speedup_median": statistics.median(ratios),
        "speedup_p25": ratios[len(ratios) // 4],
        "speedup_max": ratios[-1],
        "engine_stats": session.stats_dict(),
        "cache_hit_rate": session.cache_stats.hit_rate,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points: one group per config, three contenders.
# Each benchmark round applies the next edit of the stream and re-queries
# all PI chains — the unit of work a synthesis loop pays per rewrite.
# ----------------------------------------------------------------------
def _streaming_workload(make_circuit, incremental, engine="patch"):
    session = IncrementalEngine.from_circuit(make_circuit(), engine=engine)
    graph = session.graph
    session.chains_for_sources()
    state = {"step": 0}

    def one_edit_cycle():
        session.apply(_edit_at(graph, state["step"]))
        state["step"] += 1
        if incremental:
            return len(session.chains_for_sources())
        return _query_all(ChainComputer(graph), graph.sources())

    return one_edit_cycle


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("label,factory,_", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_incremental_requery(benchmark, label, factory, _, engine):
    benchmark.group = f"edit-stream:{label}"
    benchmark.name = f"incremental engine ({engine})"
    benchmark(_streaming_workload(factory, incremental=True, engine=engine))


@pytest.mark.parametrize("label,factory,_", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_full_recompute(benchmark, label, factory, _):
    benchmark.group = f"edit-stream:{label}"
    benchmark.name = "full recompute"
    benchmark(_streaming_workload(factory, incremental=False))


# ----------------------------------------------------------------------
# direct mode: the JSON artifact
# ----------------------------------------------------------------------
def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short edit stream (CI smoke run)",
    )
    parser.add_argument(
        "--edits", type=int, default=None, help="edits per config"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_incremental.json",
    )
    parser.add_argument(
        "--min-dynamic-vs-patch",
        type=float,
        default=1.0,
        metavar="RATIO",
        help="fail unless dynamic headline >= RATIO * patch headline "
        "(default 1.0: the dynamic engine must not regress below patch)",
    )
    args = parser.parse_args(argv)
    edits = args.edits if args.edits is not None else (6 if args.quick else EDITS)

    results = []
    for label, factory, headline in CONFIGS:
        for engine in ENGINES:
            row = run_stream(factory, edits=edits, engine=engine)
            row["config"] = label
            row["headline"] = headline
            results.append(row)
            print(
                f"{label:40s} {engine:8s} n={row['vertices']:5d} "
                f"median {row['speedup_median']:6.1f}x "
                f"p25 {row['speedup_p25']:5.1f}x "
                f"hit_rate={row['cache_hit_rate']:.1%}"
            )

    headline_median = {
        engine: statistics.median(
            r["speedup_median"]
            for r in results
            if r["headline"] and r["engine"] == engine
        )
        for engine in ENGINES
    }
    acceptance = {
        engine: {
            "threshold": ACCEPTANCE_SPEEDUP[engine],
            "met": headline_median[engine] >= ACCEPTANCE_SPEEDUP[engine],
        }
        for engine in ENGINES
    }
    floor = args.min_dynamic_vs_patch * headline_median["patch"]
    acceptance["dynamic_vs_patch"] = {
        "min_ratio": args.min_dynamic_vs_patch,
        "met": headline_median["dynamic"] >= floor,
    }
    report = {
        "benchmark": "incremental edit-stream re-query vs full recompute",
        "edit": "single-gate buffer insertion, scattered across the cone",
        "query": "dominator chains of all primary inputs after each edit",
        "edits_per_config": edits,
        "configs": results,
        "headline_median_speedup": headline_median,
        "acceptance": acceptance,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    ok = all(gate["met"] for gate in acceptance.values())
    for engine in ENGINES:
        print(
            f"\n{engine} headline median speedup: "
            f"{headline_median[engine]:.1f}x "
            f"(threshold {ACCEPTANCE_SPEEDUP[engine]:.0f}x, "
            f"{'met' if acceptance[engine]['met'] else 'NOT met'})"
        )
    print(
        f"dynamic vs patch: {headline_median['dynamic']:.1f}x vs "
        f"{headline_median['patch']:.1f}x "
        f"(floor {floor:.1f}x, "
        f"{'met' if acceptance['dynamic_vs_patch']['met'] else 'NOT met'})"
    )
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
