"""DOUBLEIDOM flow computations and region machinery micro-benchmarks."""

import pytest

from repro.circuits.generators import array_multiplier
from repro.core.double_idom import double_idom
from repro.core.matching import expand_pair
from repro.dominators import circuit_dominator_tree
from repro.graph import IndexedGraph
from repro.graph.transform import region_between


def _region():
    """The first search region of a multiplier cone's first PI."""
    circuit = array_multiplier(8)
    graph = IndexedGraph.from_circuit(circuit, circuit.outputs[-1])
    tree = circuit_dominator_tree(graph)
    u = graph.sources()[0]
    walk = tree.chain(u)
    sub, orig_of = region_between(graph, walk[0], walk[1])
    local = {orig: i for i, orig in enumerate(orig_of)}
    return sub, local[walk[0]]


def test_double_idom_flow(benchmark):
    region, start = _region()
    benchmark.group = f"DOUBLEIDOM (region n={region.n})"
    benchmark.name = "bounded max-flow + nearest cut"
    benchmark(double_idom, region, [start])


def test_pair_expansion(benchmark):
    region, start = _region()
    pair = double_idom(region, [start])
    if pair is None:
        pytest.skip("region has no immediate pair")
    benchmark.group = f"pair expansion (region n={region.n})"
    benchmark.name = "FINDMATCHINGVECTOR walks"
    benchmark(expand_pair, region, pair[0], pair[1])


def test_single_dominator_tree_on_cone(benchmark):
    circuit = array_multiplier(8)
    graph = IndexedGraph.from_circuit(circuit, circuit.outputs[-1])
    benchmark.group = f"LT dominator tree (n={graph.n})"
    benchmark.name = "Lengauer-Tarjan"
    benchmark(circuit_dominator_tree, graph)
