"""Constant-time chain lookup (Section 4's O(1) claim).

Three ways to answer "is {v1, v2} a double-vertex dominator of u?":

* ``chain``   — the paper's flag/index/interval probe (claimed O(1)),
* ``hashset`` — membership in a materialized frozenset-pair set,
* ``recheck`` — re-deriving the answer from Definition 1 by reachability
  (what one would do without the chain; grows with circuit size).

The chain and hashset stay flat across circuit sizes; the recheck does
not — that separation is the claim.
"""

import random

import pytest

from repro.circuits.generators import cascade
from repro.core.algorithm import ChainComputer
from repro.core.bruteforce import is_double_dominator
from repro.graph import IndexedGraph

DEPTHS = [20, 80, 320]
QUERIES = 500


def _setup(depth):
    circuit = cascade(depth=depth, num_inputs=6, num_outputs=1)
    graph = IndexedGraph.from_circuit(circuit)
    u = graph.sources()[0]
    chain = ChainComputer(graph).chain(u)
    rng = random.Random(99)
    queries = [
        (rng.randrange(graph.n), rng.randrange(graph.n))
        for _ in range(QUERIES)
    ]
    return graph, u, chain, queries


@pytest.mark.parametrize("depth", DEPTHS)
def test_chain_lookup(benchmark, depth):
    graph, u, chain, queries = _setup(depth)
    benchmark.group = f"lookup:n={graph.n}"
    benchmark.name = "chain O(1) probe"
    benchmark(lambda: sum(chain.dominates(a, b) for a, b in queries))


@pytest.mark.parametrize("depth", DEPTHS)
def test_hashset_lookup(benchmark, depth):
    graph, u, chain, queries = _setup(depth)
    pairs = chain.pair_set()
    benchmark.group = f"lookup:n={graph.n}"
    benchmark.name = "hashed pair set"
    benchmark(
        lambda: sum(frozenset((a, b)) in pairs for a, b in queries)
    )


@pytest.mark.parametrize("depth", DEPTHS)
def test_reachability_recheck(benchmark, depth):
    graph, u, chain, queries = _setup(depth)
    benchmark.group = f"lookup:n={graph.n}"
    benchmark.name = "definition recheck"
    benchmark(
        lambda: sum(
            is_double_dominator(graph, u, a, b) for a, b in queries[:50]
        )
    )
