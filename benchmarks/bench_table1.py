"""Table 1: the paper's algorithm vs the baseline [11], per benchmark.

Each benchmark times the full Table-1 workload for one circuit — all
double-vertex dominators of every primary input of every output cone.
``new`` is the paper's dominator-chain algorithm (column t2), ``baseline``
the restriction algorithm [11] (column t1); comparing the two groups in
the pytest-benchmark output reproduces the table's improvement column.
``new via pool`` runs the same workload through the
:mod:`repro.service` worker-pool executor (``REPRO_SWEEP_JOBS``
processes, default 2) — its gap to ``new`` is the serving layer's
dispatch overhead or, on multi-core runners, its speedup.

Circuits are built at scale 0.5 to keep a full run in CI territory; run
``python -m repro.experiments.table1`` for the paper-matched sizes.

Run directly as a script to compare the chain-construction backends
(three-way by default: legacy, shared, linear) and emit a
machine-readable report::

    python benchmarks/bench_table1.py --out BENCH_linear_backend.json
    python benchmarks/bench_table1.py --backends shared linear \
        --names C6288 C432 too_large --min-linear-vs-shared 1.0

The report holds best-of-N wall times of every requested backend over
the Table-1 quick subset plus aggregate speedups relative to legacy and
the linear-vs-shared ratio.  Two CI gates: ``--min-speedup X`` fails
(exit 1) when the aggregate shared-vs-legacy speedup drops below X, and
``--min-linear-vs-shared X`` fails when the aggregate linear-vs-shared
ratio does.  Unknown backends or benchmark names exit 2 with a clear
message (backend names are validated by the same
:func:`repro.cli.backend_arg` used by every CLI entry point).
"""

import argparse
import json
import os
import sys
import time

import pytest

from repro.circuits.suite import QUICK_SUBSET, table1_suite
from repro.core.algorithm import ChainComputer
from repro.core.baseline import baseline_double_dominators
from repro.graph import IndexedGraph
from repro.service import ExecutorConfig, ParallelExecutor

SCALE = 0.5
SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "2"))


def _cones(name):
    circuit = table1_suite()[name].circuit(SCALE)
    return [
        IndexedGraph.from_circuit(circuit, out) for out in circuit.outputs
    ]


def _run_new(cones, backend="shared"):
    total = 0
    for graph in cones:
        computer = ChainComputer(graph, backend=backend)
        for u in graph.sources():
            total += computer.chain(u).num_dominators()
    return total


def _run_baseline(cones):
    total = 0
    for graph in cones:
        for pairs in baseline_double_dominators(graph).values():
            total += len(pairs)
    return total


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_new_algorithm(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "new (t2)"
    benchmark(_run_new, cones)


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_linear_backend(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "new (t2, backend=linear)"
    benchmark(_run_new, cones, "linear")


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_baseline_algorithm(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "baseline [11] (t1)"
    benchmark(_run_baseline, cones)


def _run_parallel(circuit):
    executor = ParallelExecutor(ExecutorConfig(jobs=SWEEP_JOBS))
    return sum(r.num_pairs for r in executor.sweep_circuit(circuit))


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_parallel_sweep(benchmark, name):
    circuit = table1_suite()[name].circuit(SCALE)
    benchmark.group = f"table1:{name}"
    benchmark.name = f"new via pool (jobs={SWEEP_JOBS})"
    benchmark(_run_parallel, circuit)


# ----------------------------------------------------------------------
# script mode: three-way backend comparison (legacy / shared / linear)
# ----------------------------------------------------------------------
def _measure_backend(cones, backend, repeats):
    """Best-of-``repeats`` wall time of the full workload on ``backend``.

    The cached shared index is dropped before every timed run, so the
    shared/linear times *include* building the per-circuit index — the
    cost a cold caller actually pays.
    """
    best = None
    pairs = 0
    for _ in range(repeats):
        for graph in cones:
            graph._shared_index = None
        start = time.perf_counter()
        pairs = 0
        for graph in cones:
            computer = ChainComputer(graph, backend=backend)
            for u in graph.sources():
                pairs += computer.chain(u).num_dominators()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, pairs


def run_backend_comparison(names, scale=SCALE, repeats=3, backends=None):
    """Per-circuit wall times of every backend plus aggregates.

    ``backends`` defaults to all registered backends (legacy, shared,
    linear).  Every measured backend must agree on the pair count — a
    disagreement raises, so the comparison doubles as a correctness
    cross-check.  Speedups are reported relative to ``legacy`` when it
    is measured, and the ``linear``/``shared`` ratio separately (that is
    the ratio the CI bench gate enforces).
    """
    from repro.dominators.shared import BACKENDS

    backends = list(backends) if backends else list(BACKENDS)
    circuits = []
    total_seconds = {b: 0.0 for b in backends}
    for name in names:
        cones = _cones_at(name, scale)
        seconds = {}
        pair_counts = {}
        for backend in backends:
            seconds[backend], pair_counts[backend] = _measure_backend(
                cones, backend, repeats
            )
        counts = set(pair_counts.values())
        if len(counts) > 1:
            raise AssertionError(
                f"{name}: backends disagree on the pair count "
                f"({pair_counts})"
            )
        row = {
            "name": name,
            "pairs": pair_counts[backends[0]],
            "seconds": {b: round(s, 6) for b, s in seconds.items()},
        }
        if "legacy" in seconds:
            row["speedup_vs_legacy"] = {
                b: round(seconds["legacy"] / seconds[b], 3)
                for b in backends
                if b != "legacy"
            }
        if "linear" in seconds and "shared" in seconds:
            row["linear_vs_shared"] = round(
                seconds["shared"] / seconds["linear"], 3
            )
        circuits.append(row)
        for backend in backends:
            total_seconds[backend] += seconds[backend]
        print(
            "  {:12s} {}".format(
                name,
                "   ".join(
                    f"{b} {seconds[b] * 1e3:9.1f} ms" for b in backends
                ),
            ),
            file=sys.stderr,
        )
    total = {"seconds": {b: round(s, 6) for b, s in total_seconds.items()}}
    if "legacy" in total_seconds:
        total["speedup_vs_legacy"] = {
            b: round(total_seconds["legacy"] / total_seconds[b], 3)
            for b in backends
            if b != "legacy"
        }
    if "linear" in total_seconds and "shared" in total_seconds:
        total["linear_vs_shared"] = round(
            total_seconds["shared"] / total_seconds["linear"], 3
        )
    return {
        "workload": "all-PI dominator chains per output cone (Table 1)",
        "scale": scale,
        "repeats": repeats,
        "timing": (
            "best-of-repeats; shared/linear times include index build"
        ),
        "backends": backends,
        "circuits": circuits,
        "total": total,
    }


def _cones_at(name, scale):
    circuit = table1_suite()[name].circuit(scale)
    return [
        IndexedGraph.from_circuit(circuit, out) for out in circuit.outputs
    ]


def main(argv=None):
    from repro.cli import backend_arg
    from repro.dominators.shared import BACKENDS

    parser = argparse.ArgumentParser(
        description="chain-construction backend comparison (Table 1)"
    )
    parser.add_argument(
        "--out",
        default="BENCH_linear_backend.json",
        help="report file (JSON)",
    )
    parser.add_argument(
        "--names",
        nargs="*",
        help="benchmark names (default: the quick subset)",
    )
    parser.add_argument(
        "--backends",
        nargs="*",
        type=backend_arg,
        metavar="{%s}" % ",".join(BACKENDS),
        help="backends to measure (default: all registered backends)",
    )
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "exit 1 when the aggregate shared-vs-legacy speedup falls "
            "below this (requires both backends to be measured)"
        ),
    )
    parser.add_argument(
        "--min-linear-vs-shared",
        type=float,
        default=None,
        help=(
            "exit 1 when the aggregate linear-vs-shared ratio falls "
            "below this (requires both backends to be measured)"
        ),
    )
    args = parser.parse_args(argv)
    names = args.names or QUICK_SUBSET
    unknown = [n for n in names if n not in table1_suite()]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    backends = args.backends or list(BACKENDS)
    for gate, needed in (
        (args.min_speedup, ("legacy", "shared")),
        (args.min_linear_vs_shared, ("shared", "linear")),
    ):
        if gate is not None:
            missing = [b for b in needed if b not in backends]
            if missing:
                print(
                    "gate requires backend(s) not being measured: "
                    + ", ".join(missing),
                    file=sys.stderr,
                )
                return 2
    report = run_backend_comparison(
        names, scale=args.scale, repeats=args.repeats, backends=backends
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    total = report["total"]
    failures = []
    if args.min_speedup is not None:
        speedup = total["speedup_vs_legacy"]["shared"]
        print(
            f"aggregate shared-vs-legacy speedup {speedup}x",
            file=sys.stderr,
        )
        if speedup < args.min_speedup:
            failures.append(
                f"shared-vs-legacy speedup {speedup}x is below the "
                f"--min-speedup gate {args.min_speedup}x"
            )
    if args.min_linear_vs_shared is not None:
        ratio = total["linear_vs_shared"]
        print(
            f"aggregate linear-vs-shared ratio {ratio}x", file=sys.stderr
        )
        if ratio < args.min_linear_vs_shared:
            failures.append(
                f"linear-vs-shared ratio {ratio}x is below the "
                f"--min-linear-vs-shared gate {args.min_linear_vs_shared}x"
            )
    print(f"report -> {args.out}", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
