"""Table 1: the paper's algorithm vs the baseline [11], per benchmark.

Each benchmark times the full Table-1 workload for one circuit — all
double-vertex dominators of every primary input of every output cone.
``new`` is the paper's dominator-chain algorithm (column t2), ``baseline``
the restriction algorithm [11] (column t1); comparing the two groups in
the pytest-benchmark output reproduces the table's improvement column.

Circuits are built at scale 0.5 to keep a full run in CI territory; run
``python -m repro.experiments.table1`` for the paper-matched sizes.
"""

import pytest

from repro.circuits.suite import QUICK_SUBSET, table1_suite
from repro.core.algorithm import ChainComputer
from repro.core.baseline import baseline_double_dominators
from repro.graph import IndexedGraph

SCALE = 0.5


def _cones(name):
    circuit = table1_suite()[name].circuit(SCALE)
    return [
        IndexedGraph.from_circuit(circuit, out) for out in circuit.outputs
    ]


def _run_new(cones):
    total = 0
    for graph in cones:
        computer = ChainComputer(graph)
        for u in graph.sources():
            total += computer.chain(u).num_dominators()
    return total


def _run_baseline(cones):
    total = 0
    for graph in cones:
        for pairs in baseline_double_dominators(graph).values():
            total += len(pairs)
    return total


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_new_algorithm(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "new (t2)"
    benchmark(_run_new, cones)


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_baseline_algorithm(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "baseline [11] (t1)"
    benchmark(_run_baseline, cones)
