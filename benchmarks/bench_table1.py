"""Table 1: the paper's algorithm vs the baseline [11], per benchmark.

Each benchmark times the full Table-1 workload for one circuit — all
double-vertex dominators of every primary input of every output cone.
``new`` is the paper's dominator-chain algorithm (column t2), ``baseline``
the restriction algorithm [11] (column t1); comparing the two groups in
the pytest-benchmark output reproduces the table's improvement column.
``new via pool`` runs the same workload through the
:mod:`repro.service` worker-pool executor (``REPRO_SWEEP_JOBS``
processes, default 2) — its gap to ``new`` is the serving layer's
dispatch overhead or, on multi-core runners, its speedup.

Circuits are built at scale 0.5 to keep a full run in CI territory; run
``python -m repro.experiments.table1`` for the paper-matched sizes.
"""

import os

import pytest

from repro.circuits.suite import QUICK_SUBSET, table1_suite
from repro.core.algorithm import ChainComputer
from repro.core.baseline import baseline_double_dominators
from repro.graph import IndexedGraph
from repro.service import ExecutorConfig, ParallelExecutor

SCALE = 0.5
SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "2"))


def _cones(name):
    circuit = table1_suite()[name].circuit(SCALE)
    return [
        IndexedGraph.from_circuit(circuit, out) for out in circuit.outputs
    ]


def _run_new(cones):
    total = 0
    for graph in cones:
        computer = ChainComputer(graph)
        for u in graph.sources():
            total += computer.chain(u).num_dominators()
    return total


def _run_baseline(cones):
    total = 0
    for graph in cones:
        for pairs in baseline_double_dominators(graph).values():
            total += len(pairs)
    return total


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_new_algorithm(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "new (t2)"
    benchmark(_run_new, cones)


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_baseline_algorithm(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "baseline [11] (t1)"
    benchmark(_run_baseline, cones)


def _run_parallel(circuit):
    executor = ParallelExecutor(ExecutorConfig(jobs=SWEEP_JOBS))
    return sum(r.num_pairs for r in executor.sweep_circuit(circuit))


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_parallel_sweep(benchmark, name):
    circuit = table1_suite()[name].circuit(SCALE)
    benchmark.group = f"table1:{name}"
    benchmark.name = f"new via pool (jobs={SWEEP_JOBS})"
    benchmark(_run_parallel, circuit)
