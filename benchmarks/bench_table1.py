"""Table 1: the paper's algorithm vs the baseline [11], per benchmark.

Each benchmark times the full Table-1 workload for one circuit — all
double-vertex dominators of every primary input of every output cone.
``new`` is the paper's dominator-chain algorithm (column t2), ``baseline``
the restriction algorithm [11] (column t1); comparing the two groups in
the pytest-benchmark output reproduces the table's improvement column.
``new via pool`` runs the same workload through the
:mod:`repro.service` worker-pool executor (``REPRO_SWEEP_JOBS``
processes, default 2) — its gap to ``new`` is the serving layer's
dispatch overhead or, on multi-core runners, its speedup.

Circuits are built at scale 0.5 to keep a full run in CI territory; run
``python -m repro.experiments.table1`` for the paper-matched sizes.

Run directly as a script to compare the two chain-construction backends
and emit a machine-readable report::

    python benchmarks/bench_table1.py --out BENCH_shared_backend.json

The report holds best-of-N wall times of ``backend="legacy"`` and
``backend="shared"`` over the Table-1 quick subset plus the aggregate
speedup; ``--min-speedup X`` turns it into a CI gate (exit 1 below X).
"""

import argparse
import json
import os
import sys
import time

import pytest

from repro.circuits.suite import QUICK_SUBSET, table1_suite
from repro.core.algorithm import ChainComputer
from repro.core.baseline import baseline_double_dominators
from repro.graph import IndexedGraph
from repro.service import ExecutorConfig, ParallelExecutor

SCALE = 0.5
SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "2"))


def _cones(name):
    circuit = table1_suite()[name].circuit(SCALE)
    return [
        IndexedGraph.from_circuit(circuit, out) for out in circuit.outputs
    ]


def _run_new(cones):
    total = 0
    for graph in cones:
        computer = ChainComputer(graph)
        for u in graph.sources():
            total += computer.chain(u).num_dominators()
    return total


def _run_baseline(cones):
    total = 0
    for graph in cones:
        for pairs in baseline_double_dominators(graph).values():
            total += len(pairs)
    return total


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_new_algorithm(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "new (t2)"
    benchmark(_run_new, cones)


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_baseline_algorithm(benchmark, name):
    cones = _cones(name)
    benchmark.group = f"table1:{name}"
    benchmark.name = "baseline [11] (t1)"
    benchmark(_run_baseline, cones)


def _run_parallel(circuit):
    executor = ParallelExecutor(ExecutorConfig(jobs=SWEEP_JOBS))
    return sum(r.num_pairs for r in executor.sweep_circuit(circuit))


@pytest.mark.parametrize("name", QUICK_SUBSET)
def test_parallel_sweep(benchmark, name):
    circuit = table1_suite()[name].circuit(SCALE)
    benchmark.group = f"table1:{name}"
    benchmark.name = f"new via pool (jobs={SWEEP_JOBS})"
    benchmark(_run_parallel, circuit)


# ----------------------------------------------------------------------
# script mode: shared-vs-legacy backend comparison
# ----------------------------------------------------------------------
def _measure_backend(cones, backend, repeats):
    """Best-of-``repeats`` wall time of the full workload on ``backend``.

    The cached shared index is dropped before every timed run, so the
    shared time *includes* building its per-circuit index — the cost a
    cold caller actually pays.
    """
    best = None
    pairs = 0
    for _ in range(repeats):
        for graph in cones:
            graph._shared_index = None
        start = time.perf_counter()
        pairs = 0
        for graph in cones:
            computer = ChainComputer(graph, backend=backend)
            for u in graph.sources():
                pairs += computer.chain(u).num_dominators()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, pairs


def run_backend_comparison(names, scale=SCALE, repeats=3):
    """Legacy-vs-shared wall times per circuit plus the aggregate."""
    circuits = []
    total = {"legacy_seconds": 0.0, "shared_seconds": 0.0}
    for name in names:
        cones = _cones_at(name, scale)
        legacy_s, legacy_pairs = _measure_backend(cones, "legacy", repeats)
        shared_s, shared_pairs = _measure_backend(cones, "shared", repeats)
        if legacy_pairs != shared_pairs:
            raise AssertionError(
                f"{name}: backends disagree on the pair count "
                f"({shared_pairs} vs {legacy_pairs})"
            )
        circuits.append(
            {
                "name": name,
                "pairs": shared_pairs,
                "legacy_seconds": round(legacy_s, 6),
                "shared_seconds": round(shared_s, 6),
                "speedup": round(legacy_s / shared_s, 3),
            }
        )
        total["legacy_seconds"] += legacy_s
        total["shared_seconds"] += shared_s
        print(
            f"  {name:12s} legacy {legacy_s * 1e3:9.1f} ms   "
            f"shared {shared_s * 1e3:9.1f} ms   "
            f"{legacy_s / shared_s:5.2f}x",
            file=sys.stderr,
        )
    total["speedup"] = round(
        total["legacy_seconds"] / total["shared_seconds"], 3
    )
    total["legacy_seconds"] = round(total["legacy_seconds"], 6)
    total["shared_seconds"] = round(total["shared_seconds"], 6)
    return {
        "workload": "all-PI dominator chains per output cone (Table 1)",
        "scale": scale,
        "repeats": repeats,
        "timing": "best-of-repeats; shared times include index build",
        "circuits": circuits,
        "total": total,
    }


def _cones_at(name, scale):
    circuit = table1_suite()[name].circuit(scale)
    return [
        IndexedGraph.from_circuit(circuit, out) for out in circuit.outputs
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="shared-vs-legacy chain backend comparison (Table 1)"
    )
    parser.add_argument(
        "--out",
        default="BENCH_shared_backend.json",
        help="report file (JSON)",
    )
    parser.add_argument(
        "--names",
        nargs="*",
        help="benchmark names (default: the quick subset)",
    )
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit 1 when the aggregate speedup falls below this",
    )
    args = parser.parse_args(argv)
    names = args.names or QUICK_SUBSET
    unknown = [n for n in names if n not in table1_suite()]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    report = run_backend_comparison(
        names, scale=args.scale, repeats=args.repeats
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    speedup = report["total"]["speedup"]
    print(f"aggregate speedup {speedup}x -> {args.out}", file=sys.stderr)
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: aggregate speedup {speedup}x is below the "
            f"--min-speedup gate {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
