"""Application-level benchmarks: the analyses dominators accelerate."""

import pytest

from repro.analysis import (
    MonteCarloTiming,
    VectorSimulator,
    exact_signal_probabilities,
    naive_signal_probabilities,
    select_cut_frontiers,
)
from repro.circuits.generators import carry_select_adder, cascade


def _csa():
    return carry_select_adder(10, block=4)


def test_exact_signal_probability(benchmark):
    circuit = _csa()
    out = circuit.outputs[-1]
    benchmark.group = "signal probability"
    benchmark.name = "exact (dominator-partitioned)"
    benchmark(exact_signal_probabilities, circuit, out)


def test_naive_signal_probability(benchmark):
    circuit = _csa()
    benchmark.group = "signal probability"
    benchmark.name = "naive first-order (incorrect)"
    benchmark(naive_signal_probabilities, circuit)


def test_monte_carlo_probability(benchmark):
    circuit = _csa()
    sim = VectorSimulator(circuit)
    benchmark.group = "signal probability"
    benchmark.name = "monte carlo 10k vectors"
    benchmark(sim.monte_carlo_probabilities, 10_000)


def test_cut_frontier_selection(benchmark):
    circuit = cascade(depth=80, num_inputs=8, num_outputs=1)
    benchmark.group = "cut frontier selection"
    benchmark.name = "common chain of all PIs"
    benchmark(select_cut_frontiers, circuit)


def test_statistical_timing(benchmark):
    circuit = cascade(depth=40, num_inputs=6, num_outputs=1)
    benchmark.group = "statistical timing"
    benchmark.name = "4096-sample vectorized SSTA"
    benchmark(MonteCarloTiming, circuit, None, 4096)
