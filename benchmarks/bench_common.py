"""Common dominators: fake-vertex recomputation vs chain intersection.

Section 4 claims D(u1..uk) is computable from individual chains in
O(k · min|D(ui)|) — the intersection route.  Once per-input chains exist
(the incremental-synthesis scenario), intersecting beats re-running the
flow algorithm on the augmented graph.
"""

import pytest

from repro.circuits.generators import cascade
from repro.core.algorithm import ChainComputer
from repro.core.common import common_dominator_pairs, common_pairs_from_chains
from repro.graph import IndexedGraph


def _setup():
    circuit = cascade(depth=60, num_inputs=8, num_outputs=1)
    graph = IndexedGraph.from_circuit(circuit)
    computer = ChainComputer(graph)
    chains = [computer.chain(u) for u in graph.sources()]
    return graph, chains


def test_common_via_fake_vertex(benchmark):
    graph, chains = _setup()
    benchmark.group = "common dominators of all PIs"
    benchmark.name = "fake-vertex recompute"
    benchmark(common_dominator_pairs, graph, graph.sources())


def test_common_via_chain_intersection(benchmark):
    graph, chains = _setup()
    benchmark.group = "common dominators of all PIs"
    benchmark.name = "chain intersection O(k*min|D|)"
    benchmark(common_pairs_from_chains, chains)
