"""Single-vertex dominator engines (Section 3's Lengauer–Tarjan remark).

The paper uses Lengauer–Tarjan and notes that the asymptotically-linear
algorithms "did not contribute much to reducing the actual runtime"; this
bench compares LT against the CHK iterative algorithm and the naive
fixpoint on a realistic cone, for the SINGLEIDOM workload both dominator
algorithms hammer on.
"""

import pytest

from repro.circuits.suite import table1_suite
from repro.dominators import circuit_idoms
from repro.graph import IndexedGraph


def _cone():
    circuit = table1_suite()["C6288"].circuit(0.5)
    return IndexedGraph.from_circuit(circuit, circuit.outputs[-1])


@pytest.mark.parametrize("engine", ["lt", "iterative", "naive"])
def test_single_dominator_engine(benchmark, engine):
    graph = _cone()
    benchmark.group = f"single idoms (n={graph.n})"
    benchmark.name = engine
    benchmark(circuit_idoms, graph, engine)
