"""Scaling of both algorithms with circuit size.

Two families from the paper's extremes:

* ``cascade`` — deep chains of reconvergent blocks (the too_large
  pathology: baseline grows ~quadratically, the chain algorithm stays
  near-linear thanks to small regions),
* ``multiplier`` — the C6288 family (few single dominators, large search
  regions: both algorithms work harder, the gap persists).
"""

import pytest

from repro.circuits.generators import array_multiplier, cascade
from repro.core.algorithm import ChainComputer
from repro.core.baseline import baseline_double_dominators
from repro.graph import IndexedGraph


def _single_cone(circuit):
    return IndexedGraph.from_circuit(circuit, circuit.outputs[-1])


def _new(graph):
    computer = ChainComputer(graph)
    return sum(
        computer.chain(u).num_dominators() for u in graph.sources()
    )


def _baseline(graph):
    return sum(
        len(p) for p in baseline_double_dominators(graph).values()
    )


@pytest.mark.parametrize("depth", [25, 50, 100])
def test_cascade_new(benchmark, depth):
    graph = _single_cone(cascade(depth=depth, num_inputs=6))
    benchmark.group = f"cascade depth={depth} (n={graph.n})"
    benchmark.name = "new (t2)"
    benchmark(_new, graph)


@pytest.mark.parametrize("depth", [25, 50, 100])
def test_cascade_baseline(benchmark, depth):
    graph = _single_cone(cascade(depth=depth, num_inputs=6))
    benchmark.group = f"cascade depth={depth} (n={graph.n})"
    benchmark.name = "baseline [11] (t1)"
    benchmark(_baseline, graph)


@pytest.mark.parametrize("width", [4, 6, 8])
def test_multiplier_new(benchmark, width):
    graph = _single_cone(array_multiplier(width))
    benchmark.group = f"multiplier {width}x{width} (n={graph.n})"
    benchmark.name = "new (t2)"
    benchmark(_new, graph)


@pytest.mark.parametrize("width", [4, 6, 8])
def test_multiplier_baseline(benchmark, width):
    graph = _single_cone(array_multiplier(width))
    benchmark.group = f"multiplier {width}x{width} (n={graph.n})"
    benchmark.name = "baseline [11] (t1)"
    benchmark(_baseline, graph)
