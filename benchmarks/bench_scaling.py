"""Scaling of both algorithms with circuit size.

Two families from the paper's extremes:

* ``cascade`` — deep chains of reconvergent blocks (the too_large
  pathology: baseline grows ~quadratically, the chain algorithm stays
  near-linear thanks to small regions),
* ``multiplier`` — the C6288 family (few single dominators, large search
  regions: both algorithms work harder, the gap persists).

Run directly as a script to compare the numpy kernels against the pure
python hot path on the million-gate scaling tier and emit the
checked-in report::

    python benchmarks/bench_scaling.py --out BENCH_scaling.json
    python benchmarks/bench_scaling.py --tier mid --repeats 5 \
        --min-kernel-speedup 1.0

Per entry the script builds the circuit once, then measures one
dominator-chain query twice per kernels setting: *cold* (the shared
cone index is dropped first, so the time includes the index build) and
*warm* (best-of-``--repeats`` on the cached index, region cache off —
the steady-state serving cost).  The python and numpy chains are
cross-checked with :func:`repro.check.oracle.diff_chains`; any
divergence aborts with exit 1.  The ``--min-kernel-speedup`` gate
compares aggregate *warm* times over the entries where the kernels
actually engaged (``core.kernel_regions > 0``) — deep-and-narrow
entries like ``cascade_mega`` have sub-threshold regions everywhere,
so they are reported but excluded from the gated ratio.
"""

import argparse
import json
import sys
import time

import pytest

from repro.circuits.generators import array_multiplier, cascade
from repro.core.algorithm import ChainComputer
from repro.core.baseline import baseline_double_dominators
from repro.graph import IndexedGraph


def _single_cone(circuit):
    return IndexedGraph.from_circuit(circuit, circuit.outputs[-1])


def _new(graph):
    computer = ChainComputer(graph)
    return sum(
        computer.chain(u).num_dominators() for u in graph.sources()
    )


def _baseline(graph):
    return sum(
        len(p) for p in baseline_double_dominators(graph).values()
    )


@pytest.mark.parametrize("depth", [25, 50, 100])
def test_cascade_new(benchmark, depth):
    graph = _single_cone(cascade(depth=depth, num_inputs=6))
    benchmark.group = f"cascade depth={depth} (n={graph.n})"
    benchmark.name = "new (t2)"
    benchmark(_new, graph)


@pytest.mark.parametrize("depth", [25, 50, 100])
def test_cascade_baseline(benchmark, depth):
    graph = _single_cone(cascade(depth=depth, num_inputs=6))
    benchmark.group = f"cascade depth={depth} (n={graph.n})"
    benchmark.name = "baseline [11] (t1)"
    benchmark(_baseline, graph)


@pytest.mark.parametrize("width", [4, 6, 8])
def test_multiplier_new(benchmark, width):
    graph = _single_cone(array_multiplier(width))
    benchmark.group = f"multiplier {width}x{width} (n={graph.n})"
    benchmark.name = "new (t2)"
    benchmark(_new, graph)


@pytest.mark.parametrize("width", [4, 6, 8])
def test_multiplier_baseline(benchmark, width):
    graph = _single_cone(array_multiplier(width))
    benchmark.group = f"multiplier {width}x{width} (n={graph.n})"
    benchmark.name = "baseline [11] (t1)"
    benchmark(_baseline, graph)


# ----------------------------------------------------------------------
# script mode: numpy kernels vs python hot path on the scaling tiers
# ----------------------------------------------------------------------
_KERNELS = ("python", "numpy")


def _pick_target(graph):
    """The benchmark's query vertex: ``x0`` where the generator names
    one (the mixing pipelines), else the cone's first primary input."""
    from repro.errors import UnknownNodeError

    try:
        return graph.index_of("x0")
    except UnknownNodeError:
        return graph.sources()[0]


def measure_entry(entry, repeats=3):
    """Cold and warm chain timings for one scaling entry, both kernels.

    Returns the report row.  Cold drops the cached shared index first,
    so both kernels pay the full index build; warm reuses the index
    with the region cache off and keeps the best of ``repeats`` runs.
    The numpy chain must be bit-identical to the python chain.
    """
    from repro.check.oracle import diff_chains
    from repro.service import MetricsRegistry

    graph = _single_cone(entry.circuit())
    target = _pick_target(graph)
    cold = {}
    warm = {}
    chains = {}
    kernel_regions = 0
    for kern in _KERNELS:
        graph._shared_index = None
        start = time.perf_counter()
        computer = ChainComputer(graph, backend="shared", kernels=kern)
        chains[kern] = computer.chain(target)
        cold[kern] = time.perf_counter() - start
        best = None
        for _ in range(repeats):
            metrics = MetricsRegistry()
            start = time.perf_counter()
            computer = ChainComputer(
                graph,
                backend="shared",
                cache_regions=False,
                kernels=kern,
                metrics=metrics,
            )
            chains[kern] = computer.chain(target)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            if kern == "numpy":
                kernel_regions = metrics.counter(
                    "core.kernel_regions"
                ).value
        warm[kern] = best
    divergence = diff_chains(chains["python"], chains["numpy"])
    if divergence is not None:
        raise AssertionError(
            f"{entry.name}: numpy chain diverges from python "
            f"({divergence})"
        )
    return {
        "name": entry.name,
        "gates": graph.n,
        "target": graph.name_of(target),
        "pairs": chains["python"].num_dominators(),
        "cold_seconds": {k: round(s, 6) for k, s in cold.items()},
        "warm_seconds": {k: round(s, 6) for k, s in warm.items()},
        "warm_speedup": round(warm["python"] / warm["numpy"], 3),
        "kernel_regions": kernel_regions,
        "kernel_engaged": kernel_regions > 0,
    }


def run_scaling_comparison(entries, repeats=3):
    """The full report: per-entry rows plus the gated aggregate.

    The aggregate kernel speedup is computed over kernel-engaged
    entries only — an entry whose regions all fall under the kernel
    size threshold measures dispatch overhead, not the kernels.
    """
    rows = []
    for entry in entries:
        row = measure_entry(entry, repeats=repeats)
        rows.append(row)
        print(
            "  {:14s} n={:>9,}  warm py {:8.3f}s  np {:8.3f}s  "
            "-> {:5.2f}x{}".format(
                row["name"],
                row["gates"],
                row["warm_seconds"]["python"],
                row["warm_seconds"]["numpy"],
                row["warm_speedup"],
                "" if row["kernel_engaged"] else "  (kernels idle)",
            ),
            file=sys.stderr,
        )
    gated = [r for r in rows if r["kernel_engaged"]]
    total = {
        "warm_seconds": {
            k: round(sum(r["warm_seconds"][k] for r in rows), 6)
            for k in _KERNELS
        },
        "gated_entries": [r["name"] for r in gated],
    }
    if gated:
        total["kernel_speedup"] = round(
            sum(r["warm_seconds"]["python"] for r in gated)
            / sum(r["warm_seconds"]["numpy"] for r in gated),
            3,
        )
    return {
        "workload": (
            "one dominator chain per scaling circuit, shared backend, "
            "kernels python vs numpy"
        ),
        "repeats": repeats,
        "timing": (
            "cold includes the shared-index build; warm is "
            "best-of-repeats on the cached index, region cache off; "
            "the gated aggregate covers kernel-engaged entries only"
        ),
        "circuits": rows,
        "total": total,
    }


def main(argv=None):
    from repro.circuits.suite import scaling_suite
    from repro.dominators.kernels import numpy_available

    parser = argparse.ArgumentParser(
        description="numpy kernels vs python on the scaling tiers"
    )
    parser.add_argument(
        "--out", default="BENCH_scaling.json", help="report file (JSON)"
    )
    parser.add_argument(
        "--tier",
        default="mega",
        help="scaling tier to run (default: mega)",
    )
    parser.add_argument(
        "--names",
        nargs="*",
        help="entry names (default: every entry in --tier)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=None,
        help=(
            "exit 1 when the aggregate warm numpy speedup over "
            "kernel-engaged entries falls below this"
        ),
    )
    args = parser.parse_args(argv)
    if not numpy_available():
        print("numpy is required for the kernel bench", file=sys.stderr)
        return 2
    suite = scaling_suite()
    if args.names:
        unknown = [n for n in args.names if n not in suite]
        if unknown:
            print(
                f"unknown entry name(s): {', '.join(unknown)}; "
                f"choose from {sorted(suite)}",
                file=sys.stderr,
            )
            return 2
        entries = [suite[n] for n in args.names]
    else:
        entries = [e for e in suite.values() if e.tier == args.tier]
        if not entries:
            tiers = sorted({e.tier for e in suite.values()})
            print(
                f"no entries in tier {args.tier!r}; choose from {tiers}",
                file=sys.stderr,
            )
            return 2
    report = run_scaling_comparison(entries, repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    total = report["total"]
    failures = []
    if args.min_kernel_speedup is not None:
        speedup = total.get("kernel_speedup")
        if speedup is None:
            failures.append(
                "no kernel-engaged entries were measured, so the "
                "--min-kernel-speedup gate cannot pass"
            )
        else:
            print(
                f"aggregate kernel speedup {speedup}x "
                f"(over {', '.join(total['gated_entries'])})",
                file=sys.stderr,
            )
            if speedup < args.min_kernel_speedup:
                failures.append(
                    f"kernel speedup {speedup}x is below the "
                    f"--min-kernel-speedup gate "
                    f"{args.min_kernel_speedup}x"
                )
    print(f"report -> {args.out}", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
