"""Shared fixtures for the benchmark suite.

Benchmarks default to reduced circuit scales so the whole suite runs in a
few minutes; the full Table-1 reproduction (paper-matched I/O counts) is
``python -m repro.experiments.table1``.
"""

import pytest

from repro.circuits.suite import table1_suite
from repro.graph import IndexedGraph


@pytest.fixture(scope="session")
def suite():
    return table1_suite()


def cones_of(circuit):
    return [IndexedGraph.from_circuit(circuit, out) for out in circuit.outputs]
