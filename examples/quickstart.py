#!/usr/bin/env python3
"""Quickstart: dominator chains on the paper's running example (Figure 2).

Builds the Figure-2 circuit, computes the dominator chain of input ``u``,
prints it in the paper's notation, and replays the constant-time lookup
walkthrough from Section 4 ({d,h} dominates u, {g,a} does not).
"""

from repro import chain_of, IndexedGraph, circuit_dominator_tree
from repro.circuits import figure2_circuit

circuit = figure2_circuit()
print(f"circuit: {circuit.name}  ({circuit.gate_count()} gates)")

chain = chain_of(circuit, "u")
print(f"\ndominator chain D(u) = {chain.format()}")
print(f"immediate double-vertex dominator of u: {chain.immediate()}")

print("\nall double-vertex dominators of u:")
for v, w in chain.pairs():
    print(f"  {{{v}, {w}}}")

print("\nconstant-time lookups (paper Section 4 walkthrough):")
for a, b in (("d", "h"), ("g", "a"), ("k", "n"), ("a", "e")):
    verdict = "dominates" if chain.dominates(a, b) else "does NOT dominate"
    print(f"  {{{a}, {b}}} {verdict} u")

print("\nmatching vectors (all partners of a vertex):")
for v in ("a", "c", "g"):
    print(f"  W({v}) = {chain.matching_vector(v)}")

# The single-vertex dominator tree for comparison (Figure 1(b) style).
graph = IndexedGraph.from_circuit(circuit)
tree = circuit_dominator_tree(graph)
u = graph.index_of("u")
names = [graph.name_of(x) for x in tree.chain(u)[1:]]
print(f"\nsingle-vertex dominators of u (idom chain): {' -> '.join(names)}")
print(
    "note how few single dominators there are versus "
    f"{chain.chain.num_dominators()} double-vertex dominators."
)
