#!/usr/bin/env python3
"""Re-converging path analysis on an array multiplier (C6288's family).

Section 2: every multi-fanout vertex v originates a re-converging path
ending at idom(v).  When the single-vertex convergence point is far away
(or only the circuit output), the immediate double-vertex dominator is the
earliest 2-cut — usually much closer.  This report quantifies that gap,
the paper's core "single-vertex dominators are too rare" motivation.
"""

from repro.analysis import reconvergence_report, reconvergence_summary
from repro.circuits.generators import array_multiplier
from repro.graph import IndexedGraph

circuit = array_multiplier(5)
output = circuit.outputs[-2]  # a high product bit: deep cone
graph = IndexedGraph.from_circuit(circuit, output)
print(
    f"circuit: {circuit.name}, cone of {output!r} "
    f"({graph.n} vertices, {graph.edge_count()} edges)\n"
)

report = reconvergence_report(graph)
print(f"{'origin':>8s} {'1-cut at':>9s} {'span':>5s} {'2-cut at':>16s} {'span':>5s}")
for entry in report[:15]:
    two = "-" if entry.double_cut is None else "{%s,%s}" % entry.double_cut
    two_span = "-" if entry.double_span is None else str(entry.double_span)
    print(
        f"{entry.origin:>8s} {entry.convergence:>9s} {entry.span:>5d} "
        f"{two:>16s} {two_span:>5s}"
    )
if len(report) > 15:
    print(f"  ... and {len(report) - 15} more origins")

summary = reconvergence_summary(graph)
print(f"\nsummary over {summary['origins']} re-converging origins:")
print(f"  origins with a double-vertex cut: {summary['with_double_cut']}")
print(f"  double cut strictly closer than single: {summary['double_cut_closer']}")
print(f"  mean span reduction: {summary['mean_span_reduction']:.1f} levels")
