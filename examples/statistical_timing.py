#!/usr/bin/env python3
"""Statistical timing through double-vertex cut frontiers.

The paper's conclusion names statistical timing analysis as future work.
This example shows the natural construction: the common double-vertex
dominators of a cone's inputs are the frontiers every input-to-output
path must cross, so per-frontier arrival statistics localize where the
statistically critical paths run — at 2-net granularity, without
enumerating paths.
"""

from repro.analysis import (
    DelayModel,
    MonteCarloTiming,
    cut_criticality,
    static_arrival_times,
)
from repro.circuits.generators import cascade

# A deep chain of reconvergent blocks (the 'too_large'/'cordic' family):
# every block boundary contributes a 2-wide frontier.
circuit = cascade(depth=24, num_inputs=8, num_outputs=1, seed=5)
output = circuit.outputs[0]
print(f"circuit: {circuit.name} ({circuit.gate_count()} gates)")
print(f"analyzing cone of {output!r}\n")

# Deterministic STA vs Monte-Carlo SSTA at the output.
static = static_arrival_times(circuit)
timing = MonteCarloTiming(
    circuit, output, num_samples=4096, model=DelayModel(sigma=0.15), seed=1
)
stats = timing.arrival_statistics()[output]
print(f"static (nominal) arrival at {output}: {static[output]:.1f}")
print(
    f"statistical arrival: mean={stats.mean:.2f}  std={stats.std:.2f}  "
    f"q95={stats.q95:.2f}"
)

# Criticality across every common double-vertex frontier.
report = cut_criticality(
    circuit, output, num_samples=4096, model=DelayModel(sigma=0.15), seed=1
)
print(f"\n{len(report)} double-vertex frontiers between the PIs and {output}:")
print(f"{'frontier':>24s} {'P(first crit)':>14s} {'P(second crit)':>15s} {'balance':>8s}")
for entry in report:
    label = "{%s, %s}" % entry.nets
    print(
        f"{label:>24s} {entry.p_first:14.3f} {entry.p_second:15.3f} "
        f"{entry.balance:8.3f}"
    )

# Finer granularity: the dominator chain of a single launch point gives a
# frontier per chain pair — criticality of the paths launched at that input.
from repro import dominator_chain

graph = timing.graph
launch = graph.index_of("x0")
chain = dominator_chain(graph, launch)
print(f"\nchain of input 'x0': {chain.num_dominators()} pairs, "
      f"{len(chain)} chain pairs; per-pair criticality:")
print(f"{'pair':>24s} {'P(first)':>9s} {'P(second)':>10s}")
import numpy as np
for v, w in list(chain.iter_dominator_pairs())[:10]:
    a, b = timing.samples(graph.name_of(v)), timing.samples(graph.name_of(w))
    label = "{%s, %s}" % (graph.name_of(v), graph.name_of(w))
    print(f"{label:>24s} {float(np.mean(a > b)):9.3f} {float(np.mean(b > a)):10.3f}")

if report:
    skewed = min(report, key=lambda e: e.balance)
    side = skewed.nets[0] if skewed.p_first > skewed.p_second else skewed.nets[1]
    print(
        f"\nleast balanced common frontier: {skewed.nets} "
        f"(balance {skewed.balance:.3f}; heavier side {side!r})."
    )
