#!/usr/bin/env python3
"""Incremental chain computation and common dominators of vertex sets.

The paper's conclusion: "the speed of the presented algorithm makes it
suitable for running in an incremental manner during logic synthesis."
Two ingredients make that true and are demonstrated here:

1. Region sharing: a search region depends only on its entry vertex, so
   when chains are computed for every primary input of a cone, each
   region is expanded exactly once (:class:`ChainComputer`).
2. Common dominators of a *set* of vertices — both by the fake-vertex
   technique and by intersecting individual chains with the O(1) lookup
   (Section 4's O(k·min|D|) bound).
"""

import time

from repro.circuits.generators import cascade
from repro.core import ChainComputer
from repro.core.common import common_chain, common_pairs_from_chains
from repro.graph import IndexedGraph

circuit = cascade(depth=60, num_inputs=8, num_outputs=1)
graph = IndexedGraph.from_circuit(circuit)
print(f"circuit: {circuit.name} ({graph.n} vertices)\n")

# 1. All-PI chains, shared regions vs recomputed regions.
for cached, label in ((True, "shared regions"), (False, "regions per target")):
    start = time.perf_counter()
    computer = ChainComputer(graph, cache_regions=cached)
    chains = {u: computer.chain(u) for u in graph.sources()}
    elapsed = time.perf_counter() - start
    total = sum(c.num_dominators() for c in chains.values())
    print(
        f"{label:20s}: {len(chains)} chains, {total} pairs total, "
        f"{elapsed * 1e3:7.1f} ms"
    )

# 2. Common double-vertex dominators of the whole PI set.
sources = graph.sources()
fake = common_chain(graph, sources)
print(
    f"\ncommon chain of all {len(sources)} primary inputs: "
    f"{fake.num_dominators()} common pairs, {len(fake)} chain pairs"
)

computer = ChainComputer(graph)
individual = [computer.chain(u) for u in sources]
intersected = common_pairs_from_chains(individual)
print(
    f"chain-intersection route (O(k*min|D|) lookups): "
    f"{len(intersected)} pairs"
)
missing = fake.pair_set() - intersected
print(
    "pairs common to the set but redundant for some single input: "
    f"{len(missing)}"
)
first = sorted(
    (tuple(sorted(graph.name_of(v) for v in p)) for p in intersected)
)[:5]
print(f"first common frontiers: {first}")
