#!/usr/bin/env python3
"""Incremental dominator sessions: edit, re-query, reuse.

The paper's conclusion: "the speed of the presented algorithm makes it
suitable for running in an incremental manner during logic synthesis."
This example drives the machinery that makes that literal:

1. Region sharing inside one computation — a search region depends only
   on its entry vertex, so the all-PI workload expands each region once
   (:class:`ChainComputer`), now with observable cache statistics.
2. A stateful session across circuit edits —
   :class:`~repro.incremental.IncrementalEngine` applies single-gate
   edits in place, invalidates only the region-cache entries inside the
   edit's dirty cone, and re-queries orders of magnitude faster than
   recomputing every chain from scratch.
"""

import time

from repro.circuits.generators import cascade
from repro.core import ChainComputer
from repro.graph import IndexedGraph
from repro.incremental import AddGate, IncrementalEngine, ReplaceSubgraph, Rewire

circuit = cascade(depth=60, num_inputs=8, num_outputs=1)
graph = IndexedGraph.from_circuit(circuit)
print(f"circuit: {circuit.name} ({graph.n} vertices)\n")

# ----------------------------------------------------------------------
# 1. All-PI chains: shared regions vs recomputed regions, with stats.
# ----------------------------------------------------------------------
for cached, label in ((True, "shared regions"), (False, "regions per target")):
    start = time.perf_counter()
    computer = ChainComputer(graph, cache_regions=cached)
    chains = {u: computer.chain(u) for u in graph.sources()}
    elapsed = time.perf_counter() - start
    total = sum(c.num_dominators() for c in chains.values())
    print(
        f"{label:20s}: {len(chains)} chains, {total} pairs total, "
        f"{elapsed * 1e3:7.1f} ms   [{computer.cache_stats}]"
    )

# ----------------------------------------------------------------------
# 2. An edit → re-query loop over a stateful session.
# ----------------------------------------------------------------------
# A wide cascade where each primary input taps a single block: regions
# stay small and local, so a single-gate edit dirties only a sliver of
# the cache — the shape where the incremental engine shines.
session_circuit = cascade(depth=48, num_inputs=48, num_outputs=1)

# The edit stream inserts a buffer into one mid-cascade gate's fanin
# list per step — the single-gate rewrites logic synthesis performs.
def edit_stream(engine, steps):
    g = engine.graph
    gates = [
        v
        for v in range(g.n)
        if g.is_alive(v) and g.pred[v] and v != g.root
    ]
    for step in range(steps):
        gate = gates[(step * 7919) % len(gates)]  # deterministic spread
        driver = g.pred[gate][0]
        name = f"ex_buf{step}"
        spliced = tuple(
            name if p == driver else g.name_of(p) for p in g.pred[gate]
        )
        yield ReplaceSubgraph(
            add=(AddGate(name, (g.name_of(driver),), "buf"),),
            rewire=(Rewire(g.name_of(gate), spliced),),
        )


EDITS = 20

engine = IncrementalEngine.from_circuit(session_circuit)
print(
    f"\nsession circuit     : {session_circuit.name} "
    f"({engine.graph.n} vertices)"
)
engine.chains_for_sources()  # cold query fills the cache

start = time.perf_counter()
for edit in edit_stream(engine, EDITS):
    engine.apply(edit)
    chains = engine.chains_for_sources()
incremental = time.perf_counter() - start
pairs = sum(c.num_dominators() for c in chains.values())
print(
    f"incremental session : {EDITS} edits, re-querying "
    f"{len(chains)} chains each time, {incremental * 1e3:7.1f} ms "
    f"({pairs} pairs at the end)"
)
print(f"engine statistics   : {engine.stats.as_dict()}")

# The from-scratch strawman: rebuild tree + every region per edit.
scratch_engine = IncrementalEngine.from_circuit(session_circuit)
start = time.perf_counter()
for edit in edit_stream(scratch_engine, EDITS):
    scratch_engine.apply(edit)
    fresh = ChainComputer(scratch_engine.graph)  # no cross-edit cache
    tree = fresh.tree
    for u in scratch_engine.graph.sources():
        if tree.is_reachable(u):
            fresh.chain(u)
recompute = time.perf_counter() - start
print(
    f"full recompute      : {EDITS} edits, {recompute * 1e3:7.1f} ms  "
    f"-> incremental speedup {recompute / incremental:.1f}x"
)
