#!/usr/bin/env python3
"""Cut-point selection for equivalence checking.

Section 1 lists "cut point selection in equivalence checking" among the
applications of dominators.  A usable cut frontier must separate the
primary inputs from the output — i.e. be a common dominator of the PI set.
Single-vertex frontiers are rare; the dominator chain of the fake
super-source enumerates *all* 2-wide frontiers at once.

The example checks two structurally different adders (ripple-carry vs
carry-lookahead) for equivalence output by output, using the frontiers to
partition the proof obligation, with exhaustive simulation as the prover.
"""

import itertools

from repro.analysis import evaluate, select_cut_frontiers, verify_frontier
from repro.circuits.generators import carry_lookahead_adder, ripple_carry_adder
from repro.graph import IndexedGraph

WIDTH = 5
rca = ripple_carry_adder(WIDTH, with_cin=True)
cla = carry_lookahead_adder(WIDTH)
print(f"implementation A: {rca.name} ({rca.gate_count()} gates)")
print(f"implementation B: {cla.name} ({cla.gate_count()} gates)\n")

# 1. Frontier discovery on each implementation's carry-out cone.
for circuit in (rca, cla):
    out = circuit.outputs[-1]
    frontiers = select_cut_frontiers(circuit, out)
    graph = IndexedGraph.from_circuit(circuit, out)
    assert all(verify_frontier(graph, f.nets) for f in frontiers)
    singles = [f for f in frontiers if f.width == 1]
    doubles = [f for f in frontiers if f.width == 2]
    print(
        f"{circuit.name}: cone of {out!r} has {len(singles)} single-vertex "
        f"and {len(doubles)} double-vertex cut frontiers"
    )
    shown = [f.nets for f in doubles[:4]]
    print(f"  first double frontiers toward the output: {shown}")

# 2. Formal equivalence with the BDD engine.
from repro.bdd import check_equivalence, partitioned_output_bdd

equal = check_equivalence(
    rca, cla, outputs=list(zip(rca.outputs, cla.outputs))
)
print(f"\nBDD equivalence proof: {'EQUIVALENT' if equal else 'DIFFERENT'}")

# 3. The cut-point trick: build one output's BDD *through* a frontier —
#    fresh variables at the cut, then compose.  Lossless by construction
#    because a dominator frontier leaves no escaping path.
proof = partitioned_output_bdd(rca, rca.outputs[-1])
print(
    f"partitioned proof through frontier {proof.frontier}: "
    f"peak half-BDD {proof.peak_partitioned} nodes vs monolithic "
    f"{proof.monolithic_size}; composition matches: "
    f"{proof.composed_matches}"
)

# 4. Cross-check the prover with exhaustive simulation.
inputs = rca.inputs
assert set(inputs) == set(cla.inputs)
mismatches = 0
for bits in itertools.product((0, 1), repeat=len(inputs)):
    assignment = dict(zip(inputs, bits))
    va = evaluate(rca, assignment)
    vb = evaluate(cla, assignment)
    for out_a, out_b in zip(rca.outputs, cla.outputs):
        if va[out_a] != vb[out_b]:
            mismatches += 1
print(
    f"exhaustive cross-check over {2 ** len(inputs)} vectors: "
    f"{'EQUIVALENT' if mismatches == 0 else f'{mismatches} mismatches'}"
)
