#!/usr/bin/env python3
"""Random-pattern testability with dominator-tightened observability.

Section 1's first application is "computation of signal probabilities for
test generation".  COP-style testability measures are cheap but
correlation-blind; dominators tighten them for free: a fault effect must
traverse every dominator of the faulty net, so exact dominator-point
probabilities bound how observable the net can possibly be.
"""

from repro.analysis import (
    cop_controllability,
    cop_observability,
    detectability,
    dominator_detectability_profile,
    fault_detectability_exact,
)
from repro.graph import CircuitBuilder

# A gated datapath: a parity network whose result only reaches the output
# through a rarely-active enable (wide AND) — the classic random-pattern
# nightmare, and a case where dominator analysis *proves* it.
b = CircuitBuilder("gated_datapath")
data = b.input_bus("d", 6)
enables = b.input_bus("en", 6)
parity = b.xor_tree([b.buf(x) for x in data])
armed = b.and_tree(enables)                 # P[armed=1] = 1/64
gated = b.and_(parity, armed, name="gated")  # dominates the data cone
alarm = b.or_(gated, b.and_(armed, data[0]), name="alarm")
circuit = b.finish([alarm])
output = "alarm"
print(f"circuit: {circuit.name} ({circuit.gate_count()} gates)")
print(f"analyzing cone of {output!r}\n")

c1 = cop_controllability(circuit)
obs = cop_observability(circuit, output)
table, resistant = detectability(
    circuit, output, resistant_threshold=0.02
)

print("hardest-to-detect faults (COP estimate):")
worst = sorted(table.values(), key=lambda e: e.hardest)[:8]
print(f"{'net':>10s} {'C1':>7s} {'obs':>7s} {'det sa0':>9s} {'det sa1':>9s}")
for entry in worst:
    print(
        f"{entry.net:>10s} {c1[entry.net]:7.3f} {obs[entry.net]:7.3f} "
        f"{entry.stuck_at_0:9.4f} {entry.stuck_at_1:9.4f}"
    )
print(f"\nrandom-pattern-resistant nets (threshold 2%): {len(resistant)}")

# Exact (BDD-based) detectability along the dominator chain: each entry
# is the probability the fault effect survives up to that dominator —
# monotone toward the output, and the last entry is the true answer.
print("\nexact detectability profile of 'gated' stuck-at-0:")
for dominator, p in dominator_detectability_profile(circuit, "gated", 0):
    print(f"  survives to {dominator:>8s}: {p:.4f}")

print("\nCOP estimate vs exact detectability (stuck-at-0):")
print(f"{'net':>10s} {'COP':>9s} {'exact':>9s}")
for net in ("gated", "d0", "en0", "alarm"):
    if net == output:
        continue
    exact_p = fault_detectability_exact(circuit, net, 0)
    print(f"{net:>10s} {table[net].stuck_at_0:9.4f} {exact_p:9.4f}")
