#!/usr/bin/env python3
"""Signal probability: dominator-partitioned exact analysis vs naive.

The paper's Section 1 motivates dominators through signal-probability
computation: topological propagation that multiplies fanin probabilities is
wrong on re-converging paths, and dominators are the earliest points where
correlation dies out, letting auxiliary variables be eliminated.

This example runs on a carry-select adder (dense reconvergence through the
speculative carry rails), comparing:

* the naive correlation-blind propagation,
* the exact dominator-partitioned computation,
* a Monte-Carlo simulation as referee.
"""

from repro.analysis import (
    DominatorPartitionedProbability,
    VectorSimulator,
    naive_signal_probabilities,
)
from repro.circuits.generators import carry_select_adder

circuit = carry_select_adder(width=8, block=4)
output = circuit.outputs[-1]  # carry-out: sees the most reconvergence
print(f"circuit: {circuit.name} ({circuit.gate_count()} gates)")
print(f"analyzing cone of output {output!r}\n")

analysis = DominatorPartitionedProbability(circuit, output)
exact = analysis.probabilities()
naive = naive_signal_probabilities(circuit)
mc = VectorSimulator(circuit).monte_carlo_probabilities(
    num_vectors=200_000, seed=7, nets=list(exact)
)

print(f"{'net':12s} {'naive':>8s} {'exact':>8s} {'monte-carlo':>12s}")
rows = sorted(
    exact, key=lambda n: abs(naive[n] - exact[n]), reverse=True
)[:12]
for net in rows:
    print(
        f"{net:12s} {naive[net]:8.4f} {exact[net]:8.4f} {mc[net]:12.4f}"
    )

worst = max(exact, key=lambda n: abs(naive[n] - exact[n]))
print(
    f"\nworst naive error: net {worst!r} off by "
    f"{abs(naive[worst] - exact[worst]):.4f}"
)
print(
    f"max |exact - monte-carlo| = "
    f"{max(abs(exact[n] - mc[n]) for n in exact):.4f} (sampling noise)"
)
print(
    f"peak active auxiliary variables: {analysis.peak_support} "
    "(the 2^k table width dominators keep small)"
)
