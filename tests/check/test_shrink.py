"""Tests for the failing-case minimizer (repro.check.shrink)."""

import pytest

from repro.check.shrink import dump_repro, shrink_circuit
from repro.circuits.generators import random_circuit
from repro.errors import ReproError
from repro.graph import NodeType
from repro.graph.circuit import Circuit
from repro.parsers import bench


def _has_xor(circuit: Circuit) -> bool:
    return any(
        node.type in (NodeType.XOR, NodeType.XNOR) for node in circuit.nodes()
    )


def _seeded(seed: int) -> Circuit:
    return random_circuit(
        num_inputs=4, num_gates=18, num_outputs=2, seed=seed, name="shrinkme"
    )


class TestShrink:
    def test_shrinks_to_single_xor(self):
        circuit = _seeded(11)
        assert _has_xor(circuit)  # seed chosen to contain one
        shrunk = shrink_circuit(circuit, _has_xor)
        assert _has_xor(shrunk)
        assert shrunk.gate_count() <= 2
        assert len(shrunk.outputs) == 1

    def test_deterministic(self):
        a = shrink_circuit(_seeded(11), _has_xor)
        b = shrink_circuit(_seeded(11), _has_xor)
        assert bench.dumps(a) == bench.dumps(b)

    def test_result_still_fails_and_is_valid(self):
        shrunk = shrink_circuit(_seeded(11), _has_xor)
        shrunk.validate()
        assert _has_xor(shrunk)

    def test_trivially_true_predicate_reaches_minimum(self):
        shrunk = shrink_circuit(_seeded(3), lambda c: True)
        # Nothing blocks reduction: a cone of at most one gate remains.
        assert shrunk.gate_count() <= 1

    def test_raising_predicate_treated_as_passing(self):
        original = _seeded(11)
        baseline_size = len(shrink_circuit(original, _has_xor))

        def fragile(candidate: Circuit) -> bool:
            if len(candidate) < len(original):
                raise ReproError("cannot evaluate reduced circuit")
            return _has_xor(candidate)

        shrunk = shrink_circuit(original, fragile)
        # No reduction could be confirmed, so nothing was taken.
        assert len(shrunk) >= baseline_size

    def test_gate_count_never_grows(self):
        original = _seeded(7)
        shrunk = shrink_circuit(original, _has_xor)
        assert shrunk.gate_count() <= original.gate_count()


class TestDumpRepro:
    def test_round_trips(self, tmp_path):
        shrunk = shrink_circuit(_seeded(11), _has_xor)
        path = dump_repro(shrunk, tmp_path, "case0", "seed=11 kind=xor")
        assert path.exists()
        text = path.read_text()
        assert text.startswith("# seed=11 kind=xor")
        reparsed = bench.load(path)
        assert sorted(reparsed) == sorted(shrunk)
        assert _has_xor(reparsed)

    def test_multiline_comment_all_escaped(self, tmp_path):
        shrunk = shrink_circuit(_seeded(11), _has_xor)
        path = dump_repro(shrunk, tmp_path, "case1", "line one\nline two")
        lines = path.read_text().splitlines()
        assert lines[0] == "# line one"
        assert lines[1] == "# line two"
        bench.load(path)  # still parseable

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "er"
        shrunk = shrink_circuit(_seeded(11), _has_xor)
        path = dump_repro(shrunk, target, "case2")
        assert path.parent == target
        assert path.exists()


class TestMutatingPredicate:
    """Regression: the shrinker used to hand its *live* candidate to the
    predicate.  A predicate that mutates its argument (the oracle replays
    edit scripts in place) corrupted the shrink state, and ``dump_repro``
    wrote the broken ``.bench`` file to disk before the round-trip check
    could reject it — emitting repros whose OUTPUT line referenced a
    removed gate."""

    def test_predicate_mutation_cannot_corrupt_result(self):
        circuit = _seeded(11)

        def nasty(c: Circuit) -> bool:
            ok = _has_xor(c)
            # Simulate an edit-replaying oracle: rip a gate out of the
            # candidate we were handed.
            for name in list(c._nodes):
                if c.node(name).type.is_gate:
                    del c._nodes[name]
                    break
            return ok

        shrunk = shrink_circuit(circuit, nasty)
        shrunk.validate()  # must still be structurally sound
        assert _has_xor(shrunk)
        for out in shrunk.outputs:
            assert out in shrunk

    def test_predicate_dropping_output_gate_cannot_poison_repro(self, tmp_path):
        circuit = _seeded(11)

        def nasty(c: Circuit) -> bool:
            ok = _has_xor(c)
            for out in c.outputs:
                if out in c._nodes and c.node(out).type.is_gate:
                    del c._nodes[out]
                    break
            return ok

        shrunk = shrink_circuit(circuit, nasty)
        path = dump_repro(shrunk, tmp_path, "mutated")
        reparsed = bench.loads(path.read_text(), name=shrunk.name)
        reparsed.validate()
        assert sorted(reparsed.outputs) == sorted(shrunk.outputs)


class TestDumpReproValidation:
    def test_no_file_written_for_broken_circuit(self, tmp_path):
        """A circuit whose output references a removed gate must raise
        without leaving a partial .bench file on disk."""
        circuit = _seeded(11)
        broken = circuit.copy()
        victim = next(
            name for name in broken.outputs if broken.node(name).type.is_gate
        )
        del broken._nodes[victim]
        with pytest.raises(ReproError):
            dump_repro(broken, tmp_path / "repros", "broken")
        assert not (tmp_path / "repros").exists() or not list(
            (tmp_path / "repros").glob("*.bench")
        )

    def test_valid_circuit_round_trips_outputs(self, tmp_path):
        circuit = _seeded(5)
        path = dump_repro(circuit, tmp_path, "ok", comment="regression")
        reparsed = bench.loads(path.read_text(), name=circuit.name)
        assert sorted(reparsed.outputs) == sorted(circuit.outputs)
        assert sorted(reparsed) == sorted(circuit)
