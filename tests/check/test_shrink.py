"""Tests for the failing-case minimizer (repro.check.shrink)."""

import pytest

from repro.check.shrink import dump_repro, shrink_circuit
from repro.circuits.generators import random_circuit
from repro.errors import ReproError
from repro.graph import NodeType
from repro.graph.circuit import Circuit
from repro.parsers import bench


def _has_xor(circuit: Circuit) -> bool:
    return any(
        node.type in (NodeType.XOR, NodeType.XNOR) for node in circuit.nodes()
    )


def _seeded(seed: int) -> Circuit:
    return random_circuit(
        num_inputs=4, num_gates=18, num_outputs=2, seed=seed, name="shrinkme"
    )


class TestShrink:
    def test_shrinks_to_single_xor(self):
        circuit = _seeded(11)
        assert _has_xor(circuit)  # seed chosen to contain one
        shrunk = shrink_circuit(circuit, _has_xor)
        assert _has_xor(shrunk)
        assert shrunk.gate_count() <= 2
        assert len(shrunk.outputs) == 1

    def test_deterministic(self):
        a = shrink_circuit(_seeded(11), _has_xor)
        b = shrink_circuit(_seeded(11), _has_xor)
        assert bench.dumps(a) == bench.dumps(b)

    def test_result_still_fails_and_is_valid(self):
        shrunk = shrink_circuit(_seeded(11), _has_xor)
        shrunk.validate()
        assert _has_xor(shrunk)

    def test_trivially_true_predicate_reaches_minimum(self):
        shrunk = shrink_circuit(_seeded(3), lambda c: True)
        # Nothing blocks reduction: a cone of at most one gate remains.
        assert shrunk.gate_count() <= 1

    def test_raising_predicate_treated_as_passing(self):
        original = _seeded(11)
        baseline_size = len(shrink_circuit(original, _has_xor))

        def fragile(candidate: Circuit) -> bool:
            if len(candidate) < len(original):
                raise ReproError("cannot evaluate reduced circuit")
            return _has_xor(candidate)

        shrunk = shrink_circuit(original, fragile)
        # No reduction could be confirmed, so nothing was taken.
        assert len(shrunk) >= baseline_size

    def test_gate_count_never_grows(self):
        original = _seeded(7)
        shrunk = shrink_circuit(original, _has_xor)
        assert shrunk.gate_count() <= original.gate_count()


class TestDumpRepro:
    def test_round_trips(self, tmp_path):
        shrunk = shrink_circuit(_seeded(11), _has_xor)
        path = dump_repro(shrunk, tmp_path, "case0", "seed=11 kind=xor")
        assert path.exists()
        text = path.read_text()
        assert text.startswith("# seed=11 kind=xor")
        reparsed = bench.load(path)
        assert sorted(reparsed) == sorted(shrunk)
        assert _has_xor(reparsed)

    def test_multiline_comment_all_escaped(self, tmp_path):
        shrunk = shrink_circuit(_seeded(11), _has_xor)
        path = dump_repro(shrunk, tmp_path, "case1", "line one\nline two")
        lines = path.read_text().splitlines()
        assert lines[0] == "# line one"
        assert lines[1] == "# line two"
        bench.load(path)  # still parseable

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "er"
        shrunk = shrink_circuit(_seeded(11), _has_xor)
        path = dump_repro(shrunk, target, "case2")
        assert path.parent == target
        assert path.exists()
