"""Tests for the seeded differential fuzzer (repro.check.fuzzer)."""

from repro.check.fuzzer import (
    _applicable_edits,
    generate_case,
    run_fuzz,
)
from repro.graph import NodeType
from repro.incremental.edits import AddGate, RemoveGate, Rewire
from repro.parsers import bench
from repro.service.metrics import MetricsRegistry


def _has_xor(circuit) -> bool:
    return any(
        node.type in (NodeType.XOR, NodeType.XNOR) for node in circuit.nodes()
    )


class TestGenerateCase:
    def test_deterministic_across_calls(self):
        for index in range(12):
            a = generate_case(42, index)
            b = generate_case(42, index)
            assert a.kind == b.kind
            assert bench.dumps(a.circuit) == bench.dumps(b.circuit)
            assert a.edits == b.edits

    def test_streams_differ_by_seed(self):
        dumps_a = [bench.dumps(generate_case(0, i).circuit) for i in range(8)]
        dumps_b = [bench.dumps(generate_case(1, i).circuit) for i in range(8)]
        assert dumps_a != dumps_b

    def test_kind_coverage(self):
        kinds = {generate_case(0, i).kind.split("+")[0] for i in range(120)}
        assert "random" in kinds
        assert "single_output" in kinds
        assert any(k.startswith("incremental[") for k in kinds)
        # At least one degenerate shape and one structured family.
        assert kinds & {
            "single_gate", "pi_only", "buffer_chain", "multi_fanout_root",
        }
        assert kinds & {
            "ripple_carry", "parity_tree", "mux_tree", "prefix_or",
            "series_parallel",
        }

    def test_circuits_are_valid(self):
        for index in range(30):
            case = generate_case(3, index)
            case.circuit.validate()
            assert case.circuit.outputs

    def test_incremental_cases_carry_edits(self):
        cases = [generate_case(0, i) for i in range(120)]
        incremental = [
            c for c in cases if c.kind.startswith("incremental[")
        ]
        assert incremental
        assert all(c.edits for c in incremental)
        assert all(
            not c.edits
            for c in cases
            if not c.kind.startswith("incremental[")
        )
        # Streams alternate engines and draw every edit schedule.
        assert {c.engine for c in incremental} == {"patch", "dynamic"}
        schedules = {c.kind.split("[")[1].split(",")[0] for c in incremental}
        assert schedules == {"mixed", "deletion_heavy", "interleaved"}


class TestRunFuzz:
    def test_clean_run(self):
        result = run_fuzz(seed=0, cases=30)
        assert result.ok
        assert result.cases == 30
        assert result.targets > 0
        assert result.comparisons > 0
        assert "OK" in result.summary()

    def test_metrics_threaded(self):
        metrics = MetricsRegistry()
        run_fuzz(seed=0, cases=10, metrics=metrics)
        assert metrics.snapshot()["counters"]["fuzz.cases"] == 10

    def test_injected_fault_shrinks_and_dumps(self, tmp_path):
        result = run_fuzz(
            seed=7, cases=25, out_dir=str(tmp_path), inject_fault=_has_xor
        )
        assert not result.ok
        for failure in result.failures:
            assert any(m.kind == "injected" for m in failure.mismatches)
            # The acceptance bar: a small, replayable .bench repro.
            assert failure.shrunk_gates <= 15
            assert _has_xor(failure.shrunk)
            assert failure.repro_path is not None
            reloaded = bench.load(failure.repro_path)
            assert _has_xor(reloaded)

    def test_progress_callback_sees_every_case(self):
        seen = []
        run_fuzz(seed=0, cases=5, progress=lambda i, case: seen.append(i))
        assert seen == [0, 1, 2, 3, 4]


class TestApplicableEdits:
    def test_full_script_applies(self):
        case = next(
            generate_case(0, i)
            for i in range(200)
            if generate_case(0, i).kind.startswith("incremental[")
        )
        assert _applicable_edits(case.circuit, case.edits) == list(case.edits)

    def test_prefix_stops_at_dead_reference(self):
        from repro.circuits.figures import figure2_circuit

        circuit = figure2_circuit()
        edits = (
            AddGate("x1", ("m",), "buf"),
            Rewire("x1", ("ghost",)),  # unknown fanin — stop here
            RemoveGate("x1"),
        )
        assert _applicable_edits(circuit, edits) == [edits[0]]

    def test_remove_then_reference_stops(self):
        from repro.circuits.figures import figure2_circuit

        circuit = figure2_circuit()
        edits = (
            RemoveGate("n"),
            Rewire("f", ("m", "n")),  # n is gone
        )
        assert _applicable_edits(circuit, edits) == [edits[0]]
