"""Tests for the differential oracle (repro.check.oracle)."""

import pytest

from repro.check import check_circuit, check_cone, check_incremental
from repro.check.oracle import Mismatch, check_chain_lookup
from repro.circuits.figures import FIGURE2_PAIRS, figure1_circuit, figure2_circuit
from repro.core.algorithm import ChainComputer, dominator_chain
from repro.core.chain import ChainPair, DominatorChain
from repro.errors import ChainConstructionError
from repro.graph import IndexedGraph
from repro.incremental.edits import AddGate, Rewire
from repro.service.metrics import MetricsRegistry


class TestCheckCircuit:
    def test_figure2_agrees(self):
        report = check_circuit(figure2_circuit())
        assert report.ok
        assert report.cones == 1
        assert report.targets >= 1
        assert report.comparisons > 0
        assert report.brute_confirmed >= 1
        assert "OK" in report.summary()

    def test_figure1_agrees(self):
        assert check_circuit(figure1_circuit()).ok

    def test_brute_limit_skips_confirmation(self):
        report = check_circuit(figure2_circuit(), brute_limit=1)
        assert report.ok  # chain-vs-baseline still cross-checks
        assert report.brute_confirmed == 0

    def test_metrics_threaded(self):
        metrics = MetricsRegistry()
        check_circuit(figure2_circuit(), metrics=metrics)
        snap = metrics.snapshot()
        assert snap["counters"]["check.cones"] == 1
        assert snap["counters"]["check.targets"] >= 1
        assert "check.cone_seconds" in snap["histograms"]


class TestFaultDetection:
    """An intentionally wrong chain producer must be caught."""

    def test_empty_chain_fault(self):
        graph = IndexedGraph.from_circuit(figure2_circuit())

        def empty_chain(g, u):
            return DominatorChain(u, [], {})

        mismatches = check_cone(graph, chain_fn=empty_chain)
        assert mismatches
        assert any(m.kind == "chain-vs-brute" for m in mismatches)

    def test_wrong_target_chain_fault(self):
        graph = IndexedGraph.from_circuit(figure2_circuit())
        computer = ChainComputer(graph)
        u = graph.index_of("u")

        def shifted(g, target):
            # Return u's chain truncated to its first pair only.
            real = computer.chain(target)
            if target != u or not real.pairs:
                return real
            pair = real.pairs[0]
            intervals = {v: real.interval(v) for v in pair.vertices()}
            return DominatorChain(target, [pair], intervals)

        mismatches = check_cone(graph, targets=[u], chain_fn=shifted)
        assert any(m.kind == "chain-vs-brute" for m in mismatches)
        assert any("misses" in m.detail for m in mismatches)

    def test_crash_reported_not_raised(self):
        graph = IndexedGraph.from_circuit(figure2_circuit())

        def boom(g, u):
            raise ChainConstructionError("synthetic crash")

        mismatches = check_cone(graph, chain_fn=boom)
        assert mismatches
        assert all(m.kind == "crash" for m in mismatches)
        assert "synthetic crash" in mismatches[0].detail

    def test_mismatch_str_mentions_location(self):
        m = Mismatch("lookup", "c17", "out", "n3", "boom")
        assert "c17/out" in str(m)
        assert "n3" in str(m)


class TestChainLookup:
    def test_figure2_lookup_clean(self):
        graph = IndexedGraph.from_circuit(figure2_circuit())
        chain = dominator_chain(graph, graph.index_of("u"))
        assert check_chain_lookup(graph, chain) == []
        # And the chain's pair set is exactly the paper's list.
        want = {
            frozenset((graph.index_of(a), graph.index_of(b)))
            for a, b in FIGURE2_PAIRS
        }
        assert chain.pair_set() == want

    def test_lookup_catches_count_inconsistency(self):
        graph = IndexedGraph.from_circuit(figure2_circuit())
        chain = dominator_chain(graph, graph.index_of("u"))

        class Broken:
            """Proxy reporting one dominator too many."""

            def __getattr__(self, name):
                return getattr(chain, name)

            def num_dominators(self):
                return chain.num_dominators() + 1

        mismatches = check_chain_lookup(graph, Broken())
        assert any("num_dominators" in m.detail for m in mismatches)

    def test_lookup_catches_interval_off_by_one(self):
        graph = IndexedGraph.from_circuit(figure2_circuit())
        chain = dominator_chain(graph, graph.index_of("u"))

        class Widened:
            """Proxy stretching every max(v) one position too far."""

            def __getattr__(self, name):
                return getattr(chain, name)

            def dominates(self, v1, v2):
                if chain.dominates(v1, v2):
                    return True
                # Accept one extra position past max(v1).
                lo, hi = chain.interval(v1)
                return (
                    v2 in chain
                    and chain.flag(v1) != chain.flag(v2)
                    and chain.index(v2) == hi + 1
                )

        mismatches = check_chain_lookup(graph, Widened())
        assert any("accepted one position after" in m.detail for m in mismatches)


class TestCheckIncremental:
    def test_valid_edits_agree(self):
        circuit = figure2_circuit()
        edits = [
            AddGate("x1", ("m", "n"), "and"),
            Rewire("f", ("m", "n", "x1")),
        ]
        assert check_incremental(circuit, edits) == []

    def test_metrics_counted(self):
        metrics = MetricsRegistry()
        check_incremental(
            figure2_circuit(), [AddGate("x1", ("m",), "buf")], metrics=metrics
        )
        snap = metrics.snapshot()
        assert snap["counters"]["check.incremental_sessions"] == 1


class TestBackendCrossCheck:
    """Every oracle pass runs both construction backends per target."""

    def test_other_backend_roundtrip(self):
        from repro.check.oracle import other_backend

        assert other_backend("shared") == "legacy"
        assert other_backend("legacy") == "shared"
        with pytest.raises(ValueError):
            other_backend("turbo")

    def test_both_primary_backends_pass(self):
        for backend in ("shared", "legacy"):
            report = check_circuit(figure2_circuit(), backend=backend)
            assert report.ok, [str(m) for m in report.mismatches]

    def test_diff_chains_reports_divergence(self):
        from repro.check.oracle import diff_chains

        a = DominatorChain(0, [ChainPair((1,), (2,))], {1: (1, 1), 2: (1, 1)})
        b = DominatorChain(0, [ChainPair((1,), (3,))], {1: (1, 1), 3: (1, 1)})
        assert diff_chains(a, a) is None
        assert "pair vectors differ" in diff_chains(a, b)
        wide = {1: (1, 2), 2: (1, 1), 3: (1, 1)}
        narrow = {1: (1, 1), 2: (1, 1), 3: (1, 1)}
        c = DominatorChain(0, [ChainPair((1,), (2, 3))], wide)
        d = DominatorChain(0, [ChainPair((1,), (2, 3))], narrow)
        assert "interval" in diff_chains(c, d)

    def test_injected_backend_divergence_is_caught(self, monkeypatch):
        # Force the comparison to report a divergence: the oracle must
        # surface it as a ``backend`` mismatch tied to the target.
        import repro.check.oracle as oracle_mod

        monkeypatch.setattr(
            oracle_mod, "diff_chains", lambda a, b: "forced divergence"
        )
        report = check_circuit(figure2_circuit())
        assert not report.ok
        assert any(m.kind == "backend" for m in report.mismatches)
        assert any("forced divergence" in m.detail for m in report.mismatches)

    def test_chain_fn_override_disables_cross_check(self):
        graph = IndexedGraph.from_circuit(figure2_circuit())
        computer = ChainComputer(graph)
        mismatches = check_cone(graph, chain_fn=lambda g, u: computer.chain(u))
        assert mismatches == []

    def test_incremental_backend_param(self):
        circuit = figure2_circuit()
        edits = [AddGate("x1", ("m", "n"), "and")]
        for backend in ("shared", "legacy"):
            assert check_incremental(circuit, edits, backend=backend) == []


class TestPrefilterOracle:
    """Kind ``prefilter``: biconn certificates audited by the oracle."""

    def test_certified_cones_confirmed_across_suite(self):
        from repro.analysis.biconnectivity import has_no_double_dominator
        from repro.circuits import get_benchmark, sequential_suite
        from repro.graph.sequential import extract_combinational_core

        circuits = [
            get_benchmark(name, scale=0.25) for name in ("alu2", "comp", "cmb")
        ]
        circuits += [
            extract_combinational_core(entry.sequential(0.25))
            for entry in sequential_suite().values()
        ]
        certified = 0
        for circuit in circuits:
            report = check_circuit(circuit)
            assert report.ok, report.mismatches[:3]
            for out in circuit.outputs:
                graph = IndexedGraph.from_circuit(circuit, out)
                if has_no_double_dominator(graph):
                    certified += 1
        # The sweep saw cones the pre-filter would actually skip, and
        # the oracle confirmed every one of them pair-free.
        assert certified > 0

    def test_bogus_certificate_detected(self, monkeypatch):
        # Force the filter to certify figure 2, which has real pairs:
        # the oracle must flag the unsound certificate.
        import repro.check.oracle as oracle_mod

        monkeypatch.setattr(
            oracle_mod, "has_no_double_dominator", lambda graph: True
        )
        graph = IndexedGraph.from_circuit(figure2_circuit())
        mismatches = check_cone(graph)
        prefilter = [m for m in mismatches if m.kind == "prefilter"]
        assert prefilter
        assert "pair-free" in prefilter[0].detail


class TestSequentialOracle:
    """Kind ``sequential``: core vs. unrolled-frame-0 chain agreement."""

    def test_generators_agree(self):
        from repro.check import check_sequential
        from repro.circuits.generators import (
            lfsr,
            pipelined_alu,
            shift_register,
        )
        from repro.graph.sequential import extract_combinational_core

        for seq in (shift_register(4), lfsr(5), pipelined_alu(3, 2)):
            for frames in (1, 2, 4):
                report = check_sequential(seq, frames=frames)
                assert report.ok, report.mismatches[:3]
                assert report.cones == len(
                    extract_combinational_core(seq).outputs
                )
                assert report.targets > 0

    def test_suite_entries_agree(self):
        from repro.check import check_sequential
        from repro.circuits import sequential_suite

        for entry in sequential_suite().values():
            report = check_sequential(entry.sequential(0.25), frames=2)
            assert report.ok, report.mismatches[:3]

    def test_miswired_unrolling_detected(self, monkeypatch):
        # Simulate a broken unroller by feeding the oracle an unrolling
        # whose frame-0 logic reads the wrong tap (the shape the
        # historical rename bug produced): the primary-output cone's
        # source set diverges from the core.
        import repro.check.oracle as oracle_mod
        from repro.check import check_sequential
        from repro.circuits.generators import shift_register
        from repro.graph.circuit import Circuit
        from repro.graph.node import NodeType
        from repro.graph.sequential import SequentialCircuit
        from repro.graph.sequential import unrolled as real_unrolled

        def skewed(seq, frames):
            comb = Circuit(seq.combinational.name)
            comb.add_input("d")
            for i in range(4):
                comb.add_input(f"q{i}")
            comb.add_gate("so", NodeType.NOT, ["d"])  # wrong tap
            comb.set_outputs(["so"])
            broken = SequentialCircuit(
                name=seq.name,
                combinational=comb,
                flops=dict(seq.flops),
                primary_inputs=list(seq.primary_inputs),
                primary_outputs=list(seq.primary_outputs),
            )
            return real_unrolled(broken, frames)

        monkeypatch.setattr(oracle_mod, "unrolled", skewed)
        report = check_sequential(shift_register(4), frames=2)
        assert not report.ok
        assert any(m.kind == "sequential" for m in report.mismatches)

    def test_metrics_threaded(self):
        from repro.check import check_sequential
        from repro.circuits.generators import shift_register

        metrics = MetricsRegistry()
        check_sequential(shift_register(3), frames=2, metrics=metrics)
        snap = metrics.snapshot()
        assert snap["counters"]["check.sequential_circuits"] == 1
        assert "check.sequential_seconds" in snap["histograms"]
