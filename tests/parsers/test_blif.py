"""Tests for the BLIF parser/writer."""

import itertools

import pytest

from repro.analysis import evaluate
from repro.circuits.generators import random_circuit
from repro.errors import ParseError
from repro.graph import NodeType
from repro.parsers import blif

SAMPLE = """
.model sample
.inputs a b c
.outputs f
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.end
"""


class TestLoads:
    def test_basic_parse(self):
        c = blif.loads(SAMPLE)
        assert c.name == "sample"
        assert c.inputs == ["a", "b", "c"]
        assert c.node("t1").type is NodeType.AND
        assert c.node("f").type is NodeType.OR

    def test_inverter_and_buffer_covers(self):
        src = ".model m\n.inputs a\n.outputs x y\n.names a x\n0 1\n.names a y\n1 1\n.end\n"
        c = blif.loads(src)
        assert c.node("x").type is NodeType.NOT
        assert c.node("y").type is NodeType.BUF

    def test_nor_cover(self):
        src = ".model m\n.inputs a b\n.outputs x\n.names a b x\n00 1\n.end\n"
        assert blif.loads(src).node("x").type is NodeType.NOR

    def test_constants(self):
        src = ".model m\n.inputs a\n.outputs one zero keep\n.names one\n1\n.names zero\n.names a keep\n1 1\n.end\n"
        c = blif.loads(src)
        assert c.node("one").type is NodeType.CONST1
        assert c.node("zero").type is NodeType.CONST0

    def test_generic_sop_expansion(self):
        """An XOR cover is not a standard gate: expanded to AND/OR/NOT."""
        src = ".model m\n.inputs a b\n.outputs x\n.names a b x\n10 1\n01 1\n.end\n"
        c = blif.loads(src)
        for bits in itertools.product((0, 1), repeat=2):
            env = dict(zip(["a", "b"], bits))
            assert evaluate(c, env)["x"] == bits[0] ^ bits[1]

    def test_line_continuation(self):
        src = ".model m\n.inputs a \\\n b\n.outputs x\n.names a b x\n11 1\n.end\n"
        assert blif.loads(src).inputs == ["a", "b"]

    def test_latch_rejected(self):
        src = ".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n"
        with pytest.raises(ParseError):
            blif.loads(src)

    def test_bad_cover_row_rejected(self):
        src = ".model m\n.inputs a b\n.outputs x\n.names a b x\n1 1\n.end\n"
        with pytest.raises(ParseError):
            blif.loads(src)

    def test_unknown_directive_rejected(self):
        with pytest.raises(ParseError):
            blif.loads(".frobnicate\n")


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_functional_roundtrip(self, seed):
        original = random_circuit(4, 15, num_outputs=2, seed=seed)
        restored = blif.loads(blif.dumps(original))
        for bits in itertools.product((0, 1), repeat=4):
            env = dict(zip(original.inputs, bits))
            for out in original.outputs:
                assert (
                    evaluate(original, env)[out]
                    == evaluate(restored, env)[out]
                )

    def test_mux_roundtrip(self):
        from repro.graph import CircuitBuilder

        b = CircuitBuilder("m")
        s, x, y = b.inputs("s", "x", "y")
        b.mux(s, x, y, name="out")
        original = b.finish(["out"])
        restored = blif.loads(blif.dumps(original))
        for bits in itertools.product((0, 1), repeat=3):
            env = dict(zip(["s", "x", "y"], bits))
            assert (
                evaluate(original, env)["out"]
                == evaluate(restored, env)["out"]
            )

    def test_file_roundtrip(self, tmp_path, fig1):
        path = tmp_path / "fig1.blif"
        blif.dump(fig1, path)
        restored = blif.load(path)
        assert set(restored.outputs) == set(fig1.outputs)


class TestParityCovers:
    def test_xnor_cover_recognized(self):
        src = ".model m\n.inputs a b\n.outputs x\n.names a b x\n00 1\n11 1\n.end\n"
        assert blif.loads(src).node("x").type is NodeType.XNOR

    def test_xor_cover_recognized(self):
        src = ".model m\n.inputs a b c\n.outputs x\n.names a b c x\n001 1\n010 1\n100 1\n111 1\n.end\n"
        assert blif.loads(src).node("x").type is NodeType.XOR

    def test_xnor_structural_roundtrip(self):
        from repro.graph import CircuitBuilder

        b = CircuitBuilder("m")
        a, bb = b.inputs("a", "b")
        b.xnor(a, bb, name="x")
        original = b.finish(["x"])
        restored = blif.loads(blif.dumps(original))
        assert restored.node("x").type is NodeType.XNOR


class TestCorruptNetlists:
    def test_duplicate_names_target(self):
        with pytest.raises(ParseError) as err:
            blif.loads(
                ".model m\n.inputs a\n.outputs b\n"
                ".names a b\n1 1\n.names a b\n0 1\n.end\n"
            )
        assert "duplicate definition of 'b'" in str(err.value)
        assert err.value.line == 6

    def test_duplicate_input(self):
        with pytest.raises(ParseError) as err:
            blif.loads(".model m\n.inputs a a\n.outputs a\n.end\n")
        assert "duplicate input 'a'" in str(err.value)

    def test_dangling_fanin(self):
        with pytest.raises(ParseError) as err:
            blif.loads(
                ".model m\n.inputs a\n.outputs b\n"
                ".names a ghost b\n11 1\n.end\n"
            )
        assert "undefined signal 'ghost'" in str(err.value)
        assert err.value.line == 4

    def test_forward_reference_is_legal(self):
        c = blif.loads(
            ".model m\n.inputs a\n.outputs c\n"
            ".names b c\n1 1\n.names a b\n1 1\n.end\n"
        )
        assert c.node("c").fanins == ("b",)

    def test_undefined_output(self):
        with pytest.raises(ParseError) as err:
            blif.loads(".model m\n.inputs a\n.outputs zz\n.end\n")
        assert "'zz' is never defined" in str(err.value)
