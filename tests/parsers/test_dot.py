"""Tests for Graphviz DOT export."""

from repro.core import dominator_chain
from repro.dominators import circuit_dominator_tree
from repro.parsers import chain_to_dot, circuit_to_dot, dominator_tree_to_dot
from repro.parsers.dot import write_dot


def test_circuit_dot_contains_nodes_and_edges(fig2):
    text = circuit_to_dot(fig2)
    assert text.startswith('digraph "figure2"')
    assert '"u" -> "a";' in text
    assert '"m" -> "f";' in text
    assert "peripheries=2" in text  # output marked


def test_dominator_tree_dot(fig2_graph):
    tree = circuit_dominator_tree(fig2_graph)
    text = dominator_tree_to_dot(fig2_graph, tree)
    assert '"u" -> "t"' in text
    assert '"t" -> "f"' in text
    assert "style=dashed" in text


def test_chain_dot_highlights_sides(fig2_graph):
    chain = dominator_chain(fig2_graph, fig2_graph.index_of("u"))
    text = chain_to_dot(fig2_graph, chain)
    assert "lightblue" in text and "palegreen" in text
    assert "orange" in text  # the target u


def test_write_dot(tmp_path, fig2):
    path = tmp_path / "c.dot"
    write_dot(circuit_to_dot(fig2), path)
    assert path.read_text().startswith("digraph")
