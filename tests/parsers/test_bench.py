"""Tests for the ISCAS .bench parser/writer."""

import itertools

import pytest

from repro.analysis import evaluate
from repro.circuits.generators import random_circuit
from repro.errors import ParseError
from repro.graph import NodeType
from repro.parsers import bench

SAMPLE = """
# simple sample
INPUT(G1)
INPUT(G2)
OUTPUT(G5)
G3 = NAND(G1, G2)
G4 = NOT(G3)
G5 = AND(G4, G1)
"""


class TestLoads:
    def test_basic_parse(self):
        c = bench.loads(SAMPLE, name="sample")
        assert c.inputs == ["G1", "G2"]
        assert c.outputs == ["G5"]
        assert c.node("G3").type is NodeType.NAND
        assert c.node("G4").fanins == ("G3",)

    def test_comments_and_blanks_ignored(self):
        c = bench.loads("INPUT(a)\n\n# hi\nOUTPUT(a)\n")
        assert c.inputs == ["a"]

    def test_case_insensitive_keywords(self):
        c = bench.loads("input(a)\noutput(b)\nb = not(a)\n")
        assert c.node("b").type is NodeType.NOT

    def test_dff_rejected(self):
        with pytest.raises(ParseError) as err:
            bench.loads("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
        assert "DFF" in str(err.value)
        assert err.value.line == 3

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError):
            bench.loads("INPUT(a)\nOUTPUT(b)\nb = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(ParseError):
            bench.loads("INPUT(a)\nwhat is this\n")

    def test_buff_alias(self):
        c = bench.loads("INPUT(a)\nOUTPUT(b)\nb = BUFF(a)\n")
        assert c.node("b").type is NodeType.BUF


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_structural_roundtrip(self, seed):
        original = random_circuit(4, 20, num_outputs=2, seed=seed)
        restored = bench.loads(bench.dumps(original), name=original.name)
        assert restored.inputs == original.inputs
        assert restored.outputs == original.outputs
        assert len(restored) == len(original)
        for node in original.nodes():
            other = restored.node(node.name)
            assert other.type is node.type
            assert other.fanins == node.fanins

    def test_functional_roundtrip(self):
        original = random_circuit(4, 12, num_outputs=1, seed=3)
        restored = bench.loads(bench.dumps(original))
        for bits in itertools.product((0, 1), repeat=4):
            env = dict(zip(original.inputs, bits))
            for out in original.outputs:
                assert (
                    evaluate(original, env)[out]
                    == evaluate(restored, env)[out]
                )

    def test_file_roundtrip(self, tmp_path, fig2):
        path = tmp_path / "fig2.bench"
        bench.dump(fig2, path)
        restored = bench.load(path)
        assert restored.name == "fig2"
        assert len(restored) == len(fig2)

    def test_figure1_roundtrip(self, fig1):
        restored = bench.loads(bench.dumps(fig1))
        assert sorted(restored) == sorted(fig1)


class TestSequentialRoundTrip:
    """DFF parsing -> extract_combinational_core -> re-emit."""

    FLOP_READS_PI = (
        "INPUT(d)\nOUTPUT(o)\nq = DFF(d)\no = NOT(q)\n"
    )
    BACK_TO_BACK = (
        "INPUT(d)\nOUTPUT(o)\n"
        "a = DFF(nd)\nb = DFF(a)\n"
        "nd = NOT(d)\no = NOT(b)\n"
    )

    @pytest.mark.parametrize("text", [FLOP_READS_PI, BACK_TO_BACK])
    def test_sequential_roundtrip(self, text):
        original = bench.loads_sequential(text, name="seq")
        restored = bench.loads_sequential(
            bench.dumps_sequential(original), name="seq"
        )
        assert restored.flops == original.flops
        assert restored.primary_inputs == original.primary_inputs
        assert restored.primary_outputs == original.primary_outputs
        assert sorted(restored.combinational) == sorted(
            original.combinational
        )
        for node in original.combinational.nodes():
            other = restored.combinational.node(node.name)
            assert other.type is node.type
            assert other.fanins == node.fanins

    @pytest.mark.parametrize("text", [FLOP_READS_PI, BACK_TO_BACK])
    def test_core_survives_roundtrip(self, text):
        """The combinational cores of both copies re-emit identically."""
        from repro.graph import extract_combinational_core

        original = bench.loads_sequential(text, name="seq")
        restored = bench.loads_sequential(
            bench.dumps_sequential(original), name="seq"
        )
        core_a = extract_combinational_core(original)
        core_b = extract_combinational_core(restored)
        assert bench.dumps(core_a) == bench.dumps(core_b)
        # And the core itself round-trips through the combinational
        # reader: flop outputs are plain INPUT nodes, ppo_* are buffers.
        reread = bench.loads(bench.dumps(core_a), name=core_a.name)
        assert reread.inputs == core_a.inputs
        assert reread.outputs == core_a.outputs

    def test_file_roundtrip(self, tmp_path):
        original = bench.loads_sequential(self.BACK_TO_BACK, name="sr")
        path = tmp_path / "sr.bench"
        bench.dump_sequential(original, path)
        restored = bench.load_sequential(path)
        assert restored.name == "sr"
        assert restored.flops == original.flops


class TestCorruptNetlists:
    """Duplicate and dangling definitions must fail loudly, with lines."""

    def test_duplicate_gate_definition(self):
        with pytest.raises(ParseError) as err:
            bench.loads(
                "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\nb = BUF(a)\n"
            )
        assert "duplicate definition of 'b'" in str(err.value)
        assert err.value.line == 4
        assert "line 3" in str(err.value)  # points at the first definition

    def test_gate_shadowing_input(self):
        with pytest.raises(ParseError) as err:
            bench.loads("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n")
        assert "duplicate definition of 'a'" in str(err.value)

    def test_dangling_fanin(self):
        with pytest.raises(ParseError) as err:
            bench.loads("INPUT(a)\nOUTPUT(b)\nb = AND(a, ghost)\n")
        assert "references undefined signal 'ghost'" in str(err.value)
        assert err.value.line == 3

    def test_forward_reference_is_legal(self):
        c = bench.loads(
            "INPUT(a)\nOUTPUT(c)\nc = NOT(b)\nb = BUF(a)\n"
        )
        assert c.node("c").fanins == ("b",)

    def test_undefined_output(self):
        with pytest.raises(ParseError) as err:
            bench.loads("INPUT(a)\nOUTPUT(zz)\n")
        assert "'zz' is never defined" in str(err.value)
        assert err.value.line == 2

    def test_cycle_reported_as_parse_error(self):
        with pytest.raises(ParseError):
            bench.loads(
                "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n"
            )
