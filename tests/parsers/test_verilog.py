"""Tests for the structural Verilog parser/writer."""

import itertools

import pytest

from repro.analysis import evaluate
from repro.errors import ParseError
from repro.graph import NodeType
from repro.parsers import verilog

SAMPLE = """
// a tiny mux built from primitives
module tinymux (s, a, b, y);
  input s, a, b;
  output y;
  wire ns, t1, t2;
  not g1 (ns, s);
  and g2 (t1, ns, a);
  and g3 (t2, s, b);
  or  g4 (y, t1, t2);
endmodule
"""


class TestLoads:
    def test_basic_parse(self):
        c = verilog.loads(SAMPLE)
        assert c.name == "tinymux"
        assert c.inputs == ["s", "a", "b"]
        assert c.outputs == ["y"]
        assert c.node("t1").type is NodeType.AND
        assert c.node("y").fanins == ("t1", "t2")

    def test_function(self):
        c = verilog.loads(SAMPLE)
        for s, a, b in itertools.product((0, 1), repeat=3):
            vals = evaluate(c, {"s": s, "a": a, "b": b})
            assert vals["y"] == (b if s else a)

    def test_block_comments_stripped(self):
        src = SAMPLE.replace("wire ns, t1, t2;", "/* x\n y */ wire ns, t1, t2;")
        verilog.loads(src)

    def test_assign_alias(self):
        src = """
        module m (a, y);
          input a; output y;
          wire w;
          not g (w, a);
          assign y = w;
        endmodule
        """
        c = verilog.loads(src)
        assert c.node("y").type is NodeType.BUF
        assert evaluate(c, {"a": 0})["y"] == 1

    def test_missing_module_rejected(self):
        with pytest.raises(ParseError):
            verilog.loads("wire x;")

    def test_missing_endmodule_rejected(self):
        with pytest.raises(ParseError):
            verilog.loads("module m (a); input a;")

    def test_vector_ports_rejected(self):
        src = "module m (a, y); input [3:0] a; output y; endmodule"
        with pytest.raises(ParseError):
            verilog.loads(src)

    def test_behavioral_rejected(self):
        src = "module m (a, y); input a; output y; assign y = a & a; endmodule"
        with pytest.raises(ParseError):
            verilog.loads(src)

    def test_unknown_instance_rejected(self):
        src = "module m (a, y); input a; output y; dff g (y, a); endmodule"
        with pytest.raises(ParseError):
            verilog.loads(src)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_functional_roundtrip(self, seed):
        from repro.circuits.generators import random_single_output

        original = random_single_output(4, 15, seed=seed)
        restored = verilog.loads(verilog.dumps(original))
        out = original.outputs[0]
        for bits in itertools.product((0, 1), repeat=4):
            env = dict(zip(original.inputs, bits))
            assert (
                evaluate(original, env)[out] == evaluate(restored, env)[out]
            )

    def test_figure_roundtrip(self, fig1, tmp_path):
        path = tmp_path / "fig1.v"
        verilog.dump(fig1, path)
        restored = verilog.load(path)
        assert sorted(restored) == sorted(fig1)
        for node in fig1.nodes():
            assert restored.node(node.name).fanins == node.fanins

    def test_mux_dump_rejected(self):
        from repro.graph import CircuitBuilder

        b = CircuitBuilder()
        s, x, y = b.inputs("s", "x", "y")
        b.mux(s, x, y, name="m")
        circuit = b.finish(["m"])
        with pytest.raises(ParseError):
            verilog.dumps(circuit)


class TestCorruptNetlists:
    def test_duplicate_gate_target(self):
        src = (
            "module m (a, y);\n  input a;\n  output y;\n"
            "  not g1 (y, a);\n  buf g2 (y, a);\nendmodule\n"
        )
        with pytest.raises(ParseError) as err:
            verilog.loads(src)
        assert "duplicate driver for 'y'" in str(err.value)
        assert err.value.line == 5
        assert "line 4" in str(err.value)

    def test_gate_driving_an_input(self):
        src = (
            "module m (a, y);\n  input a;\n  output y;\n"
            "  not g1 (a, a);\n  buf g2 (y, a);\nendmodule\n"
        )
        with pytest.raises(ParseError) as err:
            verilog.loads(src)
        assert "duplicate driver for 'a'" in str(err.value)

    def test_dangling_fanin(self):
        src = (
            "module m (a, y);\n  input a;\n  output y;\n"
            "  and g1 (y, a, ghost);\nendmodule\n"
        )
        with pytest.raises(ParseError) as err:
            verilog.loads(src)
        assert "undriven signal 'ghost'" in str(err.value)
        assert err.value.line == 4

    def test_forward_reference_is_legal(self):
        src = (
            "module m (a, y);\n  input a;\n  output y;\n"
            "  not g1 (y, w);\n  buf g2 (w, a);\nendmodule\n"
        )
        c = verilog.loads(src)
        assert c.node("y").fanins == ("w",)

    def test_undriven_output(self):
        src = "module m (a, y);\n  input a;\n  output y;\nendmodule\n"
        with pytest.raises(ParseError) as err:
            verilog.loads(src)
        assert "'y' is never driven" in str(err.value)

    def test_undriven_assign_source(self):
        src = (
            "module m (a, y);\n  input a;\n  output y;\n"
            "  buf g1 (y, a);\n  assign z = ghost;\nendmodule\n"
        )
        with pytest.raises(ParseError) as err:
            verilog.loads(src)
        assert "'ghost' is never driven" in str(err.value)
