"""Tests for the on-disk artifact store and its invalidation wiring."""

import json

import pytest

from repro.circuits.figures import figure2_circuit
from repro.incremental import AddGate, IncrementalEngine
from repro.service import (
    ArtifactStore,
    MetricsRegistry,
    circuit_fingerprint,
    cone_fingerprint,
    sequential_cone_chains,
)


def _chains():
    circuit = figure2_circuit()
    return circuit, sequential_cone_chains(circuit, "f")


class TestRoundTrip:
    def test_put_then_get_is_identical(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        store.put(key, "f", chains)
        assert store.get(key, "f") == chains

    def test_get_missing_is_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.get("deadbeef", "f") is None

    def test_versions_survive_reopen(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        store.put(key, "f", chains)
        store.invalidate(key)
        reopened = ArtifactStore(str(tmp_path))
        assert reopened.version(key) == 1
        assert reopened.get(key, "f") is None

    def test_artifacts_survive_reopen(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        ArtifactStore(str(tmp_path)).put(key, "f", chains)
        assert ArtifactStore(str(tmp_path)).get(key, "f") == chains

    def test_torn_artifact_is_a_miss(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        path = store.put(key, "f", chains)
        path.write_text("{not json")
        assert store.get(key, "f") is None

    def test_kernels_key_separates_artifacts(self, tmp_path):
        # Same cone, same backend, different kernels: distinct paths,
        # distinct metadata, no cross-reads between the two.
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        py_path = store.put(key, "f", chains, kernels="python")
        np_path = store.put(key, "f", chains, kernels="numpy")
        assert py_path != np_path
        assert store.get(key, "f", kernels="python") == chains
        assert store.get(key, "f", kernels="numpy") == chains
        meta = json.loads(np_path.read_text())["meta"]
        assert meta["kernels"] == "numpy"

    def test_kernels_mismatch_is_a_miss(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        store.put(key, "f", chains, kernels="numpy")
        assert store.get(key, "f", kernels="python") is None

    def test_unknown_kernels_rejected(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.put(key, "f", chains, kernels="turbo")
        with pytest.raises(ValueError):
            store.get(key, "f", kernels="turbo")


class TestInvalidation:
    def test_invalidate_bumps_version_and_hides_artifacts(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        store.put(key, "f", chains)
        assert store.invalidate(key) == 1
        assert store.get(key, "f") is None
        # a fresh put under the new version serves again
        store.put(key, "f", chains)
        assert store.get(key, "f") == chains

    def test_invalidate_removes_old_version_dirs(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        old = store.put(key, "f", chains)
        store.invalidate(key)
        assert not old.exists()

    def test_other_circuits_unaffected(self, tmp_path):
        circuit, chains = _chains()
        store = ArtifactStore(str(tmp_path))
        store.put("aaaa", "f", chains)
        store.put("bbbb", "f", chains)
        store.invalidate("aaaa")
        assert store.get("aaaa", "f") is None
        assert store.get("bbbb", "f") == chains

    def test_engine_edit_listener_invalidates(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path))
        store.put(key, "f", chains)
        engine = IncrementalEngine.from_circuit(circuit.copy(), "f")
        engine.add_edit_listener(store.listener_for(key))
        engine.apply(AddGate("extra", ("d",), "buf"))
        assert store.version(key) == 1
        assert store.get(key, "f") is None


class TestMetrics:
    def test_hit_miss_write_counters(self, tmp_path):
        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        metrics = MetricsRegistry()
        store = ArtifactStore(str(tmp_path), metrics=metrics)
        store.get(key, "f")
        store.put(key, "f", chains)
        store.get(key, "f")
        snap = metrics.snapshot()["counters"]
        assert snap["artifacts.misses"] == 1
        assert snap["artifacts.hits"] == 1
        assert snap["artifacts.writes"] == 1
        assert store.hit_ratio() == 0.5


class TestFingerprints:
    def test_fingerprint_ignores_name_and_insertion_order(self):
        a = figure2_circuit()
        b = figure2_circuit()
        b.name = "renamed"
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_fingerprint_changes_on_structure(self):
        from repro.graph.node import NodeType

        a = figure2_circuit()
        b = figure2_circuit()
        b.add_gate("extra", NodeType.BUF, ["d"])
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_cone_fingerprint_ignores_other_cones(self):
        from repro.graph.node import NodeType

        a = figure2_circuit()
        b = figure2_circuit()
        # a second, disjoint output cone added to b only
        b.add_input("z")
        b.add_gate("zz", NodeType.BUF, ["z"])
        b.add_output("zz")
        assert circuit_fingerprint(a) != circuit_fingerprint(b)
        assert cone_fingerprint(a, "f") == cone_fingerprint(b, "f")

    def test_index_file_is_json(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.invalidate("abcd")
        data = json.loads((tmp_path / "index.json").read_text())
        assert data["versions"] == {"abcd": 1}


class TestConcurrentWriters:
    """Threaded hammer tests: the index must survive concurrent writers."""

    def test_invalidate_hammer_loses_no_bumps(self, tmp_path):
        import threading

        store = ArtifactStore(str(tmp_path))
        keys = [f"{i:02d}key{i}" for i in range(6)]
        rounds = 20
        errors = []

        def hammer(key):
            try:
                for _ in range(rounds):
                    store.invalidate(key)
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(key,))
            for key in keys
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"concurrent invalidate raised: {errors[:3]}"
        for key in keys:
            assert store.version(key) == 3 * rounds
        # The on-disk index must agree after reopening.
        reopened = ArtifactStore(str(tmp_path))
        for key in keys:
            assert reopened.version(key) == 3 * rounds

    def test_two_stores_one_root_do_not_erase_each_other(self, tmp_path):
        # Two writer processes each hold their own store over one root
        # (the daemon + a CLI sweep, say): an invalidation through one
        # must not be erased by an index save through the other.
        a = ArtifactStore(str(tmp_path))
        b = ArtifactStore(str(tmp_path))
        a.invalidate("circuit-a")
        b.invalidate("circuit-b")
        reopened = ArtifactStore(str(tmp_path))
        assert reopened.version("circuit-a") == 1
        assert reopened.version("circuit-b") == 1

    def test_put_get_during_invalidation_storm(self, tmp_path):
        import threading

        circuit, chains = _chains()
        key = circuit_fingerprint(circuit)
        store = ArtifactStore(str(tmp_path), metrics=MetricsRegistry())
        errors = []
        stop = threading.Event()

        def writer():
            try:
                while not stop.is_set():
                    store.put(key, "f", chains)
                    got = store.get(key, "f")
                    assert got is None or got == chains
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        def invalidator():
            try:
                for _ in range(30):
                    store.invalidate(key)
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        writers = [threading.Thread(target=writer) for _ in range(2)]
        bumper = threading.Thread(target=invalidator)
        for t in writers:
            t.start()
        bumper.start()
        bumper.join()
        stop.set()
        for t in writers:
            t.join()
        assert not errors, f"writers raised during invalidation: {errors[:3]}"
        assert store.version(key) == 30
