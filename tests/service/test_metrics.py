"""Tests for the service metrics registry."""

import json

import pytest

from repro.service.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            h.observe(value)
        data = h.as_dict()
        assert data["count"] == 4
        assert data["buckets"] == {
            "le_0.001": 1,
            "le_0.01": 1,
            "le_0.1": 1,
            "le_inf": 1,
        }
        assert data["sum"] == pytest.approx(5.0555)
        assert data["max"] == pytest.approx(5.0)

    def test_boundary_value_goes_to_its_bucket(self):
        h = Histogram("lat", buckets=(0.01, 0.1))
        h.observe(0.01)  # inclusive upper bound
        assert h.as_dict()["buckets"]["le_0.01"] == 1

    def test_quantiles(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            h.observe(value)
        assert h.quantile(0.5) == 1.0
        # q=1 is the maximum observation (3.0), not the 4.0 bucket bound
        # that nothing reached.
        assert h.quantile(1.0) == pytest.approx(3.0)
        h.observe(100.0)
        # The overflow bucket interpolates toward the observed maximum,
        # never reporting inf for real data.
        assert h.quantile(1.0) == pytest.approx(100.0)

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for _ in range(10):
            h.observe(0.5)  # all ten land in the first bucket
        # rank q*10 sits q of the way through [0, 0.5]: the bucket is
        # the last non-empty one, so its upper bound clamps to the
        # observed maximum rather than the nominal 1.0 bound.
        assert h.quantile(0.25) == pytest.approx(0.125)
        assert h.quantile(0.99) == pytest.approx(0.495)

    def test_quantile_p50_p99_spread(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for _ in range(98):
            h.observe(0.005)
        h.observe(0.5)
        h.observe(0.5)
        # p50 well inside the first bucket, p99 in the third.
        assert h.quantile(0.5) < 0.01
        assert 0.1 < h.quantile(0.99) <= 1.0

    def test_quantile_skips_empty_buckets(self):
        h = Histogram("lat", buckets=(0.001, 1.0, 2.0))
        h.observe(1.5)
        h.observe(1.5)
        # Both observations sit in (1.0, 2.0]; every quantile must
        # interpolate inside that bucket, not in the empty ones below,
        # and q=1 lands on the 1.5 maximum rather than the 2.0 bound.
        assert 1.0 <= h.quantile(0.01) <= 2.0
        assert h.quantile(1.0) == pytest.approx(1.5)

    def test_empty_quantile_and_mean(self):
        h = Histogram("lat")
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    @pytest.mark.parametrize(
        "values,q,expected",
        [
            # q=0 is the lower bound of the first non-empty bucket.
            ((0.5, 0.5, 3.0), 0.0, 0.0),
            ((1.5, 1.5), 0.0, 1.0),
            # q=1 is always the exact maximum, wherever it lands.
            ((0.5,), 1.0, 0.5),
            ((0.5, 1.5, 3.5), 1.0, 3.5),
            ((9.0,), 1.0, 9.0),  # single overflow observation
            # Exact rank on a bucket boundary: rank q*n == cumulative
            # count of a bucket maps to that bucket's upper bound.
            ((0.5, 0.5, 1.5, 1.5), 0.5, 1.0),
            ((0.5, 1.5, 1.5, 1.5), 0.25, 1.0),
        ],
    )
    def test_quantile_edge_cases(self, values, q, expected):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in values:
            h.observe(value)
        assert h.quantile(q) == pytest.approx(expected)

    def test_quantile_one_equals_max_even_mid_bucket(self):
        # Regression: q=1 used to report the nominal bucket bound, an
        # off-by-one against the true maximum when the last non-empty
        # bucket was only part-filled.
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(2.5)
        assert h.quantile(1.0) == pytest.approx(2.5)
        h.observe(3.9)
        assert h.quantile(1.0) == pytest.approx(3.9)

    def test_quantile_out_of_range_rejected(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))


class TestRegistry:
    def test_created_on_first_use_and_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.histogram("a")
        reg.histogram("h")
        with pytest.raises(ValueError):
            reg.counter("h")

    def test_shorthands_and_timer(self):
        reg = MetricsRegistry()
        reg.inc("jobs", 3)
        reg.observe("lat", 0.02)
        with reg.timer("lat"):
            pass
        assert reg.counter("jobs").value == 3
        assert reg.histogram("lat").count == 2

    def test_snapshot_roundtrips_through_json(self):
        reg = MetricsRegistry()
        reg.inc("jobs")
        reg.observe("lat", 0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"jobs": 1}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_export_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("jobs", 2)
        path = tmp_path / "metrics.json"
        reg.export_json(str(path))
        data = json.loads(path.read_text())
        assert data["counters"]["jobs"] == 2

    def test_merge_snapshot_adds(self):
        worker = MetricsRegistry()
        worker.inc("jobs", 2)
        worker.observe("lat", 0.0002)
        worker.observe("lat", 7.0)
        parent = MetricsRegistry()
        parent.inc("jobs", 1)
        parent.observe("lat", 0.0002)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("jobs").value == 3
        hist = parent.histogram("lat")
        assert hist.count == 3
        assert hist.sum == pytest.approx(7.0004)
        assert hist.as_dict()["max"] == pytest.approx(7.0)
        # bucket counts merged bucket-by-bucket
        buckets = hist.as_dict()["buckets"]
        assert buckets[f"le_{DEFAULT_BUCKETS[1]:g}"] == 2


class TestMergeSchemaAlignment:
    """Regression: merging a worker snapshot whose histogram had *more*
    buckets than the parent silently dropped the extra buckets (and the
    worker's overflow bucket landed in the wrong place), so the merged
    export under-reported tail latency: sum(buckets) < count."""

    def test_merge_wider_worker_schema_keeps_every_observation(self):
        parent = MetricsRegistry()
        parent.histogram("svc.latency")  # DEFAULT_BUCKETS, top bound 30.0
        worker = MetricsRegistry()
        worker.histogram(
            "svc.latency", buckets=list(DEFAULT_BUCKETS) + [60.0, 120.0]
        )
        worker.observe("svc.latency", 45.0)   # lands in worker le_60
        worker.observe("svc.latency", 200.0)  # lands in worker le_inf
        worker.observe("svc.latency", 0.002)  # shared bucket

        parent.merge_snapshot(worker.snapshot())
        data = parent.snapshot()["histograms"]["svc.latency"]
        assert data["count"] == 3
        assert sum(data["buckets"].values()) == data["count"]
        # Both tail observations exceed the parent's 30.0 top bound.
        assert data["buckets"]["le_inf"] == 2
        assert data["buckets"]["le_0.005"] == 1
        assert data["max"] == 200.0

    def test_merge_narrower_worker_schema(self):
        parent = MetricsRegistry()
        parent.histogram("svc.latency")
        worker = MetricsRegistry()
        worker.histogram("svc.latency", buckets=[0.01, 1.0])
        worker.observe("svc.latency", 0.5)
        worker.observe("svc.latency", 7.0)  # worker overflow, parent le_30

        parent.merge_snapshot(worker.snapshot())
        data = parent.snapshot()["histograms"]["svc.latency"]
        assert data["count"] == 2
        assert sum(data["buckets"].values()) == data["count"]
        # The worker's 1.0-bound bucket folds into the parent's own 1.0
        # bucket; the worker's overflow stays overflow (its contents are
        # only known to exceed 1.0, but they *could* exceed 30.0 too —
        # conservative means never re-binning finer than known).
        assert data["buckets"]["le_1"] == 1
        assert data["buckets"]["le_inf"] == 1

    def test_merge_identical_schema_is_exact(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        for value in (0.0002, 0.02, 2.0, 50.0):
            worker.observe("svc.latency", value)
        parent.merge_snapshot(worker.snapshot())
        assert (
            parent.snapshot()["histograms"]["svc.latency"]
            == worker.snapshot()["histograms"]["svc.latency"]
        )

    def test_merged_export_json_consistent(self, tmp_path):
        parent = MetricsRegistry()
        parent.histogram("svc.latency")
        worker = MetricsRegistry()
        worker.histogram(
            "svc.latency", buckets=list(DEFAULT_BUCKETS) + [60.0]
        )
        worker.observe("svc.latency", 45.0)
        parent.merge_snapshot(worker.snapshot())
        out = tmp_path / "metrics.json"
        parent.export_json(str(out))
        data = json.loads(out.read_text())["histograms"]["svc.latency"]
        assert sum(data["buckets"].values()) == data["count"] == 1
