"""Tests for the service metrics registry."""

import json
import math

import pytest

from repro.service.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            h.observe(value)
        data = h.as_dict()
        assert data["count"] == 4
        assert data["buckets"] == {
            "le_0.001": 1,
            "le_0.01": 1,
            "le_0.1": 1,
            "le_inf": 1,
        }
        assert data["sum"] == pytest.approx(5.0555)
        assert data["max"] == pytest.approx(5.0)

    def test_boundary_value_goes_to_its_bucket(self):
        h = Histogram("lat", buckets=(0.01, 0.1))
        h.observe(0.01)  # inclusive upper bound
        assert h.as_dict()["buckets"]["le_0.01"] == 1

    def test_quantiles(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            h.observe(value)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        h.observe(100.0)
        assert h.quantile(1.0) == math.inf

    def test_empty_quantile_and_mean(self):
        h = Histogram("lat")
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))


class TestRegistry:
    def test_created_on_first_use_and_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.histogram("a")
        reg.histogram("h")
        with pytest.raises(ValueError):
            reg.counter("h")

    def test_shorthands_and_timer(self):
        reg = MetricsRegistry()
        reg.inc("jobs", 3)
        reg.observe("lat", 0.02)
        with reg.timer("lat"):
            pass
        assert reg.counter("jobs").value == 3
        assert reg.histogram("lat").count == 2

    def test_snapshot_roundtrips_through_json(self):
        reg = MetricsRegistry()
        reg.inc("jobs")
        reg.observe("lat", 0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"jobs": 1}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_export_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("jobs", 2)
        path = tmp_path / "metrics.json"
        reg.export_json(str(path))
        data = json.loads(path.read_text())
        assert data["counters"]["jobs"] == 2

    def test_merge_snapshot_adds(self):
        worker = MetricsRegistry()
        worker.inc("jobs", 2)
        worker.observe("lat", 0.0002)
        worker.observe("lat", 7.0)
        parent = MetricsRegistry()
        parent.inc("jobs", 1)
        parent.observe("lat", 0.0002)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("jobs").value == 3
        hist = parent.histogram("lat")
        assert hist.count == 3
        assert hist.sum == pytest.approx(7.0004)
        assert hist.as_dict()["max"] == pytest.approx(7.0)
        # bucket counts merged bucket-by-bucket
        buckets = hist.as_dict()["buckets"]
        assert buckets[f"le_{DEFAULT_BUCKETS[1]:g}"] == 2
