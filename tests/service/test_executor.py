"""Tests for the parallel executor: equivalence, fallbacks, metrics.

The timeout/failure tests monkeypatch the module-level
``_process_chunk`` body; the executor's pool is created *after* the
patch and uses the fork start method on Linux, so worker processes
inherit the patched function through ``_chunk_entry``.
"""

import os
import time

import pytest

import repro.service.executor as executor_mod
from repro.circuits.suite import table1_suite
from repro.core.algorithm import ChainComputer
from repro.graph import IndexedGraph
from repro.service import (
    ArtifactStore,
    ExecutorConfig,
    MetricsRegistry,
    ParallelExecutor,
    pairs_in_chain_dict,
    sequential_cone_chains,
    sweep_suite,
)

NAMES = ["alu2", "comp", "cordic"]
SCALE = 0.5


def sequential_reference(circuit):
    """Per-cone chains straight from a sequential ChainComputer."""
    reference = {}
    for output in circuit.outputs:
        graph = IndexedGraph.from_circuit(circuit, output)
        computer = ChainComputer(graph)
        reference[output] = {
            graph.name_of(u): computer.chain(u).to_dict()
            for u in graph.sources()
        }
    return reference


class TestEquivalence:
    @pytest.mark.parametrize("name", NAMES)
    def test_parallel_matches_sequential_chaincomputer(self, name):
        circuit = table1_suite()[name].circuit(SCALE)
        reference = sequential_reference(circuit)
        ex = ParallelExecutor(ExecutorConfig(jobs=2))
        results = {
            r.output: r.chains for r in ex.sweep_circuit(circuit)
        }
        assert results == reference

    def test_single_job_runs_in_process(self):
        circuit = table1_suite()["alu2"].circuit(SCALE)
        metrics = MetricsRegistry()
        ex = ParallelExecutor(ExecutorConfig(jobs=1), metrics=metrics)
        results = ex.sweep_circuit(circuit)
        assert all(r.source == "inprocess" for r in results)
        assert {r.output: r.chains for r in results} == sequential_reference(
            circuit
        )

    def test_explicit_targets_subset(self):
        circuit = table1_suite()["alu2"].circuit(SCALE)
        output = circuit.outputs[0]
        graph = IndexedGraph.from_circuit(circuit, output)
        targets = [graph.name_of(u) for u in graph.sources()][:2]
        ex = ParallelExecutor(ExecutorConfig(jobs=1))
        (result,) = ex.sweep_circuit(
            circuit,
            outputs=[output],
            targets_by_output={output: tuple(targets)},
        )
        assert sorted(result.chains) == sorted(targets)


class TestFallbacks:
    def test_pool_creation_failure_falls_back_in_process(self, monkeypatch):
        circuit = table1_suite()["alu2"].circuit(SCALE)
        reference = sequential_reference(circuit)
        metrics = MetricsRegistry()
        ex = ParallelExecutor(ExecutorConfig(jobs=2), metrics=metrics)

        def broken_context():
            raise OSError("no semaphores on this platform")

        monkeypatch.setattr(ex, "_context", broken_context)
        results = {r.output: r.chains for r in ex.sweep_circuit(circuit)}
        assert results == reference
        snap = metrics.snapshot()["counters"]
        assert snap["executor.pool_fallbacks"] == 1
        assert snap["executor.jobs_inprocess"] == len(circuit.outputs)

    def test_worker_exception_falls_back_in_process(self, monkeypatch):
        circuit = table1_suite()["alu2"].circuit(SCALE)
        reference = sequential_reference(circuit)

        def exploding_chunk(payload):
            raise ValueError("boom")

        monkeypatch.setattr(executor_mod, "_process_chunk", exploding_chunk)
        metrics = MetricsRegistry()
        ex = ParallelExecutor(ExecutorConfig(jobs=2), metrics=metrics)
        results = {r.output: r.chains for r in ex.sweep_circuit(circuit)}
        assert results == reference
        snap = metrics.snapshot()["counters"]
        assert snap["executor.failures"] >= 1
        assert snap["executor.jobs_inprocess"] == len(circuit.outputs)
        assert all(
            r.source == "inprocess" for r in ex.sweep_circuit(circuit)
        )

    def test_timeout_falls_back_in_process(self, monkeypatch):
        circuit = table1_suite()["alu2"].circuit(SCALE)
        reference = sequential_reference(circuit)
        original = executor_mod._process_chunk

        def slow_chunk(payload):
            time.sleep(5.0)
            return original(payload)

        monkeypatch.setattr(executor_mod, "_process_chunk", slow_chunk)
        metrics = MetricsRegistry()
        ex = ParallelExecutor(
            ExecutorConfig(jobs=2, timeout=0.05), metrics=metrics
        )
        start = time.perf_counter()
        results = {r.output: r.chains for r in ex.sweep_circuit(circuit)}
        elapsed = time.perf_counter() - start
        assert results == reference
        assert metrics.snapshot()["counters"]["executor.timeouts"] >= 1
        assert elapsed < 5.0  # did not wait for the slow workers


class TestArtifactsIntegration:
    def test_second_sweep_served_from_store(self, tmp_path):
        circuit = table1_suite()["alu2"].circuit(SCALE)
        metrics = MetricsRegistry()
        store = ArtifactStore(str(tmp_path), metrics=metrics)
        ex = ParallelExecutor(
            ExecutorConfig(jobs=1), metrics=metrics, store=store
        )
        first = ex.sweep_circuit(circuit)
        second = ex.sweep_circuit(circuit)
        assert all(r.source != "artifact" for r in first)
        assert all(r.source == "artifact" for r in second)
        assert [r.chains for r in first] == [r.chains for r in second]
        assert store.hit_ratio() == 0.5

    def test_partial_target_results_not_stored(self, tmp_path):
        circuit = table1_suite()["alu2"].circuit(SCALE)
        output = circuit.outputs[0]
        graph = IndexedGraph.from_circuit(circuit, output)
        target = graph.name_of(graph.sources()[0])
        store = ArtifactStore(str(tmp_path))
        ex = ParallelExecutor(ExecutorConfig(jobs=1), store=store)
        ex.sweep_circuit(
            circuit,
            outputs=[output],
            targets_by_output={output: (target,)},
        )
        # A later all-targets sweep must not see the partial artifact.
        (result,) = ex.sweep_circuit(circuit, outputs=[output])
        assert result.source != "artifact"
        assert len(result.chains) == len(graph.sources())


class TestMetricsSnapshot:
    def test_sweep_metrics_are_consistent(self, tmp_path):
        """Acceptance: job counts, latency histogram and artifact hit
        ratio of a sweep validate against ground truth."""
        metrics = MetricsRegistry()
        store = ArtifactStore(str(tmp_path), metrics=metrics)
        ex = ParallelExecutor(
            ExecutorConfig(jobs=2), metrics=metrics, store=store
        )
        report = sweep_suite(ex, names=NAMES, scale=SCALE)
        cones = sum(c.cones for c in report.circuits)
        chains = sum(c.chains for c in report.circuits)
        snap = metrics.snapshot()
        counters = snap["counters"]
        assert counters["executor.jobs_submitted"] == cones
        assert counters["executor.jobs_completed"] == cones
        parallel = counters.get("executor.jobs_parallel", 0)
        inprocess = counters.get("executor.jobs_inprocess", 0)
        assert parallel + inprocess == cones
        # one latency observation per cone job
        assert snap["histograms"]["executor.job_seconds"]["count"] == cones
        # worker-side ChainComputer observations made it back
        assert counters["core.chains_computed"] == chains
        assert snap["histograms"]["core.chain_seconds"]["count"] == chains
        # cold sweep: every artifact get missed, every cone written
        assert counters["artifacts.misses"] == cones
        assert counters["artifacts.writes"] == cones
        assert store.hit_ratio() == 0.0
        # warm sweep flips the ratio
        report2 = sweep_suite(ex, names=NAMES, scale=SCALE)
        assert metrics.counter("artifacts.hits").value == cones
        assert store.hit_ratio() == 0.5
        assert all(c.artifact_hits == c.cones for c in report2.circuits)
        assert report2.total_pairs == report.total_pairs

    def test_pairs_in_chain_dict_matches_chain(self):
        circuit = table1_suite()["alu2"].circuit(SCALE)
        output = circuit.outputs[0]
        graph = IndexedGraph.from_circuit(circuit, output)
        computer = ChainComputer(graph)
        for u in graph.sources():
            chain = computer.chain(u)
            assert (
                pairs_in_chain_dict(chain.to_dict()) == chain.num_dominators()
            )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="speedup check needs >= 4 cores"
)
def test_four_job_sweep_is_at_least_twice_as_fast():
    """Acceptance: ``sweep --jobs 4`` >= 2x sequential on a 4-core box.

    Uses the built-in suite's quick circuits at a size where per-cone
    work dominates dispatch overhead; median of 3 runs each.
    """
    import statistics

    names = ["C6288", "comp", "cordic", "alu4"]

    def run(jobs):
        samples = []
        for _ in range(3):
            ex = ParallelExecutor(ExecutorConfig(jobs=jobs))
            start = time.perf_counter()
            sweep_suite(ex, names=names, scale=0.8)
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    sequential = run(1)
    parallel = run(4)
    assert parallel * 2 <= sequential, (
        f"expected >=2x speedup, got {sequential / parallel:.2f}x "
        f"(seq {sequential:.2f}s, par {parallel:.2f}s)"
    )


class TestConfigValidation:
    def test_zero_or_negative_jobs_rejected(self):
        for jobs in (0, -1, -8):
            with pytest.raises(ValueError):
                ExecutorConfig(jobs=jobs)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(timeout=-1.0)

    def test_zero_timeout_and_one_job_accepted(self):
        config = ExecutorConfig(jobs=1, timeout=0.0)
        assert config.jobs == 1
        assert config.timeout == 0.0

    def test_nonpositive_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(chunk_size=0)

    def test_unknown_kernels_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(kernels="turbo")

    def test_python_kernels_default(self):
        assert ExecutorConfig().kernels == "python"
        assert ExecutorConfig(kernels="python").kernels == "python"


class TestSharedCircuits:
    """``shared_circuits=True`` ships a shm ref instead of a pickled netlist."""

    @pytest.mark.parametrize("name", ["alu2", "comp"])
    def test_shm_sweep_bit_identical_to_pickle(self, name):
        from repro.daemon.shm import shared_memory_available

        if not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        circuit = table1_suite()[name].circuit(SCALE)
        with ParallelExecutor(
            ExecutorConfig(jobs=2, shared_circuits=True)
        ) as shm_ex:
            shm_results = {
                r.output: r.chains for r in shm_ex.sweep_circuit(circuit)
            }
        pickle_ex = ParallelExecutor(ExecutorConfig(jobs=2))
        pickle_results = {
            r.output: r.chains for r in pickle_ex.sweep_circuit(circuit)
        }
        assert shm_results == pickle_results

    def test_shm_publish_happens_once_per_circuit(self):
        from repro.daemon.shm import shared_memory_available

        if not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        circuit = table1_suite()["alu2"].circuit(SCALE)
        metrics = MetricsRegistry()
        with ParallelExecutor(
            ExecutorConfig(jobs=2, shared_circuits=True), metrics=metrics
        ) as ex:
            ex.sweep_circuit(circuit)
            ex.sweep_circuit(circuit)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["shm.publishes"] == 1
        assert snapshot["counters"].get("executor.shm_attaches", 0) >= 1

    def test_close_unlinks_segments(self):
        from repro.daemon.shm import shared_memory_available

        if not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        circuit = table1_suite()["comp"].circuit(SCALE)
        ex = ParallelExecutor(ExecutorConfig(jobs=2, shared_circuits=True))
        ex.sweep_circuit(circuit)
        ex.close()
        if os.path.isdir("/dev/shm"):
            assert [
                f for f in os.listdir("/dev/shm") if f.startswith("rpro_")
            ] == []


class TestPrefilterConfig:
    """prefilter= threads from ExecutorConfig to every worker path."""

    def test_unknown_prefilter_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(prefilter="turbo")

    def test_none_prefilter_default(self):
        assert ExecutorConfig().prefilter == "none"
        assert ExecutorConfig(prefilter="biconn").prefilter == "biconn"

    def test_inprocess_sweep_identical_with_prefilter(self):
        from repro.circuits import get_sequential
        from repro.graph.sequential import extract_combinational_core

        circuit = extract_combinational_core(
            get_sequential("s_lfsr", scale=0.25)
        )
        plain = ParallelExecutor(
            ExecutorConfig(jobs=1, prefilter="none")
        ).sweep_circuit(circuit)
        metrics = MetricsRegistry()
        filtered = ParallelExecutor(
            ExecutorConfig(jobs=1, prefilter="biconn"), metrics=metrics
        ).sweep_circuit(circuit)
        assert [(r.output, r.chains) for r in plain] == [
            (r.output, r.chains) for r in filtered
        ]
        counters = metrics.snapshot()["counters"]
        assert counters.get("core.prefilter_certified", 0) > 0

    def test_pool_sweep_identical_with_prefilter(self):
        from repro.circuits import get_sequential
        from repro.graph.sequential import extract_combinational_core

        circuit = extract_combinational_core(
            get_sequential("s_shift", scale=0.25)
        )
        plain = ParallelExecutor(
            ExecutorConfig(jobs=2, prefilter="none")
        ).sweep_circuit(circuit)
        filtered = ParallelExecutor(
            ExecutorConfig(jobs=2, prefilter="biconn")
        ).sweep_circuit(circuit)
        assert [(r.output, r.chains) for r in plain] == [
            (r.output, r.chains) for r in filtered
        ]


class TestSequentialSweep:
    def test_core_view(self):
        from repro.service import sweep_sequential_suite

        report = sweep_sequential_suite(
            ParallelExecutor(ExecutorConfig(jobs=1)), scale=0.25
        )
        assert [c.name for c in report.circuits] == [
            "s_shift", "s_lfsr", "s_alu",
        ]
        assert all(c.cones > 0 for c in report.circuits)

    def test_unroll_view_labels_and_names(self):
        from repro.service import sweep_sequential_suite

        report = sweep_sequential_suite(
            ParallelExecutor(ExecutorConfig(jobs=1)),
            names=["s_shift"],
            scale=0.25,
            view=("unroll", 3),
        )
        assert [c.name for c in report.circuits] == ["s_shift:u3"]

    def test_unknown_view_rejected(self):
        from repro.service import sweep_sequential_suite

        with pytest.raises(ValueError):
            sweep_sequential_suite(
                ParallelExecutor(ExecutorConfig(jobs=1)), view=("frames", 2)
            )
