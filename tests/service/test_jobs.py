"""Tests for request deduplication and batching."""

from repro.service import ChainRequest, JobQueue


def req(key="c1", output="o1", target=None, rid=None):
    return ChainRequest(key, output, target, rid)


class TestDedup:
    def test_identical_requests_collapse(self):
        q = JobQueue()
        assert q.submit(req(target="a")) is True
        assert q.submit(req(target="a")) is False
        assert len(q) == 1
        assert q.stats.submitted == 2
        assert q.stats.deduplicated == 1

    def test_distinct_targets_do_not_collapse(self):
        q = JobQueue()
        q.submit(req(target="a"))
        q.submit(req(target="b"))
        q.submit(req(target=None))
        assert len(q) == 3

    def test_request_id_does_not_affect_dedup(self):
        q = JobQueue()
        q.submit(req(target="a", rid="r1"))
        assert q.submit(req(target="a", rid="r2")) is False


class TestBatching:
    def test_same_cone_merges_with_sorted_targets(self):
        q = JobQueue()
        q.submit(req(target="b"))
        q.submit(req(target="a"))
        batches = q.drain()
        assert len(batches) == 1
        assert batches[0].targets == ("a", "b")

    def test_all_targets_request_absorbs_singles(self):
        q = JobQueue()
        q.submit(req(target="a"))
        q.submit(req(target=None))
        q.submit(req(target="b"))
        (batch,) = q.drain()
        assert batch.all_targets
        assert batch.targets is None

    def test_different_cones_stay_separate(self):
        q = JobQueue()
        q.submit(req(output="o1", target="a"))
        q.submit(req(output="o2", target="a"))
        q.submit(req(key="c2", output="o1", target="a"))
        batches = q.drain()
        assert len(batches) == 3
        assert [(b.circuit_key, b.output) for b in batches] == [
            ("c1", "o1"),
            ("c1", "o2"),
            ("c2", "o1"),
        ]

    def test_request_ids_fan_back_including_duplicates(self):
        q = JobQueue()
        q.submit(req(target="a", rid="r1"))
        q.submit(req(target="a", rid="r2"))  # duplicate subproblem
        (batch,) = q.drain()
        assert batch.request_ids == ["r1", "r2"]

    def test_drain_resets_queue(self):
        q = JobQueue()
        q.submit(req(target="a"))
        q.drain()
        assert len(q) == 0
        assert q.drain() == []
        assert q.stats.batches == 1
        # resubmitting after a drain is fresh, not a duplicate
        assert q.submit(req(target="a")) is True
