"""Unit tests for the shared cone index building blocks.

The end-to-end backend equivalence lives in
``tests/property/test_differential.py``; these tests pin the individual
pieces — the topological single-pass dominator engine, both
:class:`RegionMatcher` engines against the reference SNCA, and the
extracted region views against the legacy subgraph builder.
"""

import random

import pytest

from repro.circuits.generators import random_single_output
from repro.dominators import dsu
from repro.dominators.lengauer_tarjan import UNREACHABLE
from repro.dominators.shared import (
    RegionMatcher,
    RegionView,
    SharedConeIndex,
    topo_cone_idoms,
    validate_backend,
)
from repro.dominators.single import circuit_dominator_tree
from repro.errors import ChainConstructionError, CircuitError
from repro.graph import IndexedGraph, NodeType
from repro.graph.circuit import Circuit
from repro.graph.transform import region_between


def _graph(seed, gates=25):
    circuit = random_single_output(4, gates, seed=seed)
    return IndexedGraph.from_circuit(circuit, circuit.outputs[0])


class TestValidateBackend:
    def test_accepts_known(self):
        assert validate_backend("shared") == "shared"
        assert validate_backend("legacy") == "legacy"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_backend("turbo")


class TestTopoConeIdoms:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_full_algorithm_on_cones(self, seed):
        graph = _graph(seed)
        idoms = topo_cone_idoms(graph)
        # from_circuit numbers cones topologically with the root last,
        # so the single-pass engine must engage (a silent None here
        # would mean the fast path never runs in production).
        assert idoms is not None
        assert idoms == circuit_dominator_tree(graph).idom

    def test_none_when_root_not_last(self):
        g = IndexedGraph([[], [0]], root=0)
        assert topo_cone_idoms(g) is None

    def test_none_on_descending_edge(self):
        # 1 -> 0 -> 2 is a fine DAG but not in ascending id order.
        g = IndexedGraph([[2], [0], []], root=2)
        assert topo_cone_idoms(g) is None

    def test_none_when_vertex_misses_root(self):
        # Vertex 1 has no fanout: not a cone, fall back to the full
        # algorithm (which tolerates unreachable vertices).
        g = IndexedGraph([[2], [], []], root=2)
        assert topo_cone_idoms(g) is None


def _reference_vector(region, excl, w_start):
    """Matching vector via the reference SNCA on the region's arrays."""
    idoms = dsu.compute_idoms(
        region.n, region.pred, region.root, pred=region.succ, exclude=excl
    )
    if idoms[w_start] == UNREACHABLE:
        return None
    out = []
    x = w_start
    while x != region.root:
        out.append(x)
        x = idoms[x]
    return out


def _shuffle_region(region, rng):
    """The same region under a random id permutation (breaks topo order)."""
    perm = list(range(region.n))
    rng.shuffle(perm)
    succ = [[] for _ in range(region.n)]
    for v, ws in enumerate(region.succ):
        for w in ws:
            succ[perm[v]].append(perm[w])
    return RegionView(succ, root=perm[region.root]), perm


def _regions_of(graph):
    """Every nontrivial search region along every PI's idom chain."""
    index = SharedConeIndex.for_graph(graph, "lt")
    tree = index.tree
    out = []
    seen = set()
    for u in graph.sources():
        chain = tree.chain(u)
        for start, sink in zip(chain, chain[1:]):
            if (start, sink) in seen:
                continue
            seen.add((start, sink))
            view, _, local_start = index.extract_region(start, sink)
            if view.n > 2:
                out.append((view, local_start))
    return out


class TestRegionMatcher:
    @pytest.mark.parametrize("seed", range(6))
    def test_topo_engine_matches_reference(self, seed):
        for view, local_start in _regions_of(_graph(seed)):
            matcher = RegionMatcher(view)
            assert matcher._topo  # extracted regions keep ascending ids
            self._check_all_queries(view, matcher)

    @pytest.mark.parametrize("seed", range(6))
    def test_snca_fallback_matches_reference(self, seed):
        rng = random.Random(f"shared-region:{seed}")
        for view, _ in _regions_of(_graph(seed)):
            shuffled, _ = _shuffle_region(view, rng)
            matcher = RegionMatcher(shuffled)
            self._check_all_queries(shuffled, matcher)

    @staticmethod
    def _check_all_queries(view, matcher):
        for excl in range(view.n):
            if excl == view.root:
                continue
            for w_start in range(view.n):
                if w_start in (excl, view.root):
                    continue
                expected = _reference_vector(view, excl, w_start)
                if expected is None:
                    with pytest.raises(ChainConstructionError):
                        matcher.matching_vector(excl, w_start)
                else:
                    got = matcher.matching_vector(excl, w_start)
                    assert got == expected, (excl, w_start)


class TestForGraphCache:
    """Regression: the per-graph index cache used to hold a single slot
    keyed only by version, so interleaving two configurations — exactly
    what the differential oracle and mixed service queries do — rebuilt
    the index (tree, scratch arrays and all) on every call."""

    def test_identity_across_interleaved_configs(self):
        graph = _graph(0)
        first_lt = SharedConeIndex.for_graph(graph, "lt")
        first_it = SharedConeIndex.for_graph(graph, "iterative")
        # Interleave the two configurations; both must keep returning
        # the exact same object, not a rebuild.
        for _ in range(3):
            assert SharedConeIndex.for_graph(graph, "lt") is first_lt
            assert (
                SharedConeIndex.for_graph(graph, "iterative") is first_it
            )
        assert first_lt is not first_it

    def test_interleaved_kernels_keys(self):
        pytest.importorskip("numpy")
        graph = _graph(1)
        py = SharedConeIndex.for_graph(graph, "lt", kernels="python")
        np_ = SharedConeIndex.for_graph(graph, "lt", kernels="numpy")
        assert py is not np_
        for _ in range(3):
            assert (
                SharedConeIndex.for_graph(graph, "lt", kernels="python")
                is py
            )
            assert (
                SharedConeIndex.for_graph(graph, "lt", kernels="numpy")
                is np_
            )

    def test_version_bump_drops_whole_cache(self):
        graph = _graph(2)
        stale = SharedConeIndex.for_graph(graph, "lt")
        graph.version += 1
        fresh = SharedConeIndex.for_graph(graph, "lt")
        assert fresh is not stale
        assert SharedConeIndex.for_graph(graph, "lt") is fresh

    def test_tolerates_external_reset(self):
        # bench harnesses cold-start by assigning the legacy None.
        graph = _graph(3)
        first = SharedConeIndex.for_graph(graph, "lt")
        graph._shared_index = None
        second = SharedConeIndex.for_graph(graph, "lt")
        assert second is not first
        assert SharedConeIndex.for_graph(graph, "lt") is second


class TestExtractRegionErrors:
    def test_same_vertex_is_a_distinct_error(self):
        graph = _graph(0)
        index = SharedConeIndex.for_graph(graph, "lt")
        with pytest.raises(CircuitError, match="same vertex"):
            index.extract_region(graph.root, graph.root)

    def test_unreachable_sink_keeps_its_message(self):
        # Two parallel branches: ``g1`` never reaches ``g2``.
        c = Circuit("parallel")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_gate("g1", NodeType.AND, [a, b])
        c.add_gate("g2", NodeType.OR, [b, a])
        c.add_gate("root", NodeType.XOR, ["g1", "g2"])
        c.set_outputs(["root"])
        graph = IndexedGraph.from_circuit(c)
        index = SharedConeIndex.for_graph(graph)
        g1, g2 = graph.index_of("g1"), graph.index_of("g2")
        lo, hi = min(g1, g2), max(g1, g2)
        with pytest.raises(CircuitError, match="not reachable"):
            index.extract_region(lo, hi)


class TestExtractRegion:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_legacy_region_between(self, seed):
        graph = _graph(seed)
        index = SharedConeIndex.for_graph(graph, "lt")
        tree = index.tree
        for u in graph.sources():
            chain = tree.chain(u)
            for start, sink in zip(chain, chain[1:]):
                view, orig_of, local_start = index.extract_region(
                    start, sink
                )
                sub, legacy_orig = region_between(graph, start, sink)
                assert orig_of == legacy_orig
                assert view.n == sub.n
                assert view.root == sub.root
                assert orig_of[local_start] == start
                for v in range(view.n):
                    assert sorted(view.succ[v]) == sorted(sub.succ[v])
                    assert sorted(view.pred[v]) == sorted(sub.pred[v])
