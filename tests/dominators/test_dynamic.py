"""Unit tests for the dynamic dominator maintainer and low-high orders.

The maintainer's contract is exact equivalence with a static recompute
on the post-edit graph; the low-high module's contract is that an empty
verification *certifies* a tree and that corrupted trees are rejected.
"""

import random

import pytest

from repro.circuits.generators.random_dag import random_circuit
from repro.dominators.dynamic import (
    EDGE_ADD,
    EDGE_REMOVE,
    VERTEX_ADD,
    VERTEX_REMOVE,
    DynamicDominators,
    LowHighError,
    certify_tree,
    compute_low_high,
    validate_engine,
    verify_low_high,
)
from repro.dominators.lengauer_tarjan import UNREACHABLE
from repro.dominators.single import circuit_idoms
from repro.dominators.tree import DominatorTree
from repro.errors import UnreachableVertexError
from repro.graph.indexed import IndexedGraph


def _graph(seed, gates=40, inputs=6):
    circuit = random_circuit(num_inputs=inputs, num_gates=gates, seed=seed)
    return IndexedGraph.from_circuit(circuit)


def _assert_consistent(maintainer):
    """idom matches a static recompute; depths/children match idom."""
    graph = maintainer.graph
    expected = circuit_idoms(graph, "dsu")
    assert maintainer.idom == expected
    for v, p in enumerate(maintainer.idom):
        if v == graph.root or p == UNREACHABLE:
            continue
        assert maintainer.depth[v] == maintainer.depth[p] + 1
        assert v in maintainer.children[p]
    assert maintainer.certificate() == []


def _random_mutation(rng, graph, deltas, counter):
    """One valid in-place graph mutation, recording its deltas."""
    alive = [v for v in range(graph.n) if graph.is_alive(v) and v != graph.root]
    roll = rng.random()
    if roll < 0.3 and len(alive) > 6:
        for _ in range(10):
            v = rng.choice(alive)
            try:
                old_preds = list(graph.pred[v])
                old_succs = list(graph.succ[v])
                graph.kill_vertex(v)
            except Exception:
                continue
            for p in old_preds:
                deltas.append((EDGE_REMOVE, p, v))
            for s in old_succs:
                deltas.append((EDGE_REMOVE, v, s))
            deltas.append((VERTEX_REMOVE, v))
            return
    if roll < 0.6 and len(alive) > 4:
        for _ in range(10):
            v = rng.choice([u for u in alive if graph.pred[u]] or alive)
            pool = [u for u in alive if u != v]
            fanins = rng.sample(pool, min(len(pool), rng.randint(1, 3)))
            old_preds = list(graph.pred[v])
            try:
                graph.set_fanins(v, fanins)
            except Exception:
                continue
            for p in old_preds:
                deltas.append((EDGE_REMOVE, p, v))
            for f in fanins:
                deltas.append((EDGE_ADD, f, v))
            return
    fanins = rng.sample(alive, min(len(alive), rng.randint(1, 3)))
    v = graph.add_vertex(f"dyn_{counter}")
    deltas.append((VERTEX_ADD, v))
    for f in fanins:
        graph.add_edge(f, v)
        deltas.append((EDGE_ADD, f, v))


@pytest.mark.parametrize("seed", range(8))
def test_maintainer_matches_static_over_edit_stream(seed):
    rng = random.Random(seed)
    graph = _graph(seed)
    maintainer = DynamicDominators(graph)
    _assert_consistent(maintainer)
    for step in range(15):
        deltas = []
        for sub in range(rng.randint(1, 3)):  # coalesced batch
            _random_mutation(rng, graph, deltas, f"{seed}_{step}_{sub}")
        maintainer.apply_batch(deltas)
        _assert_consistent(maintainer)
    assert maintainer.stats.batches > 0


def test_lateral_reparent_batch_updates_downstream_nca():
    """Regression: same-depth re-parenting must reach dependent folds.

    One batch rewires vertex 1 onto 5 and vertex 2 onto 3: vertex 3
    re-parents *laterally* (idom 1 -> 2 at unchanged depth), leaving
    its subtree's ``(idom, depth)`` pairs intact while the NCA of the
    reconvergent sink 6 (flow preds 4 and 5) moves from 1 to the root.
    Pruning on direct predecessor ``(idom, depth)`` changes alone
    silently kept the stale ``idom[6] = 1`` here; the dirty-ancestor
    propagation must re-fold 6.
    """
    graph = IndexedGraph([[], [0], [0], [1], [3], [1], [4, 5]], root=0)
    maintainer = DynamicDominators(graph, max_region_fraction=1.0)
    maintainer.MIN_REGION = graph.n + 1  # never fall back to a rebuild
    assert maintainer.idom[6] == 1
    deltas = []
    for v, fanins in ((1, [5]), (2, [3])):
        old = list(graph.pred[v])
        graph.set_fanins(v, fanins)
        deltas.extend((EDGE_REMOVE, p, v) for p in old)
        deltas.extend((EDGE_ADD, f, v) for f in fanins)
    assert maintainer.apply_batch(deltas) is not None  # swept, no rebuild
    assert maintainer.idom[3] == 2  # the lateral re-parent itself
    assert maintainer.idom[6] == 0  # the downstream fold it must reach
    _assert_consistent(maintainer)


@pytest.mark.parametrize("seed", range(6))
def test_maintainer_matches_static_without_fallback(seed):
    """Deletion-heavy streams with the rebuild fallback disabled.

    The random-stream test above can mask sweep bugs behind threshold
    rebuilds; this variant forces every batch through the pruned region
    sweep, so any unsound pruning shows up as an idom mismatch.
    """
    rng = random.Random(1000 + seed)
    graph = _graph(seed, gates=30)
    maintainer = DynamicDominators(graph, max_region_fraction=1.0)
    maintainer.MIN_REGION = 10**9
    for step in range(12):
        deltas = []
        for sub in range(rng.randint(1, 4)):
            _random_mutation(rng, graph, deltas, f"nf_{seed}_{step}_{sub}")
        maintainer.apply_batch(deltas)
        _assert_consistent(maintainer)
    assert maintainer.stats.fallback_rebuilds == 0


def test_empty_batch_is_free():
    graph = _graph(1)
    maintainer = DynamicDominators(graph)
    assert maintainer.apply_batch([]) == set()
    # opposite records cancel before any work happens
    v, w = graph.root, next(iter(graph.pred[graph.root]))
    cancelling = [(EDGE_ADD, w, v), (EDGE_REMOVE, w, v)]
    assert maintainer.apply_batch(cancelling) == set()
    assert maintainer.stats.batches == 0


def test_single_insert_with_unreachable_tail_short_circuits():
    graph = _graph(2)
    maintainer = DynamicDominators(graph)
    # A fresh vertex with no fanout cannot reach the root: an edge INTO
    # it (signal target = flow tail) lies on no root path.
    orphan = graph.add_vertex("orphan")
    src = next(v for v in range(graph.n) if graph.is_alive(v) and v != orphan)
    maintainer.apply_batch([(VERTEX_ADD, orphan)])
    before = list(maintainer.idom)
    graph.add_edge(src, orphan)
    region = maintainer.apply_batch([(EDGE_ADD, src, orphan)])
    assert region is not None
    assert maintainer.idom == before
    assert maintainer.stats.dbs_insertions == 0 or maintainer.idom == before
    _assert_consistent(maintainer)


def test_fallback_rebuild_over_region_threshold():
    graph = _graph(3, gates=30)
    maintainer = DynamicDominators(graph, max_region_fraction=0.0)
    maintainer.MIN_REGION = 0  # force the fractional gate on a small cone
    rng = random.Random(3)
    deltas = []
    _random_mutation(rng, graph, deltas, "fb")
    assert maintainer.apply_batch(deltas) is None
    assert maintainer.stats.fallback_rebuilds == 1
    _assert_consistent(maintainer)


def test_dynamic_tree_matches_dominator_tree():
    graph = _graph(4)
    maintainer = DynamicDominators(graph)
    live = maintainer.tree
    static = DominatorTree(circuit_idoms(graph, "dsu"), graph.root)
    assert live.idom == static.idom
    assert live.root == static.root
    reachable = [v for v in range(graph.n) if static.is_reachable(v)]
    assert sorted(live.iter_reachable()) == reachable
    for v in reachable:
        assert live.is_reachable(v)
        assert live.chain(v) == static.chain(v)
        assert live.depth(v) == static.depth(v)
        assert live.children(v) == static.children(v)
    for a in reachable[:12]:
        for b in reachable[:12]:
            assert live.dominates(a, b) == static.dominates(a, b)
            assert live.strictly_dominates(a, b) == static.strictly_dominates(
                a, b
            )
    dead = next(
        (v for v in range(graph.n) if not static.is_reachable(v)), None
    )
    if dead is not None:
        with pytest.raises(UnreachableVertexError):
            live.chain(dead)


def test_validate_engine_rejects_unknown():
    assert validate_engine("patch") == "patch"
    assert validate_engine("dynamic") == "dynamic"
    with pytest.raises(ValueError, match="unknown engine"):
        validate_engine("bogus")


# ----------------------------------------------------------------------
# low-high orders
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_low_high_certifies_true_trees(seed):
    graph = _graph(seed, gates=35)
    idom = circuit_idoms(graph, "dsu")
    delta = compute_low_high(graph, idom)
    assert verify_low_high(graph, idom, delta) == []
    assert certify_tree(graph, idom) == []


@pytest.mark.parametrize("seed", range(10))
def test_low_high_rejects_corrupted_trees(seed):
    """Re-parenting any vertex yields a certificate failure.

    The dominator tree of a graph is unique, so *every* array that
    differs from the true tree must either break the construction or
    fail verification.
    """
    graph = _graph(seed, gates=35)
    idom = circuit_idoms(graph, "dsu")
    rng = random.Random(seed)
    deep = [
        v
        for v in range(graph.n)
        if v != graph.root
        and idom[v] != UNREACHABLE
        and idom[v] != graph.root
    ]
    if not deep:
        pytest.skip("no vertex below depth 1 in this draw")
    corrupted = 0
    for _ in range(5):
        v = rng.choice(deep)
        bad = list(idom)
        bad[v] = idom[idom[v]]  # hoist to the grandparent
        assert certify_tree(graph, bad) != []
        corrupted += 1
    assert corrupted == 5


def test_low_high_rejects_wrong_reachable_span():
    graph = _graph(11)
    idom = circuit_idoms(graph, "dsu")
    unreachable = next(
        (
            v
            for v in range(graph.n)
            if idom[v] == UNREACHABLE and graph.is_alive(v)
        ),
        None,
    )
    if unreachable is None:
        graph.add_vertex("floating")
        idom = circuit_idoms(graph, "dsu")
        unreachable = graph.n - 1
    bad = list(idom)
    bad[unreachable] = graph.root  # claims an unreachable vertex
    assert certify_tree(graph, bad) != []


def test_low_high_construction_rejects_broken_parents():
    graph = _graph(12)
    idom = circuit_idoms(graph, "dsu")
    bad = list(idom)
    bad[graph.root] = UNREACHABLE
    with pytest.raises(LowHighError):
        compute_low_high(graph, bad)
    assert certify_tree(graph, bad) != []


def test_low_high_construction_rejects_parent_cycle():
    """Regression: idom links forming a cycle off the root must raise a
    LowHighError, not leak a KeyError out of the placement pass."""
    graph = IndexedGraph(
        [[], [0], [1, 0], [1, 0], [3], [2], [3], [0, 5], [5]], root=0
    )
    bad = [0, 0, 0, 0, 3, 8, 8, 0, 5]  # 5 -> 8 -> 5 never reaches the root
    with pytest.raises(LowHighError, match="does not reach the root"):
        compute_low_high(graph, bad)
    assert certify_tree(graph, bad) != []


def test_low_high_construction_rejects_unplaced_derived_sibling():
    """Regression: a corrupted tree can ask for a derived sibling that
    is not placed yet; that must surface as a LowHighError (so
    certify_tree reports a violation) instead of a raw ValueError from
    ``placed.index``."""
    graph = IndexedGraph([[], [0], [1, 0], [0], [1, 3], [0], [3, 0]], root=0)
    bad = [0, 0, 0, 6, 0, 1, 0]  # true idom[3] is 0; 6 is topo-after 4
    with pytest.raises(LowHighError, match="is not placed before it"):
        compute_low_high(graph, bad)
    assert certify_tree(graph, bad) != []
