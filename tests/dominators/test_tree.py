"""Tests for the DominatorTree wrapper."""

import pytest

from repro.circuits.generators import random_single_output
from repro.dominators import DominatorTree, circuit_dominator_tree
from repro.errors import UnreachableVertexError
from repro.graph import IndexedGraph


def _tree(fig2_graph):
    return circuit_dominator_tree(fig2_graph)


class TestQueries:
    def test_dominates_matches_chain(self, fig2_graph):
        tree = _tree(fig2_graph)
        g = fig2_graph
        for v in range(g.n):
            chain = set(tree.chain(v))
            for w in range(g.n):
                assert tree.dominates(w, v) == (w in chain)

    def test_strict_dominators(self, fig2_graph):
        g = fig2_graph
        tree = _tree(g)
        u = g.index_of("u")
        assert [g.name_of(x) for x in tree.strict_dominators(u)] == [
            "t",
            "f",
        ]

    def test_depth(self, fig2_graph):
        g = fig2_graph
        tree = _tree(g)
        assert tree.depth(g.root) == 0
        assert tree.depth(g.index_of("t")) == 1
        assert tree.depth(g.index_of("u")) == 2

    def test_children_partition(self, fig2_graph):
        tree = _tree(fig2_graph)
        seen = set()
        for v in tree.iter_reachable():
            for c in tree.children(v):
                assert c not in seen
                seen.add(c)
        assert len(seen) == fig2_graph.n - 1  # everyone except the root

    def test_dominated_by(self, fig2_graph):
        g = fig2_graph
        tree = _tree(g)
        t_set = {g.name_of(v) for v in tree.dominated_by(g.index_of("t"))}
        assert t_set == {"t", "u", "a", "b", "c", "d", "e", "g", "h"}

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            DominatorTree([1, 1], root=0)

    def test_unreachable_vertex_raises(self):
        # Vertex 2 unreachable: idom = -1.
        tree = DominatorTree([0, 0, -1], root=0)
        assert not tree.is_reachable(2)
        with pytest.raises(UnreachableVertexError):
            tree.chain(2)
        with pytest.raises(UnreachableVertexError):
            tree.depth(2)

    @pytest.mark.parametrize("seed", range(5))
    def test_interval_query_equals_walk(self, seed):
        graph = IndexedGraph.from_circuit(
            random_single_output(4, 30, seed=seed)
        )
        tree = circuit_dominator_tree(graph)
        for v in range(graph.n):
            ancestors = set(tree.chain(v))
            for w in range(graph.n):
                assert tree.dominates(w, v) == (w in ancestors)
                assert tree.strictly_dominates(w, v) == (
                    w in ancestors and w != v
                )
