"""Tests for the three single-vertex dominator algorithms.

Lengauer–Tarjan, the CHK iterative algorithm and the naive set-based
fixpoint must agree on every graph; the naive version is additionally
checked against hand-computed dominator sets on classic flow graphs.
"""

import random

import pytest

from repro.dominators import UNREACHABLE, iterative, lengauer_tarjan, naive

ALGOS = [lengauer_tarjan.compute_idoms, iterative.compute_idoms, naive.compute_idoms]


def _random_flowgraph(n, extra_edges, seed, allow_back=True):
    """A random connected-ish digraph (not necessarily acyclic)."""
    rng = random.Random(seed)
    succ = [[] for _ in range(n)]
    for v in range(1, n):
        succ[rng.randrange(v)].append(v)  # spanning structure from 0
    for _ in range(extra_edges):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and (allow_back or a < b):
            succ[a].append(b)
    return succ


class TestKnownGraphs:
    def test_diamond(self):
        #   0 -> 1 -> 3, 0 -> 2 -> 3
        succ = [[1, 2], [3], [3], []]
        for algo in ALGOS:
            idom = algo(4, succ, 0)
            assert idom == [0, 0, 0, 0]

    def test_linear_chain(self):
        succ = [[1], [2], [3], []]
        for algo in ALGOS:
            assert algo(4, succ, 0) == [0, 0, 1, 2]

    def test_unreachable_marked(self):
        succ = [[1], [], [1]]  # vertex 2 unreachable from 0
        for algo in ALGOS:
            idom = algo(3, succ, 0)
            assert idom[2] == UNREACHABLE
            assert idom[1] == 0

    def test_loop_graph(self):
        """Cycles are fine for flow-graph dominators (0->1->2->1, 1->3)."""
        succ = [[1], [2, 3], [1], []]
        for algo in ALGOS:
            assert algo(4, succ, 0) == [0, 0, 1, 1]

    def test_classic_lt_example(self):
        """The irreducible example from the Lengauer–Tarjan paper family:
        two entries into a loop; idoms collapse to the branch point."""
        # 0 -> 1, 0 -> 2; 1 -> 3; 2 -> 3; 3 -> 1 (back edge)
        succ = [[1, 2], [3], [3], [1]]
        for algo in ALGOS:
            assert algo(4, succ, 0) == [0, 0, 0, 0]


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(25))
    def test_all_algorithms_agree_on_digraphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 40)
        succ = _random_flowgraph(n, extra_edges=rng.randint(0, 2 * n), seed=seed)
        results = [algo(n, succ, 0) for algo in ALGOS]
        assert results[0] == results[1] == results[2]

    @pytest.mark.parametrize("seed", range(10))
    def test_idom_is_a_dominator(self, seed):
        """idom(v) lies on every 0→v path (checked by path sampling of
        the dominator-set definition via the naive algorithm)."""
        rng = random.Random(seed + 99)
        n = rng.randint(4, 25)
        succ = _random_flowgraph(n, extra_edges=n, seed=seed + 99)
        dom_sets = naive.dominator_sets(n, succ, 0)
        idoms = lengauer_tarjan.compute_idoms(n, succ, 0)
        for v in range(1, n):
            if dom_sets[v] is None:
                assert idoms[v] == UNREACHABLE
            else:
                assert idoms[v] in dom_sets[v]
                # The idom is the strict dominator with maximal set.
                strict = dom_sets[v] - {v}
                assert all(
                    len(dom_sets[idoms[v]]) >= len(dom_sets[d])
                    for d in strict
                )

    def test_precomputed_pred_equivalent(self):
        succ = [[1, 2], [3], [3], []]
        pred = [[], [0], [0], [1, 2]]
        assert lengauer_tarjan.compute_idoms(
            4, succ, 0, pred=pred
        ) == lengauer_tarjan.compute_idoms(4, succ, 0)


class TestRpo:
    def test_reverse_post_order(self):
        succ = [[1, 2], [3], [3], []]
        rpo = iterative.reverse_post_order(4, succ, 0)
        assert rpo[0] == 0
        assert rpo.index(3) > rpo.index(1)
        assert rpo.index(3) > rpo.index(2)
        assert set(rpo) == {0, 1, 2, 3}
