"""Unit tests for the numpy kernels behind ``kernels="numpy"``.

Each kernel is pinned against its pure-python counterpart on the same
regions: extraction against ``SharedConeIndex.extract_region``, the
flow kernel against :class:`RegionCutSolver`, the bitset matcher
against :class:`RegionMatcher`, and the guarded tree pass against the
plain topological sweep.  End-to-end bit-identity across random
netlists lives in ``tests/property/test_kernel_equivalence.py``; the
checks here are the component-level ones plus the dispatch gates
(region threshold, byte cap, numpy-less fallback).
"""

import pytest

from repro.check import diff_chains
from repro.circuits.generators import mixing_pipeline, random_single_output
from repro.core.algorithm import ChainComputer
from repro.dominators import kernels as kernels_mod
from repro.dominators.kernels import (
    KERNELS,
    KernelConeIndex,
    KernelRegionMatcher,
    counting_vector,
    forced_region_threshold,
    guarded_cone_idoms,
    kernel_expand_region,
    kernel_min_cut,
    numpy_available,
    require_numpy,
    validate_kernels,
)
from repro.dominators.shared import (
    RegionMatcher,
    SharedConeIndex,
    topo_cone_idoms,
)
from repro.errors import (
    ChainConstructionError,
    CircuitError,
    FlowError,
)
from repro.flow.vertex_cut import RegionCutSolver
from repro.graph import IndexedGraph, NodeType
from repro.graph.circuit import Circuit

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


def _graph(seed, gates=25):
    circuit = random_single_output(4, gates, seed=seed)
    return IndexedGraph.from_circuit(circuit, circuit.outputs[0])


def _pipe_graph(stages=3, width=6, seed=3):
    circuit = mixing_pipeline(stages, width, seed=seed)
    return IndexedGraph.from_circuit(circuit, circuit.outputs[0])


def _chain_regions(graph):
    """Every distinct (start, sink) region along every PI's idom chain."""
    index = SharedConeIndex.for_graph(graph, "lt")
    seen = set()
    for u in graph.sources():
        chain = index.tree.chain(u)
        seen.update(zip(chain, chain[1:]))
    return index, sorted(seen)


class TestValidateKernels:
    def test_accepts_known(self):
        for kernels in KERNELS:
            assert validate_kernels(kernels) == kernels

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernels"):
            validate_kernels("cupy")


class TestForcedThreshold:
    def test_overrides_and_restores(self):
        before = kernels_mod.MIN_KERNEL_REGION
        with forced_region_threshold(0):
            assert kernels_mod.MIN_KERNEL_REGION == 0
        assert kernels_mod.MIN_KERNEL_REGION == before

    def test_restores_on_exception(self):
        before = kernels_mod.MIN_KERNEL_REGION
        with pytest.raises(RuntimeError):
            with forced_region_threshold(7):
                raise RuntimeError("boom")
        assert kernels_mod.MIN_KERNEL_REGION == before


class TestNumpyGate:
    def test_available_has_no_gate(self):
        if numpy_available():
            require_numpy()  # must not raise

    def test_require_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_np", None)
        assert not numpy_available()
        with pytest.raises(CircuitError, match="numpy is not installed"):
            require_numpy()
        # The selector itself stays usable for the python fallback.
        assert validate_kernels("python") == "python"

    def test_chain_computer_rejects_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_np", None)
        with pytest.raises(CircuitError, match="numpy is not installed"):
            ChainComputer(_graph(0), kernels="numpy")

    @needs_numpy
    def test_numpy_kernels_need_shared_index(self):
        graph = _graph(0)
        with pytest.raises(ValueError, match="shared cone index"):
            ChainComputer(graph, backend="legacy", kernels="numpy")
        with pytest.raises(ValueError, match="shared cone index"):
            ChainComputer(
                graph,
                backend="shared",
                shared_index=False,
                tree=ChainComputer(graph).tree,
                kernels="numpy",
            )


class TestGuardedConeIdoms:
    # Pure python: these run (and must pass) with or without numpy.

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_topo_sweep(self, seed):
        graph = _graph(seed)
        assert guarded_cone_idoms(graph) == topo_cone_idoms(graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_snca_fallback_same_idoms(self, seed):
        # budget_factor=0 exhausts the budget on the first NCA step, so
        # any graph with a reconvergence goes through the SNCA escape;
        # the idoms must not change (they are unique).
        graph = _graph(seed)
        assert guarded_cone_idoms(graph, budget_factor=0) == (
            topo_cone_idoms(graph)
        )

    def test_none_when_root_not_last(self):
        g = IndexedGraph([[], [0]], root=0)
        assert guarded_cone_idoms(g) is None

    def test_none_on_descending_edge(self):
        g = IndexedGraph([[2], [0], []], root=2)
        assert guarded_cone_idoms(g) is None

    def test_none_when_vertex_misses_root(self):
        g = IndexedGraph([[2], [], []], root=2)
        assert guarded_cone_idoms(g) is None


@needs_numpy
class TestKernelConeIndex:
    @pytest.mark.parametrize("seed", range(6))
    def test_extract_matches_python_members(self, seed):
        graph = _graph(seed)
        index, regions = _chain_regions(graph)
        kindex = KernelConeIndex(graph)
        for start, sink in regions:
            _, orig_of, _ = index.extract_region(start, sink)
            pmem = kindex.extract(start, sink)
            assert pmem is not None
            members = sorted(int(kindex.P[p]) for p in pmem)
            assert members == orig_of, (start, sink)
            assert kindex.window(start, sink) >= len(members)

    def test_extract_matches_on_wide_regions(self):
        graph = _pipe_graph()
        index, regions = _chain_regions(graph)
        kindex = KernelConeIndex(graph)
        assert regions, "pipeline must produce chain regions"
        for start, sink in regions:
            _, orig_of, _ = index.extract_region(start, sink)
            region = kindex.region(start, sink)
            assert region is not None
            assert region.members_sorted() == orig_of

    def test_extract_none_when_sink_unreachable(self):
        # Two parallel branches: input ``a`` never reaches gate ``g2``.
        c = Circuit("parallel")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_gate("g1", NodeType.AND, [a, b])
        c.add_gate("g2", NodeType.OR, [b, a])
        c.add_gate("root", NodeType.XOR, ["g1", "g2"])
        c.set_outputs(["root"])
        graph = IndexedGraph.from_circuit(c)
        kindex = KernelConeIndex(graph)
        g1, g2 = graph.index_of("g1"), graph.index_of("g2")
        lo, hi = min(g1, g2), max(g1, g2)
        assert kindex.extract(lo, hi) is None
        assert kindex.region(lo, hi) is None

    def test_bitset_bytes_formula(self):
        graph = _pipe_graph(stages=2, width=5)
        kindex = KernelConeIndex(graph)
        _, regions = _chain_regions(graph)
        for start, sink in regions:
            region = kindex.region(start, sink)
            if region is None:
                continue
            words = (region.r + 63) // 64
            assert region.bitset_bytes() == (region.r + 1) * words * 8


@needs_numpy
class TestKernelMinCut:
    def _region_pairs(self, graph):
        """(python view + solver inputs, kernel region) per chain region."""
        index, regions = _chain_regions(graph)
        kindex = KernelConeIndex(graph)
        for start, sink in regions:
            view, orig_of, local_start = index.extract_region(start, sink)
            if view.n <= 2:
                continue
            region = kindex.region(start, sink)
            assert region is not None
            yield view, orig_of, local_start, region, start

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_region_cut_solver(self, seed):
        for view, orig_of, local_start, region, start in self._region_pairs(
            _graph(seed)
        ):
            solver = RegionCutSolver(view, limit=3)
            expected = solver.min_cut([local_start])
            flow, cut = kernel_min_cut(region, [region.local_of[start]])
            assert flow == expected.flow
            if expected.cut is None:
                assert cut is None
            else:
                got = sorted(int(region.cone_ids[x]) for x in cut)
                assert got == [orig_of[x] for x in expected.cut]

    def test_matches_on_wide_regions(self):
        count = 0
        for view, orig_of, local_start, region, start in self._region_pairs(
            _pipe_graph()
        ):
            expected = RegionCutSolver(view, limit=3).min_cut([local_start])
            flow, cut = kernel_min_cut(region, [region.local_of[start]])
            assert flow == expected.flow
            if cut is not None:
                got = sorted(int(region.cone_ids[x]) for x in cut)
                assert got == [orig_of[x] for x in expected.cut]
                count += 1
        assert count, "pipeline regions must contain size-two cuts"

    def test_rejects_empty_sources(self):
        graph = _pipe_graph(stages=1, width=4)
        _, regions = _chain_regions(graph)
        region = KernelConeIndex(graph).region(*regions[0])
        with pytest.raises(FlowError, match="at least one source"):
            kernel_min_cut(region, [])

    def test_rejects_root_source(self):
        graph = _pipe_graph(stages=1, width=4)
        _, regions = _chain_regions(graph)
        region = KernelConeIndex(graph).region(*regions[0])
        with pytest.raises(FlowError, match="cannot be a flow source"):
            kernel_min_cut(region, [region.r - 1])


@needs_numpy
class TestKernelMatcher:
    # ``switch`` pins the adaptive matcher to one engine for every
    # query: a huge threshold keeps it on the counting engine, 1
    # graduates every exclusion to the bitset table immediately.
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "switch", [10**9, 1], ids=["counting", "bitset"]
    )
    def test_matches_python_matcher(self, seed, switch):
        graph = _graph(seed)
        index, regions = _chain_regions(graph)
        kindex = KernelConeIndex(graph)
        for start, sink in regions:
            view, orig_of, _ = index.extract_region(start, sink)
            if view.n <= 2:
                continue
            region = kindex.region(start, sink)
            python = RegionMatcher(view)
            kernel = KernelRegionMatcher(region)
            kernel._switch = switch
            for excl in range(view.n - 1):
                for w_start in range(view.n - 1):
                    if w_start == excl:
                        continue
                    try:
                        expected = [
                            orig_of[x]
                            for x in python.matching_vector(excl, w_start)
                        ]
                    except ChainConstructionError:
                        with pytest.raises(ChainConstructionError):
                            kernel.matching_vector(
                                orig_of[excl], orig_of[w_start]
                            )
                        continue
                    got = kernel.matching_vector(
                        orig_of[excl], orig_of[w_start]
                    )
                    # The kernel contract sorts ascending by cone id —
                    # same set, same ids, cache-compatible either way.
                    assert got == sorted(expected), (start, sink)

    @pytest.mark.parametrize("seed", range(4))
    def test_counting_vector_direct(self, seed):
        # The counting engine against the reference matcher in local
        # ids, including the ``None`` contract for unreachable starts.
        graph = _graph(seed)
        index, regions = _chain_regions(graph)
        kindex = KernelConeIndex(graph)
        for start, sink in regions:
            region = kindex.region(start, sink)
            if region is None or region.r <= 2:
                continue
            lptr = region.lptr.tolist()
            lind = region.lind.tolist()
            succ = [lind[lptr[v] : lptr[v + 1]] for v in range(region.r)]
            from repro.dominators.shared import RegionView

            python = RegionMatcher(RegionView(succ, root=region.r - 1))
            for excl in range(region.r - 1):
                for w_start in range(region.r - 1):
                    if w_start == excl:
                        continue
                    got = counting_vector(region, excl, w_start)
                    try:
                        expected = python.matching_vector(excl, w_start)
                    except ChainConstructionError:
                        assert got is None, (excl, w_start)
                        continue
                    assert got == sorted(expected), (excl, w_start)

    def test_counting_vector_collision_proof_modulus(self, monkeypatch):
        # Correctness must not depend on the modulus: with p = 2 almost
        # every vertex becomes a candidate and only the exact
        # verification sweep separates dominators from bystanders.
        graph = _pipe_graph(stages=2, width=4)
        kindex = KernelConeIndex(graph)
        _, regions = _chain_regions(graph)
        checked = 0
        for start, sink in regions:
            region = kindex.region(start, sink)
            if region is None or region.r <= 3:
                continue
            baseline = {}
            for excl in range(region.r - 1):
                for w_start in range(region.r - 1):
                    if w_start != excl:
                        baseline[(excl, w_start)] = counting_vector(
                            region, excl, w_start
                        )
            monkeypatch.setattr(kernels_mod, "_COUNT_PRIME", 2)
            for (excl, w_start), expected in baseline.items():
                assert (
                    counting_vector(region, excl, w_start) == expected
                ), (excl, w_start)
                checked += 1
            monkeypatch.undo()
        assert checked


@needs_numpy
class TestKernelExpansion:
    def test_trivial_region_has_no_pairs(self):
        # A direct start->sink edge region has <= 3 vertices: no two
        # interior vertices, so no pair can exist.
        c = Circuit("tiny")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_gate("g", NodeType.AND, [a, b])
        c.set_outputs(["g"])
        graph = IndexedGraph.from_circuit(c)
        kindex = KernelConeIndex(graph)
        region = kindex.region(graph.index_of("a"), graph.root)
        assert region is not None and region.r <= 3
        assert kernel_expand_region(region, graph.index_of("a")) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_chains_bit_identical_to_python(self, seed):
        graph = _graph(seed, gates=30)
        python = ChainComputer(graph, backend="shared", kernels="python")
        numpy_side = ChainComputer(graph, backend="shared", kernels="numpy")
        with forced_region_threshold(0):
            for u in graph.sources():
                divergence = diff_chains(
                    python.chain(u), numpy_side.chain(u)
                )
                assert divergence is None, f"{u}: {divergence}"

    def test_kernel_dispatch_counts_regions(self):
        from repro.service.metrics import MetricsRegistry

        graph = _pipe_graph(stages=2, width=5)
        metrics = MetricsRegistry()
        computer = ChainComputer(
            graph, backend="shared", kernels="numpy", metrics=metrics
        )
        with forced_region_threshold(0):
            computer.chains_for_sources()
        assert metrics.counter("core.kernel_regions").value > 0

    def test_narrow_region_punts_to_python(self):
        # A deep cascade's merge region spans tens of thousands of
        # levels at ~1.6 vertices each; one numpy call per level loses
        # to the interpreter, so the shape gate must keep the whole
        # cone on the python path (and the chains identical).
        from repro.circuits.generators import cascade
        from repro.service.metrics import MetricsRegistry

        circuit = cascade(800, seed=7)
        graph = IndexedGraph.from_circuit(circuit, circuit.outputs[-1])
        target = graph.index_of("x0")
        metrics = MetricsRegistry()
        computer = ChainComputer(
            graph, backend="shared", kernels="numpy", metrics=metrics
        )
        reference = ChainComputer(graph, backend="shared")
        assert diff_chains(reference.chain(target), computer.chain(target)) is None
        assert metrics.counter("core.kernel_regions").value == 0

    def test_level_span_counts_level_chunks(self):
        graph = _pipe_graph(stages=2, width=5)
        kindex = KernelConeIndex(graph)
        _, regions = _chain_regions(graph)
        for start, sink in regions:
            region = kindex.region(start, sink)
            if region is None:
                continue
            # The pre-extraction estimate covers at least the levels
            # the extracted region actually occupies.
            assert kindex.level_span(start, sink) >= len(region.lbounds) - 1

    def test_byte_cap_keeps_kernels_on_sweep(self, monkeypatch):
        # An over-cap region must stay on the kernel path (extraction,
        # cut) with the matcher pinned to its sweep engine — not punt
        # back to python, and never allocate the packed table.
        from repro.service.metrics import MetricsRegistry

        graph = _pipe_graph(stages=2, width=5)
        monkeypatch.setattr(kernels_mod, "BITSET_BYTE_CAP", 0)
        metrics = MetricsRegistry()
        computer = ChainComputer(
            graph, backend="shared", kernels="numpy", metrics=metrics
        )
        reference = ChainComputer(graph, backend="shared")
        with forced_region_threshold(0):
            for u in graph.sources():
                assert diff_chains(reference.chain(u), computer.chain(u)) is None
        assert metrics.counter("core.kernel_regions").value > 0

    def test_byte_cap_blocks_bitset_graduation(self, monkeypatch):
        graph = _pipe_graph(stages=2, width=5)
        kindex = KernelConeIndex(graph)
        _, regions = _chain_regions(graph)
        region = max(
            (kindex.region(s, k) for s, k in regions),
            key=lambda reg: reg.r if reg is not None else 0,
        )
        start, sink = int(region.cone_ids[0]), int(region.cone_ids[-1])
        interior = [
            int(c)
            for c in region.cone_ids
            if int(c) not in (start, sink)
        ]
        assert len(interior) >= 2
        excl, w_start = interior[0], interior[-1]
        monkeypatch.setattr(kernels_mod, "BITSET_BYTE_CAP", 0)
        matcher = KernelRegionMatcher(region)
        for _ in range(matcher._switch + 2):
            try:
                matcher.matching_vector(excl, w_start)
            except ChainConstructionError:
                pass
        assert matcher._bits is None
        monkeypatch.setattr(kernels_mod, "BITSET_BYTE_CAP", 64 << 20)
        for _ in range(matcher._switch + 2):
            try:
                matcher.matching_vector(excl, w_start)
            except ChainConstructionError:
                pass
        assert matcher._bits is not None

    def test_narrow_window_skips_kernel_index_build(self):
        # Regions narrower than the threshold must be answered without
        # ever constructing the (O(n)-cost) kernel cone index.
        graph = _graph(3)
        computer = ChainComputer(graph, backend="shared", kernels="numpy")
        computer.chains_for_sources()
        assert computer._index._kernel_index is None
