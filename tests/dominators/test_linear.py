"""Unit tests for the linear one-pass backend (repro.dominators.linear).

The property suite (tests/property/test_differential.py) asserts chain
equality against the other backends on random cones; these tests pin the
region-level contract of :func:`region_chain_pairs` directly on
hand-analysable regions — the boundary shapes where the flow/closure
machinery degenerates.
"""

import argparse

import pytest

from repro.cli import backend_arg
from repro.dominators.linear import LinearScratch, region_chain_pairs
from repro.dominators.shared import BACKENDS, validate_backend


class _Region:
    """Minimal region stand-in: ``succ``/``n``/``root`` in signal
    orientation, vertex ids already topological as the shared index
    guarantees for extracted regions."""

    def __init__(self, succ, root):
        self.succ = succ
        self.n = len(succ)
        self.root = root


class TestRegionChainPairs:
    def test_diamond_single_pair(self):
        # 0 -> {1, 2} -> 3: the classic reconvergence, one pair {1, 2}.
        region = _Region([[1, 2], [3], [3], []], root=3)
        pairs = region_chain_pairs(region, start=0)
        assert pairs == [([1], [2], {1: (1, 1), 2: (1, 1)})]

    def test_series_chain_no_pairs(self):
        # 0 -> 1 -> 2 -> 3: every interior vertex is a *single*
        # dominator (min vertex cut of one), so no size-two pair is
        # minimal and the region contributes nothing.
        region = _Region([[1], [2], [3], []], root=3)
        assert region_chain_pairs(region, start=0) == []

    def test_three_parallel_paths_no_pairs(self):
        # 0 -> {1, 2, 3} -> 4: minimum vertex cut is three, so no pair
        # of vertices dominates the entry.
        region = _Region([[1, 2, 3], [4], [4], [4], []], root=4)
        assert region_chain_pairs(region, start=0) == []

    def test_direct_entry_sink_edge_no_pairs(self):
        # The 0 -> 4 shortcut bypasses every interior vertex.
        region = _Region([[1, 2, 4], [3], [3], [4], []], root=4)
        assert region_chain_pairs(region, start=0) == []

    def test_trivial_region_no_pairs(self):
        # Fewer than two interior vertices can never form a pair.
        assert region_chain_pairs(_Region([[1], []], root=1), 0) == []
        assert (
            region_chain_pairs(_Region([[1], [2], []], root=2), 0) == []
        )

    def test_ladder_merges_into_one_pair_with_intervals(self):
        # 0 -> {1, 3}; 1 -> {2, 4}; 3 -> 4; {2, 4} -> 5.  The rung
        # 1 -> 4 makes {1, 4} a cut as well, chaining the two rungs
        # into a single {V_1k, V_2k} pair with non-trivial matching
        # intervals: 1 matches both opposite elements, 2 only the last.
        region = _Region(
            [[1, 3], [2, 4], [5], [4], [5], []], root=5
        )
        pairs = region_chain_pairs(region, start=0)
        assert pairs == [
            (
                [1, 2],
                [3, 4],
                {1: (1, 2), 2: (2, 2), 3: (1, 1), 4: (1, 2)},
            )
        ]

    def test_stacked_diamonds_two_pairs(self):
        # Two independent reconvergences with *crossing* middle edges so
        # that neither junction vertex is a single dominator:
        # 0 -> {1, 2}; 1 -> {3, 4}; 2 -> {3, 4}; {3, 4} -> 5.
        # Pairs {1, 2} and {3, 4} stay separate (no interval overlap).
        region = _Region(
            [[1, 2], [3, 4], [3, 4], [5], [5], []], root=5
        )
        pairs = region_chain_pairs(region, start=0)
        assert pairs == [
            ([1], [2], {1: (1, 1), 2: (1, 1)}),
            ([3], [4], {3: (1, 1), 4: (1, 1)}),
        ]


class TestScratchReuse:
    """One LinearScratch across many regions changes nothing but the
    allocation count — results must be identical to fresh-scratch runs."""

    REGIONS = [
        (_Region([[1, 2], [3], [3], []], root=3), 0),
        (_Region([[1], [2], [3], []], root=3), 0),
        (_Region([[1, 2, 3], [4], [4], [4], []], root=4), 0),
        (_Region([[1, 2, 4], [3], [3], [4], []], root=4), 0),
        (_Region([[1, 3], [2, 4], [5], [4], [5], []], root=5), 0),
        (_Region([[1, 2], [3, 4], [3, 4], [5], [5], []], root=5), 0),
        (_Region([[1], []], root=1), 0),
    ]

    def test_shared_scratch_matches_fresh(self):
        scratch = LinearScratch()
        for region, start in self.REGIONS:
            fresh = region_chain_pairs(region, start)
            reused = region_chain_pairs(region, start, scratch)
            assert reused == fresh

    def test_scratch_survives_shrinking_regions(self):
        # Grow on the biggest region first, then reuse on smaller ones:
        # stale high-epoch entries beyond the small region must be
        # invisible.
        scratch = LinearScratch()
        ordered = sorted(
            self.REGIONS, key=lambda rs: rs[0].n, reverse=True
        )
        for region, start in ordered:
            assert region_chain_pairs(region, start, scratch) == (
                region_chain_pairs(region, start)
            )

    def test_repeated_reuse_is_deterministic(self):
        scratch = LinearScratch()
        region, start = self.REGIONS[4]
        first = region_chain_pairs(region, start, scratch)
        for _ in range(10):
            assert region_chain_pairs(region, start, scratch) == first

    def test_capacity_grows_monotonically(self):
        scratch = LinearScratch()
        region, start = self.REGIONS[0]
        region_chain_pairs(region, start, scratch)
        cap = len(scratch.work.stamp)
        assert cap >= 2 * region.n
        big, bstart = self.REGIONS[4]
        region_chain_pairs(big, bstart, scratch)
        assert len(scratch.work.stamp) >= 2 * big.n >= cap


class TestBackendRegistration:
    def test_linear_is_registered(self):
        assert "linear" in BACKENDS
        assert validate_backend("linear") == "linear"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            validate_backend("turbo")

    def test_cli_backend_arg_accepts_all_registered(self):
        for backend in BACKENDS:
            assert backend_arg(backend) == backend

    def test_cli_backend_arg_rejects_unknown_with_clear_message(self):
        with pytest.raises(argparse.ArgumentTypeError) as excinfo:
            backend_arg("turbo")
        message = str(excinfo.value)
        assert "turbo" in message
        for backend in BACKENDS:
            assert backend in message
