"""Tests for the circuit-oriented single-dominator API (paper orientation)."""

import pytest

from repro.circuits.generators import parity_tree
from repro.dominators import (
    circuit_dominator_tree,
    circuit_idoms,
    count_single_pi_dominators,
    idom_chain,
    pi_dominator_vertices,
    single_dominators_of,
)
from repro.graph import IndexedGraph


class TestOrientation:
    def test_paper_orientation(self, fig1_graph):
        """'v dominates u' = every u→output path contains v."""
        g = fig1_graph
        idoms = circuit_idoms(g)
        assert idoms[g.index_of("e")] == g.index_of("n")
        assert idoms[g.index_of("h")] == g.index_of("p")
        assert idoms[g.root] == g.root

    def test_idom_chain(self, fig2_graph):
        g = fig2_graph
        chain = idom_chain(g, g.index_of("u"))
        assert [g.name_of(v) for v in chain] == ["u", "t", "f"]

    def test_single_dominators_of(self, fig2_graph):
        g = fig2_graph
        doms = single_dominators_of(g, g.index_of("e"))
        assert [g.name_of(v) for v in doms] == ["h", "t", "f"]

    def test_unknown_algorithm_rejected(self, fig2_graph):
        with pytest.raises(ValueError):
            circuit_idoms(fig2_graph, algorithm="magic")

    @pytest.mark.parametrize("algorithm", ["lt", "iterative", "naive", "chk"])
    def test_algorithm_aliases_agree(self, algorithm, fig2_graph):
        assert circuit_idoms(fig2_graph, algorithm) == circuit_idoms(
            fig2_graph, "lengauer-tarjan"
        )


class TestPiCounting:
    def test_tree_counts_every_internal_vertex(self):
        """In a fanout-free tree every vertex above a PI dominates it, so
        the count equals the number of gates (Section 6's remark)."""
        circuit = parity_tree(16)
        graph = IndexedGraph.from_circuit(circuit)
        assert count_single_pi_dominators(graph) == circuit.gate_count()

    def test_figure2_count(self, fig2_graph):
        assert count_single_pi_dominators(fig2_graph) == 2  # t and f

    def test_common_dominators_counted_once(self, fig1_graph):
        """f dominates every PI of Figure 1 but is counted once."""
        g = fig1_graph
        tree = circuit_dominator_tree(g)
        marked = pi_dominator_vertices(tree, g.sources())
        assert g.index_of("f") in marked
        # d's dominators: n, f; a's: e? (a feeds only e) ...
        assert g.index_of("n") in marked
