"""Cross-validation of our dominator algorithms against networkx.

networkx's ``immediate_dominators`` is an independent, widely-used
implementation (CHK iterative); our Lengauer–Tarjan must agree with it on
arbitrary digraphs, not just circuit DAGs.
"""

import random

import networkx as nx
import pytest

from repro.dominators import lengauer_tarjan


def _random_digraph(n, extra, seed):
    rng = random.Random(seed)
    succ = [[] for _ in range(n)]
    for v in range(1, n):
        succ[rng.randrange(v)].append(v)
    for _ in range(extra):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            succ[a].append(b)
    return succ


@pytest.mark.parametrize("seed", range(20))
def test_lt_matches_networkx(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 60)
    succ = _random_digraph(n, extra=rng.randint(0, 3 * n), seed=seed)

    ours = lengauer_tarjan.compute_idoms(n, succ, 0)

    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for v in range(n):
        for w in succ[v]:
            g.add_edge(v, w)
    theirs = nx.immediate_dominators(g, 0)

    for v in range(n):
        if v == 0:
            assert ours[v] == 0  # root is its own idom by our convention
        elif v in theirs:
            assert ours[v] == theirs[v]
        else:
            assert ours[v] == lengauer_tarjan.UNREACHABLE


@pytest.mark.parametrize("seed", range(8))
def test_lt_matches_networkx_dense(seed):
    rng = random.Random(seed + 500)
    n = rng.randint(10, 30)
    succ = _random_digraph(n, extra=5 * n, seed=seed + 500)
    ours = lengauer_tarjan.compute_idoms(n, succ, 0)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(
        (v, w) for v in range(n) for w in succ[v]
    )
    theirs = nx.immediate_dominators(g, 0)
    assert all(ours[v] == theirs[v] for v in theirs if v != 0)
