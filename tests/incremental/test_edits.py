"""Edit records: construction, serialization, script round trips."""

import pytest

from repro.errors import CircuitError
from repro.incremental import (
    AddGate,
    RemoveGate,
    ReplaceSubgraph,
    Rewire,
    dumps_script,
    edit_from_dict,
    edit_to_dict,
    loads_script,
    xor_to_nand_edit,
)

EDITS = [
    AddGate("g1", ("a", "b"), "and"),
    RemoveGate("g2"),
    Rewire("g3", ("a",), "buf"),
    Rewire("g4", ("a", "b")),
    ReplaceSubgraph(
        remove=("old",),
        add=(AddGate("new", ("a",), "not"),),
        rewire=(Rewire("sink", ("new",)),),
    ),
]


@pytest.mark.parametrize("edit", EDITS, ids=lambda e: type(e).__name__)
def test_dict_roundtrip(edit):
    assert edit_from_dict(edit_to_dict(edit)) == edit


def test_script_roundtrip():
    assert loads_script(dumps_script(EDITS)) == EDITS


def test_bare_list_script():
    text = '[{"op": "remove-gate", "name": "g"}]'
    assert loads_script(text) == [RemoveGate("g")]


def test_fanins_normalized_to_tuples():
    edit = AddGate("g", ["a", "b"])  # list input
    assert edit.fanins == ("a", "b")
    assert Rewire("g", ["a"]).fanins == ("a",)


def test_unknown_op_rejected():
    with pytest.raises(CircuitError):
        edit_from_dict({"op": "frobnicate"})
    with pytest.raises(CircuitError):
        edit_from_dict({"name": "no-op-key"})


def test_replace_subgraph_phase_types_enforced():
    with pytest.raises(CircuitError):
        edit_from_dict(
            {
                "op": "replace-subgraph",
                "add": [{"op": "rewire", "name": "x", "fanins": []}],
            }
        )


def test_xor_to_nand_edit_shape():
    edit = xor_to_nand_edit("x", "a", "b")
    assert isinstance(edit, ReplaceSubgraph)
    assert edit.remove == ()
    assert [g.gate_type for g in edit.add] == ["nand", "nand", "nand"]
    (rewire,) = edit.rewire
    assert rewire.name == "x"
    assert rewire.gate_type == "nand"
    # the top NAND is driven by the two mid-level NANDs
    assert set(rewire.fanins) == {g.name for g in edit.add[1:]}
