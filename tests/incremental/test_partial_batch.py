"""Regression tests: a mid-batch edit failure must not leave stale state.

``IncrementalEngine.apply`` promises that elementary mutations of a
failing batch stay applied; the bug was that the *record* of those
mutations (the dirty set, the computer reset, the edit listeners) was
only committed after the whole batch succeeded.  A batch that raised
half-way left the graph mutated but the dominator tree, region cache
and on-disk artifact versions believing nothing happened — queries then
served chains for the pre-batch circuit.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generators import random_circuit
from repro.core.algorithm import ChainComputer
from repro.dominators.single import circuit_idoms
from repro.errors import CircuitError, ReproError, UnknownNodeError
from repro.incremental import IncrementalEngine
from repro.incremental.edits import AddGate, RemoveGate, Rewire


def _assert_fresh(engine):
    """Engine tree and chains must match a from-scratch computation."""
    idoms = circuit_idoms(engine.graph)
    assert list(engine.tree.idom) == list(idoms)
    fresh = ChainComputer(engine.graph, "lt")
    for u in engine.graph.sources():
        if not engine.tree.is_reachable(u):
            continue
        inc = engine.chain(u)
        scr = fresh.chain(u)
        assert inc.pair_set() == scr.pair_set()
        assert inc.pairs == scr.pairs


class TestPartialBatchDirtyTracking:
    def test_failing_batch_still_marks_applied_edits_dirty(self):
        """The confirmed fuzzer repro: Rewire applies, RemoveGate raises.

        The Rewire makes a former internal gate a direct PI fanin (a
        frontier change), so serving the pre-batch chain is observably
        wrong, not just stale-but-equal.
        """
        circuit = random_circuit(
            num_inputs=3, num_gates=10, num_outputs=1, seed=0, name="m"
        )
        engine = IncrementalEngine.from_circuit(circuit)
        engine.chains_for_sources()  # warm tree, region cache, chain cache
        with pytest.raises(UnknownNodeError):
            engine.apply(Rewire("n3", ("pi1",)), RemoveGate("nonexistent"))
        _assert_fresh(engine)

    def test_failing_batch_fires_edit_listeners(self):
        circuit = random_circuit(
            num_inputs=3, num_gates=10, num_outputs=1, seed=0, name="m"
        )
        engine = IncrementalEngine.from_circuit(circuit)
        fired = []
        engine.add_edit_listener(lambda: fired.append(True))
        with pytest.raises(UnknownNodeError):
            engine.apply(Rewire("n3", ("pi1",)), RemoveGate("nonexistent"))
        assert fired, "listeners must see partially-applied batches"

    def test_clean_failure_does_not_fire_listeners(self):
        """A batch whose first edit raises touched nothing — no dirtying."""
        circuit = random_circuit(
            num_inputs=3, num_gates=10, num_outputs=1, seed=0, name="m"
        )
        engine = IncrementalEngine.from_circuit(circuit)
        fired = []
        engine.add_edit_listener(lambda: fired.append(True))
        with pytest.raises(UnknownNodeError):
            engine.apply(RemoveGate("nonexistent"), Rewire("n3", ("pi1",)))
        assert not fired
        assert not engine._dirty

    def test_add_gate_partial_failure_tracks_new_vertex(self):
        """AddGate with a bad fanin raises after the vertex was added."""
        circuit = random_circuit(
            num_inputs=3, num_gates=10, num_outputs=1, seed=0, name="m"
        )
        engine = IncrementalEngine.from_circuit(circuit)
        engine.chains_for_sources()
        # Fanin names resolve up-front, so use a cycle-creating edge to
        # fail after add_vertex: new gate feeds from the root... which is
        # legal; instead fail on the second edit of a ReplaceSubgraph-like
        # batch where the first AddGate landed.
        with pytest.raises(UnknownNodeError):
            engine.apply(
                AddGate("fresh_gate", ("pi1", "pi2"), "and"),
                RemoveGate("nonexistent"),
            )
        assert engine.graph.index_of("fresh_gate") in engine._dirty | set()
        _assert_fresh(engine)


class TestFrontierChangeInvalidation:
    """Hypothesis: frontier-changing rewires + failing batches never
    leave the engine serving chains that disagree with scratch."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_failing_batches(self, seed):
        rng = random.Random(f"partial-batch:{seed}")
        circuit = random_circuit(
            num_inputs=rng.randint(2, 4),
            num_gates=rng.randint(4, 12),
            num_outputs=1,
            seed=seed,
            name=f"pb{seed}",
        )
        engine = IncrementalEngine.from_circuit(circuit)
        try:
            engine.chains_for_sources()
        except ReproError:
            return  # degenerate cone; nothing to test
        g = engine.graph
        alive = [v for v in range(g.n) if g.is_alive(v)]
        gates = [v for v in alive if g.pred[v]]
        if not gates:
            return
        # A valid frontier-perturbing first edit: rewire a random gate to
        # feed directly from non-descendants (often PIs).
        w = rng.choice(gates)
        reach = g.reachable_from(w)
        pool = [v for v in alive if v != w and not reach[v]]
        if not pool:
            return
        fanins = tuple(
            g.name_of(rng.choice(pool)) for _ in range(rng.randint(1, 2))
        )
        with pytest.raises((UnknownNodeError, CircuitError)):
            engine.apply(
                Rewire(g.name_of(w), fanins),
                RemoveGate("no_such_gate_anywhere"),
            )
        _assert_fresh(engine)
