"""IncrementalEngine: laziness, invalidation precision, equivalence."""

import pytest

from repro.circuits.figures import figure2_circuit
from repro.circuits.generators import cascade
from repro.core import ChainComputer
from repro.errors import CircuitError, UnknownNodeError
from repro.graph import IndexedGraph
from repro.incremental import (
    AddGate,
    IncrementalEngine,
    RemoveGate,
    ReplaceSubgraph,
    Rewire,
    xor_to_nand_edit,
)


def assert_equivalent(engine):
    """Engine chains == from-scratch chains on the engine's live graph."""
    fresh = ChainComputer(engine.graph, engine.algorithm)
    tree = engine.tree
    for u in engine.graph.sources():
        if not tree.is_reachable(u):
            continue
        a, b = engine.chain(u), fresh.chain(u)
        assert a.pair_set() == b.pair_set()
        for v in a.vertices():
            assert a.matching_vector(v) == b.matching_vector(v)
            assert a.interval(v) == b.interval(v)


@pytest.fixture
def engine():
    return IncrementalEngine.from_circuit(figure2_circuit())


class TestSession:
    def test_cold_then_warm_queries(self, engine):
        first = engine.chain("u")
        stats = engine.cache_stats
        assert stats.misses > 0 and stats.hits == 0
        # warm query is served from the assembled-chain cache wholesale
        assert engine.chain("u") is first
        assert engine.stats.chain_hits == 1
        # no edits -> exactly one tree rebuild
        assert engine.stats.flushes == 1

    def test_region_cache_feeds_sibling_chains(self, engine):
        engine.chain("u")
        misses = engine.cache_stats.misses
        # a different PI shares upper chain cells -> region hits, no
        # chain hit (it was never assembled before)
        engine.chain("a")
        assert engine.cache_stats.hits > 0
        assert engine.cache_stats.misses >= misses
        assert engine.stats.chain_hits == 0

    def test_name_and_index_queries_agree(self, engine):
        by_name = engine.chain("u")
        by_index = engine.chain(engine.graph.index_of("u"))
        assert by_name.pair_set() == by_index.pair_set()

    def test_gate_types_recorded(self, engine):
        assert engine.gate_types["u"] == "input"
        engine.apply(AddGate("nb", ("d",), "buf"))
        assert engine.gate_types["nb"] == "buf"

    def test_edit_log(self, engine):
        edits = (AddGate("nb", ("d",), "buf"), RemoveGate("nb"))
        engine.apply(*edits)
        assert tuple(engine.log) == edits
        assert engine.stats.edits == 2

    def test_dominates_convenience(self, engine):
        assert engine.dominates("d", "h", "u")
        assert not engine.dominates("g", "a", "u")


class TestEquivalenceAfterEdits:
    def test_add_gate(self, engine):
        engine.chain("u")
        engine.apply(AddGate("nb", ("d", "g"), "and"))
        assert_equivalent(engine)

    def test_remove_gate(self, engine):
        engine.chain("u")
        engine.apply(RemoveGate("k"))
        assert_equivalent(engine)

    def test_rewire(self, engine):
        engine.chain("u")
        engine.apply(Rewire("k", ("e", "h")))
        assert_equivalent(engine)

    def test_replace_subgraph_buffer_insertion(self, engine):
        engine.chain("u")
        # insert a buffer on the d -> f net
        g = engine.graph
        f_fanins = [g.name_of(p) for p in g.pred[g.index_of("f")]]
        engine.apply(
            ReplaceSubgraph(
                add=(AddGate("dbuf", ("d",), "buf"),),
                rewire=(
                    Rewire(
                        "f",
                        tuple("dbuf" if n == "d" else n for n in f_fanins),
                    ),
                ),
            )
        )
        assert_equivalent(engine)

    def test_xor_expansion_rewrite(self):
        # an engine on a cone that contains an XOR gate
        from repro.graph import CircuitBuilder

        b = CircuitBuilder("xor_cone")
        a, c, d = b.inputs("a", "c", "d")
        x = b.xor(a, c, name="x")
        out = b.and_(x, d, name="out")
        engine = IncrementalEngine.from_circuit(b.finish([out]))
        before = engine.chain("a").pair_set()
        engine.apply(xor_to_nand_edit("x", "a", "c"))
        assert engine.gate_types["x"] == "nand"
        after = engine.chain("a")
        assert_equivalent(engine)
        # the expansion adds reconvergence; previous dominators survive
        assert before <= after.pair_set()

    def test_edit_stream_stays_equivalent(self, engine):
        engine.chains_for_sources()
        engine.apply(AddGate("s1", ("b", "c"), "or"))
        assert_equivalent(engine)
        engine.apply(Rewire("t", ("s1",)))
        assert_equivalent(engine)
        engine.apply(RemoveGate("m"))
        assert_equivalent(engine)


class TestInvalidationPrecision:
    def test_untouched_regions_survive_edits(self):
        graph = IndexedGraph.from_circuit(
            cascade(depth=20, num_inputs=4, num_outputs=1)
        )
        engine = IncrementalEngine(graph)
        engine.chains_for_sources()
        entries_before = len(engine.cache)
        assert entries_before > 5
        # a single-gate edit deep in the cascade dirties few regions
        gate = next(
            v
            for v in range(graph.n)
            if graph.pred[v] and len(graph.pred[v]) >= 2
        )
        fanins = list(graph.pred[gate])
        engine.apply(
            Rewire(graph.name_of(gate), tuple(graph.name_of(p) for p in fanins[::-1]))
        )
        engine.chains_for_sources()
        # most entries survived: far fewer evictions than entries
        assert engine.stats.evictions < entries_before / 2
        assert engine.cache_stats.hits > 0

    def test_noop_apply_keeps_computer(self, engine):
        engine.chain("u")
        flushes = engine.stats.flushes
        engine.apply()  # empty batch
        engine.chain("u")
        assert engine.stats.flushes == flushes

    def test_clear_eviction_counted(self, engine):
        engine.chain("u")
        entries = len(engine.cache)
        assert engine.cache.clear() == entries
        assert engine.cache_stats.invalidations >= entries


class TestErrors:
    def test_unknown_fanin(self, engine):
        with pytest.raises(UnknownNodeError):
            engine.apply(AddGate("g9", ("nope",)))

    def test_duplicate_name(self, engine):
        with pytest.raises(CircuitError):
            engine.apply(AddGate("u", ("d",)))

    def test_cycle_rejected(self, engine):
        with pytest.raises(CircuitError):
            engine.apply(Rewire("a", ("f",)))  # f is downstream of a

    def test_root_removal_rejected(self, engine):
        root_name = engine.graph.name_of(engine.graph.root)
        with pytest.raises(CircuitError):
            engine.apply(RemoveGate(root_name))

    def test_not_an_edit(self, engine):
        with pytest.raises(CircuitError):
            engine.apply("rewire k")


class TestDisconnection:
    def test_orphaned_source_excluded(self, engine):
        # Rewiring every fanout of source u to drop it leaves u unable to
        # reach the root; it must silently vanish from the PI workload.
        g = engine.graph
        engine.chains_for_sources()
        u = g.index_of("u")
        for w in set(g.succ[u]):
            keep = tuple(
                g.name_of(p) for p in g.pred[w] if p != u
            )
            engine.apply(Rewire(g.name_of(w), keep))
        chains = engine.chains_for_sources()
        assert u not in chains
        assert_equivalent(engine)
