"""Dirty-cone idom update == full recomputation, on every edit shape."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.figures import figure2_circuit
from repro.circuits.generators import cascade
from repro.dominators.single import circuit_idoms
from repro.graph import IndexedGraph
from repro.incremental import affected_cone, downstream_of, update_idoms

from ..property.strategies import small_circuits


def fig2_graph():
    return IndexedGraph.from_circuit(figure2_circuit())


class TestCones:
    def test_affected_cone_is_upstream(self):
        g = fig2_graph()
        cone = affected_cone(g, {g.index_of("t")})
        names = {g.name_of(v) for v in cone}
        assert "t" in names and "u" in names  # u feeds t transitively
        assert "f" not in names  # the root is downstream of t

    def test_downstream_is_fanout_side(self):
        g = fig2_graph()
        down = downstream_of(g, {g.index_of("t")})
        names = {g.name_of(v) for v in down}
        assert "f" in names and "u" not in names

    def test_dead_vertices_are_inert(self):
        g = fig2_graph()
        v = g.index_of("m")
        g.kill_vertex(v)
        assert affected_cone(g, {v}) == {v}
        assert downstream_of(g, {v}) == {v}


class TestUpdateIdoms:
    def test_matches_full_recompute_after_edge_insert(self):
        g = fig2_graph()
        old = circuit_idoms(g)
        d, h = g.index_of("d"), g.index_of("h")
        g.add_edge(d, h)
        patched = update_idoms(g, old, {d, h})
        assert patched == circuit_idoms(g)

    def test_matches_after_vertex_addition(self):
        g = fig2_graph()
        old = circuit_idoms(g)
        v = g.add_vertex("nb")
        g.add_edge(g.index_of("d"), v)
        g.add_edge(v, g.index_of("t"))
        patched = update_idoms(
            g, old, {v, g.index_of("d"), g.index_of("t")}, max_cone_fraction=1.1
        )
        assert patched == circuit_idoms(g)

    def test_matches_after_kill(self):
        g = fig2_graph()
        old = circuit_idoms(g)
        dirty = set(g.kill_vertex(g.index_of("m")))
        patched = update_idoms(g, old, dirty, max_cone_fraction=1.1)
        assert patched == circuit_idoms(g)

    def test_bails_on_huge_cone(self):
        g = fig2_graph()
        old = circuit_idoms(g)
        # dirtying the root makes every vertex affected
        assert update_idoms(g, old, {g.root}, max_cone_fraction=0.5) is None

    def test_bails_on_stale_boundary(self):
        g = IndexedGraph.from_circuit(cascade(depth=6, num_inputs=6, num_outputs=1))
        old = circuit_idoms(g)
        u = g.sources()[-1]
        for w in list(g.succ[u]):  # u can no longer reach the root
            g.remove_edge(u, w)
        # a dishonest dirty set that misses the change entirely
        assert update_idoms(g, old, set()) is None

    def test_disconnection_marks_unreachable(self):
        g = IndexedGraph.from_circuit(cascade(depth=6, num_inputs=6, num_outputs=1))
        old = circuit_idoms(g)
        # orphan one primary input by removing all of its fanout edges
        u = g.sources()[-1]
        dirty = {u}
        for w in list(g.succ[u]):
            g.remove_edge(u, w)
            dirty.add(w)
        patched = update_idoms(g, old, dirty, max_cone_fraction=1.1)
        assert patched == circuit_idoms(g)
        assert patched[u] == -1


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_random_single_edit_matches_full(data):
    circuit = data.draw(small_circuits(min_gates=2, max_gates=14))
    g = IndexedGraph.from_circuit(circuit)
    old = circuit_idoms(g)
    alive = [v for v in range(g.n) if g.is_alive(v)]
    kind = data.draw(st.sampled_from(["add_edge", "remove_edge", "kill"]))
    dirty = None
    if kind == "add_edge":
        v = alive[data.draw(st.integers(0, len(alive) - 1))]
        reach = g.reachable_from(v)
        pool = [w for w in alive if w != v and not reach[w] and g.pred[w]]
        if pool:
            w = pool[data.draw(st.integers(0, len(pool) - 1))]
            g.add_edge(w, v)
            dirty = {v, w}
    elif kind == "remove_edge":
        edges = [(v, w) for v in alive for w in g.succ[v]]
        if edges:
            v, w = edges[data.draw(st.integers(0, len(edges) - 1))]
            g.remove_edge(v, w)
            dirty = {v, w}
    else:
        pool = [v for v in alive if v != g.root]
        if pool:
            v = pool[data.draw(st.integers(0, len(pool) - 1))]
            dirty = set(g.kill_vertex(v))
    if dirty is None:
        return
    patched = update_idoms(g, old, dirty, max_cone_fraction=1.1)
    assert patched is not None
    assert patched == circuit_idoms(g)
