"""DaemonService end-to-end: all six operations through ``handle``."""

import os
import threading

import pytest

from repro.circuits.generators import random_circuit
from repro.core.algorithm import ChainComputer
from repro.daemon.protocol import PROTOCOL_VERSION, Request, parse_request
from repro.daemon.service import DaemonService, ServiceConfig
from repro.daemon.shm import shared_memory_available
from repro.graph.indexed import IndexedGraph

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)


def _definition(circuit):
    """The inline-netlist protocol form of ``circuit``."""
    return {
        "name": circuit.name,
        "nodes": [
            {
                "name": name,
                "type": circuit.node(name).type.value,
                "fanins": list(circuit.node(name).fanins),
            }
            for name in circuit
        ],
        "outputs": list(circuit.outputs),
    }


def _request(op, params=None, request_id="r1", tenant="default"):
    return parse_request(
        {
            "v": PROTOCOL_VERSION,
            "op": op,
            "id": request_id,
            "tenant": tenant,
            "params": params or {},
        }
    )


def _load(service, circuit, tenant="default"):
    resp = service.handle(
        _request("load", {"definition": _definition(circuit)}, tenant=tenant)
    )
    assert resp["ok"], resp
    return resp["result"]["circuit"]


@pytest.fixture
def circuit():
    return random_circuit(4, 30, num_outputs=3, seed=17, name="svc")


@pytest.fixture
def service():
    with DaemonService(ServiceConfig(jobs=1)) as svc:
        yield svc


class TestLoadAndChain:
    def test_load_reports_shape(self, service, circuit):
        resp = service.handle(
            _request("load", {"definition": _definition(circuit)})
        )
        assert resp["ok"]
        result = resp["result"]
        assert result["nodes"] == len(circuit)
        assert result["outputs"] == circuit.outputs
        assert result["version"] == 1

    def test_load_is_idempotent(self, service, circuit):
        key1 = _load(service, circuit)
        key2 = _load(service, circuit)
        assert key1 == key2
        stats = service.handle(_request("stats"))["result"]
        assert len(stats["circuits"]) == 1

    def test_chain_matches_reference_computer(self, service, circuit):
        key = _load(service, circuit)
        for out in circuit.outputs:
            resp = service.handle(
                _request("chain", {"circuit": key, "output": out})
            )
            assert resp["ok"], resp
            chains = resp["result"]["chains"]
            graph = IndexedGraph.from_circuit(circuit, out)
            ref = ChainComputer(graph, backend=service.config.backend)
            for u in graph.sources():
                name = graph.name_of(u)
                if name in chains:
                    assert chains[name] == ref.chain(u).to_dict()

    def test_chain_explicit_targets(self, service, circuit):
        key = _load(service, circuit)
        out = circuit.outputs[0]
        graph = IndexedGraph.from_circuit(circuit, out)
        target = graph.name_of(graph.sources()[0])
        resp = service.handle(
            _request(
                "chain",
                {"circuit": key, "output": out, "targets": [target]},
            )
        )
        assert resp["ok"]
        assert list(resp["result"]["chains"]) == [target]

    def test_unknown_circuit_is_404(self, service):
        resp = service.handle(_request("chain", {"circuit": "nope"}))
        assert not resp["ok"]
        assert resp["error"]["code"] == 404
        assert resp["error"]["reason"] == "unknown_circuit"

    def test_unknown_output_is_404(self, service, circuit):
        key = _load(service, circuit)
        resp = service.handle(
            _request("chain", {"circuit": key, "output": "nope"})
        )
        assert not resp["ok"]
        assert resp["error"]["reason"] == "unknown_output"

    def test_internal_errors_do_not_kill_service(self, service, circuit):
        key = _load(service, circuit)
        resp = service.handle(
            _request("chain", {"circuit": key, "targets": "oops"})
        )
        assert not resp["ok"]
        # The service keeps answering after a failed request.
        assert service.handle(_request("stats"))["ok"]


class TestSweepAndEdit:
    def test_inline_sweep_counts_pairs(self, service, circuit):
        key = _load(service, circuit)
        resp = service.handle(_request("sweep", {"circuit": key}))
        assert resp["ok"], resp
        result = resp["result"]
        assert result["dispatch"] == "inline"
        assert len(result["cones"]) == len(circuit.outputs)
        assert result["total_pairs"] == sum(
            c["pairs"] for c in result["cones"]
        )

    @needs_shm
    def test_mp_shm_sweep_matches_inline(self, circuit):
        with DaemonService(ServiceConfig(jobs=1)) as inline_svc:
            key = _load(inline_svc, circuit)
            inline = inline_svc.handle(_request("sweep", {"circuit": key}))
        with DaemonService(ServiceConfig(jobs=2, chunk_size=1)) as mp_svc:
            key = _load(mp_svc, circuit)
            mp = mp_svc.handle(_request("sweep", {"circuit": key}))
        assert inline["ok"] and mp["ok"]
        assert mp["result"]["dispatch"] == "shm"
        assert [
            (c["output"], c["chains"], c["pairs"])
            for c in mp["result"]["cones"]
        ] == [
            (c["output"], c["chains"], c["pairs"])
            for c in inline["result"]["cones"]
        ]

    def test_mp_pickle_sweep_matches_inline(self, circuit):
        with DaemonService(ServiceConfig(jobs=1)) as inline_svc:
            key = _load(inline_svc, circuit)
            inline = inline_svc.handle(_request("sweep", {"circuit": key}))
        config = ServiceConfig(jobs=2, chunk_size=1, use_shared_memory=False)
        with DaemonService(config) as mp_svc:
            key = _load(mp_svc, circuit)
            mp = mp_svc.handle(_request("sweep", {"circuit": key}))
        assert mp["result"]["dispatch"] == "pickle"
        assert [c["pairs"] for c in mp["result"]["cones"]] == [
            c["pairs"] for c in inline["result"]["cones"]
        ]

    def test_edit_bumps_version_and_updates_chains(self, service, circuit):
        key = _load(service, circuit)
        out = circuit.outputs[0]
        before = service.handle(
            _request("chain", {"circuit": key, "output": out})
        )["result"]
        node = circuit.node(out)
        if len(node.fanins) < 2:
            pytest.skip("output gate has a single fanin")
        resp = service.handle(
            _request(
                "edit",
                {
                    "circuit": key,
                    "output": out,
                    "edits": [
                        {
                            "op": "rewire",
                            "name": out,
                            "fanins": list(reversed(node.fanins)),
                        }
                    ],
                },
            )
        )
        assert resp["ok"], resp
        assert resp["result"]["version"] == 2
        after = service.handle(
            _request("chain", {"circuit": key, "output": out})
        )["result"]
        assert after["version"] == 2
        # The edited netlist is what later queries see: a fresh
        # reference over the updated circuit agrees with the engine.
        with service._lock:
            updated = service._circuits[key]
        graph = IndexedGraph.from_circuit(updated, out)
        ref = ChainComputer(graph, backend=service.config.backend)
        for u in graph.sources():
            name = graph.name_of(u)
            if name in after["chains"]:
                assert after["chains"][name] == ref.chain(u).to_dict()
        assert before["version"] == 1

    @needs_shm
    def test_edit_retires_shared_segment(self, circuit):
        with DaemonService(ServiceConfig(jobs=2)) as svc:
            key = _load(svc, circuit)
            assert svc._pool.ref(key) is not None
            out = circuit.outputs[0]
            svc.handle(_request("chain", {"circuit": key, "output": out}))
            resp = svc.handle(
                _request(
                    "edit",
                    {
                        "circuit": key,
                        "output": out,
                        "edits": [
                            {
                                "op": "add-gate",
                                "name": "svc_extra",
                                "fanins": [circuit.inputs[0]],
                                "type": "buf",
                            }
                        ],
                    },
                )
            )
            assert resp["ok"], resp
            # The engine's edit listener retired the segment...
            assert svc._pool.ref(key) is None
            # ...and the next sweep republishes the *edited* netlist.
            sweep = svc.handle(_request("sweep", {"circuit": key}))
            assert sweep["ok"]
            ref = svc._pool.ref(key)
            assert ref is not None and ref.version == 2

    def test_invalid_edit_script_mutates_nothing(self, service, circuit):
        key = _load(service, circuit)
        resp = service.handle(
            _request(
                "edit",
                {
                    "circuit": key,
                    "edits": [
                        {"op": "remove-gate", "name": "does_not_exist"}
                    ],
                },
            )
        )
        assert not resp["ok"]
        stats = service.handle(_request("stats"))["result"]
        assert stats["circuits"][key]["version"] == 1


class TestDynamicEngine:
    """The daemon under ``engine="dynamic"``: same answers, certified."""

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ServiceConfig(engine="bogus")

    def test_edits_serve_identical_chains(self, circuit):
        config = ServiceConfig(engine="dynamic", use_shared_memory=False)
        with DaemonService(config) as svc:
            key = _load(svc, circuit)
            out = circuit.outputs[0]
            svc.handle(_request("chain", {"circuit": key, "output": out}))
            edits = [
                [
                    {
                        "op": "add-gate",
                        "name": "dyn_a",
                        "fanins": [circuit.inputs[0], circuit.inputs[1]],
                        "type": "and",
                    }
                ],
                [
                    {
                        "op": "rewire",
                        "name": out,
                        "fanins": ["dyn_a", circuit.inputs[2]],
                    }
                ],
                [{"op": "remove-gate", "name": "dyn_a"}],
            ]
            # the third batch would orphan the rewired output's fanin;
            # restore it first in the same batch
            edits[2].insert(
                0,
                {
                    "op": "rewire",
                    "name": out,
                    "fanins": [circuit.inputs[0], circuit.inputs[2]],
                },
            )
            for batch in edits:
                resp = svc.handle(
                    _request(
                        "edit",
                        {"circuit": key, "output": out, "edits": batch},
                    )
                )
                assert resp["ok"], resp
                svc.handle(_request("chain", {"circuit": key, "output": out}))
                # The engine edits its graph in place while a reference
                # re-indexes the updated netlist, so vertex indices
                # diverge — compare chains as name pair sets.
                with svc._lock:
                    updated = svc._circuits[key]
                    engine = svc._engines[(key, out)]
                graph = IndexedGraph.from_circuit(updated, out)
                ref = ChainComputer(graph, backend=svc.config.backend)
                tree = engine.tree
                for u in graph.sources():
                    name = graph.name_of(u)
                    eu = engine.graph.index_of(name)
                    if not tree.is_reachable(eu):
                        continue
                    got = {
                        frozenset(engine.graph.name_of(x) for x in pair)
                        for pair in engine.chain(eu).pair_set()
                    }
                    want = {
                        frozenset(graph.name_of(x) for x in pair)
                        for pair in ref.chain(u).pair_set()
                    }
                    assert got == want
            stats = svc.handle(_request("stats"))["result"]
            assert stats["engine"] == "dynamic"
            assert stats["engine_stats"]["certificate_checks"] == len(edits)
            counters = stats["metrics"]["counters"]
            assert counters.get("dynamic.certificate_checks") == len(edits)
            assert "dynamic.certificate_failures" not in counters

    @needs_shm
    def test_dynamic_edit_retires_shared_segment(self, circuit):
        config = ServiceConfig(jobs=2, engine="dynamic")
        with DaemonService(config) as svc:
            key = _load(svc, circuit)
            assert svc._pool.ref(key) is not None
            out = circuit.outputs[0]
            svc.handle(_request("chain", {"circuit": key, "output": out}))
            resp = svc.handle(
                _request(
                    "edit",
                    {
                        "circuit": key,
                        "output": out,
                        "edits": [
                            {
                                "op": "add-gate",
                                "name": "dyn_extra",
                                "fanins": [circuit.inputs[0]],
                                "type": "buf",
                            }
                        ],
                    },
                )
            )
            assert resp["ok"], resp
            # Edit requests retire shm segments exactly as under patch.
            assert svc._pool.ref(key) is None


class TestAdmissionIntegration:
    def test_sheds_when_in_flight_full(self, service, circuit):
        key = _load(service, circuit)
        # Occupy the only other slot out-of-band, then every gated
        # request sheds with the in-flight reason.
        for _ in range(service.config.max_in_flight):
            assert service.admission.admit()[0]
        resp = service.handle(_request("chain", {"circuit": key}))
        assert not resp["ok"]
        assert resp["error"]["code"] == 429
        assert resp["error"]["reason"] == "in_flight_limit"
        # Ungated ops still work under saturation.
        assert service.handle(_request("stats"))["ok"]
        for _ in range(service.config.max_in_flight):
            service.admission.release()
        assert service.handle(
            _request("chain", {"circuit": key, "output": circuit.outputs[0]})
        )["ok"]

    def test_rate_limit_sheds_chatty_tenant_only(self, circuit):
        config = ServiceConfig(tenant_rate=1.0, tenant_burst=2.0)
        with DaemonService(config) as svc:
            key = _load(svc, circuit, tenant="chatty")  # burns 1 token
            out = circuit.outputs[0]
            chain = {"circuit": key, "output": out}
            assert svc.handle(
                _request("chain", chain, tenant="chatty")
            )["ok"]
            shed = svc.handle(_request("chain", chain, tenant="chatty"))
            assert not shed["ok"]
            assert shed["error"]["reason"] == "tenant_rate_limit"
            # A quiet tenant is untouched by the chatty one's shedding.
            assert svc.handle(
                _request("chain", chain, tenant="quiet")
            )["ok"]


class TestCrossTenantIsolation:
    def test_concurrent_tenants_zero_mixups(self):
        """N tenants hammer distinct circuits; every response must carry
        the requesting tenant's circuit key and that circuit's chains."""
        tenants = {
            f"tenant{i}": random_circuit(
                4, 25, num_outputs=2, seed=100 + i, name=f"iso{i}"
            )
            for i in range(4)
        }
        config = ServiceConfig(
            jobs=1, max_in_flight=64, tenant_rate=10_000.0, tenant_burst=10_000.0
        )
        with DaemonService(config) as svc:
            keys = {
                tenant: _load(svc, circ, tenant=tenant)
                for tenant, circ in tenants.items()
            }
            expected = {}
            for tenant, circ in tenants.items():
                out = circ.outputs[0]
                resp = svc.handle(
                    _request(
                        "chain",
                        {"circuit": keys[tenant], "output": out},
                        tenant=tenant,
                    )
                )
                assert resp["ok"]
                expected[tenant] = resp["result"]

            mixups = []
            barrier = threading.Barrier(len(tenants))

            def hammer(tenant):
                circ = tenants[tenant]
                barrier.wait()
                for i in range(20):
                    resp = svc.handle(
                        _request(
                            "chain",
                            {
                                "circuit": keys[tenant],
                                "output": circ.outputs[0],
                            },
                            request_id=f"{tenant}-{i}",
                            tenant=tenant,
                        )
                    )
                    if not resp["ok"]:
                        mixups.append((tenant, resp))
                    elif resp["result"] != expected[tenant]:
                        mixups.append((tenant, resp))
                    elif resp["id"] != f"{tenant}-{i}":
                        mixups.append((tenant, resp))

            threads = [
                threading.Thread(target=hammer, args=(t,)) for t in tenants
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert mixups == []


class TestLifecycle:
    def test_shutdown_sets_event(self, service):
        assert not service.shutdown_requested.is_set()
        resp = service.handle(_request("shutdown"))
        assert resp["ok"] and resp["result"]["stopping"]
        assert service.shutdown_requested.is_set()

    def test_stats_reports_latency_quantiles(self, service, circuit):
        key = _load(service, circuit)
        service.handle(
            _request("chain", {"circuit": key, "output": circuit.outputs[0]})
        )
        stats = service.handle(_request("stats"))["result"]
        assert "daemon.chain_seconds" in stats["latency"]
        entry = stats["latency"]["daemon.chain_seconds"]
        assert entry["count"] >= 1
        assert entry["p50"] <= entry["p99"]

    @needs_shm
    def test_close_leaves_no_segments_behind(self, circuit):
        svc = DaemonService(ServiceConfig(jobs=2))
        key = _load(svc, circuit)
        svc.handle(_request("sweep", {"circuit": key}))
        svc.close()
        if os.path.isdir("/dev/shm"):
            leftovers = [
                f for f in os.listdir("/dev/shm") if f.startswith("rpro_")
            ]
            assert leftovers == []

    def test_handle_is_plain_request_object(self, service):
        # Requests constructed directly (not via parse_request) work too.
        resp = service.handle(Request(op="stats"))
        assert resp["ok"]
