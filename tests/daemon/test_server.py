"""Transport tests: JSONL sessions and the hand-rolled HTTP endpoint."""

import asyncio
import json

import pytest

from repro.circuits.generators import random_circuit
from repro.daemon.server import serve_http, serve_jsonl
from repro.daemon.service import DaemonService, ServiceConfig


def _definition(circuit):
    return {
        "name": circuit.name,
        "nodes": [
            {
                "name": name,
                "type": circuit.node(name).type.value,
                "fanins": list(circuit.node(name).fanins),
            }
            for name in circuit
        ],
        "outputs": list(circuit.outputs),
    }


def _circuit():
    return random_circuit(4, 20, num_outputs=2, seed=7, name="xport")


async def _jsonl_session(service, lines):
    """Run ``lines`` through a JSONL session over a loopback TCP pair.

    Returns the decoded response objects (arrival order).
    """
    responses = []
    done = asyncio.Event()

    async def _client(reader, writer):
        await serve_jsonl(service, reader, writer)
        writer.close()
        done.set()

    server = await asyncio.start_server(_client, host="127.0.0.1", port=0)
    host, port = server.sockets[0].getsockname()[:2]
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for line in lines:
            writer.write((json.dumps(line) + "\n").encode("utf-8"))
        await writer.drain()
        writer.write_eof()
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout=30)
            if not raw:
                break
            responses.append(json.loads(raw))
    finally:
        writer.close()
        server.close()
        await server.wait_closed()
    return responses


async def _http_request(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"\r\n"
    )
    writer.write(head.encode("ascii") + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
    raw = await reader.read()
    writer.close()
    return status, json.loads(raw) if raw else None


class TestJsonl:
    def test_full_session(self):
        circuit = _circuit()

        async def scenario():
            with DaemonService(ServiceConfig(jobs=1)) as service:
                lines = [
                    {
                        "v": 1,
                        "op": "load",
                        "id": "L",
                        "params": {"definition": _definition(circuit)},
                    },
                ]
                responses = await _jsonl_session(service, lines)
                assert len(responses) == 1
                load = responses[0]
                assert load["ok"], load
                key = load["result"]["circuit"]

                lines = [
                    {
                        "v": 1,
                        "op": "chain",
                        "id": "C1",
                        "params": {
                            "circuit": key,
                            "output": circuit.outputs[0],
                        },
                    },
                    {
                        "v": 1,
                        "op": "sweep",
                        "id": "S1",
                        "params": {"circuit": key},
                    },
                    {"v": 1, "op": "stats", "id": "T1"},
                    {"not": "json-rpc"},
                    "bad json line",
                ]
                # NB: the circuit survives across sessions — same service.
                responses = await _jsonl_session(service, lines)
                by_id = {r.get("id"): r for r in responses}
                assert by_id["C1"]["ok"]
                assert by_id["S1"]["ok"]
                assert by_id["T1"]["ok"]
                errors = [r for r in responses if not r["ok"]]
                assert len(errors) == 2
                reasons = {e["error"]["reason"] for e in errors}
                assert reasons <= {"bad_request", "unknown_op"}

        asyncio.run(scenario())

    def test_bad_json_line_gets_error_response(self):
        async def scenario():
            with DaemonService(ServiceConfig(jobs=1)) as service:
                responses = []
                done = asyncio.Event()

                async def _client(reader, writer):
                    await serve_jsonl(service, reader, writer)
                    writer.close()
                    done.set()

                server = await asyncio.start_server(
                    _client, host="127.0.0.1", port=0
                )
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"{this is not json\n")
                await writer.drain()
                writer.write_eof()
                raw = await asyncio.wait_for(reader.readline(), timeout=30)
                responses.append(json.loads(raw))
                writer.close()
                server.close()
                await server.wait_closed()
                assert not responses[0]["ok"]
                assert responses[0]["error"]["reason"] == "bad_json"

        asyncio.run(scenario())

    def test_shutdown_ends_session(self):
        async def scenario():
            with DaemonService(ServiceConfig(jobs=1)) as service:
                responses = await _jsonl_session(
                    service,
                    [
                        {"v": 1, "op": "stats", "id": "T"},
                        {"v": 1, "op": "shutdown", "id": "X"},
                    ],
                )
                by_id = {r.get("id"): r for r in responses}
                assert by_id["X"]["ok"]
                assert by_id["X"]["result"]["stopping"]
                assert service.shutdown_requested.is_set()

        asyncio.run(scenario())

    def test_concurrent_lines_all_answered(self):
        circuit = _circuit()

        async def scenario():
            with DaemonService(
                ServiceConfig(jobs=1, max_in_flight=64)
            ) as service:
                load = await _jsonl_session(
                    service,
                    [
                        {
                            "v": 1,
                            "op": "load",
                            "id": "L",
                            "params": {"definition": _definition(circuit)},
                        }
                    ],
                )
                key = load[0]["result"]["circuit"]
                lines = [
                    {
                        "v": 1,
                        "op": "chain",
                        "id": f"c{i}",
                        "params": {
                            "circuit": key,
                            "output": circuit.outputs[i % 2],
                        },
                    }
                    for i in range(12)
                ]
                responses = await _jsonl_session(service, lines)
                assert sorted(r["id"] for r in responses) == sorted(
                    line["id"] for line in lines
                )
                assert all(r["ok"] for r in responses)

        asyncio.run(scenario())


class TestHttp:
    def test_routes_and_status_codes(self):
        circuit = _circuit()

        async def scenario():
            with DaemonService(ServiceConfig(jobs=1)) as service:
                server = await serve_http(service, port=0)
                host, port = server.sockets[0].getsockname()[:2]
                try:
                    status, resp = await _http_request(
                        host,
                        port,
                        "POST",
                        "/v1/load",
                        {"id": "L", "params": {"definition": _definition(circuit)}},
                    )
                    assert status == 200 and resp["ok"]
                    key = resp["result"]["circuit"]

                    status, resp = await _http_request(
                        host,
                        port,
                        "POST",
                        "/v1/chain",
                        {
                            "params": {
                                "circuit": key,
                                "output": circuit.outputs[0],
                            }
                        },
                    )
                    assert status == 200 and resp["ok"]
                    assert resp["result"]["chains"]

                    # Full envelope to POST /v1.
                    status, resp = await _http_request(
                        host, port, "POST", "/v1", {"v": 1, "op": "stats"}
                    )
                    assert status == 200 and resp["ok"]

                    status, resp = await _http_request(
                        host, port, "GET", "/v1/stats"
                    )
                    assert status == 200 and resp["ok"]

                    status, resp = await _http_request(
                        host,
                        port,
                        "POST",
                        "/v1/chain",
                        {"params": {"circuit": "missing"}},
                    )
                    assert status == 404
                    assert resp["error"]["reason"] == "unknown_circuit"

                    status, resp = await _http_request(
                        host, port, "POST", "/v1/frobnicate", {}
                    )
                    assert status == 400
                    assert resp["error"]["reason"] == "unknown_op"

                    status, resp = await _http_request(
                        host, port, "GET", "/other"
                    )
                    assert status == 405

                    status, resp = await _http_request(
                        host, port, "POST", "/other", {}
                    )
                    assert status == 404
                finally:
                    server.close()
                    await server.wait_closed()

        asyncio.run(scenario())

    def test_shed_maps_to_429(self):
        circuit = _circuit()

        async def scenario():
            config = ServiceConfig(jobs=1, max_in_flight=1)
            with DaemonService(config) as service:
                server = await serve_http(service, port=0)
                host, port = server.sockets[0].getsockname()[:2]
                try:
                    status, resp = await _http_request(
                        host,
                        port,
                        "POST",
                        "/v1/load",
                        {"params": {"definition": _definition(circuit)}},
                    )
                    key = resp["result"]["circuit"]
                    assert service.admission.admit()[0]  # hog the slot
                    status, resp = await _http_request(
                        host,
                        port,
                        "POST",
                        "/v1/chain",
                        {
                            "params": {
                                "circuit": key,
                                "output": circuit.outputs[0],
                            }
                        },
                    )
                    assert status == 429
                    assert resp["error"]["reason"] == "in_flight_limit"
                    service.admission.release()
                finally:
                    server.close()
                    await server.wait_closed()

        asyncio.run(scenario())
