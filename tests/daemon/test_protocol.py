"""Versioned request parsing and response envelopes."""

import pytest

from repro.daemon.protocol import (
    OPERATIONS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
)


def _req(**overrides):
    obj = {"v": PROTOCOL_VERSION, "op": "stats"}
    obj.update(overrides)
    return obj


class TestParseRequest:
    def test_minimal_request(self):
        request = parse_request(_req())
        assert isinstance(request, Request)
        assert request.op == "stats"
        assert request.tenant == "default"
        assert request.id is None
        assert request.params == {}

    def test_full_request(self):
        request = parse_request(
            _req(op="chain", id="r1", tenant="acme", params={"circuit": "k"})
        )
        assert request.op == "chain"
        assert request.id == "r1"
        assert request.tenant == "acme"
        assert request.params == {"circuit": "k"}

    def test_all_operations_accepted(self):
        for op in OPERATIONS:
            assert parse_request(_req(op=op)).op == op

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(["not", "a", "dict"])

    def test_unsupported_version(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(_req(v=99))
        assert err.value.reason == "unsupported_version"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(_req(op="frobnicate"))
        assert err.value.reason == "unknown_op"

    def test_missing_op(self):
        with pytest.raises(ProtocolError):
            parse_request({"v": PROTOCOL_VERSION})

    def test_bad_id_type(self):
        with pytest.raises(ProtocolError):
            parse_request(_req(id=42))

    def test_bad_tenant(self):
        with pytest.raises(ProtocolError):
            parse_request(_req(tenant=""))
        with pytest.raises(ProtocolError):
            parse_request(_req(tenant=7))

    def test_bad_params(self):
        with pytest.raises(ProtocolError):
            parse_request(_req(params=[1, 2]))


class TestEnvelopes:
    def test_ok_response(self):
        resp = ok_response("r9", {"answer": 42})
        assert resp == {
            "v": PROTOCOL_VERSION,
            "id": "r9",
            "ok": True,
            "result": {"answer": 42},
        }

    def test_error_response(self):
        resp = error_response("r9", 429, "tenant_rate_limit", "slow down")
        assert resp["ok"] is False
        assert resp["id"] == "r9"
        assert resp["error"]["code"] == 429
        assert resp["error"]["reason"] == "tenant_rate_limit"
        assert resp["error"]["message"] == "slow down"

    def test_error_response_extra_fields(self):
        resp = error_response("x", 400, "bad", "msg", hint="try again")
        assert resp["error"]["hint"] == "try again"

    def test_protocol_error_defaults(self):
        err = ProtocolError("nope")
        assert err.code == 400
        assert err.reason == "bad_request"
