"""Admission control: token buckets, in-flight cap, per-tenant isolation."""

import pytest

from repro.daemon.admission import AdmissionController, TokenBucket


class FakeClock:
    """Deterministic monotonic clock for refill tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_failed_acquire_does_not_debit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        before = bucket.tokens
        assert not bucket.try_acquire()
        assert bucket.tokens == pytest.approx(before)

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1, 1), (1, 0), (1, -5)])
    def test_rejects_nonpositive_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestAdmissionController:
    def _controller(self, **kw):
        clock = FakeClock()
        kw.setdefault("max_in_flight", 2)
        kw.setdefault("tenant_rate", 10.0)
        kw.setdefault("tenant_burst", 5.0)
        return AdmissionController(clock=clock, **kw), clock

    def test_in_flight_cap_sheds(self):
        ctrl, _ = self._controller(max_in_flight=2)
        assert ctrl.admit() == (True, None)
        assert ctrl.admit() == (True, None)
        admitted, reason = ctrl.admit()
        assert not admitted
        assert reason == AdmissionController.REASON_IN_FLIGHT
        ctrl.release()
        assert ctrl.admit() == (True, None)

    def test_rate_limit_sheds_per_tenant(self):
        ctrl, clock = self._controller(max_in_flight=100, tenant_burst=2.0)
        assert ctrl.admit("a") == (True, None)
        assert ctrl.admit("a") == (True, None)
        admitted, reason = ctrl.admit("a")
        assert not admitted
        assert reason == AdmissionController.REASON_RATE
        # Tenant "b" has its own full bucket: unaffected by "a"'s burst.
        assert ctrl.admit("b") == (True, None)
        # And "a" recovers once its bucket refills.
        clock.advance(1.0)
        assert ctrl.admit("a") == (True, None)

    def test_in_flight_cap_checked_before_bucket(self):
        # A shed for capacity must NOT burn the tenant's tokens.
        ctrl, _ = self._controller(max_in_flight=1, tenant_burst=1.0)
        assert ctrl.admit("a") == (True, None)
        admitted, reason = ctrl.admit("b")
        assert not admitted
        assert reason == AdmissionController.REASON_IN_FLIGHT
        ctrl.release()
        assert ctrl.admit("b") == (True, None)  # b's bucket still full

    def test_release_without_admit_raises(self):
        ctrl, _ = self._controller()
        with pytest.raises(RuntimeError):
            ctrl.release()

    def test_stats_track_peak_and_sheds(self):
        ctrl, _ = self._controller(max_in_flight=2, tenant_burst=10.0)
        ctrl.admit()
        ctrl.admit()
        ctrl.admit()  # shed: in-flight
        ctrl.release()
        ctrl.release()
        stats = ctrl.as_dict()
        assert stats["admitted"] == 2
        assert stats["shed_in_flight"] == 1
        assert stats["peak_in_flight"] == 2
        assert stats["in_flight"] == 0

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_in_flight": 0},
            {"tenant_rate": 0.0},
            {"tenant_burst": -1.0},
        ],
    )
    def test_rejects_nonpositive_parameters(self, kw):
        with pytest.raises(ValueError):
            self._controller(**kw)
