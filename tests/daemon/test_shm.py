"""Shared-memory circuit publication: codec, pool, attach cache."""

import pytest

from repro.circuits.generators import random_circuit
from repro.core.algorithm import ChainComputer
from repro.daemon.shm import (
    CircuitRef,
    SharedCircuitPool,
    attach_circuit,
    attached_segments,
    decode_circuit,
    detach_all,
    detach_circuit,
    encode_circuit,
    shared_memory_available,
)
from repro.dominators.shared import SharedCircuitIndex, cone_graph
from repro.graph.circuit import Circuit
from repro.graph.indexed import IndexedGraph
from repro.graph.node import NodeType
from repro.incremental import IncrementalEngine
from repro.incremental.edits import AddGate
from repro.service.hashing import circuit_fingerprint
from repro.service.metrics import MetricsRegistry

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)


def _circuit(seed=11, outputs=3):
    return random_circuit(
        num_inputs=4,
        num_gates=25,
        num_outputs=outputs,
        seed=seed,
        name=f"shm_{seed}",
    )


class TestCodec:
    def test_round_trip_is_structurally_identical(self):
        circuit = _circuit()
        decoded = decode_circuit(encode_circuit(circuit))
        assert circuit_fingerprint(decoded) == circuit_fingerprint(circuit)
        assert decoded.inputs == circuit.inputs
        assert decoded.outputs == circuit.outputs
        assert decoded.name == circuit.name
        # The decoder installs the publisher's topological order, which
        # is what keeps every downstream vertex numbering identical.
        assert decoded.topological_order() == circuit.topological_order()

    def test_round_trip_preserves_chains_bit_identically(self):
        circuit = _circuit(seed=5)
        decoded = decode_circuit(encode_circuit(circuit))
        for out in circuit.outputs:
            ref_graph = IndexedGraph.from_circuit(circuit, out)
            dec_graph = IndexedGraph.from_circuit(decoded, out)
            ref = ChainComputer(ref_graph)
            dec = ChainComputer(dec_graph)
            for u in ref_graph.sources():
                assert ref.chain(u).to_dict() == dec.chain(u).to_dict()

    def test_decode_preseeds_circuit_index(self):
        circuit = _circuit(seed=9)
        decoded = decode_circuit(encode_circuit(circuit))
        # for_circuit must serve the pre-seeded index (no rebuild).
        index = SharedCircuitIndex.for_circuit(decoded)
        again = SharedCircuitIndex.for_circuit(decoded)
        assert index is again
        for out in circuit.outputs:
            assert (
                cone_graph(decoded, out).names
                == cone_graph(circuit, out).names
            )

    def test_constants_survive(self):
        circuit = Circuit("consts")
        a = circuit.add_input("a")
        circuit.add_constant("zero", 0)
        circuit.add_constant("one", 1)
        circuit.add_gate("g", NodeType.AND, [a, "one"])
        circuit.set_outputs(["g"])
        decoded = decode_circuit(encode_circuit(circuit))
        assert decoded.node("zero").type is NodeType.CONST0
        assert decoded.node("one").type is NodeType.CONST1
        assert circuit_fingerprint(decoded) == circuit_fingerprint(circuit)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_circuit(b"nope" + b"\x00" * 64)


@needs_shm
class TestSharedCircuitPool:
    def test_publish_is_once_per_version(self):
        metrics = MetricsRegistry()
        with SharedCircuitPool(metrics) as pool:
            circuit = _circuit()
            key = circuit_fingerprint(circuit)
            ref1 = pool.publish(circuit, key)
            ref2 = pool.publish(circuit, key)
            assert ref1 is ref2
            assert metrics.counter("shm.publishes").value == 1
            assert metrics.counter("shm.publish_hits").value == 1
            assert pool.version(key) == 1

    def test_invalidate_retires_and_rebumps(self):
        with SharedCircuitPool() as pool:
            circuit = _circuit()
            key = circuit_fingerprint(circuit)
            ref1 = pool.publish(circuit, key)
            pool.invalidate(key)
            assert pool.ref(key) is None
            ref2 = pool.publish(circuit, key)
            assert ref2.version == 2
            assert ref2.segment != ref1.segment

    def test_listener_fires_on_engine_edit(self):
        with SharedCircuitPool() as pool:
            circuit = _circuit(seed=21, outputs=1)
            key = circuit_fingerprint(circuit)
            pool.publish(circuit, key)
            engine = IncrementalEngine.from_circuit(circuit.copy())
            engine.add_edit_listener(pool.listener_for(key))
            assert pool.ref(key) is not None
            engine.apply(
                AddGate("shm_new", (circuit.inputs[0],), gate_type="buf")
            )
            assert pool.ref(key) is None  # segment retired by the edit

    def test_attach_detach_refcount(self):
        with SharedCircuitPool() as pool:
            circuit = _circuit(seed=31)
            key = circuit_fingerprint(circuit)
            ref = pool.publish(circuit, key)
            first = attach_circuit(ref)
            second = attach_circuit(ref)
            assert first is second  # cache hit, not a second decode
            assert ref.segment in attached_segments()
            detach_circuit(ref)
            assert ref.segment in attached_segments()  # still held once
            detach_circuit(ref)
            assert ref.segment not in attached_segments()

    def test_close_unlinks_everything(self):
        pool = SharedCircuitPool()
        circuit = _circuit(seed=41)
        key = circuit_fingerprint(circuit)
        ref = pool.publish(circuit, key)
        pool.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.segment)

    def test_attached_circuit_matches_original(self):
        with SharedCircuitPool() as pool:
            circuit = _circuit(seed=51)
            key = circuit_fingerprint(circuit)
            ref = pool.publish(circuit, key)
            try:
                attached = attach_circuit(ref)
                assert circuit_fingerprint(attached) == key
                assert isinstance(ref, CircuitRef)
            finally:
                detach_all()
