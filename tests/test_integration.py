"""End-to-end integration tests spanning every layer of the library.

Each test exercises a realistic pipeline: generate → serialize → reload →
analyze → cross-check, the way a downstream user would chain the APIs.
"""

import pytest

from repro import ChainComputer, IndexedGraph, dominator_counts
from repro.analysis import (
    VectorSimulator,
    exact_signal_probabilities,
    select_cut_frontiers,
    verify_frontier,
)
from repro.circuits import get_benchmark
from repro.core import (
    baseline_double_dominators,
    count_double_dominators,
    count_double_dominators_baseline,
)
from repro.parsers import bench, blif


@pytest.mark.parametrize("name", ["alu2", "comp", "C432", "cordic"])
def test_pipeline_generate_serialize_analyze(tmp_path, name):
    """Suite circuit → .bench file → reload → both algorithms agree."""
    circuit = get_benchmark(name, scale=0.5)
    path = tmp_path / f"{name}.bench"
    bench.dump(circuit, path)
    reloaded = bench.load(path)
    assert count_double_dominators(reloaded) == count_double_dominators_baseline(
        reloaded
    )


def test_pipeline_blif_roundtrip_preserves_counts(tmp_path):
    """Dominator structure is purely topological: for circuits whose
    gates BLIF can represent one-to-one (no MUX — MUX covers reload as a
    sum-of-products network with different topology), the round trip
    preserves the counts node-for-node."""
    circuit = get_benchmark("comp", scale=0.6)
    counts = dominator_counts(circuit)
    path = tmp_path / "comp.blif"
    blif.dump(circuit, path)
    reloaded = blif.load(path)
    assert dominator_counts(reloaded) == counts


def test_pipeline_probability_vs_simulation():
    """Exact signal probability on a suite circuit vs Monte Carlo."""
    pytest.importorskip("numpy")
    circuit = get_benchmark("alu2", scale=1.0)
    out = circuit.outputs[0]
    exact = exact_signal_probabilities(circuit, out)
    mc = VectorSimulator(circuit).monte_carlo_probabilities(
        50_000, seed=9, nets=list(exact)
    )
    for net in exact:
        assert abs(exact[net] - mc[net]) < 0.02


def test_pipeline_frontiers_on_suite_circuit():
    circuit = get_benchmark("cordic", scale=1.0)
    out = circuit.outputs[0]
    graph = IndexedGraph.from_circuit(circuit, out)
    frontiers = select_cut_frontiers(circuit, out)
    assert frontiers, "cascade family must expose cut frontiers"
    for frontier in frontiers:
        assert verify_frontier(graph, frontier.nets)


def test_pipeline_chains_consistent_across_representations():
    """Chains computed on the generated circuit equal chains computed on
    the DOT-of-bench-of-circuit round trip (pure topology)."""
    circuit = get_benchmark("cmb", scale=1.0)
    reloaded = bench.loads(bench.dumps(circuit))
    for out in circuit.outputs:
        g1 = IndexedGraph.from_circuit(circuit, out)
        g2 = IndexedGraph.from_circuit(reloaded, out)
        c1 = ChainComputer(g1)
        c2 = ChainComputer(g2)
        for u in g1.sources():
            names1 = {
                frozenset((g1.name_of(a), g1.name_of(b)))
                for a, b in c1.chain(u).iter_dominator_pairs()
            }
            u2 = g2.index_of(g1.name_of(u))
            names2 = {
                frozenset((g2.name_of(a), g2.name_of(b)))
                for a, b in c2.chain(u2).iter_dominator_pairs()
            }
            assert names1 == names2


def test_pipeline_baseline_and_chain_per_target_on_suite():
    circuit = get_benchmark("C432", scale=0.5)
    for out in circuit.outputs[:2]:
        graph = IndexedGraph.from_circuit(circuit, out)
        base = baseline_double_dominators(graph)
        computer = ChainComputer(graph)
        for u in graph.sources():
            assert computer.chain(u).pair_set() == base[u]
