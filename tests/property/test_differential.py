"""Property tests: brute force == baseline [11] == dominator chain.

The edge cases the worked examples never hit are pinned explicitly —
single-gate cones, PI-only cones, multi-fanout roots, fanout-free chains
— then hypothesis sweeps random netlists through the full differential
oracle, and random edit scripts through incremental-vs-scratch.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_circuit, check_cone, check_incremental
from repro.check.fuzzer import _draw_edits
from repro.circuits.generators import random_circuit
from repro.graph import IndexedGraph, NodeType
from repro.graph.circuit import Circuit

from .strategies import small_circuits

_MULTI_INPUT_GATES = [
    NodeType.AND,
    NodeType.OR,
    NodeType.NAND,
    NodeType.NOR,
    NodeType.XOR,
    NodeType.XNOR,
]


class TestDegenerateCones:
    @given(
        st.integers(2, 5),
        st.sampled_from(_MULTI_INPUT_GATES),
    )
    def test_single_gate_cone(self, arity, gate):
        c = Circuit("one_gate")
        fanins = [c.add_input(f"i{k}") for k in range(arity)]
        c.add_gate("g", gate, fanins)
        c.set_outputs(["g"])
        report = check_circuit(c)
        assert report.ok, report.mismatches

    def test_pi_only_cone(self):
        c = Circuit("pi_only")
        c.add_input("a")
        c.add_input("b")
        c.set_outputs(["a"])
        report = check_circuit(c)
        assert report.ok, report.mismatches

    def test_fanout_free_chain(self):
        c = Circuit("chain")
        sig = c.add_input("i0")
        for k in range(5):
            sig = c.add_gate(f"b{k}", NodeType.BUF, [sig])
        c.set_outputs([sig])
        report = check_circuit(c)
        assert report.ok, report.mismatches

    def test_multi_fanout_root(self):
        c = Circuit("mf_root")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_gate("l", NodeType.AND, [a, b])
        c.add_gate("r", NodeType.OR, [a, b])
        c.add_gate("root", NodeType.XOR, ["l", "r"])
        c.set_outputs(["root"])
        report = check_circuit(c)
        assert report.ok, report.mismatches
        # Every PI must be checkable as a target, not just the first.
        graph = IndexedGraph.from_circuit(c)
        assert check_cone(graph, targets=list(graph.sources())) == []


class TestRandomCones:
    @given(small_circuits())
    @settings(max_examples=40, deadline=None)
    def test_three_way_agreement(self, circuit):
        report = check_circuit(circuit, brute_limit=64)
        assert report.ok, [str(m) for m in report.mismatches]
        assert report.brute_confirmed == report.targets


class TestIncrementalAgreement:
    @given(st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_random_edit_sequences(self, seed):
        rng = random.Random(f"diff-inc:{seed}")
        circuit = random_circuit(
            num_inputs=rng.randint(2, 4),
            num_gates=rng.randint(3, 12),
            num_outputs=1,
            seed=rng.randrange(1 << 30),
            name=f"inc_{seed}",
        )
        edits = _draw_edits(rng, circuit, rng.randint(1, 4))
        mismatches = check_incremental(circuit, edits)
        assert mismatches == [], [str(m) for m in mismatches]
