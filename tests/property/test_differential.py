"""Property tests: brute force == baseline [11] == dominator chain.

The edge cases the worked examples never hit are pinned explicitly —
single-gate cones, PI-only cones, multi-fanout roots, fanout-free chains
— then hypothesis sweeps random netlists through the full differential
oracle (which cross-checks construction backends on every target), and
random edit scripts through incremental-vs-scratch.  Backend equivalence
is additionally asserted directly: shared, legacy and linear chains must
agree not just on pair sets but on pair vectors and intervals.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (
    check_circuit,
    check_cone,
    check_incremental,
    diff_chains,
)
from repro.check.fuzzer import _draw_edits
from repro.circuits.generators import random_circuit
from repro.core.algorithm import ChainComputer
from repro.core.bruteforce import all_double_dominators
from repro.graph import IndexedGraph, NodeType
from repro.graph.circuit import Circuit

from .strategies import small_circuits

_MULTI_INPUT_GATES = [
    NodeType.AND,
    NodeType.OR,
    NodeType.NAND,
    NodeType.NOR,
    NodeType.XOR,
    NodeType.XNOR,
]


class TestDegenerateCones:
    @given(
        st.integers(2, 5),
        st.sampled_from(_MULTI_INPUT_GATES),
    )
    def test_single_gate_cone(self, arity, gate):
        c = Circuit("one_gate")
        fanins = [c.add_input(f"i{k}") for k in range(arity)]
        c.add_gate("g", gate, fanins)
        c.set_outputs(["g"])
        report = check_circuit(c)
        assert report.ok, report.mismatches

    def test_pi_only_cone(self):
        c = Circuit("pi_only")
        c.add_input("a")
        c.add_input("b")
        c.set_outputs(["a"])
        report = check_circuit(c)
        assert report.ok, report.mismatches

    def test_fanout_free_chain(self):
        c = Circuit("chain")
        sig = c.add_input("i0")
        for k in range(5):
            sig = c.add_gate(f"b{k}", NodeType.BUF, [sig])
        c.set_outputs([sig])
        report = check_circuit(c)
        assert report.ok, report.mismatches

    def test_multi_fanout_root(self):
        c = Circuit("mf_root")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_gate("l", NodeType.AND, [a, b])
        c.add_gate("r", NodeType.OR, [a, b])
        c.add_gate("root", NodeType.XOR, ["l", "r"])
        c.set_outputs(["root"])
        report = check_circuit(c)
        assert report.ok, report.mismatches
        # Every PI must be checkable as a target, not just the first.
        graph = IndexedGraph.from_circuit(c)
        assert check_cone(graph, targets=list(graph.sources())) == []


class TestRandomCones:
    @given(small_circuits())
    @settings(max_examples=40, deadline=None)
    def test_three_way_agreement(self, circuit):
        report = check_circuit(circuit, brute_limit=64)
        assert report.ok, [str(m) for m in report.mismatches]
        assert report.brute_confirmed == report.targets


class TestBackendEquivalence:
    """The shared array-index backend and the linear one-pass backend
    must be indistinguishable from the legacy per-call-subgraph backend
    — identical pair vectors and intervals for every target, not merely
    the same pair set."""

    @given(small_circuits())
    @settings(max_examples=40, deadline=None)
    def test_chains_identical_across_backends(self, circuit):
        for out in circuit.outputs:
            graph = IndexedGraph.from_circuit(circuit, out)
            shared = ChainComputer(graph, backend="shared")
            for u in graph.sources():
                reference = shared.chain(u)
                for backend in ("legacy", "linear"):
                    other = ChainComputer(graph, backend=backend)
                    divergence = diff_chains(reference, other.chain(u))
                    assert divergence is None, (
                        f"{out}/{u} vs {backend}: {divergence}"
                    )

    @given(st.integers(2, 5), st.sampled_from(_MULTI_INPUT_GATES))
    def test_single_gate_cone_all_backends(self, arity, gate):
        # The whole cone is one search region with no interior vertex,
        # so every backend must return an empty chain for every PI.
        c = Circuit("one_gate_backends")
        fanins = [c.add_input(f"i{k}") for k in range(arity)]
        c.add_gate("g", gate, fanins)
        c.set_outputs(["g"])
        graph = IndexedGraph.from_circuit(c)
        for backend in ("shared", "legacy", "linear"):
            computer = ChainComputer(graph, backend=backend)
            for u in graph.sources():
                chain = computer.chain(u)
                assert chain.pair_set() == set(), backend
                assert diff_chains(
                    chain, ChainComputer(graph, backend="legacy").chain(u)
                ) is None

    @given(small_circuits())
    @settings(max_examples=25, deadline=None)
    def test_linear_scratch_reuse_bit_identical(self, circuit):
        # One linear ChainComputer reuses a single epoch-stamped
        # scratch across every region of every target; a fresh computer
        # per target starts from a cold scratch.  The chains must be
        # bit-identical (pair vectors, intervals, grouping) either way.
        for out in circuit.outputs:
            graph = IndexedGraph.from_circuit(circuit, out)
            warm = ChainComputer(graph, backend="linear")
            for u in graph.sources():
                cold = ChainComputer(graph, backend="linear")
                divergence = diff_chains(cold.chain(u), warm.chain(u))
                assert divergence is None, f"{out}/{u}: {divergence}"

    def test_straddling_dominator_pairs(self):
        # Two reconvergent diamonds stacked through a single dominator
        # ``s``: the chain of ``u`` is u -> s -> root with one pair in
        # each search region — {a, c} below s and {b, d} above it.  The
        # pairs straddle the region boundary, the shape where per-region
        # index bookkeeping (offsets, interval renumbering) can go wrong.
        c = Circuit("straddle")
        u = c.add_input("u")
        c.add_gate("a", NodeType.BUF, [u])
        c.add_gate("c", NodeType.NOT, [u])
        c.add_gate("s", NodeType.AND, ["a", "c"])
        c.add_gate("b", NodeType.BUF, ["s"])
        c.add_gate("d", NodeType.NOT, ["s"])
        c.add_gate("root", NodeType.OR, ["b", "d"])
        c.set_outputs(["root"])
        graph = IndexedGraph.from_circuit(c)
        target = graph.index_of("u")
        expected = {
            frozenset({graph.index_of("a"), graph.index_of("c")}),
            frozenset({graph.index_of("b"), graph.index_of("d")}),
        }
        assert all_double_dominators(graph, target) == expected
        chains = {
            backend: ChainComputer(graph, backend=backend).chain(target)
            for backend in ("shared", "legacy", "linear")
        }
        for backend, chain in chains.items():
            assert chain.pair_set() == expected, backend
        assert diff_chains(chains["shared"], chains["legacy"]) is None
        assert diff_chains(chains["shared"], chains["linear"]) is None
        report = check_circuit(c)
        assert report.ok, [str(m) for m in report.mismatches]


class TestIncrementalAgreement:
    @given(st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_random_edit_sequences(self, seed):
        rng = random.Random(f"diff-inc:{seed}")
        circuit = random_circuit(
            num_inputs=rng.randint(2, 4),
            num_gates=rng.randint(3, 12),
            num_outputs=1,
            seed=rng.randrange(1 << 30),
            name=f"inc_{seed}",
        )
        edits = _draw_edits(rng, circuit, rng.randint(1, 4))
        mismatches = check_incremental(circuit, edits)
        assert mismatches == [], [str(m) for m in mismatches]
