"""The paper's Lemmas 1–3 and Theorems 1–2 as executable properties.

A note on formalization: the paper's Lemma 1/2 statements write
``{v1, v2} ∈ Dom(v3)``, but their *proofs* only establish that every path
from the vertex to the root meets the pair — condition 1 of Definition 1.
Condition 2 (no redundancy) is relative to the target and does not
transfer, and random counterexamples to the strict reading exist.  The
tests below therefore use the coverage relation
(:func:`repro.core.bruteforce.pair_covers`), which is also the notion the
chain-uniqueness argument actually needs.
"""

from hypothesis import given, settings

from repro.core import all_double_dominators, dominator_chain
from repro.core.bruteforce import is_double_dominator, pair_covers
from repro.graph.topo import longest_path_to_root

from tests.property.strategies import cones_with_target

SETTINGS = dict(max_examples=50, deadline=None)


@given(cones_with_target())
@settings(**SETTINGS)
def test_lemma1_shared_vertex(graph_and_target):
    """Lemma 1 (coverage form): {v1,v2}, {v2,v3} ∈ Dom(u) ⇒ {v1,v2}
    covers v3 or {v2,v3} covers v1."""
    graph, u = graph_and_target
    pairs = all_double_dominators(graph, u)
    by_vertex = {}
    for pair in pairs:
        for v in pair:
            by_vertex.setdefault(v, []).append(pair)
    for v2, sharing in by_vertex.items():
        for i, p in enumerate(sharing):
            for q in sharing[i + 1 :]:
                (v1,) = p - {v2}
                (v3,) = q - {v2}
                assert pair_covers(graph, v3, (v1, v2)) or pair_covers(
                    graph, v1, (v2, v3)
                )


@given(cones_with_target())
@settings(max_examples=30, deadline=None)
def test_lemma2_disjoint_pairs_exchange(graph_and_target):
    """Lemma 2 (coverage form): for disjoint pairs where neither covers
    the other, a crosswise re-matching yields two dominator pairs of u."""
    graph, u = graph_and_target
    pairs = list(all_double_dominators(graph, u))
    for i, p in enumerate(pairs):
        for q in pairs[i + 1 :]:
            if p & q:
                continue
            v1, v2 = tuple(p)
            v3, v4 = tuple(q)
            if all(pair_covers(graph, x, q) for x in p):
                continue
            if all(pair_covers(graph, x, p) for x in q):
                continue
            crossings = (
                is_double_dominator(graph, u, v1, v4)
                and is_double_dominator(graph, u, v2, v3)
            ) or (
                is_double_dominator(graph, u, v1, v3)
                and is_double_dominator(graph, u, v2, v4)
            )
            assert crossings


@given(cones_with_target())
@settings(**SETTINGS)
def test_theorem1_immediate_unique(graph_and_target):
    """Theorem 1: the immediate double-vertex dominator (Definition 2,
    with 'dominated by W' in the coverage sense) is unique, and equals
    the chain's first pair."""
    graph, u = graph_and_target
    pairs = all_double_dominators(graph, u)
    immediates = []
    for p in pairs:
        dominated = False
        for q in pairs:
            if q != p and all(
                x in p or pair_covers(graph, x, tuple(p)) for x in q
            ):
                dominated = True
                break
        if not dominated:
            immediates.append(p)
    assert len(immediates) <= 1
    chain = dominator_chain(graph, u)
    if immediates:
        assert frozenset(chain.immediate()) == immediates[0]
    else:
        assert chain.immediate() is None


@given(cones_with_target())
@settings(**SETTINGS)
def test_lemma3_vectors_disjoint(graph_and_target):
    """Lemma 3: chain vectors never share vertices (each vertex appears
    exactly once — enforced at construction, revalidated here)."""
    graph, u = graph_and_target
    chain = dominator_chain(graph, u)
    seen = set()
    for pair in chain.pairs:
        for v in pair.vertices():
            assert v not in seen
            seen.add(v)


@given(cones_with_target())
@settings(**SETTINGS)
def test_theorem2_linear_size(graph_and_target):
    """Theorem 2: per side, the total vector length is smaller than the
    longest path from u to the root."""
    graph, u = graph_and_target
    chain = dominator_chain(graph, u)
    bound = longest_path_to_root(graph)[u]
    for flag in (1, 2):
        assert len(chain.side(flag)) <= max(0, bound)
    assert chain.size <= 2 * max(0, bound)


@given(cones_with_target())
@settings(**SETTINGS)
def test_matching_vector_order_property(graph_and_target):
    """Definition 3, property 1 ordering: within the matching vector W of
    v, if {v, w_r} dominates w_t then t < r."""
    graph, u = graph_and_target
    chain = dominator_chain(graph, u)
    for v in chain.vertices():
        matching = chain.matching_vector(v)
        for t, wt in enumerate(matching):
            for r, wr in enumerate(matching):
                if t == r:
                    continue
                if is_double_dominator(graph, wt, v, wr):
                    assert t < r
