"""Property tests: ``kernels="numpy"`` chains are bit-identical.

The numpy kernels recompute the shared-backend hot path — region
extraction, the size-two cut, matching vectors — over level-order flat
arrays, so the property worth asserting is not "same pair sets" but
*bit identity*: identical pair vectors and identical per-vertex
intervals (via :func:`diff_chains`) against the pure-python path on
every construction backend.  ``forced_region_threshold(0)`` pushes
every region — however tiny — through the kernels; without it the
fuzzed circuits here would all fall below ``MIN_KERNEL_REGION`` and
the property would silently test nothing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import diff_chains
from repro.core.algorithm import ChainComputer
from repro.dominators.kernels import (
    forced_region_threshold,
    numpy_available,
)
from repro.graph import IndexedGraph, NodeType
from repro.graph.circuit import Circuit

from .strategies import small_circuits

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

_MULTI_INPUT_GATES = [
    NodeType.AND,
    NodeType.OR,
    NodeType.NAND,
    NodeType.NOR,
    NodeType.XOR,
    NodeType.XNOR,
]

#: Every python-path reference the kernels must reproduce bit-for-bit,
#: and the kernel-capable backends to run against each.
_REFERENCE_BACKENDS = ("legacy", "shared", "linear")
_KERNEL_BACKENDS = ("shared", "linear")


def _assert_kernel_identity(graph):
    kernel = {
        backend: ChainComputer(graph, backend=backend, kernels="numpy")
        for backend in _KERNEL_BACKENDS
    }
    with forced_region_threshold(0):
        for u in graph.sources():
            chains = {b: c.chain(u) for b, c in kernel.items()}
            for reference in _REFERENCE_BACKENDS:
                expected = ChainComputer(
                    graph, backend=reference, kernels="python"
                ).chain(u)
                for backend, chain in chains.items():
                    divergence = diff_chains(expected, chain)
                    assert divergence is None, (
                        f"target {u}: numpy/{backend} vs "
                        f"python/{reference}: {divergence}"
                    )


class TestKernelEquivalence:
    @given(small_circuits())
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_across_backends(self, circuit):
        for out in circuit.outputs:
            _assert_kernel_identity(IndexedGraph.from_circuit(circuit, out))

    @given(st.integers(2, 5), st.sampled_from(_MULTI_INPUT_GATES))
    def test_single_gate_cone(self, arity, gate):
        # One gate, no interior vertices: the kernel path must agree
        # that every PI's chain is empty, through the same dispatch.
        c = Circuit("one_gate_kernels")
        fanins = [c.add_input(f"i{k}") for k in range(arity)]
        c.add_gate("g", gate, fanins)
        c.set_outputs(["g"])
        graph = IndexedGraph.from_circuit(c)
        computer = ChainComputer(graph, backend="shared", kernels="numpy")
        with forced_region_threshold(0):
            for u in graph.sources():
                assert computer.chain(u).pair_set() == set()
        _assert_kernel_identity(graph)

    def test_straddling_pair_boundaries(self):
        # Two stacked diamonds through single dominator ``s``: one pair
        # per region, straddling the region boundary — the shape where
        # per-region offset bookkeeping goes wrong first.
        c = Circuit("straddle_kernels")
        u = c.add_input("u")
        c.add_gate("a", NodeType.BUF, [u])
        c.add_gate("c", NodeType.NOT, [u])
        c.add_gate("s", NodeType.AND, ["a", "c"])
        c.add_gate("b", NodeType.BUF, ["s"])
        c.add_gate("d", NodeType.NOT, ["s"])
        c.add_gate("root", NodeType.OR, ["b", "d"])
        c.set_outputs(["root"])
        graph = IndexedGraph.from_circuit(c)
        target = graph.index_of("u")
        expected = {
            frozenset({graph.index_of("a"), graph.index_of("c")}),
            frozenset({graph.index_of("b"), graph.index_of("d")}),
        }
        computer = ChainComputer(graph, backend="shared", kernels="numpy")
        with forced_region_threshold(0):
            assert computer.chain(target).pair_set() == expected
        _assert_kernel_identity(graph)
