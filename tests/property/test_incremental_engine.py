"""Property: the incremental engine is indistinguishable from recomputation.

For any circuit and any sequence of valid edits, the chains served by
:class:`~repro.incremental.IncrementalEngine` (with its cross-edit
region cache and dirty-cone invalidation) must equal the chains a fresh
:class:`~repro.core.algorithm.ChainComputer` produces on the edited
graph — same dominator pairs *and* same matching vectors/intervals.
This is the soundness contract of
:mod:`repro.incremental.invalidate`: a cache entry that survives an
edit is byte-identical to what recomputation would produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChainComputer
from repro.incremental import (
    AddGate,
    IncrementalEngine,
    RemoveGate,
    ReplaceSubgraph,
    Rewire,
)

from .strategies import small_circuits


def assert_matches_recompute(engine):
    """Engine output == from-scratch output on the engine's live graph."""
    fresh = ChainComputer(engine.graph, engine.algorithm)
    tree = engine.tree
    for u in engine.graph.sources():
        if not tree.is_reachable(u):
            continue
        incremental = engine.chain(u)
        scratch = fresh.chain(u)
        assert incremental.pair_set() == scratch.pair_set()
        assert incremental.pairs == scratch.pairs
        for v in incremental.vertices():
            assert incremental.interval(v) == scratch.interval(v)
            assert incremental.matching_vector(v) == scratch.matching_vector(v)


def draw_edit(draw, engine, counter):
    """One valid edit against the engine's current graph state."""
    graph = engine.graph
    alive = [v for v in range(graph.n) if graph.is_alive(v)]
    gates = [v for v in alive if graph.pred[v]]
    removable = [v for v in alive if v != graph.root]
    kind = draw(
        st.sampled_from(["rewire", "add", "remove", "replace"])
    )
    if kind == "rewire" and gates:
        w = gates[draw(st.integers(0, len(gates) - 1))]
        reach = graph.reachable_from(w)
        pool = [v for v in alive if v != w and not reach[v]]
        if pool:
            count = draw(st.integers(1, min(3, len(pool))))
            fanins = [
                graph.name_of(pool[draw(st.integers(0, len(pool) - 1))])
                for _ in range(count)
            ]
            return Rewire(graph.name_of(w), tuple(fanins))
    if kind == "remove" and removable:
        v = removable[draw(st.integers(0, len(removable) - 1))]
        return RemoveGate(graph.name_of(v))
    if kind == "replace" and gates:
        # add a gate and splice it into an existing gate's fanins — the
        # buffer-insertion shape of local rewrites, as one batch
        w = gates[draw(st.integers(0, len(gates) - 1))]
        driver = graph.pred[w][draw(st.integers(0, len(graph.pred[w]) - 1))]
        name = f"inc_r{counter}"
        spliced = tuple(
            name if p == driver else graph.name_of(p)
            for p in graph.pred[w]
        )
        return ReplaceSubgraph(
            add=(AddGate(name, (graph.name_of(driver),), "buf"),),
            rewire=(Rewire(graph.name_of(w), spliced),),
        )
    # fallback (and the "add" kind): a fresh gate off existing signals
    count = draw(st.integers(1, min(3, len(alive))))
    fanins = [
        graph.name_of(alive[draw(st.integers(0, len(alive) - 1))])
        for _ in range(count)
    ]
    return AddGate(f"inc_g{counter}", tuple(fanins), "and")


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_edit_sequence_matches_recompute(data):
    """Acceptance property: ≥200 random edit sequences, exact equality."""
    circuit = data.draw(small_circuits(min_gates=2, max_gates=12))
    engine = IncrementalEngine.from_circuit(circuit)
    engine.chains_for_sources()  # warm the cache pre-edit
    num_edits = data.draw(st.integers(1, 4))
    for i in range(num_edits):
        engine.apply(draw_edit(data.draw, engine, i))
    assert_matches_recompute(engine)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_every_intermediate_state_matches(data):
    """Stronger (fewer examples): equivalence after *every* edit."""
    circuit = data.draw(small_circuits(min_gates=2, max_gates=10))
    engine = IncrementalEngine.from_circuit(circuit)
    engine.chains_for_sources()
    for i in range(data.draw(st.integers(1, 3))):
        engine.apply(draw_edit(data.draw, engine, i))
        assert_matches_recompute(engine)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_cache_serves_hits_across_edits(data):
    """The cache is not trivially cold: edits leave some entries alive."""
    circuit = data.draw(small_circuits(min_gates=6, max_gates=14))
    engine = IncrementalEngine.from_circuit(circuit)
    engine.chains_for_sources()
    stores_before = engine.cache_stats.stores
    engine.apply(draw_edit(data.draw, engine, 0))
    engine.chains_for_sources()
    # soundness is covered above; here we check the cache still functions
    # (lookups happen and bookkeeping stays consistent)
    stats = engine.cache_stats
    assert stats.stores >= stores_before
    assert stats.lookups == stats.hits + stats.misses
    assert len(engine.cache) <= stats.stores
