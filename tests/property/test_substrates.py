"""Property tests for the substrate layers: dominators, flow, parsers."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import evaluate
from repro.core.common import common_dominator_pairs, common_pairs_from_chains
from repro.core.algorithm import ChainComputer
from repro.dominators import UNREACHABLE, iterative, lengauer_tarjan, naive
from repro.flow import count_disjoint_paths, min_vertex_cut
from repro.parsers import bench, blif

from tests.property.strategies import small_circuits, small_cones


@st.composite
def flowgraphs(draw, max_n=16):
    """Random digraphs (cycles allowed) rooted at 0."""
    n = draw(st.integers(2, max_n))
    succ = [[] for _ in range(n)]
    for v in range(1, n):
        succ[draw(st.integers(0, v - 1))].append(v)
    extra = draw(st.integers(0, 2 * n))
    for _ in range(extra):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            succ[a].append(b)
    return n, succ


@given(flowgraphs())
@settings(max_examples=80, deadline=None)
def test_dominator_algorithms_agree(fg):
    """LT, CHK-iterative and the naive fixpoint agree on any digraph."""
    n, succ = fg
    lt = lengauer_tarjan.compute_idoms(n, succ, 0)
    it = iterative.compute_idoms(n, succ, 0)
    nv = naive.compute_idoms(n, succ, 0)
    assert lt == it == nv


@given(flowgraphs())
@settings(max_examples=50, deadline=None)
def test_idom_belongs_to_every_dominator_set(fg):
    n, succ = fg
    dom = naive.dominator_sets(n, succ, 0)
    idoms = lengauer_tarjan.compute_idoms(n, succ, 0)
    for v in range(1, n):
        if dom[v] is None:
            assert idoms[v] == UNREACHABLE
        else:
            assert idoms[v] in dom[v]


@given(small_cones())
@settings(max_examples=50, deadline=None)
def test_vertex_cut_disconnects(graph):
    """Any unbounded min cut really separates the sources from the root,
    and matches Menger's count when no direct source→root edge exists."""
    for u in graph.sources():
        if graph.root in graph.succ[u]:
            continue
        result = min_vertex_cut(graph, [u], graph.root, limit=graph.n + 1)
        assert result.cut is not None
        assert result.flow == count_disjoint_paths(graph, [u], graph.root)
        banned = set(result.cut)
        seen, stack = {u}, [u]
        while stack:
            v = stack.pop()
            assert v != graph.root
            for w in graph.succ[v]:
                if w not in seen and w not in banned:
                    seen.add(w)
                    stack.append(w)


@given(small_circuits(max_gates=14, max_inputs=4))
@settings(max_examples=25, deadline=None)
def test_bench_roundtrip_functional(circuit):
    restored = bench.loads(bench.dumps(circuit))
    inputs = circuit.inputs
    out = circuit.outputs[0]
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        env = dict(zip(inputs, bits))
        assert evaluate(circuit, env)[out] == evaluate(restored, env)[out]


@given(small_circuits(max_gates=12, max_inputs=4))
@settings(max_examples=25, deadline=None)
def test_blif_roundtrip_functional(circuit):
    restored = blif.loads(blif.dumps(circuit))
    inputs = circuit.inputs
    out = circuit.outputs[0]
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        env = dict(zip(inputs, bits))
        assert evaluate(circuit, env)[out] == evaluate(restored, env)[out]


@given(small_cones(max_gates=16))
@settings(max_examples=40, deadline=None)
def test_common_intersection_subset_of_fake_vertex(graph):
    """Chain intersection (per-target redundancy) refines the fake-vertex
    common pairs (set-level redundancy)."""
    sources = graph.sources()
    computer = ChainComputer(graph)
    chains = [computer.chain(u) for u in sources]
    intersected = common_pairs_from_chains(chains)
    common = common_dominator_pairs(graph, sources)
    assert intersected <= common
