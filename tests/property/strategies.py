"""Hypothesis strategies generating random circuit DAGs.

``small_circuits()`` draws a netlist gate by gate (good shrinking: a
failing example minimizes toward the smallest circuit exhibiting the
bug); ``small_cones()`` additionally extracts the single-output
:class:`IndexedGraph` view the dominator algorithms consume.
"""

from hypothesis import strategies as st

from repro.graph import CircuitBuilder, IndexedGraph, NodeType

_GATES = [
    NodeType.AND,
    NodeType.OR,
    NodeType.XOR,
    NodeType.NAND,
    NodeType.NOR,
    NodeType.NOT,
    NodeType.BUF,
]


@st.composite
def small_circuits(draw, min_gates=2, max_gates=22, max_inputs=5):
    """A random single-output combinational circuit."""
    num_inputs = draw(st.integers(2, max_inputs))
    num_gates = draw(st.integers(min_gates, max_gates))
    builder = CircuitBuilder("hyp")
    signals = builder.input_bus("i", num_inputs)
    for _ in range(num_gates):
        gate = draw(st.sampled_from(_GATES))
        if gate in (NodeType.NOT, NodeType.BUF):
            arity = 1
        else:
            arity = draw(st.integers(2, 3))
        window = min(len(signals), 7)
        fanins = [
            signals[len(signals) - 1 - draw(st.integers(0, window - 1))]
            for _ in range(arity)
        ]
        signals.append(builder.gate(gate, fanins))
    return builder.finish([signals[-1]])


@st.composite
def small_cones(draw, **kwargs):
    """A random single-output cone as an IndexedGraph."""
    circuit = draw(small_circuits(**kwargs))
    return IndexedGraph.from_circuit(circuit)


@st.composite
def cones_with_target(draw, **kwargs):
    """A random cone plus one primary-input target vertex."""
    graph = draw(small_cones(**kwargs))
    sources = graph.sources()
    target = sources[draw(st.integers(0, len(sources) - 1))]
    return graph, target
