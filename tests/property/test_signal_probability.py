"""Property test: dominator-partitioned signal probability is exact."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import evaluate, exact_signal_probabilities

from tests.property.strategies import small_circuits


@given(small_circuits(max_gates=14, max_inputs=4), st.randoms())
@settings(max_examples=30, deadline=None)
def test_exact_equals_truth_table(circuit, rng):
    """For every net of the cone, the dominator-partitioned probability
    equals the weighted truth-table enumeration — under random biased
    input probabilities, not just the uniform distribution."""
    inputs = circuit.inputs
    bias = {name: round(rng.random(), 3) for name in inputs}
    out = circuit.outputs[0]
    probs = exact_signal_probabilities(circuit, out, input_probs=bias)
    truth = {net: 0.0 for net in probs}
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        weight = 1.0
        for name, bit in zip(inputs, bits):
            weight *= bias[name] if bit else 1 - bias[name]
        if weight == 0.0:
            continue
        values = evaluate(circuit, dict(zip(inputs, bits)))
        for net in truth:
            if values[net]:
                truth[net] += weight
    for net in truth:
        assert abs(probs[net] - truth[net]) < 1e-9
