"""Property: a parallel sweep equals sequential ChainComputer results.

The acceptance bar for the service layer is *bit-identical* output:
for every cone and every target, the worker-pool sweep must return the
same chain — pair for pair, vector for vector, interval for interval —
as a sequential :class:`~repro.core.algorithm.ChainComputer` run in the
parent process.  Serialized chain dictionaries encode exactly that
structure, so dict equality is the strongest possible comparison.

Worker pools fork per example, so the example budget is kept small;
the suite-level equivalence tests in ``tests/service/test_executor.py``
cover the large fixed circuits.
"""

from hypothesis import HealthCheck, given, settings

from repro.core.algorithm import ChainComputer
from repro.graph import IndexedGraph
from repro.service import ExecutorConfig, ParallelExecutor

from .strategies import small_circuits

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _widen(circuit):
    """Expose internal gates as extra outputs so sweeps have >1 cone.

    A single-cone sweep legitimately short-circuits to in-process
    execution, so multi-output circuits are needed to drive jobs
    through the actual pool.
    """
    gates = [n.name for n in circuit.nodes() if n.type.is_gate]
    for name in {gates[0], gates[len(gates) // 2]}:
        circuit.add_output(name)
    return circuit


def _sequential(circuit):
    per_cone = {}
    for output in circuit.outputs:
        graph = IndexedGraph.from_circuit(circuit, output)
        computer = ChainComputer(graph)
        per_cone[output] = {
            graph.name_of(u): computer.chain(u).to_dict()
            for u in graph.sources()
        }
    return per_cone


@given(circuit=small_circuits(max_gates=16))
@settings(**_SETTINGS)
def test_parallel_sweep_identical_to_sequential(circuit):
    circuit = _widen(circuit)
    executor = ParallelExecutor(ExecutorConfig(jobs=2, chunk_size=1))
    parallel = {
        r.output: r.chains for r in executor.sweep_circuit(circuit)
    }
    assert parallel == _sequential(circuit)


@given(circuit=small_circuits(max_gates=16))
@settings(**_SETTINGS)
def test_inprocess_fallback_identical_to_sequential(circuit):
    executor = ParallelExecutor(ExecutorConfig(jobs=1))
    fallback = {
        r.output: r.chains for r in executor.sweep_circuit(circuit)
    }
    assert fallback == _sequential(circuit)


@given(circuit=small_circuits(max_gates=16))
@settings(**_SETTINGS)
def test_pair_sets_match_vector_for_vector(circuit):
    """Reconstructed chains agree with the sequential ones structurally."""
    from repro.core.chain import DominatorChain

    circuit = _widen(circuit)
    executor = ParallelExecutor(ExecutorConfig(jobs=2))
    for result in executor.sweep_circuit(circuit):
        graph = IndexedGraph.from_circuit(circuit, result.output)
        computer = ChainComputer(graph)
        for name, chain_dict in result.chains.items():
            rebuilt = DominatorChain.from_dict(chain_dict)
            reference = computer.chain(graph.index_of(name))
            assert rebuilt.pairs == reference.pairs
            assert rebuilt.pair_set() == reference.pair_set()
            for v in reference.vertices():
                assert rebuilt.interval(v) == reference.interval(v)
                assert rebuilt.matching_vector(
                    v
                ) == reference.matching_vector(v)
