"""Property: the dynamic engine is indistinguishable from recomputation.

Same contract as :mod:`tests.property.test_incremental_engine` but for
``engine="dynamic"``: after any random insert/delete/rewire stream the
chains served by the maintained dominator tree must be *bit-identical*
(pairs, vectors and intervals) to a fresh from-scratch
:class:`~repro.core.algorithm.ChainComputer` on the edited graph — on
every construction backend — and the maintained tree must pass its
low-high certificate after every edit batch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChainComputer
from repro.dominators.shared import BACKENDS
from repro.incremental import IncrementalEngine

from .strategies import small_circuits
from .test_incremental_engine import draw_edit


def assert_matches_recompute(engine, backend):
    fresh = ChainComputer(engine.graph, engine.algorithm, backend=backend)
    tree = engine.tree
    for u in engine.graph.sources():
        if not tree.is_reachable(u):
            continue
        incremental = engine.chain(u)
        scratch = fresh.chain(u)
        assert incremental.pair_set() == scratch.pair_set()
        assert incremental.pairs == scratch.pairs
        for v in incremental.vertices():
            assert incremental.interval(v) == scratch.interval(v)
            assert incremental.matching_vector(v) == scratch.matching_vector(v)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_dynamic_engine_matches_recompute(backend, data):
    """Bit-identical chains + passing certificate after every edit."""
    circuit = data.draw(small_circuits(min_gates=2, max_gates=12))
    engine = IncrementalEngine.from_circuit(
        circuit, backend=backend, engine="dynamic"
    )
    engine.chains_for_sources()  # warm the cache pre-edit
    for i in range(data.draw(st.integers(1, 4))):
        engine.apply(draw_edit(data.draw, engine, i))
        assert engine.check_certificate() == []
        assert_matches_recompute(engine, backend)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_dynamic_and_patch_engines_agree(data):
    """Both engines serve identical chains over the same edit stream."""
    circuit = data.draw(small_circuits(min_gates=2, max_gates=12))
    dynamic = IncrementalEngine.from_circuit(circuit, engine="dynamic")
    patch = IncrementalEngine.from_circuit(circuit, engine="patch")
    for i in range(data.draw(st.integers(1, 3))):
        edit = draw_edit(data.draw, dynamic, i)
        dynamic.apply(edit)
        patch.apply(edit)
        d_tree, p_tree = dynamic.tree, patch.tree
        assert list(d_tree.idom) == list(p_tree.idom)
        for u in dynamic.graph.sources():
            if not d_tree.is_reachable(u):
                continue
            assert (
                dynamic.chain(u).to_dict() == patch.chain(u).to_dict()
            )
