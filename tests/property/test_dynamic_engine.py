"""Property: the dynamic engine is indistinguishable from recomputation.

Same contract as :mod:`tests.property.test_incremental_engine` but for
``engine="dynamic"``: after any random insert/delete/rewire stream the
chains served by the maintained dominator tree must be *bit-identical*
(pairs, vectors and intervals) to a fresh from-scratch
:class:`~repro.core.algorithm.ChainComputer` on the edited graph — on
every construction backend — and the maintained tree must pass its
low-high certificate after every edit batch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChainComputer
from repro.dominators.shared import BACKENDS
from repro.graph.builder import CircuitBuilder
from repro.incremental import IncrementalEngine, Rewire

from .strategies import small_circuits
from .test_incremental_engine import draw_edit


def assert_matches_recompute(engine, backend):
    fresh = ChainComputer(engine.graph, engine.algorithm, backend=backend)
    tree = engine.tree
    for u in engine.graph.sources():
        if not tree.is_reachable(u):
            continue
        incremental = engine.chain(u)
        scratch = fresh.chain(u)
        assert incremental.pair_set() == scratch.pair_set()
        assert incremental.pairs == scratch.pairs
        for v in incremental.vertices():
            assert incremental.interval(v) == scratch.interval(v)
            assert incremental.matching_vector(v) == scratch.matching_vector(v)


@pytest.mark.parametrize("backend", BACKENDS)
def test_lateral_reparent_rewire_batch_serves_true_chains(backend):
    """Regression: a same-depth re-parent must reach reconvergent sinks.

    One batch rewires ``b`` onto ``f`` alone and ``c`` onto ``d``:
    gate ``d`` re-parents laterally (idom ``b`` -> ``c`` at unchanged
    tree depth), so every ``(idom, depth)`` pair in its subtree stays
    intact while the NCA of the reconvergent gate ``s`` — observed
    through both the ``d`` and ``f`` subtrees — moves from ``b`` to the
    output.  The dynamic engine's pruned sweep silently served the
    stale ``idom[s] = b`` here (chains wrong, certificate only run on
    check/daemon paths); dirty-ancestor propagation must catch it.
    """
    builder = CircuitBuilder("lateral")
    i0, i1 = builder.inputs("i0", "i1")
    s = builder.buf(i0, name="s")
    e = builder.buf(s, name="e")
    f = builder.buf(s, name="f")
    d = builder.buf(e, name="d")
    c = builder.buf(i1, name="c")
    b = builder.and_(d, f, name="b")
    builder.and_(b, c, name="out")
    circuit = builder.finish(["out"])
    engine = IncrementalEngine.from_circuit(
        circuit, backend=backend, engine="dynamic"
    )
    engine.chains_for_sources()  # warm state so the edit takes the sweep
    engine.apply(Rewire("b", ("f",)), Rewire("c", ("d",)))
    tree = engine.tree
    graph = engine.graph
    assert tree.idom[graph.index_of("d")] == graph.index_of("c")
    assert tree.idom[graph.index_of("s")] == graph.root
    assert engine.check_certificate() == []
    assert_matches_recompute(engine, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_dynamic_engine_matches_recompute(backend, data):
    """Bit-identical chains + passing certificate after every edit."""
    circuit = data.draw(small_circuits(min_gates=4, max_gates=20))
    engine = IncrementalEngine.from_circuit(
        circuit, backend=backend, engine="dynamic"
    )
    engine.chains_for_sources()  # warm the cache pre-edit
    for i in range(data.draw(st.integers(1, 6))):
        engine.apply(draw_edit(data.draw, engine, i))
        assert engine.check_certificate() == []
        assert_matches_recompute(engine, backend)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_dynamic_and_patch_engines_agree(data):
    """Both engines serve identical chains over the same edit stream."""
    circuit = data.draw(small_circuits(min_gates=4, max_gates=18))
    dynamic = IncrementalEngine.from_circuit(circuit, engine="dynamic")
    patch = IncrementalEngine.from_circuit(circuit, engine="patch")
    for i in range(data.draw(st.integers(1, 5))):
        edit = draw_edit(data.draw, dynamic, i)
        dynamic.apply(edit)
        patch.apply(edit)
        d_tree, p_tree = dynamic.tree, patch.tree
        assert list(d_tree.idom) == list(p_tree.idom)
        for u in dynamic.graph.sources():
            if not d_tree.is_reachable(u):
                continue
            assert (
                dynamic.chain(u).to_dict() == patch.chain(u).to_dict()
            )
