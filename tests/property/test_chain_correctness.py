"""Property tests: the chain algorithm against the executable definition.

These are the central correctness properties of the reproduction — on
arbitrary random circuit DAGs, the paper's algorithm, the baseline [11]
and the brute-force Definition-1 enumeration must produce identical
double-vertex dominator sets, and the chain's O(1) lookup must be sound
and complete.
"""

from hypothesis import given, settings

from repro.core import (
    all_double_dominators,
    baseline_double_dominators,
    dominator_chain,
)
from repro.core.algorithm import ChainComputer

from tests.property.strategies import cones_with_target, small_cones

SETTINGS = dict(max_examples=60, deadline=None)


@given(cones_with_target())
@settings(**SETTINGS)
def test_chain_equals_bruteforce(graph_and_target):
    graph, u = graph_and_target
    chain = dominator_chain(graph, u)
    assert chain.pair_set() == all_double_dominators(graph, u)


@given(cones_with_target())
@settings(**SETTINGS)
def test_baseline_equals_bruteforce(graph_and_target):
    graph, u = graph_and_target
    base = baseline_double_dominators(graph, [u])[u]
    assert base == all_double_dominators(graph, u)


@given(cones_with_target())
@settings(**SETTINGS)
def test_lookup_sound_and_complete(graph_and_target):
    """chain.dominates(v, w) is True for exactly the Definition-1 pairs."""
    graph, u = graph_and_target
    chain = dominator_chain(graph, u)
    truth = all_double_dominators(graph, u)
    for v in range(graph.n):
        for w in range(v + 1, graph.n):
            expected = frozenset((v, w)) in truth
            assert chain.dominates(v, w) == expected
            assert chain.dominates(w, v) == expected  # symmetry


@given(small_cones())
@settings(max_examples=30, deadline=None)
def test_all_targets_not_only_sources(graph):
    """The chain is correct for internal vertices too."""
    computer = ChainComputer(graph)
    for u in range(graph.n):
        if u == graph.root:
            continue
        assert computer.chain(u).pair_set() == all_double_dominators(
            graph, u
        )


@given(small_cones())
@settings(max_examples=30, deadline=None)
def test_region_cache_transparent(graph):
    cached = ChainComputer(graph, cache_regions=True)
    uncached = ChainComputer(graph, cache_regions=False)
    for u in graph.sources():
        assert cached.chain(u).pair_set() == uncached.chain(u).pair_set()
