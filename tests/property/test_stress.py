"""Heavier randomized stress checks (seeded, deterministic).

The hypothesis suites favor small, shrinkable examples; these seeded
sweeps push the same cross-checks through larger circuits — the sizes
where the region machinery, caching and flow bounds actually interact.
"""

import pytest

from repro.circuits.generators import (
    array_multiplier,
    carry_select_adder,
    cascade,
    feistel_network,
    kogge_stone_adder,
    random_single_output,
)
from repro.core import ChainComputer, baseline_double_dominators
from repro.graph import IndexedGraph


def _cross_check(graph):
    base = baseline_double_dominators(graph)
    computer = ChainComputer(graph)
    total = 0
    for u in graph.sources():
        pairs = computer.chain(u).pair_set()
        assert pairs == base[u]
        total += len(pairs)
    return total


@pytest.mark.parametrize("seed", range(4))
def test_large_random_cones(seed):
    graph = IndexedGraph.from_circuit(
        random_single_output(10, 220, seed=seed + 1000)
    )
    _cross_check(graph)


def test_multiplier_cone():
    circuit = array_multiplier(6)
    graph = IndexedGraph.from_circuit(circuit, circuit.outputs[-2])
    assert _cross_check(graph) > 0


def test_deep_cascade():
    # Each PI re-enters the cascade every num_inputs blocks, so only the
    # blocks after a PI's *last* injection contribute pairs to its chain:
    # the union stays tail-sized regardless of depth.
    circuit = cascade(depth=120, num_inputs=7, num_outputs=1, seed=3)
    graph = IndexedGraph.from_circuit(circuit)
    assert _cross_check(graph) > 10


def test_carry_select_cone():
    circuit = carry_select_adder(12, block=4)
    graph = IndexedGraph.from_circuit(circuit, "cout")
    _cross_check(graph)


def test_prefix_adder_cone():
    circuit = kogge_stone_adder(10)
    graph = IndexedGraph.from_circuit(circuit, "cout")
    _cross_check(graph)


def test_feistel_cone():
    circuit = feistel_network(16, 16, rounds=2)
    graph = IndexedGraph.from_circuit(circuit, circuit.outputs[0])
    _cross_check(graph)
