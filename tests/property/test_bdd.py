"""Property tests for the BDD layer against simulation semantics."""

import itertools

from hypothesis import given, settings

from repro.analysis import evaluate, select_cut_frontiers
from repro.bdd import BDDManager, build_net_bdds, partitioned_output_bdd
from repro.bdd.circuit_bdd import CutpointError

from tests.property.strategies import small_circuits


@given(small_circuits(max_gates=14, max_inputs=4))
@settings(max_examples=40, deadline=None)
def test_every_net_bdd_matches_simulation(circuit):
    """BDD of every net agrees with gate-level simulation everywhere."""
    manager = BDDManager()
    bdds = build_net_bdds(circuit, manager, circuit.inputs)
    inputs = circuit.inputs
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        env = dict(zip(inputs, bits))
        values = evaluate(circuit, env)
        bdd_env = dict(enumerate(bits))
        for net, node in bdds.items():
            assert manager.evaluate(node, bdd_env) == values[net]


@given(small_circuits(max_gates=18, max_inputs=4))
@settings(max_examples=40, deadline=None)
def test_partitioned_proof_composes(circuit):
    """For every 2-wide cut frontier of the cone, building the output
    BDD through the cut and composing reproduces the monolithic BDD."""
    output = circuit.outputs[0]
    frontiers = [
        f for f in select_cut_frontiers(circuit, output) if f.width == 2
    ]
    for frontier in frontiers:
        proof = partitioned_output_bdd(circuit, output, frontier.nets)
        assert proof.composed_matches


@given(small_circuits(max_gates=12, max_inputs=4))
@settings(max_examples=30, deadline=None)
def test_sat_count_matches_truth_table(circuit):
    manager = BDDManager()
    bdds = build_net_bdds(circuit, manager, circuit.inputs)
    out = circuit.outputs[0]
    inputs = circuit.inputs
    ones = sum(
        evaluate(circuit, dict(zip(inputs, bits)))[out]
        for bits in itertools.product((0, 1), repeat=len(inputs))
    )
    assert manager.sat_count(bdds[out], len(inputs)) == ones
