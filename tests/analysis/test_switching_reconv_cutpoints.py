"""Tests for switching activity, reconvergence reports and cut points."""

import pytest

from repro.analysis import (
    activity_from_probability,
    average_power_proxy,
    common_single_cutpoints,
    reconvergence_report,
    reconvergence_summary,
    select_cut_frontiers,
    switching_activities,
    verify_frontier,
)
from repro.circuits.generators import (
    array_multiplier,
    parity_tree,
    random_single_output,
)
from repro.graph import IndexedGraph


class TestSwitching:
    def test_activity_formula(self):
        assert activity_from_probability(0.5) == 0.5
        assert activity_from_probability(0.0) == 0.0
        assert activity_from_probability(1.0) == 0.0

    def test_activities_bounded(self):
        circuit = random_single_output(4, 15, seed=1)
        acts = switching_activities(circuit, circuit.outputs[0])
        assert all(0.0 <= a <= 0.5 for a in acts.values())

    def test_exact_vs_naive_differ_under_reconvergence(self):
        circuit = random_single_output(4, 25, seed=6)
        out = circuit.outputs[0]
        exact = average_power_proxy(circuit, out, exact=True)
        naive = average_power_proxy(circuit, out, exact=False)
        assert exact > 0 and naive > 0

    def test_custom_load(self):
        circuit = random_single_output(3, 8, seed=2)
        out = circuit.outputs[0]
        acts = switching_activities(circuit, out)
        heavy = average_power_proxy(
            circuit, out, load={n: 10.0 for n in acts}
        )
        light = average_power_proxy(
            circuit, out, load={n: 1.0 for n in acts}
        )
        assert heavy == pytest.approx(10 * light)


class TestReconvergence:
    def test_tree_has_no_nontrivial_origins(self):
        graph = IndexedGraph.from_circuit(parity_tree(8))
        assert reconvergence_report(graph) == []

    def test_figure2_origins(self, fig2_graph):
        report = reconvergence_report(fig2_graph)
        origins = {r.origin for r in report}
        # Multi-fanout vertices of Figure 2: u, a, d, t.
        assert origins == {"u", "a", "d", "t"}
        by_origin = {r.origin: r for r in report}
        assert by_origin["u"].convergence == "t"
        assert set(by_origin["u"].double_cut) == {"a", "b"}
        assert by_origin["t"].convergence == "f"
        assert set(by_origin["t"].double_cut) == {"k", "l"}

    def test_double_cut_never_farther(self, fig2_graph):
        for entry in reconvergence_report(fig2_graph):
            if entry.double_span is not None:
                assert entry.double_span <= entry.span

    def test_summary_on_multiplier(self):
        graph = IndexedGraph.from_circuit(
            array_multiplier(4), array_multiplier(4).outputs[-2]
        )
        summary = reconvergence_summary(graph)
        assert summary["origins"] > 0
        assert summary["with_double_cut"] <= summary["origins"]


class TestCutpoints:
    def test_figure2_single_cutpoints(self, fig2_graph):
        g = fig2_graph
        cuts = common_single_cutpoints(g)
        assert [g.name_of(v) for v in cuts] == ["t", "f"]

    def test_frontiers_verified(self, fig2):
        graph = IndexedGraph.from_circuit(fig2)
        for frontier in select_cut_frontiers(fig2):
            assert verify_frontier(graph, frontier.nets)

    def test_frontier_widths(self, fig2):
        frontiers = select_cut_frontiers(fig2)
        singles = [f for f in frontiers if f.width == 1]
        assert [f.nets for f in singles] == [("t",)]
        doubles = [f for f in frontiers if f.width == 2]
        assert len(doubles) == 12

    def test_include_root_flag(self, fig2):
        frontiers = select_cut_frontiers(fig2, include_root=True)
        assert ("f",) in [f.nets for f in frontiers if f.width == 1]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits_all_verified(self, seed):
        circuit = random_single_output(5, 30, seed=seed)
        graph = IndexedGraph.from_circuit(circuit)
        for frontier in select_cut_frontiers(circuit):
            assert verify_frontier(graph, frontier.nets)
