"""Tests for the logic simulators."""

import itertools

import pytest

np = pytest.importorskip("numpy")

from repro.analysis import VectorSimulator, evaluate
from repro.circuits.generators import random_single_output
from repro.errors import CircuitError
from repro.graph import CircuitBuilder


class TestEvaluate:
    def test_full_adder_truth_table(self):
        b = CircuitBuilder()
        a, bb, cin = b.inputs("a", "b", "cin")
        p = b.xor(a, bb)
        s = b.xor(p, cin, name="sum")
        co = b.or_(b.and_(a, bb), b.and_(p, cin), name="cout")
        c = b.finish([s, co])
        for x, y, z in itertools.product((0, 1), repeat=3):
            vals = evaluate(c, {"a": x, "b": y, "cin": z})
            assert vals["sum"] == (x + y + z) % 2
            assert vals["cout"] == (x + y + z) // 2

    def test_missing_input_rejected(self, fig2):
        with pytest.raises(CircuitError):
            evaluate(fig2, {})

    def test_constants(self):
        b = CircuitBuilder()
        one = b.constant(1)
        x = b.input("x")
        c = b.finish([b.and_(one, x, name="y")])
        assert evaluate(c, {"x": 1})["y"] == 1
        assert evaluate(c, {"x": 0})["y"] == 0


class TestVectorSimulator:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scalar_evaluation(self, seed):
        circuit = random_single_output(4, 20, seed=seed)
        sim = VectorSimulator(circuit)
        vectors = {
            name: np.array([0, 1, 0, 1], dtype=bool)
            if i % 2
            else np.array([0, 0, 1, 1], dtype=bool)
            for i, name in enumerate(circuit.inputs)
        }
        batch = sim.run(vectors)
        for row in range(4):
            env = {name: int(vec[row]) for name, vec in vectors.items()}
            scalar = evaluate(circuit, env)
            for net, arr in batch.items():
                assert int(arr[row]) == scalar[net]

    def test_mismatched_lengths_rejected(self):
        circuit = random_single_output(2, 5, seed=0)
        sim = VectorSimulator(circuit)
        with pytest.raises(CircuitError):
            sim.run(
                {
                    circuit.inputs[0]: np.zeros(4, dtype=bool),
                    circuit.inputs[1]: np.zeros(5, dtype=bool),
                }
            )

    def test_input_probabilities_respected(self):
        circuit = random_single_output(2, 4, seed=1)
        sim = VectorSimulator(circuit)
        probs = sim.monte_carlo_probabilities(
            num_vectors=20000,
            seed=3,
            input_probs={circuit.inputs[0]: 0.9},
        )
        assert probs[circuit.inputs[0]] == pytest.approx(0.9, abs=0.02)

    def test_switching_estimate_near_2p1p(self):
        circuit = random_single_output(3, 6, seed=2)
        sim = VectorSimulator(circuit)
        probs = sim.monte_carlo_probabilities(40000, seed=5)
        switching = sim.monte_carlo_switching(40000, seed=5)
        for net, p in probs.items():
            assert switching[net] == pytest.approx(
                2 * p * (1 - p), abs=0.02
            )
