"""Tests for (statistical) timing analysis."""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis import (
    DelayModel,
    MonteCarloTiming,
    cut_criticality,
    static_arrival_times,
)
from repro.circuits.generators import (
    carry_select_adder,
    cascade,
    parity_tree,
)
from repro.graph import CircuitBuilder, IndexedGraph, levels_from_inputs


class TestStatic:
    def test_unit_delays_equal_levels(self, fig2):
        arrival = static_arrival_times(fig2)
        graph = IndexedGraph.from_circuit(fig2)
        levels = levels_from_inputs(graph)
        for v in range(graph.n):
            assert arrival[graph.name_of(v)] == levels[v]

    def test_custom_delays(self):
        b = CircuitBuilder()
        a = b.input("a")
        x = b.not_(a, name="x")
        y = b.not_(x, name="y")
        circuit = b.finish([y])
        arrival = static_arrival_times(circuit, {"x": 3.0, "y": 0.5})
        assert arrival["y"] == 3.5


class TestMonteCarlo:
    def test_zero_sigma_matches_static(self):
        circuit = carry_select_adder(4, 2)
        out = circuit.outputs[-1]
        timing = MonteCarloTiming(
            circuit, out, num_samples=16, model=DelayModel(sigma=0.0)
        )
        static = static_arrival_times(circuit)
        stats = timing.arrival_statistics()
        assert stats[out].std == pytest.approx(0.0, abs=1e-12)
        assert stats[out].mean == pytest.approx(static[out])

    def test_statistics_are_ordered(self):
        circuit = cascade(depth=10, num_inputs=4, num_outputs=1)
        timing = MonteCarloTiming(circuit, num_samples=512, seed=3)
        stats = timing.arrival_statistics()
        root = circuit.outputs[0]
        assert stats[root].q95 >= stats[root].mean
        assert stats[root].std > 0

    def test_samples_shape(self):
        circuit = parity_tree(4)
        timing = MonteCarloTiming(circuit, num_samples=64)
        assert timing.output_distribution().shape == (64,)

    def test_deterministic_per_seed(self):
        circuit = cascade(depth=6, num_inputs=4, num_outputs=1)
        a = MonteCarloTiming(circuit, num_samples=32, seed=11)
        b = MonteCarloTiming(circuit, num_samples=32, seed=11)
        assert np.array_equal(
            a.output_distribution(), b.output_distribution()
        )


class TestCutCriticality:
    def test_probabilities_complementary(self):
        circuit = cascade(depth=15, num_inputs=5, num_outputs=1)
        report = cut_criticality(circuit, num_samples=256, seed=1)
        assert report  # cascades are full of 2-cut frontiers
        for entry in report:
            assert 0.0 <= entry.p_first <= 1.0
            assert entry.p_first + entry.p_second <= 1.0 + 1e-9
            assert 0.0 <= entry.balance <= 1.0

    def test_tree_frontier_is_root_children(self):
        """A balanced tree has no per-vertex dominator pairs, but the PI
        *set* is jointly cut by the root's two children — exactly one
        frontier."""
        circuit = parity_tree(8)
        report = cut_criticality(circuit, num_samples=128, seed=2)
        assert len(report) == 1
        root_fanins = set(circuit.node(circuit.outputs[0]).fanins)
        assert set(report[0].nets) == root_fanins

    def test_max_frontiers_cap(self):
        circuit = cascade(depth=20, num_inputs=5, num_outputs=1)
        report = cut_criticality(
            circuit, num_samples=64, max_frontiers=3
        )
        assert len(report) <= 3
