"""Tests for dominator-partitioned exact signal probability."""

import itertools

import pytest

from repro.analysis import (
    DominatorPartitionedProbability,
    SupportExplosion,
    evaluate,
    exact_signal_probabilities,
    naive_signal_probabilities,
)
from repro.circuits.generators import (
    carry_select_adder,
    parity_tree,
    random_single_output,
)
from repro.graph import CircuitBuilder


def _truth_table_probability(circuit, net, input_probs=None):
    total = 0.0
    inputs = circuit.inputs
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        weight = 1.0
        for name, bit in zip(inputs, bits):
            p = 0.5 if input_probs is None else input_probs.get(name, 0.5)
            weight *= p if bit else 1 - p
        if weight and evaluate(circuit, dict(zip(inputs, bits)))[net]:
            total += weight
    return total


class TestExact:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_truth_table(self, seed):
        circuit = random_single_output(4, 18, seed=seed)
        out = circuit.outputs[0]
        probs = exact_signal_probabilities(circuit, out)
        for net in probs:
            assert probs[net] == pytest.approx(
                _truth_table_probability(circuit, net), abs=1e-12
            )

    def test_biased_inputs(self):
        circuit = random_single_output(3, 10, seed=5)
        out = circuit.outputs[0]
        bias = {circuit.inputs[0]: 0.9, circuit.inputs[1]: 0.1}
        probs = exact_signal_probabilities(circuit, out, input_probs=bias)
        assert probs[out] == pytest.approx(
            _truth_table_probability(circuit, out, bias), abs=1e-12
        )

    def test_contradiction_is_zero(self):
        """P[a AND NOT a] must be exactly 0 (naive says 0.25)."""
        b = CircuitBuilder()
        a = b.input("a")
        f = b.and_(a, b.not_(a), name="f")
        circuit = b.finish([f])
        assert exact_signal_probabilities(circuit)["f"] == 0.0
        assert naive_signal_probabilities(circuit)["f"] == 0.25

    def test_peak_support_reported(self):
        circuit = carry_select_adder(6, block=3)
        analysis = DominatorPartitionedProbability(
            circuit, circuit.outputs[-1]
        )
        assert analysis.peak_support >= 1
        assert analysis.probability(circuit.outputs[-1]) == pytest.approx(
            0.5, abs=0.2
        )

    def test_support_explosion_guard(self):
        circuit = carry_select_adder(8, block=4)
        with pytest.raises(SupportExplosion):
            exact_signal_probabilities(
                circuit, circuit.outputs[-1], max_support=1
            )


class TestNaive:
    def test_exact_on_trees(self):
        """Without reconvergence the naive propagation is already exact."""
        circuit = parity_tree(8)
        naive = naive_signal_probabilities(circuit)
        exact = exact_signal_probabilities(circuit)
        for net in exact:
            assert naive[net] == pytest.approx(exact[net], abs=1e-12)

    def test_wrong_under_reconvergence(self):
        circuit = carry_select_adder(6, block=3)
        out = circuit.outputs[-1]
        naive = naive_signal_probabilities(circuit)
        exact = exact_signal_probabilities(circuit, out)
        worst = max(abs(naive[n] - exact[n]) for n in exact)
        assert worst > 0.01
