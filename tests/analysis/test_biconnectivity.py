"""Schmidt chain decomposition and the double-dominator pre-filter."""

import pytest

from repro.analysis.biconnectivity import (
    chain_decomposition,
    has_no_double_dominator,
    is_biconnected,
    is_two_edge_connected,
    skeleton_bridges,
)
from repro.circuits.generators import random_single_output
from repro.core import dominator_chain
from repro.graph import IndexedGraph


def _graph(succ, root):
    return IndexedGraph(succ, root=root)


def _chain_graph(length):
    """A path u -> ... -> root: the skeleton is a tree."""
    return _graph([[i + 1] for i in range(length - 1)] + [[]], length - 1)


def _diamond():
    """u -> {a, b} -> root: the skeleton is a 4-cycle."""
    return _graph([[1, 2], [3], [3], []], 3)


class TestDecomposition:
    def test_tree_skeleton_has_no_chains(self):
        d = chain_decomposition(_chain_graph(5))
        assert d.is_acyclic
        assert d.is_connected
        assert d.chains == []
        # Every edge is a bridge.
        assert len(d.bridges) == d.edge_count == 4
        assert not d.is_two_edge_connected
        assert not d.is_biconnected

    def test_diamond_is_biconnected(self):
        d = chain_decomposition(_diamond())
        assert not d.is_acyclic
        assert d.bridges == []
        assert d.is_two_edge_connected
        assert d.is_biconnected
        # One chain, and it is a cycle through all four vertices.
        assert len(d.chains) == 1
        assert d.chains[0][0] == d.chains[0][-1]

    def test_cycle_plus_pendant_edge(self):
        # diamond with an extra tail hanging off the root: the tail edge
        # is a bridge, so 2-edge-connectivity fails but the cycle stays.
        g = _graph([[1, 2], [3], [3], [4], []], 4)
        d = chain_decomposition(g)
        assert not d.is_acyclic
        assert len(d.bridges) == 1
        assert not d.is_two_edge_connected
        assert not d.is_biconnected
        assert set(d.bridges[0]) == {3, 4}

    def test_two_cycles_sharing_a_vertex_not_biconnected(self):
        # Two diamonds glued at vertex 3: a cut vertex, two cycle chains.
        g = _graph([[1, 2], [3], [3], [4, 5], [6], [6], []], 6)
        d = chain_decomposition(g)
        assert d.bridges == []
        assert d.is_two_edge_connected
        assert not d.is_biconnected
        assert sum(1 for c in d.chains if c[0] == c[-1]) == 2

    def test_parallel_edges_collapse(self):
        # NAND(x, x)-style duplicate driver: skeleton stays a tree.
        g = _graph([[1, 1], [2], []], 2)
        d = chain_decomposition(g)
        assert d.edge_count == 2
        assert d.is_acyclic

    def test_singleton(self):
        d = chain_decomposition(_graph([[]], 0))
        assert d.is_acyclic and d.is_connected
        assert not d.is_two_edge_connected


class TestBruteForceAgreement:
    """Schmidt vs. brute-force bridge / cut-vertex checks."""

    @staticmethod
    def _skeleton_edges(graph):
        edges = set()
        for v in range(graph.n):
            for w in graph.succ[v]:
                if v != w:
                    edges.add(frozenset((v, w)))
        return edges

    @staticmethod
    def _connected(n, edges, skip_vertex=None, skip_edge=None):
        adj = {v: set() for v in range(n) if v != skip_vertex}
        for e in edges:
            if e == skip_edge:
                continue
            v, w = tuple(e)
            if skip_vertex in (v, w):
                continue
            adj[v].add(w)
            adj[w].add(v)
        if not adj:
            return True
        start = next(iter(adj))
        seen = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return len(seen) == len(adj)

    @pytest.mark.parametrize("seed", range(10))
    def test_bridges_match_brute_force(self, seed):
        graph = IndexedGraph.from_circuit(
            random_single_output(4, 12, seed=seed)
        )
        edges = self._skeleton_edges(graph)
        expected = {
            e
            for e in edges
            if not self._connected(graph.n, edges, skip_edge=e)
        }
        got = {frozenset(e) for e in skeleton_bridges(graph)}
        assert got == expected
        assert is_two_edge_connected(graph) == (
            graph.n >= 2 and not expected
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_biconnectivity_matches_brute_force(self, seed):
        graph = IndexedGraph.from_circuit(
            random_single_output(4, 12, seed=seed + 100)
        )
        edges = self._skeleton_edges(graph)
        expected = graph.n >= 3 and all(
            self._connected(graph.n, edges, skip_vertex=v)
            for v in range(graph.n)
        )
        assert is_biconnected(graph) == expected


class TestPrefilterSoundness:
    def test_tree_cone_certified(self):
        assert has_no_double_dominator(_chain_graph(6))

    def test_diamond_not_certified(self):
        assert not has_no_double_dominator(_diamond())

    def test_certificate_implies_empty_chains(self):
        """The acceptance property: a certified cone has no pairs at all."""
        certified = 0
        for seed in range(30):
            graph = IndexedGraph.from_circuit(
                random_single_output(2, 3, seed=seed)
            )
            if not has_no_double_dominator(graph):
                continue
            certified += 1
            for u in range(graph.n):
                if u == graph.root:
                    continue
                assert not dominator_chain(graph, u).pairs, (seed, u)
        assert certified > 0, "no seed produced an acyclic skeleton"

    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_fanout_free_circuits_certified(self, width):
        """Parity trees (strictly fanout-free) always earn the certificate."""
        from repro.circuits.generators import parity_tree

        graph = IndexedGraph.from_circuit(parity_tree(width))
        assert has_no_double_dominator(graph)
        for u in graph.sources():
            assert not dominator_chain(graph, u).pairs

    def test_reconvergent_parity_not_certified(self):
        from repro.circuits.generators import dual_rail_parity

        graph = IndexedGraph.from_circuit(dual_rail_parity(4))
        assert not has_no_double_dominator(graph)
