"""Tests for COP testability and the dominator observability bound."""

import pytest

from repro.analysis.testability import (
    cop_controllability,
    cop_observability,
    detectability,
    dominator_detectability_profile,
    fault_detectability_exact,
)
from repro.circuits.generators import parity_tree, random_single_output
from repro.graph import CircuitBuilder


class TestControllability:
    def test_inputs_default_half(self):
        circuit = parity_tree(4)
        c1 = cop_controllability(circuit)
        for pi in circuit.inputs:
            assert c1[pi] == 0.5

    def test_and_chain_decays(self):
        b = CircuitBuilder()
        xs = b.inputs("a", "b", "c", "d")
        out = b.and_tree(xs, name="out")
        circuit = b.finish([out])
        c1 = cop_controllability(circuit)
        assert c1["out"] == pytest.approx(1 / 16)


class TestObservability:
    def test_output_is_fully_observable(self):
        circuit = random_single_output(4, 15, seed=2)
        obs = cop_observability(circuit, circuit.outputs[0])
        assert obs[circuit.outputs[0]] == 1.0

    def test_values_in_unit_interval(self):
        circuit = random_single_output(5, 30, seed=4)
        obs = cop_observability(circuit, circuit.outputs[0])
        assert all(0.0 <= p <= 1.0 for p in obs.values())

    def test_and_side_input_gates_observability(self):
        """obs through an AND equals the other input's 1-controllability."""
        b = CircuitBuilder()
        a, bb = b.inputs("a", "b")
        out = b.and_(a, bb, name="out")
        circuit = b.finish([out])
        obs = cop_observability(circuit)
        assert obs["a"] == pytest.approx(0.5)

    def test_xor_is_transparent(self):
        b = CircuitBuilder()
        a, bb = b.inputs("a", "b")
        out = b.xor(a, bb, name="out")
        circuit = b.finish([out])
        obs = cop_observability(circuit)
        assert obs["a"] == 1.0 and obs["b"] == 1.0

    def test_mux_select_observability(self):
        b = CircuitBuilder()
        s, x, y = b.inputs("s", "x", "y")
        out = b.mux(s, x, y, name="out")
        circuit = b.finish([out])
        obs = cop_observability(circuit)
        assert obs["s"] == pytest.approx(0.5)  # P(x != y)
        assert obs["x"] == pytest.approx(0.5)  # selected when s = 0


class TestDetectability:
    def test_resistant_fault_found(self):
        """A wide AND's stuck-at-0 on the output needs all-ones: rare."""
        b = CircuitBuilder()
        xs = b.input_bus("x", 8)
        out = b.and_tree(xs, name="out")
        circuit = b.finish([out])
        table, resistant = detectability(circuit, resistant_threshold=0.01)
        assert table["out"].stuck_at_0 == pytest.approx(1 / 256)
        assert "out" in resistant

    def test_balanced_xor_not_resistant(self):
        circuit = parity_tree(8)
        table, resistant = detectability(
            circuit, resistant_threshold=0.01
        )
        assert resistant == []


class TestDominatorProfile:
    def test_gated_probe_detectability(self):
        """A probe gated by a rarely-true wide AND: the exact
        detectability collapses to the gating probability (COP's
        single-path estimate cannot see the correlation)."""
        b = CircuitBuilder()
        xs = b.input_bus("x", 6)
        probe = b.input("probe")
        wide = b.and_tree(list(xs))  # P[wide=1] = 1/64
        mix = b.xor(probe, b.buf(wide))
        gate = b.and_(mix, wide, name="out")
        circuit = b.finish([gate])
        exact = fault_detectability_exact(circuit, "probe", 0)
        # Detection needs wide == 1 (to sensitize the AND) and probe == 1
        # (to activate stuck-at-0): exactly 1/128.
        assert exact == pytest.approx(1 / 128)

    @pytest.mark.parametrize("seed", range(5))
    def test_profile_monotone_and_matches_simulation(self, seed):
        """Monotone non-increasing along the chain, and the last entry
        equals the exhaustive-simulation detectability."""
        import itertools

        from repro.analysis import evaluate

        circuit = random_single_output(4, 16, seed=seed)
        out = circuit.outputs[0]
        from repro.graph import IndexedGraph

        graph = IndexedGraph.from_circuit(circuit, out)
        nets = [graph.name_of(v) for v in range(graph.n) if v != graph.root]
        for net in nets[:5]:
            for stuck in (0, 1):
                profile = dominator_detectability_profile(
                    circuit, net, stuck, out
                )
                values = [p for _, p in profile]
                assert all(
                    a >= b - 1e-12 for a, b in zip(values, values[1:])
                )
                # Exhaustive reference for the output entry.
                inputs = [
                    graph.name_of(s)
                    for s in graph.sources()
                ]
                detected = 0
                for bits in itertools.product((0, 1), repeat=len(inputs)):
                    env = dict(zip(inputs, bits))
                    good = evaluate(circuit, env)
                    if good[net] == stuck:
                        continue  # fault not activated -> same values
                    # Re-simulate with the net forced (tiny circuits).
                    forced = _simulate_with_forced(circuit, env, net, stuck)
                    if forced[out] != good[out]:
                        detected += 1
                expected = detected / (1 << len(inputs))
                assert values[-1] == pytest.approx(expected)

    def test_bad_stuck_value_rejected(self):
        circuit = random_single_output(3, 8, seed=1)
        with pytest.raises(ValueError):
            dominator_detectability_profile(
                circuit, circuit.inputs[0], 2, circuit.outputs[0]
            )

    def test_root_has_empty_profile(self):
        circuit = random_single_output(3, 8, seed=2)
        out = circuit.outputs[0]
        assert dominator_detectability_profile(circuit, out, 0, out) == []


def _simulate_with_forced(circuit, env, forced_net, value):
    """Evaluate with one internal net overridden (fault simulation)."""
    from repro.graph.node import NodeType, evaluate_gate

    values = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.type is NodeType.INPUT:
            values[name] = env[name]
        else:
            values[name] = evaluate_gate(
                node.type, [values[f] for f in node.fanins]
            )
        if name == forced_net:
            values[name] = value
    return values
