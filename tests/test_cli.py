"""Tests for the command-line interface."""

import pytest

from repro.cli import load_netlist, main
from repro.circuits.figures import figure2_circuit
from repro.parsers import bench, blif


@pytest.fixture
def bench_file(tmp_path):
    path = tmp_path / "fig2.bench"
    bench.dump(figure2_circuit(), path)
    return str(path)


@pytest.fixture
def blif_file(tmp_path):
    path = tmp_path / "fig2.blif"
    blif.dump(figure2_circuit(), path)
    return str(path)


class TestLoad:
    def test_load_bench(self, bench_file):
        assert len(load_netlist(bench_file)) == 14

    def test_load_blif(self, blif_file):
        assert len(load_netlist(blif_file)) == 14

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "x.edif"
        path.write_text("")
        with pytest.raises(SystemExit):
            load_netlist(str(path))


class TestCommands:
    def test_chains_all_inputs(self, bench_file, capsys):
        assert main(["chains", bench_file]) == 0
        out = capsys.readouterr().out
        assert "u: 12 pairs" in out

    def test_chains_single_target(self, bench_file, capsys):
        assert main(["chains", bench_file, "--target", "u"]) == 0
        assert "12 pairs" in capsys.readouterr().out

    def test_stats(self, blif_file, capsys):
        assert main(["stats", blif_file]) == 0
        out = capsys.readouterr().out
        assert "gates" in out

    def test_counts(self, bench_file, capsys):
        assert main(["counts", bench_file]) == 0
        out = capsys.readouterr().out
        assert ": 12" in out
        assert ": 2" in out

    def test_multi_output_requires_flag(self, tmp_path, capsys):
        from repro.circuits.generators import random_circuit

        circuit = random_circuit(3, 10, num_outputs=2, seed=0)
        path = tmp_path / "two.bench"
        bench.dump(circuit, path)
        assert main(["chains", str(path)]) == 2
        assert main(["chains", str(path), "--output", circuit.outputs[0]]) == 0


class TestEditSession:
    @pytest.fixture
    def script_file(self, tmp_path):
        from repro.incremental import (
            AddGate,
            RemoveGate,
            ReplaceSubgraph,
            Rewire,
            dump_script,
        )

        path = tmp_path / "edits.json"
        dump_script(
            [
                AddGate("nb", ("d",), "buf"),
                ReplaceSubgraph(
                    add=(AddGate("nb2", ("g",), "buf"),),
                    rewire=(Rewire("t", ("nb", "nb2")),),
                ),
                RemoveGate("m"),
            ],
            str(path),
        )
        return str(path)

    def test_replay_reports_stats(self, bench_file, script_file, capsys):
        assert main(["edit-session", bench_file, script_file]) == 0
        out = capsys.readouterr().out
        assert "initial:" in out
        assert "edit   3 [RemoveGate]" in out
        assert "hit_rate" in out
        assert "evictions" in out

    def test_compare_mode(self, bench_file, script_file, capsys):
        assert main(["edit-session", bench_file, script_file, "--compare"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_multi_output_requires_flag(self, tmp_path, script_file, capsys):
        from repro.circuits.generators import random_circuit

        circuit = random_circuit(3, 10, num_outputs=2, seed=0)
        path = tmp_path / "two.bench"
        bench.dump(circuit, path)
        assert main(["edit-session", str(path), script_file]) == 2


def test_load_verilog(tmp_path):
    from repro.parsers import verilog

    path = tmp_path / "fig2.v"
    verilog.dump(figure2_circuit(), path)
    # MUX-free figure circuit round-trips through the CLI loader.
    assert len(load_netlist(str(path))) == 14


def test_cli_chains_on_verilog(tmp_path, capsys):
    from repro.parsers import verilog

    path = tmp_path / "fig2.v"
    verilog.dump(figure2_circuit(), path)
    assert main(["chains", str(path), "--target", "u"]) == 0
    assert "12 pairs" in capsys.readouterr().out
