"""Tests for the command-line interface."""

import pytest

from repro.cli import load_netlist, main
from repro.circuits.figures import figure2_circuit
from repro.parsers import bench, blif


@pytest.fixture
def bench_file(tmp_path):
    path = tmp_path / "fig2.bench"
    bench.dump(figure2_circuit(), path)
    return str(path)


@pytest.fixture
def blif_file(tmp_path):
    path = tmp_path / "fig2.blif"
    blif.dump(figure2_circuit(), path)
    return str(path)


class TestLoad:
    def test_load_bench(self, bench_file):
        assert len(load_netlist(bench_file)) == 14

    def test_load_blif(self, blif_file):
        assert len(load_netlist(blif_file)) == 14

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "x.edif"
        path.write_text("")
        with pytest.raises(SystemExit):
            load_netlist(str(path))


class TestCommands:
    def test_chains_all_inputs(self, bench_file, capsys):
        assert main(["chains", bench_file]) == 0
        out = capsys.readouterr().out
        assert "u: 12 pairs" in out

    def test_chains_single_target(self, bench_file, capsys):
        assert main(["chains", bench_file, "--target", "u"]) == 0
        assert "12 pairs" in capsys.readouterr().out

    def test_stats(self, blif_file, capsys):
        assert main(["stats", blif_file]) == 0
        out = capsys.readouterr().out
        assert "gates" in out

    def test_counts(self, bench_file, capsys):
        assert main(["counts", bench_file]) == 0
        out = capsys.readouterr().out
        assert ": 12" in out
        assert ": 2" in out

    def test_multi_output_requires_flag(self, tmp_path, capsys):
        from repro.circuits.generators import random_circuit

        circuit = random_circuit(3, 10, num_outputs=2, seed=0)
        path = tmp_path / "two.bench"
        bench.dump(circuit, path)
        assert main(["chains", str(path)]) == 2
        assert main(["chains", str(path), "--output", circuit.outputs[0]]) == 0


class TestEditSession:
    @pytest.fixture
    def script_file(self, tmp_path):
        from repro.incremental import (
            AddGate,
            RemoveGate,
            ReplaceSubgraph,
            Rewire,
            dump_script,
        )

        path = tmp_path / "edits.json"
        dump_script(
            [
                AddGate("nb", ("d",), "buf"),
                ReplaceSubgraph(
                    add=(AddGate("nb2", ("g",), "buf"),),
                    rewire=(Rewire("t", ("nb", "nb2")),),
                ),
                RemoveGate("m"),
            ],
            str(path),
        )
        return str(path)

    def test_replay_reports_stats(self, bench_file, script_file, capsys):
        assert main(["edit-session", bench_file, script_file]) == 0
        out = capsys.readouterr().out
        assert "initial:" in out
        assert "edit   3 [RemoveGate]" in out
        assert "hit_rate" in out
        assert "evictions" in out

    def test_compare_mode(self, bench_file, script_file, capsys):
        assert main(["edit-session", bench_file, script_file, "--compare"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_dynamic_engine(self, bench_file, script_file, capsys):
        assert (
            main(
                [
                    "edit-session",
                    bench_file,
                    script_file,
                    "--engine",
                    "dynamic",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine" in out
        assert "dynamic_batches" in out

    def test_unknown_engine_exits_2(self, bench_file, script_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "edit-session",
                    bench_file,
                    script_file,
                    "--engine",
                    "bogus",
                ]
            )
        assert excinfo.value.code == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_multi_output_requires_flag(self, tmp_path, script_file, capsys):
        from repro.circuits.generators import random_circuit

        circuit = random_circuit(3, 10, num_outputs=2, seed=0)
        path = tmp_path / "two.bench"
        bench.dump(circuit, path)
        assert main(["edit-session", str(path), script_file]) == 2


class TestEditSessionBadScripts:
    """Malformed/empty scripts exit cleanly instead of raising."""

    def test_malformed_json_exits_2(self, bench_file, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["edit-session", bench_file, str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid edit script" in err

    def test_empty_file_exits_2(self, bench_file, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert main(["edit-session", bench_file, str(path)]) == 2
        assert "invalid edit script" in capsys.readouterr().err

    def test_no_edits_exits_2(self, bench_file, tmp_path, capsys):
        path = tmp_path / "noedits.json"
        path.write_text('{"edits": []}')
        assert main(["edit-session", bench_file, str(path)]) == 2
        assert "contains no edits" in capsys.readouterr().err

    def test_missing_file_exits_2(self, bench_file, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["edit-session", bench_file, missing]) == 2
        assert "cannot read edit script" in capsys.readouterr().err

    def test_bad_edit_record_exits_2(self, bench_file, tmp_path, capsys):
        path = tmp_path / "badop.json"
        path.write_text('{"edits": [{"op": "frobnicate"}]}')
        assert main(["edit-session", bench_file, str(path)]) == 2
        assert "invalid edit script" in capsys.readouterr().err


class TestSweep:
    def test_sweep_prints_report_and_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "sweep",
                    "--jobs",
                    "2",
                    "--names",
                    "alu2",
                    "--scale",
                    "0.5",
                    "--metrics",
                    str(metrics_path),
                    "--no-progress",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "alu2" in out
        assert "total:" in out
        import json

        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["executor.jobs_completed"] > 0
        assert "executor.job_seconds" in snapshot["histograms"]

    def test_sweep_artifact_store_warm_path(self, tmp_path, capsys):
        args = [
            "sweep",
            "--names",
            "alu2",
            "--scale",
            "0.5",
            "--artifacts",
            str(tmp_path / "arts"),
            "--no-progress",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        # warm run: every cone served from the store
        row = next(l for l in out.splitlines() if l.startswith("alu2"))
        assert row.split()[1] == row.split()[-1]  # cones == art.hits

    def test_sweep_unknown_name_exits_2(self, capsys):
        assert main(["sweep", "--names", "nonesuch"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestServeBatch:
    @pytest.fixture
    def requests_file(self, bench_file, tmp_path):
        import json

        path = tmp_path / "requests.json"
        path.write_text(
            json.dumps(
                {
                    "requests": [
                        {"id": "r1", "netlist": bench_file, "output": "f"},
                        {
                            "id": "r2",
                            "netlist": bench_file,
                            "targets": ["u"],
                        },
                        {"id": "r3", "netlist": bench_file},  # duplicate
                    ]
                }
            )
        )
        return str(path)

    def test_serve_batch_responses(self, requests_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "responses.json"
        assert (
            main(["serve-batch", requests_file, "--out", str(out_path)]) == 0
        )
        payload = json.loads(out_path.read_text())
        responses = {r["id"]: r for r in payload["responses"]}
        assert set(responses) == {"r1", "r2", "r3"}
        assert sorted(responses["r1"]["chains"]) == ["u"]
        assert sorted(responses["r2"]["chains"]) == ["u"]
        # the whole batch collapsed to one cone computation
        assert payload["queue"]["submitted"] == 3
        assert payload["queue"]["deduplicated"] >= 1
        assert payload["metrics"]["counters"]["core.chains_computed"] == 1

    def test_serve_batch_stdout(self, requests_file, capsys):
        assert main(["serve-batch", requests_file]) == 0
        out = capsys.readouterr().out
        import json

        assert "responses" in json.loads(out)

    def test_malformed_request_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("[not json")
        assert main(["serve-batch", str(path)]) == 2
        assert "invalid request file" in capsys.readouterr().err

    def test_empty_request_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"requests": []}')
        assert main(["serve-batch", str(path)]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_unknown_output_exits_2(self, bench_file, tmp_path, capsys):
        import json

        path = tmp_path / "reqs.json"
        path.write_text(
            json.dumps(
                {"requests": [{"netlist": bench_file, "output": "zz"}]}
            )
        )
        assert main(["serve-batch", str(path)]) == 2
        assert "unknown output" in capsys.readouterr().err

    def test_unknown_target_exits_2(self, bench_file, tmp_path, capsys):
        import json

        path = tmp_path / "reqs.json"
        path.write_text(
            json.dumps(
                {"requests": [{"netlist": bench_file, "targets": ["zz"]}]}
            )
        )
        assert main(["serve-batch", str(path)]) == 2
        assert "unknown target" in capsys.readouterr().err


def test_load_verilog(tmp_path):
    from repro.parsers import verilog

    path = tmp_path / "fig2.v"
    verilog.dump(figure2_circuit(), path)
    # MUX-free figure circuit round-trips through the CLI loader.
    assert len(load_netlist(str(path))) == 14


def test_cli_chains_on_verilog(tmp_path, capsys):
    from repro.parsers import verilog

    path = tmp_path / "fig2.v"
    verilog.dump(figure2_circuit(), path)
    assert main(["chains", str(path), "--target", "u"]) == 0
    assert "12 pairs" in capsys.readouterr().out


class TestCheckCommand:
    def test_check_ok(self, bench_file, capsys):
        assert main(["check", bench_file]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "brute-confirmed" in out

    def test_check_single_output(self, bench_file, capsys):
        assert main(["check", bench_file, "--output", "f"]) == 0
        assert "1 cone(s)" in capsys.readouterr().out

    def test_check_unknown_output_exits_2(self, bench_file, capsys):
        assert main(["check", bench_file, "--output", "zz"]) == 2
        assert "unknown output" in capsys.readouterr().err

    def test_check_missing_file_exits_2(self, capsys):
        assert main(["check", "/no/such/file.bench"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # one-line diagnostic, no traceback

    def test_check_malformed_netlist_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(a)\nOUTPUT(b)\nb = AND(a, ghost)\n")
        assert main(["check", str(path)]) == 2
        err = capsys.readouterr().err
        assert "ghost" in err
        assert err.startswith("error:")

    def test_check_writes_metrics(self, bench_file, tmp_path, capsys):
        import json

        metrics_file = tmp_path / "m.json"
        assert main(["check", bench_file, "--metrics", str(metrics_file)]) == 0
        snap = json.loads(metrics_file.read_text())
        assert snap["counters"]["check.cones"] == 1


class TestFuzzCommand:
    def test_fuzz_ok(self, capsys):
        assert main(["fuzz", "--seed", "0", "--cases", "8"]) == 0
        out = capsys.readouterr().out
        assert "seed=0" in out
        assert "OK" in out

    def test_fuzz_injected_fault_exits_1(self, tmp_path, capsys):
        code = main(
            [
                "fuzz", "--seed", "7", "--cases", "20",
                "--inject-fault", "xor", "--out", str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILURE" in out
        repros = list(tmp_path.glob("*.bench"))
        assert repros
        for repro in repros:
            assert bench.load(repro).gate_count() <= 15


class TestJobsTimeoutValidation:
    """--jobs <= 0 and negative --timeout exit 2 in every command."""

    @pytest.mark.parametrize("jobs", ["0", "-1", "-4", "two"])
    @pytest.mark.parametrize(
        "command",
        [
            ["sweep", "--quick"],
            ["serve-batch", "req.json"],
            ["table1", "--quick"],
        ],
    )
    def test_bad_jobs_exits_2(self, command, jobs, capsys):
        with pytest.raises(SystemExit) as exc:
            main([*command, "--jobs", jobs])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err

    @pytest.mark.parametrize(
        "command",
        [["sweep", "--quick"], ["serve-batch", "req.json"]],
    )
    def test_negative_timeout_exits_2(self, command, capsys):
        with pytest.raises(SystemExit) as exc:
            main([*command, "--timeout", "-0.5"])
        assert exc.value.code == 2
        assert "--timeout" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--jobs", "--max-in-flight"])
    def test_daemon_bad_jobs_exits_2(self, flag, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["daemon", "--stdio", flag, "0"])
        assert exc.value.code == 2
        assert flag in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--tenant-rate", "--tenant-burst"])
    @pytest.mark.parametrize("value", ["0", "-1", "nope"])
    def test_daemon_bad_rates_exit_2(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["daemon", "--stdio", flag, value])
        assert exc.value.code == 2
        assert flag in capsys.readouterr().err

    def test_daemon_without_transport_exits_2(self, capsys):
        assert main(["daemon"]) == 2
        assert "transport" in capsys.readouterr().err

    def test_table1_module_rejects_bad_jobs(self, capsys):
        from repro.experiments import table1

        with pytest.raises(SystemExit) as exc:
            table1.main(["--quick", "--jobs", "0"])
        assert exc.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_zero_timeout_is_allowed_syntax(self):
        # 0 is a legal (if harsh) budget — only negatives are rejected;
        # jobs=1 keeps everything in-process so nothing can time out.
        assert (
            main(
                [
                    "sweep", "--names", "cmb", "--scale", "0.3",
                    "--timeout", "0", "--no-progress",
                ]
            )
            == 0
        )


class TestBatchErrorContract:
    def test_sweep_unknown_benchmark_exits_2(self, capsys):
        assert main(["sweep", "--names", "nonesuch"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_serve_batch_malformed_netlist_exits_2(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.bench"
        bad.write_text("INPUT(a)\nOUTPUT(b)\nb = AND(a, ghost)\n")
        requests = tmp_path / "req.json"
        requests.write_text(json.dumps([{"netlist": str(bad)}]))
        assert main(["serve-batch", str(requests)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "ghost" in err

    def test_serve_batch_missing_requests_exits_2(self, capsys):
        assert main(["serve-batch", "/no/such/req.json"]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert err.count("\n") == 1  # one-line diagnostic, no traceback


class TestKernelsFlag:
    def test_kernels_arg_validates(self):
        from argparse import ArgumentTypeError

        from repro.cli import kernels_arg

        assert kernels_arg("python") == "python"
        assert kernels_arg("numpy") == "numpy"
        with pytest.raises(ArgumentTypeError, match="unknown kernels"):
            kernels_arg("turbo")

    def test_unknown_kernels_exits_2(self, bench_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chains", bench_file, "--kernels", "turbo"])
        assert exc.value.code == 2
        assert "unknown kernels" in capsys.readouterr().err

    def test_chains_with_numpy_kernels(self, bench_file, capsys):
        pytest.importorskip("numpy")
        assert main(["chains", bench_file, "--kernels", "numpy"]) == 0
        assert "u: 12 pairs" in capsys.readouterr().out

    def test_counts_and_check_accept_kernels(self, bench_file, capsys):
        assert main(["counts", bench_file, "--kernels", "python"]) == 0
        capsys.readouterr()
        assert main(["check", bench_file, "--kernels", "python"]) == 0


@pytest.fixture
def sequential_file(tmp_path):
    from repro.circuits.generators import lfsr
    from repro.parsers.bench import dump_sequential

    path = tmp_path / "lfsr5.bench"
    dump_sequential(lfsr(5), path)
    return str(path)


class TestSequentialFlag:
    """--sequential {core,unroll:N} on chains/check/sweep."""

    def test_chains_core_view(self, sequential_file, capsys):
        assert main(
            ["chains", sequential_file, "--sequential", "core",
             "--output", "stream"]
        ) == 0
        out = capsys.readouterr().out
        assert "sin: 0 pairs" in out

    def test_chains_unroll_view(self, sequential_file, capsys):
        assert main(
            ["chains", sequential_file, "--sequential", "unroll:3",
             "--output", "stream@2"]
        ) == 0
        out = capsys.readouterr().out
        assert "sin@2: 0 pairs" in out
        assert "ppi_" in out  # frame-0 pseudo-inputs reach the cone

    def test_chains_prefilter_certifies(self, sequential_file, capsys):
        assert main(
            ["chains", sequential_file, "--sequential", "core",
             "--output", "stream", "--prefilter", "biconn"]
        ) == 0
        captured = capsys.readouterr()
        assert "certified pair-free" in captured.err
        assert "0 pairs" in captured.out

    def test_check_runs_sequential_differential(
        self, sequential_file, capsys
    ):
        assert main(
            ["check", sequential_file, "--sequential", "core"]
        ) == 0
        out = capsys.readouterr().out
        assert "core-vs-unroll:2" in out
        assert "OK" in out

    def test_check_unroll_uses_requested_frames(
        self, sequential_file, capsys
    ):
        assert main(
            ["check", sequential_file, "--sequential", "unroll:3"]
        ) == 0
        assert "core-vs-unroll:3" in capsys.readouterr().out

    def test_sequential_requires_bench(self, blif_file):
        with pytest.raises(SystemExit):
            main(["chains", blif_file, "--sequential", "core"])

    @pytest.mark.parametrize("value", ["bogus", "unroll:0", "unroll:x", "unroll:-2"])
    def test_bad_sequential_exits_2(self, sequential_file, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chains", sequential_file, "--sequential", value])
        assert exc.value.code == 2
        assert "--sequential" in capsys.readouterr().err

    def test_sweep_sequential_suite(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["sweep", "--sequential", "core", "--prefilter", "biconn",
             "--scale", "0.25", "--no-progress",
             "--metrics", str(metrics_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "s_shift" in out and "s_lfsr" in out and "s_alu" in out
        assert "prefilter=biconn" in out
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["core.prefilter_certified"] > 0
        assert snapshot["counters"]["core.prefilter_skipped"] > 0

    def test_sweep_sequential_unroll_view(self, capsys):
        assert main(
            ["sweep", "--sequential", "unroll:2", "--scale", "0.25",
             "--no-progress"]
        ) == 0
        assert "s_alu:u2" in capsys.readouterr().out

    def test_sweep_sequential_unknown_name_exits_2(self, capsys):
        assert main(
            ["sweep", "--sequential", "core", "--names", "nope"]
        ) == 2
        assert "unknown sequential benchmark" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["bogus", "tri"])
    def test_bad_prefilter_exits_2(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--prefilter", value])
        assert exc.value.code == 2
        assert "--prefilter" in capsys.readouterr().err

    def test_sweep_prefilter_results_identical(self, capsys):
        # bit-identical pair totals with and without the pre-filter
        assert main(
            ["sweep", "--sequential", "core", "--scale", "0.25",
             "--no-progress"]
        ) == 0
        plain = capsys.readouterr().out
        assert main(
            ["sweep", "--sequential", "core", "--scale", "0.25",
             "--no-progress", "--prefilter", "biconn"]
        ) == 0
        filtered = capsys.readouterr().out

        def pair_total(text):
            for line in text.splitlines():
                if line.startswith("total:"):
                    return line.split(" pairs")[0]
            return None

        assert pair_total(plain) == pair_total(filtered) is not None
