"""Tests for the residual network and bounded Edmonds–Karp."""

import pytest

from repro.errors import FlowError
from repro.flow import (
    ResidualNetwork,
    bfs_augmenting_path,
    in_node,
    max_flow,
    out_node,
)


class TestResidualNetwork:
    def test_arc_pairing(self):
        net = ResidualNetwork(3)
        arc = net.add_arc(0, 1, 5)
        assert net.head[arc] == 1
        assert net.head[arc ^ 1] == 0
        assert net.cap[arc] == 5
        assert net.cap[arc ^ 1] == 0

    def test_push_updates_reverse(self):
        net = ResidualNetwork(2)
        arc = net.add_arc(0, 1, 2)
        net.push(arc, 2)
        assert net.cap[arc] == 0
        assert net.cap[arc ^ 1] == 2

    def test_over_push_rejected(self):
        net = ResidualNetwork(2)
        arc = net.add_arc(0, 1, 1)
        with pytest.raises(FlowError):
            net.push(arc, 2)

    def test_negative_capacity_rejected(self):
        net = ResidualNetwork(2)
        with pytest.raises(FlowError):
            net.add_arc(0, 1, -1)

    def test_reachability(self):
        net = ResidualNetwork(3)
        net.add_arc(0, 1, 1)
        net.add_arc(1, 2, 0)  # zero capacity: not traversable
        seen = net.reachable_from(0)
        assert seen == [True, True, False]


class TestMaxFlow:
    def _parallel_paths(self):
        """0 -> {1, 2} -> 3 with capacities 1 each."""
        net = ResidualNetwork(4)
        net.add_arc(0, 1, 1)
        net.add_arc(0, 2, 1)
        net.add_arc(1, 3, 1)
        net.add_arc(2, 3, 1)
        return net

    def test_two_disjoint_paths(self):
        assert max_flow(self._parallel_paths(), 0, 3) == 2

    def test_limit_stops_early(self):
        assert max_flow(self._parallel_paths(), 0, 3, limit=1) == 1

    def test_bottleneck(self):
        net = ResidualNetwork(3)
        net.add_arc(0, 1, 5)
        net.add_arc(1, 2, 2)
        assert max_flow(net, 0, 2) == 2

    def test_no_path(self):
        net = ResidualNetwork(3)
        net.add_arc(1, 2, 1)
        assert max_flow(net, 0, 2) == 0

    def test_augmenting_path_found(self):
        net = self._parallel_paths()
        path = bfs_augmenting_path(net, 0, 3)
        assert path is not None
        assert net.head[path[-1]] == 3

    def test_flow_requires_residual_path(self):
        net = self._parallel_paths()
        max_flow(net, 0, 3)
        assert bfs_augmenting_path(net, 0, 3) is None

    def test_classic_crossing_network(self):
        """Flow must reroute through the cross edge (classic EK case)."""
        net = ResidualNetwork(4)
        net.add_arc(0, 1, 1)
        net.add_arc(0, 2, 1)
        net.add_arc(1, 2, 1)
        net.add_arc(1, 3, 1)
        net.add_arc(2, 3, 1)
        assert max_flow(net, 0, 3) == 2
