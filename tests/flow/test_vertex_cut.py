"""Tests for minimum vertex cuts (the DOUBLEIDOM engine)."""

import pytest

from repro.circuits.generators import random_single_output
from repro.errors import FlowError
from repro.flow import count_disjoint_paths, min_vertex_cut
from repro.flow.vertex_cut import RegionCutSolver
from repro.graph import IndexedGraph


def _graph(circuit):
    return IndexedGraph.from_circuit(circuit, circuit.outputs[0])


class TestFigure2:
    def test_cut_from_u_to_t(self, fig2_graph):
        g = fig2_graph
        result = min_vertex_cut(g, [g.index_of("u")], g.index_of("t"))
        assert result.flow == 2
        assert {g.name_of(v) for v in result.cut} == {"a", "b"}

    def test_source_nearest_cut(self, fig2_graph):
        """{a,b} — not {e,c} or {h,g} — is returned: nearest the source."""
        g = fig2_graph
        result = min_vertex_cut(g, [g.index_of("u")], g.index_of("t"))
        assert {g.name_of(v) for v in result.cut} == {"a", "b"}

    def test_direct_edge_means_bounded(self, fig2_graph):
        """h feeds t directly: no interior vertex can cut {h} from t."""
        g = fig2_graph
        result = min_vertex_cut(g, [g.index_of("h")], g.index_of("t"))
        assert result.bounded
        assert result.cut is None

    def test_multi_source(self, fig2_graph):
        g = fig2_graph
        result = min_vertex_cut(
            g, [g.index_of("k"), g.index_of("l")], g.root, limit=5
        )
        assert result.flow == 2
        assert {g.name_of(v) for v in result.cut} == {"m", "n"}


class TestValidation:
    def test_sink_in_sources_rejected(self, fig2_graph):
        with pytest.raises(FlowError):
            min_vertex_cut(fig2_graph, [fig2_graph.root], fig2_graph.root)

    def test_empty_sources_rejected(self, fig2_graph):
        with pytest.raises(FlowError):
            min_vertex_cut(fig2_graph, [], fig2_graph.root)


class TestCutProperties:
    @pytest.mark.parametrize("seed", range(12))
    def test_cut_disconnects_and_is_minimum(self, seed):
        """On random cones: the returned cut really separates the source
        from the root, and no single vertex does (when flow == 2)."""
        graph = _graph(random_single_output(4, 25, seed=seed))
        for u in graph.sources():
            result = min_vertex_cut(graph, [u], graph.root, limit=3)
            if result.cut is None or result.flow != 2:
                continue
            banned = set(result.cut)
            # Removing the cut disconnects u from the root.
            seen, stack, reached = {u}, [u], False
            while stack:
                v = stack.pop()
                if v == graph.root:
                    reached = True
                    break
                for w in graph.succ[v]:
                    if w not in seen and w not in banned:
                        seen.add(w)
                        stack.append(w)
            assert not reached
            # Minimality: no single interior vertex disconnects.
            single = min_vertex_cut(graph, [u], graph.root, limit=2)
            assert single.flow == 2

    @pytest.mark.parametrize("seed", range(12))
    def test_menger(self, seed):
        """Flow value == number of internally disjoint paths (no direct
        source→sink edges in these cones because gates intervene)."""
        graph = _graph(random_single_output(4, 25, seed=seed + 100))
        for u in graph.sources():
            if graph.root in graph.succ[u]:
                continue
            paths = count_disjoint_paths(graph, [u], graph.root)
            result = min_vertex_cut(
                graph, [u], graph.root, limit=graph.n + 1
            )
            assert result.flow == paths
            assert len(result.cut) == paths


class TestRegionCutSolver:
    """The reusable solver must answer exactly like the one-shot builder
    on every query, including after arbitrarily many prior queries (its
    undo log must leave no residue in the network)."""

    def test_figure2_matches_one_shot(self, fig2_graph):
        g = fig2_graph
        solver = RegionCutSolver(g, limit=5)
        result = solver.min_cut([g.index_of("k"), g.index_of("l")])
        assert result.flow == 2
        assert {g.name_of(v) for v in result.cut} == {"m", "n"}
        for u in g.sources():
            expected = min_vertex_cut(g, [u], g.root, limit=5)
            got = solver.min_cut([u])
            assert (got.flow, got.cut) == (expected.flow, expected.cut)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_one_shot_on_random_cones(self, seed):
        graph = _graph(random_single_output(4, 25, seed=seed + 300))
        solver = RegionCutSolver(graph, limit=3)
        sources = graph.sources()
        # Single- and two-source queries, interleaved, twice over: the
        # second sweep re-asks every question to catch undo-log residue.
        queries = [[u] for u in sources]
        queries += [
            [sources[i], sources[(i + 1) % len(sources)]]
            for i in range(len(sources))
            if len(sources) > 1 and sources[i] != sources[(i + 1) % len(sources)]
        ]
        for _ in range(2):
            for srcs in queries:
                expected = min_vertex_cut(graph, srcs, graph.root, limit=3)
                got = solver.min_cut(srcs)
                assert got.flow == expected.flow, srcs
                assert got.cut == expected.cut, srcs

    def test_bounded_query_undoes_cleanly(self, fig2_graph):
        g = fig2_graph
        u = g.index_of("u")
        solver = RegionCutSolver(g, limit=1)  # every real cut is >= 1
        first = solver.min_cut([u])
        assert first.bounded and first.cut is None
        # Re-asking on the same solver must reproduce the bounded answer
        # exactly (the aborted flow must have been fully undone).
        second = solver.min_cut([u])
        assert (second.flow, second.cut) == (first.flow, first.cut)

    def test_validation(self, fig2_graph):
        solver = RegionCutSolver(fig2_graph)
        with pytest.raises(FlowError):
            solver.min_cut([])
        with pytest.raises(FlowError):
            solver.min_cut([fig2_graph.root])
