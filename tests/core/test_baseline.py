"""Tests for the baseline algorithm [11] (restriction scheme)."""

import pytest

from repro.circuits.generators import parity_tree, random_single_output
from repro.core import (
    all_double_dominators,
    baseline_double_dominators,
    baseline_double_dominators_of,
    baseline_pi_double_dominators,
)
from repro.graph import IndexedGraph


def _graph(circuit):
    return IndexedGraph.from_circuit(circuit, circuit.outputs[0])


@pytest.mark.parametrize("seed", range(12))
def test_matches_bruteforce(seed):
    graph = _graph(random_single_output(4, 16, seed=seed))
    per_target = baseline_double_dominators(graph)
    for u in graph.sources():
        assert per_target[u] == all_double_dominators(graph, u)


def test_figure2_pairs(fig2_graph):
    g = fig2_graph
    pairs = baseline_double_dominators_of(g, g.index_of("u"))
    assert len(pairs) == 12


def test_tree_yields_nothing():
    graph = _graph(parity_tree(8))
    assert baseline_pi_double_dominators(graph) == set()


def test_explicit_targets_only():
    graph = _graph(random_single_output(4, 20, seed=3))
    sources = graph.sources()
    result = baseline_double_dominators(graph, targets=sources[:1])
    assert set(result) == {sources[0]}


def test_internal_targets():
    """The baseline accepts any vertex, not just primary inputs."""
    graph = _graph(random_single_output(4, 20, seed=5))
    internal = [
        v
        for v in range(graph.n)
        if graph.pred[v] and v != graph.root
    ][:4]
    result = baseline_double_dominators(graph, targets=internal)
    for u in internal:
        assert result[u] == all_double_dominators(graph, u)


def test_root_never_in_pairs():
    graph = _graph(random_single_output(5, 25, seed=8))
    for pairs in baseline_double_dominators(graph).values():
        for pair in pairs:
            assert graph.root not in pair
