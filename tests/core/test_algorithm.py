"""Tests for the DOMINATORCHAIN driver (core.algorithm)."""

import pytest

from repro.circuits.generators import (
    cascade,
    dual_rail_parity,
    parity_tree,
    random_single_output,
)
from repro.core import (
    ChainComputer,
    all_double_dominators,
    baseline_double_dominators,
    dominator_chain,
)
from repro.errors import UnreachableVertexError
from repro.graph import IndexedGraph


def _graph(circuit):
    return IndexedGraph.from_circuit(circuit, circuit.outputs[0])


class TestBasics:
    def test_root_has_empty_chain(self, fig2_graph):
        chain = dominator_chain(fig2_graph, fig2_graph.root)
        assert not chain
        assert chain.num_dominators() == 0

    def test_tree_has_no_double_dominators(self):
        """Section 6: a tree-like circuit has zero double dominators."""
        graph = _graph(parity_tree(16))
        computer = ChainComputer(graph)
        for u in range(graph.n):
            if u == graph.root:
                continue
            assert computer.chain(u).num_dominators() == 0

    def test_dual_rail_parity_has_double_dominators(self):
        """Re-introducing reconvergence re-introduces pairs."""
        graph = _graph(dual_rail_parity(8))
        total = sum(
            ChainComputer(graph).chain(u).num_dominators()
            for u in graph.sources()
        )
        assert total > 0

    def test_unreachable_target_raises(self):
        graph = _graph(parity_tree(4))
        with pytest.raises(IndexError):
            dominator_chain(graph, graph.n + 5)

    def test_chain_target_recorded(self, fig2_graph):
        u = fig2_graph.index_of("u")
        assert dominator_chain(fig2_graph, u).target == u


class TestCacheEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_cached_equals_uncached(self, seed):
        graph = _graph(random_single_output(5, 40, seed=seed))
        cached = ChainComputer(graph, cache_regions=True)
        uncached = ChainComputer(graph, cache_regions=False)
        for u in graph.sources():
            a = cached.chain(u)
            b = uncached.chain(u)
            assert a.pair_set() == b.pair_set()
            assert [p.side1 for p in a.pairs] == [p.side1 for p in b.pairs]

    def test_cache_reused_across_targets(self):
        graph = _graph(cascade(depth=12, num_inputs=4, num_outputs=1))
        computer = ChainComputer(graph)
        for u in graph.sources():
            computer.chain(u)
        # Regions are keyed by entry vertex; every chain walk after the
        # first only adds its own first region.
        assert len(computer._region_cache) <= graph.n

    def test_chains_for_sources(self):
        graph = _graph(random_single_output(4, 25, seed=1))
        chains = ChainComputer(graph).chains_for_sources()
        assert set(chains) == set(graph.sources())


class TestAgainstReferences:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce(self, seed):
        graph = _graph(random_single_output(4, 18, seed=seed))
        computer = ChainComputer(graph)
        for u in graph.sources():
            assert computer.chain(u).pair_set() == all_double_dominators(
                graph, u
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_baseline_on_larger(self, seed):
        graph = _graph(random_single_output(6, 90, seed=seed + 100))
        base = baseline_double_dominators(graph)
        computer = ChainComputer(graph)
        for u in graph.sources():
            assert computer.chain(u).pair_set() == base[u]

    @pytest.mark.parametrize("engine", ["lt", "iterative", "naive"])
    def test_inner_engine_irrelevant(self, engine, fig2_graph):
        u = fig2_graph.index_of("u")
        chain = dominator_chain(fig2_graph, u, algorithm=engine)
        assert chain.num_dominators() == 12

    def test_internal_gate_targets(self):
        """Chains are defined for any vertex, not just primary inputs."""
        graph = _graph(random_single_output(4, 30, seed=7))
        computer = ChainComputer(graph)
        for u in range(graph.n):
            if u == graph.root:
                continue
            assert computer.chain(u).pair_set() == all_double_dominators(
                graph, u
            )


class TestChainShape:
    @pytest.mark.parametrize("seed", range(5))
    def test_pairs_link_via_common_dominator(self, seed):
        """Definition 3 property 2 (executable form): each pair's first
        elements form a *common* double-vertex dominator of the previous
        pair's last elements.

        Note the immediate common dominator of the last elements can lie
        outside D(u) entirely (the last elements need not be a dominator
        pair of u themselves, so their joint paths are a superset of u's),
        which is why membership — not equality with the immediate — is
        the invariant tested here; completeness of the chain against the
        brute-force enumeration is covered elsewhere.
        """
        from repro.core.common import common_chain

        graph = _graph(random_single_output(4, 30, seed=seed + 50))
        computer = ChainComputer(graph)
        for u in graph.sources():
            chain = computer.chain(u)
            for prev, nxt in zip(chain.pairs, chain.pairs[1:]):
                common = common_chain(graph, list(prev.last))
                assert common.dominates(nxt.first[0], nxt.first[1])
                assert not set(nxt.first) & set(prev.last)
