"""Unit tests for the DominatorChain data structure itself."""

import pytest

from repro.core.chain import ChainPair, DominatorChain
from repro.errors import ChainConstructionError


def _simple_chain():
    """Hand-built chain: one pair {<1,2>, <3,4>} with a staircase."""
    pair = ChainPair(side1=(1, 2), side2=(3, 4))
    intervals = {1: (1, 2), 2: (2, 2), 3: (1, 1), 4: (1, 2)}
    return DominatorChain(target=0, pairs=[pair], intervals=intervals)


class TestConstruction:
    def test_empty_chain(self):
        chain = DominatorChain(target=5, pairs=[], intervals={})
        assert not chain
        assert len(chain) == 0
        assert chain.size == 0
        assert chain.immediate() is None
        assert chain.num_dominators() == 0
        assert not chain.dominates(1, 2)
        assert list(chain.iter_dominator_pairs()) == []

    def test_empty_pair_vector_rejected(self):
        with pytest.raises(ChainConstructionError):
            ChainPair(side1=(), side2=(1,))

    def test_duplicate_vertex_rejected(self):
        """Lemma 3: vectors never share vertices."""
        pair = ChainPair(side1=(1,), side2=(1,))
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, [pair], {1: (1, 1)})

    def test_missing_interval_rejected(self):
        pair = ChainPair(side1=(1,), side2=(2,))
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, [pair], {1: (1, 1)})

    def test_out_of_bounds_interval_rejected(self):
        pair = ChainPair(side1=(1,), side2=(2,))
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, [pair], {1: (1, 5), 2: (1, 1)})

    def test_asymmetric_matching_rejected(self):
        pair = ChainPair(side1=(1, 2), side2=(3, 4))
        intervals = {1: (1, 2), 2: (2, 2), 3: (1, 1), 4: (2, 2)}
        # 1 claims partner 4 (position 2) but 4 only claims partner 2.
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, [pair], intervals)

    def test_interval_spanning_pairs_rejected(self):
        pairs = [
            ChainPair(side1=(1,), side2=(2,)),
            ChainPair(side1=(3,), side2=(4,)),
        ]
        intervals = {1: (1, 2), 2: (1, 1), 3: (2, 2), 4: (2, 2)}
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, pairs, intervals)


class TestQueries:
    def test_flags_and_indices(self):
        chain = _simple_chain()
        assert chain.flag(1) == 1 and chain.flag(2) == 1
        assert chain.flag(3) == 2 and chain.flag(4) == 2
        assert chain.index(1) == 1 and chain.index(2) == 2
        assert chain.index(3) == 1 and chain.index(4) == 2

    def test_lookup_matches_intervals(self):
        chain = _simple_chain()
        assert chain.dominates(1, 3)
        assert chain.dominates(1, 4)
        assert chain.dominates(2, 4)
        assert not chain.dominates(2, 3)
        # Symmetry of the two-probe check.
        assert chain.dominates(3, 1)
        assert chain.dominates(4, 2)
        assert not chain.dominates(3, 2)

    def test_same_flag_never_dominates(self):
        chain = _simple_chain()
        assert not chain.dominates(1, 2)
        assert not chain.dominates(3, 4)

    def test_unknown_vertex_lookup_is_false(self):
        chain = _simple_chain()
        assert not chain.dominates(1, 99)
        assert not chain.dominates(99, 1)
        assert not chain.dominates(98, 99)

    def test_contains_and_vertices(self):
        chain = _simple_chain()
        assert 1 in chain and 4 in chain and 99 not in chain
        assert sorted(chain.vertices()) == [1, 2, 3, 4]
        assert chain.side(1) == [1, 2]
        assert chain.side(2) == [3, 4]
        with pytest.raises(ValueError):
            chain.side(3)

    def test_matching_vector_order(self):
        chain = _simple_chain()
        assert chain.matching_vector(1) == [3, 4]
        assert chain.matching_vector(2) == [4]
        assert chain.matching_vector(4) == [1, 2]

    def test_pair_enumeration_matches_count(self):
        chain = _simple_chain()
        pairs = list(chain.iter_dominator_pairs())
        assert len(pairs) == chain.num_dominators() == 3
        assert chain.pair_set() == {
            frozenset((1, 3)),
            frozenset((1, 4)),
            frozenset((2, 4)),
        }

    def test_immediate_is_first_elements(self):
        chain = _simple_chain()
        assert chain.immediate() == (1, 3)

    def test_format(self):
        chain = _simple_chain()
        assert chain.format() == "<{<1,2>, <3,4>}>"
        assert chain.format(lambda v: f"v{v}") == "<{<v1,v2>, <v3,v4>}>"


class TestMultiPair:
    def test_indices_run_across_pairs(self):
        pairs = [
            ChainPair(side1=(1,), side2=(2,)),
            ChainPair(side1=(3,), side2=(4,)),
        ]
        intervals = {1: (1, 1), 2: (1, 1), 3: (2, 2), 4: (2, 2)}
        chain = DominatorChain(0, pairs, intervals)
        assert chain.index(3) == 2 and chain.index(4) == 2
        assert chain.dominates(3, 4)
        assert not chain.dominates(1, 4)
        assert not chain.dominates(3, 2)
        assert chain.num_dominators() == 2


class TestBoundaryAudit:
    """Off-by-one audit of side()/first/last/(min,max) against Figure 2.

    The paper states D(u) = <{<a,e,h>, <b,c,d,g>}, {<k,m>, <l,n>}> with
    intervals b=(1,1), c=(1,3), d=(1,3), g=(3,3); the membership test
    must flip exactly at those interval boundaries.
    """

    @staticmethod
    def _fig2_chain():
        from repro.circuits.figures import figure2_circuit
        from repro.core.algorithm import dominator_chain
        from repro.graph import IndexedGraph

        g = IndexedGraph.from_circuit(figure2_circuit())
        return g, dominator_chain(g, g.index_of("u"))

    def test_side_vectors_match_paper(self):
        # Which side is numbered 1 is arbitrary; compare as a set.
        g, chain = self._fig2_chain()
        sides = {
            tuple(g.name_of(v) for v in chain.side(flag)) for flag in (1, 2)
        }
        assert sides == {
            ("a", "e", "h", "k", "m"),
            ("b", "c", "d", "g", "l", "n"),
        }

    def test_pair_first_and_last(self):
        g, chain = self._fig2_chain()
        assert len(chain) == 2
        first_pair, second_pair = chain.pairs
        assert {g.name_of(v) for v in first_pair.first} == {"a", "b"}
        assert {g.name_of(v) for v in first_pair.last} == {"h", "g"}
        assert {g.name_of(v) for v in second_pair.first} == {"k", "l"}
        assert {g.name_of(v) for v in second_pair.last} == {"m", "n"}

    def test_paper_intervals(self):
        g, chain = self._fig2_chain()
        for name, want in (("b", (1, 1)), ("c", (1, 3)), ("d", (1, 3)),
                           ("g", (3, 3))):
            assert chain.interval(g.index_of(name)) == want, name

    def test_membership_flips_exactly_at_boundaries(self):
        g, chain = self._fig2_chain()
        c = g.index_of("c")  # interval (1, 3) over the side <a,e,h,k,m>
        aeh = chain.side(2 if chain.flag(c) == 1 else 1)
        assert [g.name_of(v) for v in aeh] == ["a", "e", "h", "k", "m"]
        assert chain.dominates(c, aeh[0])      # a: index 1 == min
        assert chain.dominates(c, aeh[2])      # h: index 3 == max
        assert not chain.dominates(c, aeh[3])  # k: index 4 == max + 1
        b = g.index_of("b")  # interval (1, 1)
        assert chain.dominates(b, aeh[0])      # a only
        assert not chain.dominates(b, aeh[1])  # e: one past max
        gg = g.index_of("g")  # interval (3, 3)
        assert chain.dominates(gg, aeh[2])     # h only
        assert not chain.dominates(gg, aeh[1])  # e: one before min
        assert not chain.dominates(gg, aeh[3])  # k: one after max

    def test_membership_symmetry_and_same_side_rejection(self):
        g, chain = self._fig2_chain()
        for v in chain.side(1):
            for w in chain.side(2):
                assert chain.dominates(v, w) == chain.dominates(w, v)
            for w in chain.side(1):
                assert not chain.dominates(v, w)

    def test_matching_vector_boundaries(self):
        g, chain = self._fig2_chain()
        h = g.index_of("h")
        partners = [g.name_of(w) for w in chain.matching_vector(h)]
        assert partners == ["c", "d", "g"]
        lo, hi = chain.interval(h)
        opposite = chain.side(2 if chain.flag(h) == 1 else 1)
        assert g.name_of(opposite[lo - 1]) == "c"
        assert g.name_of(opposite[hi - 1]) == "g"

    def test_figure1_three_vertex_sets_not_pairs(self):
        """Figure 1: PI b is dominated by {e, h} only as a *pair*."""
        from repro.circuits.figures import figure1_circuit
        from repro.core.algorithm import dominator_chain
        from repro.graph import IndexedGraph

        g = IndexedGraph.from_circuit(figure1_circuit())
        chain = dominator_chain(g, g.index_of("b"))
        assert chain.dominates(g.index_of("e"), g.index_of("h"))
        # The 3-vertex dominators {e,l,m} / {h,j,k} are not pairs.
        assert not chain.dominates(g.index_of("e"), g.index_of("l"))
        assert g.index_of("j") not in chain
