"""Unit tests for the DominatorChain data structure itself."""

import pytest

from repro.core.chain import ChainPair, DominatorChain
from repro.errors import ChainConstructionError


def _simple_chain():
    """Hand-built chain: one pair {<1,2>, <3,4>} with a staircase."""
    pair = ChainPair(side1=(1, 2), side2=(3, 4))
    intervals = {1: (1, 2), 2: (2, 2), 3: (1, 1), 4: (1, 2)}
    return DominatorChain(target=0, pairs=[pair], intervals=intervals)


class TestConstruction:
    def test_empty_chain(self):
        chain = DominatorChain(target=5, pairs=[], intervals={})
        assert not chain
        assert len(chain) == 0
        assert chain.size == 0
        assert chain.immediate() is None
        assert chain.num_dominators() == 0
        assert not chain.dominates(1, 2)
        assert list(chain.iter_dominator_pairs()) == []

    def test_empty_pair_vector_rejected(self):
        with pytest.raises(ChainConstructionError):
            ChainPair(side1=(), side2=(1,))

    def test_duplicate_vertex_rejected(self):
        """Lemma 3: vectors never share vertices."""
        pair = ChainPair(side1=(1,), side2=(1,))
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, [pair], {1: (1, 1)})

    def test_missing_interval_rejected(self):
        pair = ChainPair(side1=(1,), side2=(2,))
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, [pair], {1: (1, 1)})

    def test_out_of_bounds_interval_rejected(self):
        pair = ChainPair(side1=(1,), side2=(2,))
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, [pair], {1: (1, 5), 2: (1, 1)})

    def test_asymmetric_matching_rejected(self):
        pair = ChainPair(side1=(1, 2), side2=(3, 4))
        intervals = {1: (1, 2), 2: (2, 2), 3: (1, 1), 4: (2, 2)}
        # 1 claims partner 4 (position 2) but 4 only claims partner 2.
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, [pair], intervals)

    def test_interval_spanning_pairs_rejected(self):
        pairs = [
            ChainPair(side1=(1,), side2=(2,)),
            ChainPair(side1=(3,), side2=(4,)),
        ]
        intervals = {1: (1, 2), 2: (1, 1), 3: (2, 2), 4: (2, 2)}
        with pytest.raises(ChainConstructionError):
            DominatorChain(0, pairs, intervals)


class TestQueries:
    def test_flags_and_indices(self):
        chain = _simple_chain()
        assert chain.flag(1) == 1 and chain.flag(2) == 1
        assert chain.flag(3) == 2 and chain.flag(4) == 2
        assert chain.index(1) == 1 and chain.index(2) == 2
        assert chain.index(3) == 1 and chain.index(4) == 2

    def test_lookup_matches_intervals(self):
        chain = _simple_chain()
        assert chain.dominates(1, 3)
        assert chain.dominates(1, 4)
        assert chain.dominates(2, 4)
        assert not chain.dominates(2, 3)
        # Symmetry of the two-probe check.
        assert chain.dominates(3, 1)
        assert chain.dominates(4, 2)
        assert not chain.dominates(3, 2)

    def test_same_flag_never_dominates(self):
        chain = _simple_chain()
        assert not chain.dominates(1, 2)
        assert not chain.dominates(3, 4)

    def test_unknown_vertex_lookup_is_false(self):
        chain = _simple_chain()
        assert not chain.dominates(1, 99)
        assert not chain.dominates(99, 1)
        assert not chain.dominates(98, 99)

    def test_contains_and_vertices(self):
        chain = _simple_chain()
        assert 1 in chain and 4 in chain and 99 not in chain
        assert sorted(chain.vertices()) == [1, 2, 3, 4]
        assert chain.side(1) == [1, 2]
        assert chain.side(2) == [3, 4]
        with pytest.raises(ValueError):
            chain.side(3)

    def test_matching_vector_order(self):
        chain = _simple_chain()
        assert chain.matching_vector(1) == [3, 4]
        assert chain.matching_vector(2) == [4]
        assert chain.matching_vector(4) == [1, 2]

    def test_pair_enumeration_matches_count(self):
        chain = _simple_chain()
        pairs = list(chain.iter_dominator_pairs())
        assert len(pairs) == chain.num_dominators() == 3
        assert chain.pair_set() == {
            frozenset((1, 3)),
            frozenset((1, 4)),
            frozenset((2, 4)),
        }

    def test_immediate_is_first_elements(self):
        chain = _simple_chain()
        assert chain.immediate() == (1, 3)

    def test_format(self):
        chain = _simple_chain()
        assert chain.format() == "<{<1,2>, <3,4>}>"
        assert chain.format(lambda v: f"v{v}") == "<{<v1,v2>, <v3,v4>}>"


class TestMultiPair:
    def test_indices_run_across_pairs(self):
        pairs = [
            ChainPair(side1=(1,), side2=(2,)),
            ChainPair(side1=(3,), side2=(4,)),
        ]
        intervals = {1: (1, 1), 2: (1, 1), 3: (2, 2), 4: (2, 2)}
        chain = DominatorChain(0, pairs, intervals)
        assert chain.index(3) == 2 and chain.index(4) == 2
        assert chain.dominates(3, 4)
        assert not chain.dominates(1, 4)
        assert not chain.dominates(3, 2)
        assert chain.num_dominators() == 2
