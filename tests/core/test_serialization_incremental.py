"""Tests for chain serialization and the incremental-cache hook."""

import json

import pytest

from repro.circuits.generators import cascade, random_single_output
from repro.core import ChainComputer, dominator_chain
from repro.errors import ChainConstructionError
from repro.graph import IndexedGraph


def _graph(circuit):
    return IndexedGraph.from_circuit(circuit, circuit.outputs[0])


class TestSerialization:
    def test_roundtrip_through_json(self, fig2_graph):
        from repro.core.chain import DominatorChain

        chain = dominator_chain(fig2_graph, fig2_graph.index_of("u"))
        blob = json.dumps(chain.to_dict())
        restored = DominatorChain.from_dict(json.loads(blob))
        assert restored.target == chain.target
        assert restored.pair_set() == chain.pair_set()
        for v in chain.vertices():
            assert restored.index(v) == chain.index(v)
            assert restored.flag(v) == chain.flag(v)
            assert restored.interval(v) == chain.interval(v)

    def test_tampered_payload_revalidated(self, fig2_graph):
        from repro.core.chain import DominatorChain

        chain = dominator_chain(fig2_graph, fig2_graph.index_of("u"))
        data = chain.to_dict()
        first_vertex = data["pairs"][0]["side1"][0]
        data["intervals"][str(first_vertex)] = [1, 999]
        with pytest.raises(ChainConstructionError):
            DominatorChain.from_dict(data)

    def test_empty_chain_roundtrip(self, fig2_graph):
        from repro.core.chain import DominatorChain

        chain = dominator_chain(fig2_graph, fig2_graph.root)
        restored = DominatorChain.from_dict(chain.to_dict())
        assert not restored


class TestInvalidate:
    def test_eviction_counts(self):
        graph = _graph(cascade(depth=12, num_inputs=4, num_outputs=1))
        computer = ChainComputer(graph)
        for u in graph.sources():
            computer.chain(u)
        before = len(computer._region_cache)
        assert before > 0
        chain = computer.chain(graph.sources()[0])
        some_vertex = next(iter(chain.vertices()))
        evicted = computer.invalidate([some_vertex])
        assert evicted >= 1
        assert len(computer._region_cache) == before - evicted

    def test_results_identical_after_invalidate(self):
        graph = _graph(random_single_output(5, 40, seed=21))
        computer = ChainComputer(graph)
        reference = {
            u: computer.chain(u).pair_set() for u in graph.sources()
        }
        computer.invalidate(range(graph.n))  # drop everything
        assert computer._region_cache == {}
        for u in graph.sources():
            assert computer.chain(u).pair_set() == reference[u]

    def test_invalidate_untouched_is_noop(self):
        graph = _graph(cascade(depth=8, num_inputs=4, num_outputs=1))
        computer = ChainComputer(graph)
        for u in graph.sources():
            computer.chain(u)
        assert computer.invalidate([]) == 0
