"""Tests for FINDMATCHINGVECTOR / expand_pair (core.matching)."""

import pytest

from repro.core.matching import expand_pair, find_matching_vector
from repro.errors import ChainConstructionError
from repro.graph.transform import region_between


def _region1(fig2_graph):
    """Figure 2's first search region (u .. t), local indices."""
    g = fig2_graph
    sub, orig_of = region_between(g, g.index_of("u"), g.index_of("t"))
    return g, sub, {g.name_of(orig_of[i]): i for i in range(sub.n)}


class TestFindMatchingVector:
    def test_matching_vector_of_a(self, fig2_graph):
        """W(a) = <b, c, d>: walk from b in (region - a)."""
        g, sub, local = _region1(fig2_graph)
        w = find_matching_vector(sub, local["a"], local["b"])
        assert [sub.name_of(x) for x in w] == ["b", "c", "d"]

    def test_matching_vector_of_b(self, fig2_graph):
        """W(b) = <a>: a's restricted idom is already the local root."""
        g, sub, local = _region1(fig2_graph)
        w = find_matching_vector(sub, local["b"], local["a"])
        assert [sub.name_of(x) for x in w] == ["a"]

    def test_matching_vector_of_h(self, fig2_graph):
        """W(h) = <c, d, g>."""
        g, sub, local = _region1(fig2_graph)
        w = find_matching_vector(sub, local["h"], local["c"])
        assert [sub.name_of(x) for x in w] == ["c", "d", "g"]

    def test_vanished_partner_raises(self, fig2_graph):
        """c's only fanout is d, so removing d prunes c from the region —
        a walk can then not start at c."""
        g, sub, local = _region1(fig2_graph)
        with pytest.raises(ChainConstructionError):
            find_matching_vector(sub, local["d"], local["c"])


class TestExpandPair:
    def test_figure2_first_pair(self, fig2_graph):
        g, sub, local = _region1(fig2_graph)
        expanded = expand_pair(sub, local["a"], local["b"])
        side1 = [sub.name_of(x) for x in expanded.side1]
        side2 = [sub.name_of(x) for x in expanded.side2]
        assert side1 == ["a", "e", "h"]
        assert side2 == ["b", "c", "d", "g"]

    def test_figure2_intervals(self, fig2_graph):
        g, sub, local = _region1(fig2_graph)
        expanded = expand_pair(sub, local["a"], local["b"])
        by_name = {
            sub.name_of(v): iv for v, iv in expanded.intervals.items()
        }
        assert by_name["a"] == (1, 3)  # partners b, c, d
        assert by_name["e"] == (2, 3)  # partners c, d
        assert by_name["h"] == (2, 4)  # partners c, d, g
        assert by_name["b"] == (1, 1)
        assert by_name["c"] == (1, 3)
        assert by_name["d"] == (1, 3)
        assert by_name["g"] == (3, 3)

    def test_symmetric_seed_order(self, fig2_graph):
        """Expanding from (b, a) instead of (a, b) swaps the sides but
        produces the same pair structure."""
        g, sub, local = _region1(fig2_graph)
        expanded = expand_pair(sub, local["b"], local["a"])
        assert [sub.name_of(x) for x in expanded.side1] == [
            "b",
            "c",
            "d",
            "g",
        ]
        assert [sub.name_of(x) for x in expanded.side2] == ["a", "e", "h"]
