"""Tests for the high-level, name-based API (core.api)."""

import pytest

from repro.circuits.generators import parity_tree, random_circuit
from repro.core import (
    all_pi_chains,
    chain_of,
    count_double_dominators,
    count_double_dominators_baseline,
    count_single_dominators,
    dominator_counts,
)
from repro.errors import UnknownNodeError


class TestChainOf:
    def test_figure2_walkthrough(self, fig2):
        chain = chain_of(fig2, "u")
        assert chain.dominates("d", "h")
        assert not chain.dominates("g", "a")
        assert set(chain.immediate()) == {"a", "b"}
        assert len(chain) == 2

    def test_pairs_and_matching_vectors(self, fig2):
        chain = chain_of(fig2, "u")
        assert len(chain.pairs()) == 12
        assert chain.matching_vector("a") == ["b", "c", "d"]
        assert "a,e,h" in chain.format() or "b,c,d,g" in chain.format()

    def test_unknown_node_raises(self, fig2):
        with pytest.raises(UnknownNodeError):
            chain_of(fig2, "nonexistent")

    def test_multi_output_requires_output_choice(self, fig1, fig2):
        c = random_circuit(4, 20, num_outputs=2, seed=1)
        from repro.errors import CircuitError

        with pytest.raises(CircuitError):
            chain_of(c, c.inputs[0])
        # With an explicit output it works.
        chain_of(c, c.inputs[0], output=c.outputs[0])


class TestCounts:
    def test_counts_agree_between_algorithms(self):
        circuit = random_circuit(6, 60, num_outputs=3, seed=11)
        new = count_double_dominators(circuit)
        base = count_double_dominators_baseline(circuit)
        assert new == base

    def test_tree_counts(self):
        """Section 6: tree-like circuit — n single doms, 0 double doms."""
        circuit = parity_tree(16)
        counts = dominator_counts(circuit)
        assert counts.double == 0
        assert counts.single > 0

    def test_single_count_positive_on_figure2(self, fig2):
        # u's idom chain contains t and f.
        assert count_single_dominators(fig2) == 2

    def test_figure2_double_count(self, fig2):
        assert count_double_dominators(fig2) == 12

    def test_cache_toggle_equivalent(self):
        circuit = random_circuit(5, 40, num_outputs=2, seed=4)
        assert count_double_dominators(
            circuit, cache_regions=True
        ) == count_double_dominators(circuit, cache_regions=False)


class TestAllPiChains:
    def test_keys_are_input_names(self, fig2):
        chains = all_pi_chains(fig2)
        assert set(chains) == {"u"}
        assert chains["u"].chain.num_dominators() == 12

    def test_multi_pi_circuit(self):
        circuit = random_circuit(5, 30, num_outputs=1, seed=9)
        chains = all_pi_chains(circuit)
        cone_inputs = set(chains)
        assert cone_inputs <= set(circuit.inputs)
