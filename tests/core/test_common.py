"""Tests for common dominators of vertex sets (Section 4 end)."""

import pytest

from repro.circuits.generators import random_single_output
from repro.core import ChainComputer, dominator_chain
from repro.core.common import (
    common_chain,
    common_dominator_pairs,
    common_pairs_from_chains,
    immediate_common_dominator,
)
from repro.core.multi import is_multi_dominator
from repro.errors import DominatorError
from repro.graph import IndexedGraph


def _graph(seed, gates=25):
    return IndexedGraph.from_circuit(
        random_single_output(4, gates, seed=seed)
    )


class TestCommonChain:
    def test_single_vertex_degenerates_to_plain_chain(self, fig2_graph):
        g = fig2_graph
        u = g.index_of("u")
        assert common_chain(g, [u]).pair_set() == dominator_chain(
            g, u
        ).pair_set()

    def test_rejects_empty_and_root(self, fig2_graph):
        with pytest.raises(DominatorError):
            common_chain(fig2_graph, [])
        with pytest.raises(DominatorError):
            common_chain(fig2_graph, [fig2_graph.root])

    @pytest.mark.parametrize("seed", range(8))
    def test_common_pairs_satisfy_definition1(self, seed):
        """Every filtered common pair is a Definition-1 common dominator:
        it cuts each target from the root and each pair vertex keeps a
        private path from some target."""
        graph = _graph(seed)
        sources = graph.sources()
        for pair in common_dominator_pairs(graph, sources):
            v1, v2 = tuple(pair)
            # Condition 1 per target.
            for u in sources:
                banned = {v1, v2}
                seen = {u}
                stack = [u]
                reached = False
                while stack:
                    x = stack.pop()
                    if x == graph.root:
                        reached = True
                        break
                    for w in graph.succ[x]:
                        if w not in seen and w not in banned:
                            seen.add(w)
                            stack.append(w)
                assert not reached

    def test_filtered_pairs_exclude_targets(self):
        graph = _graph(3)
        sources = graph.sources()
        for pair in common_dominator_pairs(graph, sources):
            assert not pair & set(sources)


class TestChainIntersection:
    @pytest.mark.parametrize("seed", range(8))
    def test_intersection_subset_of_fake_vertex_pairs(self, seed):
        """Pairs dominating each u_i individually are common dominators of
        the set; the converse can fail when a pair vertex single-dominates
        one u_i (redundancy is per-target)."""
        graph = _graph(seed, gates=30)
        sources = graph.sources()
        computer = ChainComputer(graph)
        chains = [computer.chain(u) for u in sources]
        intersected = common_pairs_from_chains(chains)
        via_fake = common_dominator_pairs(graph, sources)
        assert intersected <= via_fake

    def test_intersection_of_one_chain_is_itself(self, fig2_graph):
        chain = dominator_chain(fig2_graph, fig2_graph.index_of("u"))
        assert common_pairs_from_chains([chain]) == chain.pair_set()

    def test_intersection_requires_chains(self):
        with pytest.raises(DominatorError):
            common_pairs_from_chains([])


class TestImmediateCommon:
    def test_figure2_immediate_common(self, fig2_graph):
        g = fig2_graph
        pair = immediate_common_dominator(
            g, [g.index_of("h"), g.index_of("g")]
        )
        assert {g.name_of(v) for v in pair} == {"k", "l"}

    @pytest.mark.parametrize("seed", range(6))
    def test_immediate_is_unique_and_valid(self, seed):
        """Theorem 1 extended to common dominators: uniqueness holds (the
        helper raises otherwise), and the result is a genuine common
        multi-dominator in the Definition-1 sense for the fake target."""
        graph = _graph(seed + 20, gates=30)
        sources = graph.sources()[:2]
        pair = immediate_common_dominator(graph, sources)
        if pair is not None:
            assert frozenset(pair) in common_dominator_pairs(graph, sources)
