"""Sanity checks that the reconstructed figure circuits are real logic.

The paper's figures are reconstructed from textual facts; these tests
confirm the reconstructions are well-formed combinational circuits whose
simulation behaves consistently (every net reachable, no stuck values
across the full input space for the small Figure 1).
"""

import itertools

from repro.analysis import evaluate
from repro.graph import assert_well_formed


def test_figure1_well_formed(fig1):
    assert_well_formed(fig1)
    assert set(fig1.inputs) == {"a", "b", "c", "d", "g"}
    assert fig1.outputs == ["f"]


def test_figure2_well_formed(fig2):
    assert_well_formed(fig2)
    assert fig2.inputs == ["u"]
    assert fig2.outputs == ["f"]


def test_figure1_output_not_constant(fig1):
    values = set()
    for bits in itertools.product((0, 1), repeat=5):
        env = dict(zip(fig1.inputs, bits))
        values.add(evaluate(fig1, env)["f"])
    assert values == {0, 1}


def test_figure2_all_nets_driven(fig2):
    for bit in (0, 1):
        vals = evaluate(fig2, {"u": bit})
        assert set(vals) == set(fig2.topological_order())


def test_figure2_every_vertex_in_some_role(fig2_graph):
    """Every non-root vertex of Figure 2 is either in D(u) or a single
    dominator of u or u itself — the example is maximally instructive."""
    from repro.core import dominator_chain
    from repro.dominators import circuit_dominator_tree

    g = fig2_graph
    u = g.index_of("u")
    chain_vertices = set(dominator_chain(g, u).vertices())
    idom_chain = set(circuit_dominator_tree(g).chain(u))
    for v in range(g.n):
        assert v in chain_vertices or v in idom_chain
