"""Tests for the search-region decomposition."""

import pytest

from repro.circuits.generators import random_single_output
from repro.core import all_double_dominators, search_regions
from repro.dominators import circuit_dominator_tree
from repro.graph import IndexedGraph


def _graph(seed, gates=25):
    return IndexedGraph.from_circuit(
        random_single_output(4, gates, seed=seed)
    )


def test_figure2_regions(fig2_graph):
    g = fig2_graph
    tree = circuit_dominator_tree(g)
    regions = list(search_regions(g, g.index_of("u"), tree))
    assert [g.name_of(r.start) for r in regions] == ["u", "t"]
    assert [g.name_of(r.sink) for r in regions] == ["t", "f"]
    # Region 1 holds u, a..h, g, t; region 2 holds t, k..n, f.
    names1 = {r for r in (regions[0].graph.names)}
    assert {"u", "a", "b", "c", "d", "e", "h", "g", "t"} == names1
    names2 = set(regions[1].graph.names)
    assert {"t", "k", "l", "m", "n", "f"} == names2


def test_region_graph_rooted_at_sink(fig2_graph):
    g = fig2_graph
    tree = circuit_dominator_tree(g)
    for region in search_regions(g, g.index_of("u"), tree):
        assert region.orig_of[region.graph.root] == region.sink
        assert region.orig_of[region.local_start] == region.start


@pytest.mark.parametrize("seed", range(8))
def test_no_pair_straddles_a_region_boundary(seed):
    """The module docstring's no-straddle lemma, checked by brute force:
    every dominator pair of u lies fully inside one region."""
    graph = _graph(seed)
    tree = circuit_dominator_tree(graph)
    for u in graph.sources():
        region_sets = [
            set(r.orig_of) - {r.start, r.sink}
            for r in search_regions(graph, u, tree)
        ]
        for pair in all_double_dominators(graph, u):
            containing = [
                i
                for i, vertices in enumerate(region_sets)
                if pair <= vertices
            ]
            assert len(containing) == 1


@pytest.mark.parametrize("seed", range(8))
def test_regions_cover_chain(seed):
    graph = _graph(seed)
    tree = circuit_dominator_tree(graph)
    for u in graph.sources():
        chain = tree.chain(u)
        regions = list(search_regions(graph, u, tree))
        assert len(regions) == len(chain) - 1
        # Consecutive regions share exactly the boundary vertex.
        for a, b in zip(regions, regions[1:]):
            assert a.sink == b.start


class TestTrivialRegions:
    def test_figure2_regions_are_not_trivial(self, fig2_graph):
        g = fig2_graph
        tree = circuit_dominator_tree(g)
        for region in search_regions(g, g.index_of("u"), tree):
            assert not region.is_trivial
            assert region.interior_size == region.graph.n - 2

    def test_buffer_chain_regions_all_trivial(self):
        from repro.graph import NodeType
        from repro.graph.circuit import Circuit

        c = Circuit("chain")
        sig = c.add_input("i0")
        for k in range(4):
            sig = c.add_gate(f"b{k}", NodeType.BUF, [sig])
        c.set_outputs([sig])
        g = IndexedGraph.from_circuit(c)
        tree = circuit_dominator_tree(g)
        regions = list(search_regions(g, g.index_of("i0"), tree))
        assert regions
        assert all(r.is_trivial for r in regions)
        assert all(r.interior_size == 0 for r in regions)

    def test_trivial_region_expands_to_no_pairs(self):
        from repro.core.algorithm import _expand_region
        from repro.graph import NodeType
        from repro.graph.circuit import Circuit

        c = Circuit("chain")
        sig = c.add_input("i0")
        sig = c.add_gate("b0", NodeType.BUF, [sig])
        c.set_outputs([sig])
        g = IndexedGraph.from_circuit(c)
        tree = circuit_dominator_tree(g)
        (region,) = search_regions(g, g.index_of("i0"), tree)
        assert region.is_trivial
        assert _expand_region(region, "lt") == []


class TestDeterministicCut:
    """Degenerate regions with several min cuts resolve the same way."""

    def test_source_nearest_cut_is_stable(self):
        from repro.flow.vertex_cut import min_vertex_cut
        from repro.graph import NodeType
        from repro.graph.circuit import Circuit

        # Two-rail ladder: {l1,r1}, {l1,r2}, {l2,r1} and {l2,r2} are all
        # size-two cuts between the PI and the root; the immediate
        # (source-nearest) dominator is {l1, r1}.
        c = Circuit("ladder")
        s = c.add_input("s")
        c.add_gate("l1", NodeType.BUF, [s])
        c.add_gate("r1", NodeType.NOT, [s])
        c.add_gate("l2", NodeType.BUF, ["l1"])
        c.add_gate("r2", NodeType.NOT, ["r1"])
        c.add_gate("root", NodeType.OR, ["l2", "r2"])
        c.set_outputs(["root"])
        g = IndexedGraph.from_circuit(c)
        want = sorted((g.index_of("l1"), g.index_of("r1")))
        for _ in range(5):
            result = min_vertex_cut(
                g, [g.index_of("s")], g.index_of("root")
            )
            assert result.flow == 2
            assert result.cut == want

    def test_cut_independent_of_source_order(self):
        from repro.flow.vertex_cut import min_vertex_cut
        from repro.graph import NodeType
        from repro.graph.circuit import Circuit

        c = Circuit("two_src")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_gate("x", NodeType.AND, [a, b])
        c.add_gate("y", NodeType.OR, [a, b])
        c.add_gate("root", NodeType.XOR, ["x", "y"])
        c.set_outputs(["root"])
        g = IndexedGraph.from_circuit(c)
        srcs = [g.index_of("a"), g.index_of("b")]
        forward = min_vertex_cut(g, srcs, g.index_of("root"))
        backward = min_vertex_cut(g, srcs[::-1], g.index_of("root"))
        assert forward.flow == backward.flow == 2
        assert forward.cut == backward.cut
        assert forward.cut == sorted((g.index_of("x"), g.index_of("y")))
