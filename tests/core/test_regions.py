"""Tests for the search-region decomposition."""

import pytest

from repro.circuits.generators import random_single_output
from repro.core import all_double_dominators, search_regions
from repro.dominators import circuit_dominator_tree
from repro.graph import IndexedGraph


def _graph(seed, gates=25):
    return IndexedGraph.from_circuit(
        random_single_output(4, gates, seed=seed)
    )


def test_figure2_regions(fig2_graph):
    g = fig2_graph
    tree = circuit_dominator_tree(g)
    regions = list(search_regions(g, g.index_of("u"), tree))
    assert [g.name_of(r.start) for r in regions] == ["u", "t"]
    assert [g.name_of(r.sink) for r in regions] == ["t", "f"]
    # Region 1 holds u, a..h, g, t; region 2 holds t, k..n, f.
    names1 = {r for r in (regions[0].graph.names)}
    assert {"u", "a", "b", "c", "d", "e", "h", "g", "t"} == names1
    names2 = set(regions[1].graph.names)
    assert {"t", "k", "l", "m", "n", "f"} == names2


def test_region_graph_rooted_at_sink(fig2_graph):
    g = fig2_graph
    tree = circuit_dominator_tree(g)
    for region in search_regions(g, g.index_of("u"), tree):
        assert region.orig_of[region.graph.root] == region.sink
        assert region.orig_of[region.local_start] == region.start


@pytest.mark.parametrize("seed", range(8))
def test_no_pair_straddles_a_region_boundary(seed):
    """The module docstring's no-straddle lemma, checked by brute force:
    every dominator pair of u lies fully inside one region."""
    graph = _graph(seed)
    tree = circuit_dominator_tree(graph)
    for u in graph.sources():
        region_sets = [
            set(r.orig_of) - {r.start, r.sink}
            for r in search_regions(graph, u, tree)
        ]
        for pair in all_double_dominators(graph, u):
            containing = [
                i
                for i, vertices in enumerate(region_sets)
                if pair <= vertices
            ]
            assert len(containing) == 1


@pytest.mark.parametrize("seed", range(8))
def test_regions_cover_chain(seed):
    graph = _graph(seed)
    tree = circuit_dominator_tree(graph)
    for u in graph.sources():
        chain = tree.chain(u)
        regions = list(search_regions(graph, u, tree))
        assert len(regions) == len(chain) - 1
        # Consecutive regions share exactly the boundary vertex.
        for a, b in zip(regions, regions[1:]):
            assert a.sink == b.start
