"""Every fact the paper states about its Figures 1 and 2, as assertions.

These tests pin the reproduction to the paper text: the worked examples
must come out exactly as printed (up to the side permutation of chain
pairs, which Definition 3 explicitly allows).
"""

import pytest

from repro.circuits.figures import FIGURE2_PAIRS
from repro.core import (
    all_double_dominators,
    dominator_chain,
    immediate_multi_dominators,
    multi_vertex_dominators,
)
from repro.dominators import circuit_dominator_tree


def _pairs_by_name(graph, chain):
    return {
        frozenset((graph.name_of(a), graph.name_of(b)))
        for a, b in chain.iter_dominator_pairs()
    }


class TestFigure1:
    def test_idom_facts(self, fig1_graph):
        """n = idom(j, e, k); f = idom(n, p); idom(b) = idom(g) = f."""
        g = fig1_graph
        tree = circuit_dominator_tree(g)
        expected = {
            "j": "n",
            "e": "n",
            "k": "n",
            "n": "f",
            "p": "f",
            "b": "f",
            "g": "f",
            "h": "p",
        }
        for child, parent in expected.items():
            assert tree.idom[g.index_of(child)] == g.index_of(parent)

    def test_n_dominates_e_and_p_dominates_h(self, fig1_graph):
        g = fig1_graph
        tree = circuit_dominator_tree(g)
        assert tree.dominates(g.index_of("n"), g.index_of("e"))
        assert tree.dominates(g.index_of("p"), g.index_of("h"))

    def test_b_dominated_by_e_h(self, fig1_graph):
        """Primary input b is dominated by the set {e, h} (and it is the
        immediate double-vertex dominator, by Theorem 1 unique)."""
        g = fig1_graph
        chain = dominator_chain(g, g.index_of("b"))
        immediate = chain.immediate()
        assert {g.name_of(v) for v in immediate} == {"e", "h"}

    def test_two_immediate_3vertex_dominators_of_b(self, fig1_graph):
        """b has exactly the immediate 3-vertex dominators {e,l,m}, {h,j,k}."""
        g = fig1_graph
        result = immediate_multi_dominators(g, g.index_of("b"), 3)
        names = {
            frozenset(g.name_of(v) for v in dom) for dom in result
        }
        assert names == {
            frozenset(("e", "l", "m")),
            frozenset(("h", "j", "k")),
        }

    def test_j_n_covers_e_to_f_with_j_redundant(self, fig1_graph):
        """All paths from e to f pass {j, n}, but j is redundant because n
        single-dominates e — so {j, n} is NOT a double-vertex dominator."""
        g = fig1_graph
        pairs = all_double_dominators(g, g.index_of("e"))
        assert frozenset((g.index_of("j"), g.index_of("n"))) not in pairs

    def test_immediate_2vertex_dominator_is_unique(self, fig1_graph):
        """Theorem 1 boundary: unique for k=2 even though k=3 gives two."""
        g = fig1_graph
        result = immediate_multi_dominators(g, g.index_of("b"), 2)
        assert len(result) == 1
        assert {g.name_of(v) for v in next(iter(result))} == {"e", "h"}


class TestFigure2:
    def test_all_twelve_pairs(self, fig2_graph):
        """The set of all double-vertex dominators for u, verbatim."""
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        expected = {frozenset(p) for p in FIGURE2_PAIRS}
        assert _pairs_by_name(g, chain) == expected

    def test_chain_structure(self, fig2_graph):
        """D(u) = <{<a,e,h>, <b,c,d,g>}, {<k,m>, <l,n>}> up to side swap."""
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        assert len(chain) == 2
        first = {
            tuple(g.name_of(v) for v in chain.pairs[0].side1),
            tuple(g.name_of(v) for v in chain.pairs[0].side2),
        }
        second = {
            tuple(g.name_of(v) for v in chain.pairs[1].side1),
            tuple(g.name_of(v) for v in chain.pairs[1].side2),
        }
        assert first == {("a", "e", "h"), ("b", "c", "d", "g")}
        assert second == {("k", "m"), ("l", "n")}

    def test_immediate_pair_and_continuation(self, fig2_graph):
        """{a,b} immediate for u; {k,l} immediate common for {h,g};
        {m,n} has no common double-vertex dominator."""
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        assert {g.name_of(v) for v in chain.pairs[0].first} == {"a", "b"}
        assert {g.name_of(v) for v in chain.pairs[0].last} == {"h", "g"}
        assert {g.name_of(v) for v in chain.pairs[1].first} == {"k", "l"}
        assert {g.name_of(v) for v in chain.pairs[1].last} == {"m", "n"}

    def test_published_indices(self, fig2_graph):
        """index(b)=1, index(c)=2, index(l)=5, index(n)=6."""
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        for name, expected in (("b", 1), ("c", 2), ("l", 5), ("n", 6)):
            assert chain.index(g.index_of(name)) == expected

    def test_published_intervals(self, fig2_graph):
        """(min,max): b=(1,1), c=(1,3), d=(1,3), g=(3,3)."""
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        for name, expected in (
            ("b", (1, 1)),
            ("c", (1, 3)),
            ("d", (1, 3)),
            ("g", (3, 3)),
        ):
            assert chain.interval(g.index_of(name)) == expected

    def test_lookup_walkthrough(self, fig2_graph):
        """{d,h} dominates u; {g,a} does not (Section 4 walkthrough).

        The paper's prose says index(h)=2 in the {d,h} example but its own
        chain listing puts h third in <a,e,h> — with index(h)=3 the check
        1 <= 3 <= 3 still succeeds, so the published typo is immaterial.
        """
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        assert chain.index(g.index_of("h")) == 3
        assert chain.dominates(g.index_of("d"), g.index_of("h"))
        assert chain.dominates(g.index_of("h"), g.index_of("d"))
        assert not chain.dominates(g.index_of("g"), g.index_of("a"))
        assert not chain.dominates(g.index_of("a"), g.index_of("g"))

    def test_matching_vectors(self, fig2_graph):
        """W(a) = <b,c,d>; W(d) = <a,e,h> (Section 4 examples)."""
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        assert [
            g.name_of(w) for w in chain.matching_vector(g.index_of("a"))
        ] == ["b", "c", "d"]
        assert [
            g.name_of(w) for w in chain.matching_vector(g.index_of("d"))
        ] == ["a", "e", "h"]

    def test_pair_count_is_twelve(self, fig2_graph):
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        assert chain.num_dominators() == 12
        assert len(list(chain.iter_dominator_pairs())) == 12

    def test_same_flag_pairs_rejected(self, fig2_graph):
        """Step 1 of the lookup: same-side pairs are never dominators."""
        g = fig2_graph
        chain = dominator_chain(g, g.index_of("u"))
        side1 = chain.side(1)
        for i, v in enumerate(side1):
            for w in side1[i + 1 :]:
                assert not chain.dominates(v, w)
