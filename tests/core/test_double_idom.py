"""Tests for DOUBLEIDOM (max-flow immediate pair)."""

import pytest

from repro.circuits.generators import parity_tree, random_single_output
from repro.core import all_double_dominators, double_idom
from repro.core.common import common_chain, immediate_common_dominator
from repro.graph import IndexedGraph


def _graph(circuit):
    return IndexedGraph.from_circuit(circuit, circuit.outputs[0])


class TestFigure2:
    def test_immediate_pair_of_u_within_region(self, fig2_graph):
        """Called as the algorithm calls it: sink = idom(u) = t."""
        g = fig2_graph
        pair = double_idom(g, [g.index_of("u")], sink=g.index_of("t"))
        assert {g.name_of(v) for v in pair} == {"a", "b"}

    def test_single_dominator_in_between_means_no_cut(self, fig2_graph):
        """With the sink at the root, the single dominator t makes the
        min cut size 1 — DOUBLEIDOM must return empty (this is exactly why
        the algorithm partitions into regions first)."""
        g = fig2_graph
        assert double_idom(g, [g.index_of("u")]) is None

    def test_immediate_common_pair_of_h_g(self, fig2_graph):
        """{k,l} is the immediate common double dominator of {h,g}."""
        g = fig2_graph
        pair = immediate_common_dominator(
            g, [g.index_of("h"), g.index_of("g")]
        )
        assert {g.name_of(v) for v in pair} == {"k", "l"}

    def test_no_pair_within_region_beyond_h_g(self, fig2_graph):
        """Inside region 1 (sink t), {h,g} has no further pair: both feed
        t directly, so no interior vertex can cut them."""
        g = fig2_graph
        assert (
            double_idom(
                g,
                [g.index_of("h"), g.index_of("g")],
                sink=g.index_of("t"),
            )
            is None
        )

    def test_no_common_pair_beyond_m_n(self, fig2_graph):
        """{m,n} has no common double-vertex dominator (end of chain)."""
        g = fig2_graph
        assert double_idom(g, [g.index_of("m"), g.index_of("n")]) is None
        assert (
            immediate_common_dominator(g, [g.index_of("m"), g.index_of("n")])
            is None
        )

    def test_region2_immediate_pair(self, fig2_graph):
        """Region 2 entered at t yields {k,l} as its immediate pair."""
        g = fig2_graph
        pair = double_idom(g, [g.index_of("t")])
        assert {g.name_of(v) for v in pair} == {"k", "l"}


class TestGeneral:
    def test_tree_has_no_immediate_pair(self):
        graph = _graph(parity_tree(8))
        for u in graph.sources():
            assert double_idom(graph, [u]) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_returned_pair_is_a_real_dominator(self, seed):
        """Whenever DOUBLEIDOM finds a pair (sink = root, i.e. no single
        dominator intervenes), that pair satisfies Definition 1."""
        graph = _graph(random_single_output(4, 20, seed=seed))
        for u in graph.sources():
            immediate = double_idom(graph, [u])
            if immediate is not None:
                assert frozenset(immediate) in all_double_dominators(
                    graph, u
                )

    @pytest.mark.parametrize("seed", range(8))
    def test_immediate_matches_chain_head(self, seed):
        """DOUBLEIDOM on the first region equals the chain's first pair."""
        from repro.core import dominator_chain
        from repro.dominators import circuit_dominator_tree
        from repro.graph.transform import region_between

        graph = _graph(random_single_output(4, 25, seed=seed + 30))
        tree = circuit_dominator_tree(graph)
        for u in graph.sources():
            chain = dominator_chain(graph, u)
            walk = tree.chain(u)
            first_found = None
            for start, sink in zip(walk, walk[1:]):
                sub, orig_of = region_between(graph, start, sink)
                local = {orig: i for i, orig in enumerate(orig_of)}
                pair = double_idom(sub, [local[start]])
                if pair is not None:
                    first_found = {orig_of[pair[0]], orig_of[pair[1]]}
                    break
            if chain.immediate() is None:
                assert first_found is None
            else:
                assert first_found == set(chain.immediate())
