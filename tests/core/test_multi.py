"""Tests for k-vertex dominators (the Section 3 generalization)."""

import pytest

from repro.circuits.generators import random_single_output
from repro.core import dominator_chain
from repro.core.multi import (
    immediate_multi_dominators,
    is_multi_dominator,
    multi_vertex_dominators,
)
from repro.dominators import circuit_dominator_tree
from repro.graph import IndexedGraph


def _graph(seed, gates=16):
    return IndexedGraph.from_circuit(
        random_single_output(4, gates, seed=seed)
    )


class TestKEqualsOne:
    @pytest.mark.parametrize("seed", range(5))
    def test_k1_equals_strict_dominators(self, seed):
        graph = _graph(seed)
        tree = circuit_dominator_tree(graph)
        for u in graph.sources():
            got = multi_vertex_dominators(graph, u, 1)
            expected = {
                frozenset((d,))
                for d in tree.strict_dominators(u)
                if d != graph.root
            }
            assert got == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_root_excluded_at_every_k(self, seed):
        """The k=1/k=2 boundary: the root is never a dominator member.

        Before the fix, k=1 included the root as a singleton dominator
        while condition 2 filtered it at k>=2, so
        immediate_multi_dominators compared inconsistent universes.
        """
        graph = _graph(seed)
        root = frozenset((graph.root,))
        for u in graph.sources():
            for k in (1, 2):
                for dom in multi_vertex_dominators(graph, u, k):
                    assert graph.root not in dom, (u, k, dom)
            assert root not in multi_vertex_dominators(graph, u, 1)


class TestKEqualsTwo:
    @pytest.mark.parametrize("seed", range(8))
    def test_k2_equals_chain_pairs(self, seed):
        """The generic restriction scheme must agree with the paper's
        specialized chain algorithm at k = 2."""
        graph = _graph(seed)
        for u in graph.sources():
            assert multi_vertex_dominators(graph, u, 2) == dominator_chain(
                graph, u
            ).pair_set()

    @pytest.mark.parametrize("seed", range(5))
    def test_immediate_k2_unique(self, seed):
        """Theorem 1: at most one immediate double-vertex dominator."""
        graph = _graph(seed + 40)
        for u in graph.sources():
            immediates = immediate_multi_dominators(graph, u, 2)
            assert len(immediates) <= 1
            chain = dominator_chain(graph, u)
            if chain.immediate() is not None:
                assert immediates == {frozenset(chain.immediate())}
            else:
                assert immediates == set()


class TestKEqualsThree:
    def test_figure1_immediates(self, fig1_graph):
        g = fig1_graph
        result = immediate_multi_dominators(g, g.index_of("b"), 3)
        names = {frozenset(g.name_of(v) for v in s) for s in result}
        assert names == {
            frozenset(("e", "l", "m")),
            frozenset(("h", "j", "k")),
        }

    def test_k3_members_satisfy_definition(self, fig1_graph):
        g = fig1_graph
        b = g.index_of("b")
        for dom in multi_vertex_dominators(g, b, 3):
            assert is_multi_dominator(g, b, tuple(dom))


class TestDefinitionChecker:
    def test_rejects_root_and_target(self, fig2_graph):
        g = fig2_graph
        u = g.index_of("u")
        a = g.index_of("a")
        assert not is_multi_dominator(g, u, (u, a))
        assert not is_multi_dominator(g, u, (g.root, a))

    def test_rejects_duplicates(self, fig2_graph):
        g = fig2_graph
        assert not is_multi_dominator(
            g, g.index_of("u"), (g.index_of("a"), g.index_of("a"))
        )

    def test_accepts_known_pair(self, fig2_graph):
        g = fig2_graph
        assert is_multi_dominator(
            g, g.index_of("u"), (g.index_of("a"), g.index_of("b"))
        )

    def test_k_must_be_positive(self, fig2_graph):
        with pytest.raises(ValueError):
            multi_vertex_dominators(fig2_graph, 0, 0)
