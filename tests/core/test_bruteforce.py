"""Tests for the Definition-1 brute-force reference itself."""

from repro.core.bruteforce import (
    all_double_dominators,
    all_pi_double_dominators,
    is_double_dominator,
)
from repro.graph import CircuitBuilder, IndexedGraph


def _diamond():
    """u -> {a, b} -> root: the minimal double-dominator circuit."""
    b = CircuitBuilder()
    u = b.input("u")
    left = b.buf(u, name="a")
    right = b.not_(u, name="b")
    b.and_(left, right, name="root")
    return IndexedGraph.from_circuit(b.finish(["root"]))


def test_diamond_pair():
    g = _diamond()
    u, a, bb = g.index_of("u"), g.index_of("a"), g.index_of("b")
    assert is_double_dominator(g, u, a, bb)
    assert all_double_dominators(g, u) == {frozenset((a, bb))}


def test_condition2_redundancy_rejected(fig1_graph):
    """{j, n} covers e but j is redundant (paper's Section 2 example)."""
    g = fig1_graph
    assert not is_double_dominator(
        g, g.index_of("e"), g.index_of("j"), g.index_of("n")
    )


def test_degenerate_arguments():
    g = _diamond()
    u, a = g.index_of("u"), g.index_of("a")
    assert not is_double_dominator(g, u, u, a)  # target inside the pair
    assert not is_double_dominator(g, u, a, a)  # not a pair
    assert not is_double_dominator(g, u, a, g.root)  # root can't be in one


def test_chain_without_reconvergence_has_no_pairs():
    b = CircuitBuilder()
    u = b.input("u")
    x = b.not_(u)
    y = b.buf(x)
    z = b.not_(y, name="out")
    g = IndexedGraph.from_circuit(b.finish([z]))
    assert all_double_dominators(g, g.index_of("u")) == set()


def test_pi_union(fig2_graph):
    """Figure 2 has a single PI, so the union equals D(u)."""
    union = all_pi_double_dominators(fig2_graph)
    assert len(union) == 12


def test_candidates_restriction():
    g = _diamond()
    u, a = g.index_of("u"), g.index_of("a")
    assert all_double_dominators(g, u, candidates=[a]) == set()
