"""Tests for sequential netlists: flip-flop cutting and unrolling."""

import pytest

from repro.core import count_double_dominators
from repro.errors import ParseError
from repro.graph import extract_combinational_core, unrolled
from repro.graph.sequential import PSEUDO_OUTPUT_PREFIX
from repro.parsers import bench

#: A tiny toggle/accumulator machine in ISCAS-89 style.
S_SAMPLE = """
INPUT(en)
INPUT(d)
OUTPUT(q_out)
q = DFF(nq)
nq = XOR(q_and, d)
q_and = AND(q, en)
q_out = NOT(q)
"""


@pytest.fixture
def seq():
    return bench.loads_sequential(S_SAMPLE, name="toggle")


class TestParsing:
    def test_flop_recorded(self, seq):
        assert seq.flops == {"q": "nq"}
        assert seq.num_state_bits == 1
        assert seq.primary_inputs == ["en", "d"]
        assert seq.primary_outputs == ["q_out"]

    def test_flop_output_is_pseudo_input(self, seq):
        assert "q" in seq.combinational.inputs

    def test_combinational_loader_rejects_dff(self):
        with pytest.raises(ParseError):
            bench.loads(S_SAMPLE)

    def test_multi_input_dff_rejected(self):
        bad = "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n"
        with pytest.raises(ParseError):
            bench.loads_sequential(bad)

    def test_file_loader(self, tmp_path):
        path = tmp_path / "toggle.bench"
        path.write_text(S_SAMPLE)
        seq = bench.load_sequential(path)
        assert seq.name == "toggle"


class TestCore:
    def test_core_interface(self, seq):
        core = extract_combinational_core(seq)
        assert set(core.inputs) == {"en", "d", "q"}
        assert core.outputs == ["q_out", PSEUDO_OUTPUT_PREFIX + "q"]
        core.validate()

    def test_dominators_run_on_core(self, seq):
        core = extract_combinational_core(seq)
        # Just exercise the full pipeline on the cut netlist.
        assert count_double_dominators(core) >= 0


class TestUnroll:
    def test_two_frames_interface(self, seq):
        two = unrolled(seq, frames=2)
        # Inputs: initial state + (en, d) per frame.
        assert len(two.inputs) == 1 + 2 * 2
        # Outputs: q_out per frame + final next-state.
        assert len(two.outputs) == 2 + 1
        two.validate()

    def test_state_chains_between_frames(self, seq):
        two = unrolled(seq, frames=2)
        # Frame 1's XOR must read frame 0's next-state net.
        assert "nq@0" in two.node("nq@1").fanins or "nq@0" in {
            f for f in two.node("q_and@1").fanins
        }

    def test_unroll_semantics(self, seq):
        """Simulate 3 frames: q toggles per the next-state function."""
        from repro.analysis import evaluate

        three = unrolled(seq, frames=3)
        env = {name: 0 for name in three.inputs}
        env["ppi_q@0"] = 0
        for t in range(3):
            env[f"en@{t}"] = 1
            env[f"d@{t}"] = 1
        vals = evaluate(three, env)
        # state: q0=0 -> nq0 = (0 and 1) xor 1 = 1 -> q1=1
        # nq1 = (1 and 1) xor 1 = 0 -> q2=0; nq2 = (0 and 1) xor 1 = 1
        assert vals["nq@0"] == 1
        assert vals["nq@1"] == 0
        assert vals["nq@2"] == 1
        assert vals["q_out@0"] == 1  # not(q0)=1
        assert vals["q_out@1"] == 0
        assert vals["q_out@2"] == 1

    def test_zero_frames_rejected(self, seq):
        with pytest.raises(ValueError):
            unrolled(seq, frames=0)


#: Regression suite for the flop-to-flop unroller bug: frame t used to
#: emit the literal net ``<data_in>@{t-1}`` for a flop-output input,
#: which never exists when the data input is itself an INPUT node of the
#: core (another flop's output, or a primary input latched directly).
S_SHIFT = """
INPUT(d)
OUTPUT(o)
a = DFF(d_buf)
b = DFF(a)
o = NOT(b)
d_buf = AND(d, d)
"""

S_LATCH_PI = """
INPUT(d)
OUTPUT(o)
q = DFF(d)
o = NOT(q)
"""

S_SELF_LOOP = """
INPUT(d)
OUTPUT(o)
q = DFF(q)
o = AND(q, d)
"""


class TestUnrollFlopChains:
    def _simulate(self, seq, frames, stimuli, init=0):
        """Reference simulation of the sequential machine itself."""
        from repro.analysis import evaluate

        core = extract_combinational_core(seq)
        state = {q: init for q in seq.flops}
        history = []
        for env_t in stimuli:
            env = dict(env_t)
            env.update(state)
            vals = evaluate(core, env)
            history.append({po: vals[po] for po in seq.primary_outputs})
            state = {q: vals[d] for q, d in seq.flops.items()}
        return history, state

    def test_shift_register_unrolls(self):
        seq = bench.loads_sequential(S_SHIFT, name="shift2")
        two = unrolled(seq, frames=2)
        two.validate()
        # Frame 1's flop 'b' reads frame 0's 'a', i.e. the initial state
        # input ppi_a@0 — not a nonexistent 'a@0' net.
        assert "ppi_a@0" in two.node("o@1").fanins or "ppi_a@0" in {
            f for n in two.nodes() for f in n.fanins
        }

    @pytest.mark.parametrize("frames", [2, 3, 4])
    def test_shift_register_semantics(self, frames):
        from repro.analysis import evaluate

        seq = bench.loads_sequential(S_SHIFT, name="shift2")
        uroll = unrolled(seq, frames=frames)
        stim = [{"d": t % 2} for t in range(frames)]
        history, _ = self._simulate(seq, frames, stim)
        env = {name: 0 for name in uroll.inputs}
        for t, env_t in enumerate(stim):
            env[f"d@{t}"] = env_t["d"]
        vals = evaluate(uroll, env)
        for t in range(frames):
            assert vals[f"o@{t}"] == history[t]["o"], f"frame {t}"

    def test_flop_latching_pi(self):
        from repro.analysis import evaluate

        seq = bench.loads_sequential(S_LATCH_PI, name="latch_pi")
        three = unrolled(seq, frames=3)
        three.validate()
        env = {name: 0 for name in three.inputs}
        env["d@0"], env["d@1"], env["d@2"] = 1, 0, 1
        vals = evaluate(three, env)
        # o@t = NOT(q@t) = NOT(d@{t-1}); q@0 is the initial state (0).
        assert vals["o@0"] == 1
        assert vals["o@1"] == 0
        assert vals["o@2"] == 1
        # Final next-state output is frame 2's view of d.
        assert "d@2" in three.outputs

    def test_self_loop_flop(self):
        from repro.analysis import evaluate

        seq = bench.loads_sequential(S_SELF_LOOP, name="hold")
        four = unrolled(seq, frames=4)
        four.validate()
        # Q feeds its own D: every frame's state resolves to ppi_q@0.
        env = {name: 0 for name in four.inputs}
        env["ppi_q@0"] = 1
        for t in range(4):
            env[f"d@{t}"] = 1
        vals = evaluate(four, env)
        for t in range(4):
            assert vals[f"o@{t}"] == 1
        # The held state is also the final next-state observable.
        assert "ppi_q@0" in four.outputs

    def test_flop_reading_undefined_net_rejected(self):
        from repro.errors import CircuitError
        from repro.graph import Circuit, SequentialCircuit
        from repro.graph.node import NodeType

        comb = Circuit("bad")
        comb.add_input("q")
        comb.add_gate("o", NodeType.NOT, ["q"])
        comb.set_outputs(["o"])
        seq = SequentialCircuit(
            name="bad",
            combinational=comb,
            flops={"q": "missing"},
            primary_inputs=[],
            primary_outputs=["o"],
        )
        with pytest.raises(CircuitError):
            unrolled(seq, frames=2)
