"""Tests for sequential netlists: flip-flop cutting and unrolling."""

import pytest

from repro.core import count_double_dominators
from repro.errors import ParseError
from repro.graph import extract_combinational_core, unrolled
from repro.graph.sequential import PSEUDO_OUTPUT_PREFIX
from repro.parsers import bench

#: A tiny toggle/accumulator machine in ISCAS-89 style.
S_SAMPLE = """
INPUT(en)
INPUT(d)
OUTPUT(q_out)
q = DFF(nq)
nq = XOR(q_and, d)
q_and = AND(q, en)
q_out = NOT(q)
"""


@pytest.fixture
def seq():
    return bench.loads_sequential(S_SAMPLE, name="toggle")


class TestParsing:
    def test_flop_recorded(self, seq):
        assert seq.flops == {"q": "nq"}
        assert seq.num_state_bits == 1
        assert seq.primary_inputs == ["en", "d"]
        assert seq.primary_outputs == ["q_out"]

    def test_flop_output_is_pseudo_input(self, seq):
        assert "q" in seq.combinational.inputs

    def test_combinational_loader_rejects_dff(self):
        with pytest.raises(ParseError):
            bench.loads(S_SAMPLE)

    def test_multi_input_dff_rejected(self):
        bad = "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n"
        with pytest.raises(ParseError):
            bench.loads_sequential(bad)

    def test_file_loader(self, tmp_path):
        path = tmp_path / "toggle.bench"
        path.write_text(S_SAMPLE)
        seq = bench.load_sequential(path)
        assert seq.name == "toggle"


class TestCore:
    def test_core_interface(self, seq):
        core = extract_combinational_core(seq)
        assert set(core.inputs) == {"en", "d", "q"}
        assert core.outputs == ["q_out", PSEUDO_OUTPUT_PREFIX + "q"]
        core.validate()

    def test_dominators_run_on_core(self, seq):
        core = extract_combinational_core(seq)
        # Just exercise the full pipeline on the cut netlist.
        assert count_double_dominators(core) >= 0


class TestUnroll:
    def test_two_frames_interface(self, seq):
        two = unrolled(seq, frames=2)
        # Inputs: initial state + (en, d) per frame.
        assert len(two.inputs) == 1 + 2 * 2
        # Outputs: q_out per frame + final next-state.
        assert len(two.outputs) == 2 + 1
        two.validate()

    def test_state_chains_between_frames(self, seq):
        two = unrolled(seq, frames=2)
        # Frame 1's XOR must read frame 0's next-state net.
        assert "nq@0" in two.node("nq@1").fanins or "nq@0" in {
            f for f in two.node("q_and@1").fanins
        }

    def test_unroll_semantics(self, seq):
        """Simulate 3 frames: q toggles per the next-state function."""
        from repro.analysis import evaluate

        three = unrolled(seq, frames=3)
        env = {name: 0 for name in three.inputs}
        env["ppi_q@0"] = 0
        for t in range(3):
            env[f"en@{t}"] = 1
            env[f"d@{t}"] = 1
        vals = evaluate(three, env)
        # state: q0=0 -> nq0 = (0 and 1) xor 1 = 1 -> q1=1
        # nq1 = (1 and 1) xor 1 = 0 -> q2=0; nq2 = (0 and 1) xor 1 = 1
        assert vals["nq@0"] == 1
        assert vals["nq@1"] == 0
        assert vals["nq@2"] == 1
        assert vals["q_out@0"] == 1  # not(q0)=1
        assert vals["q_out@1"] == 0
        assert vals["q_out@2"] == 1

    def test_zero_frames_rejected(self, seq):
        with pytest.raises(ValueError):
            unrolled(seq, frames=0)
