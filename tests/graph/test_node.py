"""Tests for gate types and evaluation."""

import pytest

from repro.graph.node import (
    MAX_FANIN,
    MIN_FANIN,
    NodeType,
    evaluate_gate,
    parse_node_type,
)


class TestEvaluate:
    @pytest.mark.parametrize(
        "gate,bits,expected",
        [
            (NodeType.AND, (1, 1, 1), 1),
            (NodeType.AND, (1, 0, 1), 0),
            (NodeType.NAND, (1, 1), 0),
            (NodeType.NAND, (0, 1), 1),
            (NodeType.OR, (0, 0), 0),
            (NodeType.OR, (0, 1), 1),
            (NodeType.NOR, (0, 0), 1),
            (NodeType.XOR, (1, 1, 1), 1),
            (NodeType.XOR, (1, 1), 0),
            (NodeType.XNOR, (1, 0), 0),
            (NodeType.XNOR, (1, 1), 1),
            (NodeType.NOT, (1,), 0),
            (NodeType.BUF, (1,), 1),
            (NodeType.MUX, (0, 1, 0), 1),  # sel=0 -> a
            (NodeType.MUX, (1, 1, 0), 0),  # sel=1 -> b
            (NodeType.CONST0, (), 0),
            (NodeType.CONST1, (), 1),
        ],
    )
    def test_truth_tables(self, gate, bits, expected):
        assert evaluate_gate(gate, bits) == expected

    def test_input_has_no_function(self):
        with pytest.raises(ValueError):
            evaluate_gate(NodeType.INPUT, ())

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            evaluate_gate(NodeType.NOT, (1, 0))
        with pytest.raises(ValueError):
            evaluate_gate(NodeType.MUX, (1, 0))

    def test_fanin_tables_cover_all_types(self):
        assert set(MIN_FANIN) == set(NodeType)
        assert set(MAX_FANIN) == set(NodeType)


class TestParse:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("AND", NodeType.AND),
            ("nand", NodeType.NAND),
            ("Not", NodeType.NOT),
            ("INV", NodeType.NOT),
            ("BUFF", NodeType.BUF),
            ("vdd", NodeType.CONST1),
            ("gnd", NodeType.CONST0),
        ],
    )
    def test_aliases(self, token, expected):
        assert parse_node_type(token) is expected

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_node_type("flipflop")


class TestTypePredicates:
    def test_predicates(self):
        assert NodeType.INPUT.is_input
        assert NodeType.CONST1.is_constant
        assert NodeType.AND.is_gate
        assert not NodeType.INPUT.is_gate
        assert not NodeType.CONST0.is_gate
