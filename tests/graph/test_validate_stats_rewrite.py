"""Tests for validation helpers, statistics and structural rewrites."""

import itertools

import pytest

from repro.analysis import evaluate
from repro.circuits.generators import parity_tree, random_single_output
from repro.errors import CircuitError
from repro.graph import (
    CircuitBuilder,
    IndexedGraph,
    assert_well_formed,
    check_cone,
    check_no_dangling,
    circuit_stats,
    reconvergent_fraction,
)
from repro.graph.rewrite import expand_xors, gate_type_histogram
from repro.graph.node import NodeType


class TestValidate:
    def test_check_cone_accepts_cone(self, fig2_graph):
        check_cone(fig2_graph)

    def test_check_cone_rejects_stranded(self, fig2_graph):
        g = fig2_graph
        aug = g.with_fake_source([g.index_of("u")])
        # A second fake vertex with no fanout cannot reach the root.
        from repro.graph import IndexedGraph as IG

        succ = [list(adj) for adj in aug.succ] + [[]]
        bad = IG(succ, root=aug.root, names=list(aug.names) + ["stray"])
        with pytest.raises(CircuitError):
            check_cone(bad)

    def test_dangling_detection(self):
        b = CircuitBuilder()
        a = b.input("a")
        b.not_(a, name="dead")
        keep = b.buf(a, name="out")
        circuit = b.circuit
        circuit.set_outputs([keep])
        assert check_no_dangling(circuit) == ["dead"]
        with pytest.raises(CircuitError):
            assert_well_formed(circuit)

    def test_no_outputs_rejected(self):
        b = CircuitBuilder()
        b.input("a")
        with pytest.raises(CircuitError):
            assert_well_formed(b.circuit)


class TestStats:
    def test_tree_has_zero_reconvergence(self):
        assert reconvergent_fraction(parity_tree(16)) == 0.0

    def test_stats_fields(self, fig2):
        st = circuit_stats(fig2)
        assert st.num_inputs == 1
        assert st.num_outputs == 1
        assert st.num_gates == 13
        assert st.max_depth == 8
        assert st.max_fanout == 2
        assert 0 < st.reconvergent_fraction < 1
        assert st.as_dict()["name"] == "figure2"


class TestExpandXors:
    def test_function_preserved(self):
        circuit = random_single_output(4, 15, seed=2)
        expanded = expand_xors(circuit)
        hist = gate_type_histogram(expanded)
        assert NodeType.XOR not in hist
        assert NodeType.XNOR not in hist
        for bits in itertools.product((0, 1), repeat=len(circuit.inputs)):
            env = dict(zip(circuit.inputs, bits))
            out = circuit.outputs[0]
            assert evaluate(circuit, env)[out] == evaluate(expanded, env)[out]

    def test_wide_xor(self):
        b = CircuitBuilder()
        xs = b.inputs("a", "b", "c")
        out = b.gate(NodeType.XOR, xs, name="out")
        circuit = b.finish([out])
        expanded = expand_xors(circuit)
        for bits in itertools.product((0, 1), repeat=3):
            env = dict(zip(["a", "b", "c"], bits))
            assert (
                evaluate(expanded, env)["out"]
                == evaluate(circuit, env)["out"]
            )

    def test_xnor_and_unary(self):
        b = CircuitBuilder()
        a, bb = b.inputs("a", "b")
        x = b.xnor(a, bb, name="x")
        circuit = b.finish([x])
        expanded = expand_xors(circuit)
        for bits in itertools.product((0, 1), repeat=2):
            env = dict(zip(["a", "b"], bits))
            assert (
                evaluate(expanded, env)["x"] == evaluate(circuit, env)["x"]
            )

    def test_reconvergence_increases(self):
        """The NAND expansion adds re-converging diamonds (C499→C1355)."""
        b = CircuitBuilder()
        xs = b.input_bus("x", 8)
        out = b.xor_tree(xs, name="p")
        circuit = b.finish([out])
        expanded = expand_xors(circuit)
        assert reconvergent_fraction(expanded) > reconvergent_fraction(
            circuit
        )
