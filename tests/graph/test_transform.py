"""Tests for graph restrictions (transform module)."""

import pytest

from repro.errors import CircuitError
from repro.graph import IndexedGraph
from repro.graph.transform import (
    merge_sources,
    region_between,
    remove_vertex,
    remove_vertices,
    reversed_graph,
)


class TestRemoveVertex:
    def test_prunes_dead_branches(self, fig2_graph):
        """Removing d also prunes c (its only path to the root runs
        through d)."""
        g = fig2_graph
        sub, orig_of = remove_vertex(g, g.index_of("d"))
        names = {sub.name_of(i) for i in range(sub.n)}
        assert "d" not in names
        assert "c" not in names
        assert "b" not in names  # b -> c -> d only
        assert "a" in names and "e" in names

    def test_root_removal_rejected(self, fig2_graph):
        with pytest.raises(CircuitError):
            remove_vertex(fig2_graph, fig2_graph.root)

    def test_mapping_consistent(self, fig2_graph):
        g = fig2_graph
        sub, orig_of = remove_vertex(g, g.index_of("a"))
        for i, orig in enumerate(orig_of):
            assert sub.name_of(i) == g.name_of(orig)


class TestRemoveVertices:
    def test_removing_pair_disconnects(self, fig2_graph):
        g = fig2_graph
        sub, orig_of = remove_vertices(
            g, [g.index_of("a"), g.index_of("b")]
        )
        names = {sub.name_of(i) for i in range(sub.n)}
        assert "u" not in names  # fully cut off from the root
        assert "t" in names

    def test_empty_removal_keeps_coreachable(self, fig2_graph):
        g = fig2_graph
        sub, orig_of = remove_vertices(g, [])
        assert sub.n == g.n  # every Figure-2 vertex co-reaches f


class TestRegionBetween:
    def test_region_bounds(self, fig2_graph):
        g = fig2_graph
        sub, orig_of = region_between(g, g.index_of("t"), g.index_of("f"))
        names = {sub.name_of(i) for i in range(sub.n)}
        assert names == {"t", "k", "l", "m", "n", "f"}
        assert sub.name_of(sub.root) == "f"

    def test_unreachable_sink_rejected(self, fig2_graph):
        g = fig2_graph
        with pytest.raises(CircuitError):
            region_between(g, g.index_of("k"), g.index_of("l"))


class TestOther:
    def test_merge_sources_empty_rejected(self, fig2_graph):
        with pytest.raises(CircuitError):
            merge_sources(fig2_graph, [])

    def test_reversed_graph(self, fig2_graph):
        g = fig2_graph
        rev = reversed_graph(g)
        for v in range(g.n):
            assert sorted(rev.succ[v]) == sorted(g.pred[v])
            assert sorted(rev.pred[v]) == sorted(g.succ[v])
