"""Tests for the IndexedGraph view."""

import pytest

from repro.errors import CircuitError, UnknownNodeError
from repro.graph import Circuit, CircuitBuilder, IndexedGraph, NodeType


def _two_output_circuit():
    b = CircuitBuilder()
    a, bb, c = b.inputs("a", "b", "c")
    x = b.and_(a, bb, name="x")
    y = b.or_(bb, c, name="y")
    return b.finish([x, y])


class TestConeExtraction:
    def test_cone_restricts_to_fanin(self):
        circuit = _two_output_circuit()
        cone = IndexedGraph.from_circuit(circuit, "x")
        assert sorted(n for n in cone.names) == ["a", "b", "x"]
        assert cone.name_of(cone.root) == "x"

    def test_single_output_inferred(self, fig2):
        g = IndexedGraph.from_circuit(fig2)
        assert g.name_of(g.root) == "f"

    def test_multi_output_requires_choice(self):
        with pytest.raises(CircuitError):
            IndexedGraph.from_circuit(_two_output_circuit())

    def test_unknown_output(self):
        with pytest.raises(UnknownNodeError):
            IndexedGraph.from_circuit(_two_output_circuit(), "ghost")

    def test_edges_in_signal_direction(self, fig2_graph):
        g = fig2_graph
        u, a = g.index_of("u"), g.index_of("a")
        assert a in g.succ[u]
        assert u in g.pred[a]

    def test_sources_are_cone_inputs(self):
        cone = IndexedGraph.from_circuit(_two_output_circuit(), "y")
        assert {cone.name_of(s) for s in cone.sources()} == {"b", "c"}


class TestTraversal:
    def test_reachable_from(self, fig2_graph):
        g = fig2_graph
        reach = g.reachable_from(g.index_of("k"))
        names = {g.name_of(v) for v in range(g.n) if reach[v]}
        assert names == {"k", "m", "f"}

    def test_reachable_with_exclusion(self, fig2_graph):
        g = fig2_graph
        reach = g.reachable_from(g.index_of("u"), exclude=g.index_of("a"))
        assert not reach[g.index_of("e")]
        assert reach[g.index_of("c")]  # via b

    def test_exclude_start_is_empty(self, fig2_graph):
        g = fig2_graph
        u = g.index_of("u")
        assert not any(g.reachable_from(u, exclude=u))

    def test_coreachable_to(self, fig2_graph):
        g = fig2_graph
        co = g.coreachable_to(g.index_of("t"))
        names = {g.name_of(v) for v in range(g.n) if co[v]}
        assert names == {"u", "a", "b", "c", "d", "e", "g", "h", "t"}

    def test_topological_order(self, fig2_graph):
        g = fig2_graph
        pos = {v: i for i, v in enumerate(g.topological_order())}
        for v in range(g.n):
            for w in g.succ[v]:
                assert pos[v] < pos[w]


class TestDerivedGraphs:
    def test_subgraph_mapping(self, fig2_graph):
        g = fig2_graph
        keep = g.coreachable_to(g.index_of("t"))
        sub, orig_of = g.subgraph(keep, g.index_of("t"))
        assert sub.n == sum(keep)
        for i, orig in enumerate(orig_of):
            assert sub.name_of(i) == g.name_of(orig)

    def test_subgraph_requires_kept_root(self, fig2_graph):
        g = fig2_graph
        keep = [False] * g.n
        with pytest.raises(CircuitError):
            g.subgraph(keep, g.root)

    def test_fake_source(self, fig2_graph):
        g = fig2_graph
        targets = [g.index_of("k"), g.index_of("l")]
        aug = g.with_fake_source(targets)
        assert aug.n == g.n + 1
        assert sorted(aug.succ[g.n]) == sorted(targets)
        assert aug.names[g.n] is None
        assert aug.name_of(g.n) == f"#{g.n}"

    def test_name_lookup(self, fig2_graph):
        g = fig2_graph
        assert g.name_of(g.index_of("d")) == "d"
        with pytest.raises(UnknownNodeError):
            g.index_of("ghost")

    def test_edge_count(self, fig2_graph):
        g = fig2_graph
        assert g.edge_count() == sum(len(p) for p in g.pred)
