"""Tests for the fluent CircuitBuilder."""

import pytest

from repro.graph import CircuitBuilder, NodeType


class TestGateHelpers:
    def test_named_gates(self):
        b = CircuitBuilder("t")
        a, bb = b.inputs("a", "b")
        s = b.xor(a, bb, name="s")
        c = b.finish([s])
        assert c.node("s").type is NodeType.XOR
        assert c.node("s").fanins == ("a", "b")

    def test_auto_names_unique(self):
        b = CircuitBuilder()
        a = b.input()
        names = {b.not_(a) for _ in range(20)}
        assert len(names) == 20

    def test_degenerate_nary_passthrough(self):
        b = CircuitBuilder()
        a = b.input("a")
        assert b.and_(a) == "a"  # unary AND is the wire itself
        assert b.or_(a) == "a"
        assert b.xor(a) == "a"

    def test_mux(self):
        b = CircuitBuilder()
        s, x, y = b.inputs("s", "x", "y")
        m = b.mux(s, x, y, name="m")
        c = b.finish([m])
        assert c.node("m").fanins == ("s", "x", "y")

    def test_input_bus(self):
        b = CircuitBuilder()
        bus = b.input_bus("d", 4)
        assert bus == ["d0", "d1", "d2", "d3"]

    def test_constant(self):
        b = CircuitBuilder()
        one = b.constant(1)
        x = b.input("x")
        c = b.finish([b.and_(one, x, name="y")])
        assert c.node(one).type is NodeType.CONST1


class TestTrees:
    def test_balanced_tree_depth(self):
        b = CircuitBuilder()
        xs = b.input_bus("x", 8)
        out = b.and_tree(xs, name="out")
        c = b.finish([out])
        # 8 leaves with arity 2 -> 7 internal AND gates.
        assert c.gate_count() == 7

    def test_tree_with_single_signal_and_name(self):
        b = CircuitBuilder()
        x = b.input("x")
        out = b.xor_tree([x], name="out")
        c = b.finish([out])
        assert c.node("out").type is NodeType.BUF

    def test_tree_rejects_empty(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.or_tree([])

    def test_wide_arity_tree(self):
        b = CircuitBuilder()
        xs = b.input_bus("x", 9)
        out = b.tree(NodeType.OR, xs, arity=3, name="out")
        c = b.finish([out])
        assert c.gate_count() == 4  # 3 + 1

    def test_finish_validates(self):
        b = CircuitBuilder()
        x = b.input("x")
        circuit = b.finish([x])
        assert circuit.outputs == ["x"]
