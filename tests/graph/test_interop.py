"""Tests for networkx interoperability."""

import networkx as nx
import pytest

from repro.circuits.generators import random_circuit
from repro.errors import CircuitError
from repro.graph import (
    IndexedGraph,
    circuit_from_networkx,
    circuit_to_networkx,
    indexed_to_networkx,
)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_circuit_roundtrip(self, seed):
        original = random_circuit(4, 20, num_outputs=2, seed=seed)
        graph = circuit_to_networkx(original)
        restored = circuit_from_networkx(graph)
        assert set(restored.inputs) == set(original.inputs)
        assert set(restored.outputs) == set(original.outputs)
        for node in original.nodes():
            other = restored.node(node.name)
            assert other.type is node.type
            assert other.fanins == node.fanins  # position attr preserved

    def test_mux_operand_order_preserved(self):
        from repro.graph import CircuitBuilder

        b = CircuitBuilder()
        s, x, y = b.inputs("s", "x", "y")
        b.mux(s, x, y, name="m")
        circuit = b.finish(["m"])
        restored = circuit_from_networkx(circuit_to_networkx(circuit))
        assert restored.node("m").fanins == ("s", "x", "y")

    def test_cycle_rejected(self):
        graph = nx.DiGraph()
        graph.add_node("a", type="and")
        graph.add_node("b", type="and")
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        with pytest.raises(CircuitError):
            circuit_from_networkx(graph)

    def test_outputs_inferred_from_sinks(self):
        graph = nx.DiGraph()
        graph.add_node("a", type="input")
        graph.add_node("x", type="not")
        graph.add_edge("a", "x")
        circuit = circuit_from_networkx(graph)
        assert circuit.outputs == ["x"]


class TestIndexedExport:
    def test_indexed_to_networkx(self, fig2_graph):
        graph = indexed_to_networkx(fig2_graph)
        assert graph.number_of_nodes() == fig2_graph.n
        assert graph.nodes["f"]["is_root"]
        assert graph.has_edge("u", "a")

    def test_dominators_match_networkx_idoms(self, fig2_graph):
        """Cross-validate Lengauer–Tarjan against networkx's
        immediate_dominators on the reversed graph."""
        from repro.dominators import circuit_idoms

        g = indexed_to_networkx(fig2_graph).reverse()
        nx_idoms = nx.immediate_dominators(g, "f")
        ours = circuit_idoms(fig2_graph)
        for v in range(fig2_graph.n):
            name = fig2_graph.name_of(v)
            if name == "f":
                continue
            assert fig2_graph.name_of(ours[v]) == nx_idoms[name]
