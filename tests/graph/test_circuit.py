"""Tests for the Circuit netlist model."""

import pytest

from repro.errors import (
    CircuitError,
    DuplicateNodeError,
    NotADagError,
    UnknownNodeError,
)
from repro.graph import Circuit, NodeType


def _half_adder():
    c = Circuit("ha")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("s", NodeType.XOR, ["a", "b"])
    c.add_gate("co", NodeType.AND, ["a", "b"])
    c.set_outputs(["s", "co"])
    return c


class TestConstruction:
    def test_basic(self):
        c = _half_adder()
        c.validate()
        assert len(c) == 4
        assert c.gate_count() == 2
        assert c.inputs == ["a", "b"]
        assert c.outputs == ["s", "co"]

    def test_duplicate_name_rejected(self):
        c = _half_adder()
        with pytest.raises(DuplicateNodeError):
            c.add_input("a")
        with pytest.raises(DuplicateNodeError):
            c.add_gate("s", NodeType.OR, ["a"])

    def test_input_via_add_gate_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.add_gate("x", NodeType.INPUT, [])

    def test_bad_arity_rejected(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        with pytest.raises(CircuitError):
            c.add_gate("n", NodeType.NOT, ["a", "b"])
        with pytest.raises(CircuitError):
            c.add_gate("m", NodeType.MUX, ["a", "b"])

    def test_undefined_fanin_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", NodeType.AND, ["a", "ghost"])
        c.set_outputs(["g"])
        with pytest.raises(UnknownNodeError):
            c.validate()

    def test_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", NodeType.AND, ["a", "y"])
        c.add_gate("y", NodeType.OR, ["x", "a"])
        c.set_outputs(["y"])
        with pytest.raises(NotADagError):
            c.topological_order()

    def test_undefined_output_detected(self):
        c = Circuit()
        c.add_input("a")
        c.set_outputs(["nope"])
        with pytest.raises(UnknownNodeError):
            c.validate()

    def test_constants(self):
        c = Circuit()
        c.add_constant("one", 1)
        c.add_constant("zero", 0)
        assert c.node("one").type is NodeType.CONST1
        assert c.node("zero").type is NodeType.CONST0


class TestDerived:
    def test_fanouts(self):
        c = _half_adder()
        assert sorted(c.fanouts("a")) == ["co", "s"]
        assert c.fanout_degree("a") == 2
        assert c.fanouts("s") == []

    def test_topological_order(self):
        c = _half_adder()
        order = c.topological_order()
        assert order.index("a") < order.index("s")
        assert order.index("b") < order.index("co")
        assert len(order) == 4

    def test_mutation_invalidates_caches(self):
        c = _half_adder()
        assert c.fanout_degree("a") == 2
        c.add_gate("extra", NodeType.NOT, ["a"])
        c.add_output("extra")
        assert c.fanout_degree("a") == 3
        assert "extra" in c.topological_order()

    def test_outputs_deduplicated_in_order(self):
        c = _half_adder()
        c.set_outputs(["co", "s", "co"])
        assert c.outputs == ["co", "s"]

    def test_copy_is_independent(self):
        c = _half_adder()
        dup = c.copy("ha2")
        dup.add_input("extra")
        assert "extra" in dup
        assert "extra" not in c
        assert dup.name == "ha2"

    def test_unknown_lookup(self):
        c = _half_adder()
        with pytest.raises(UnknownNodeError):
            c.node("ghost")
        assert "ghost" not in c
        assert "a" in c

    def test_iteration(self):
        c = _half_adder()
        assert sorted(c) == ["a", "b", "co", "s"]
        assert len(list(c.nodes())) == 4
