"""Tests for topological metrics and name-level traversals."""

import pytest

from repro.graph import (
    CircuitBuilder,
    IndexedGraph,
    cone_inputs,
    dead_nodes,
    depth,
    levels_from_inputs,
    longest_path_to_root,
    output_cone,
    shortest_path_to_root,
    strip_dead_nodes,
    transitive_fanin,
    transitive_fanout,
)


class TestTopo:
    def test_levels(self, fig2_graph):
        g = fig2_graph
        levels = levels_from_inputs(g)
        assert levels[g.index_of("u")] == 0
        assert levels[g.index_of("a")] == 1
        assert levels[g.index_of("c")] == 2
        # t is reached via the longest path u-b-c-d-g-t or u-a-c-d-h-t.
        assert levels[g.index_of("t")] == 5

    def test_longest_path_to_root(self, fig2_graph):
        g = fig2_graph
        dist = longest_path_to_root(g)
        assert dist[g.root] == 0
        assert dist[g.index_of("u")] == 8  # u-a-c-d-h-t-k-m-f
        assert dist[g.index_of("m")] == 1

    def test_shortest_path_to_root(self, fig2_graph):
        g = fig2_graph
        dist = shortest_path_to_root(g)
        assert dist[g.index_of("u")] == 7  # u-a-e-h-t-k-m-f
        assert dist[g.index_of("t")] == 3

    def test_depth(self, fig2_graph):
        assert depth(fig2_graph) == levels_from_inputs(fig2_graph)[
            fig2_graph.root
        ]


class TestTraverse:
    def _circuit(self):
        b = CircuitBuilder()
        a, bb, c = b.inputs("a", "b", "c")
        x = b.and_(a, bb, name="x")
        y = b.or_(x, c, name="y")
        b.not_(c, name="dangling")
        circuit = b.circuit
        circuit.set_outputs(["y"])
        return circuit

    def test_transitive_fanin(self):
        c = self._circuit()
        assert transitive_fanin(c, "y") == {"x", "a", "b", "c"}
        assert transitive_fanin(c, "a") == set()

    def test_transitive_fanout(self):
        c = self._circuit()
        assert transitive_fanout(c, "a") == {"x", "y"}
        assert transitive_fanout(c, "c") == {"y", "dangling"}

    def test_output_cone_and_inputs(self):
        c = self._circuit()
        assert output_cone(c, "y") == {"y", "x", "a", "b", "c"}
        assert cone_inputs(c, "y") == ["a", "b", "c"]

    def test_dead_nodes_and_strip(self):
        c = self._circuit()
        assert dead_nodes(c) == {"dangling"}
        stripped = strip_dead_nodes(c)
        assert "dangling" not in stripped
        assert set(stripped.inputs) == {"a", "b", "c"}
        stripped.validate()
