"""In-place IndexedGraph edits (the incremental-engine substrate)."""

import pytest

from repro.circuits.figures import figure2_circuit
from repro.errors import CircuitError, UnknownNodeError
from repro.graph import IndexedGraph


@pytest.fixture
def graph():
    return IndexedGraph.from_circuit(figure2_circuit())


class TestAddVertex:
    def test_fresh_index_and_name(self, graph):
        n_before = graph.n
        v = graph.add_vertex("fresh")
        assert v == n_before
        assert graph.n == n_before + 1
        assert graph.index_of("fresh") == v
        assert graph.succ[v] == [] and graph.pred[v] == []

    def test_duplicate_name_rejected(self, graph):
        with pytest.raises(CircuitError):
            graph.add_vertex("u")

    def test_unnamed_vertex(self, graph):
        v = graph.add_vertex()
        assert graph.name_of(v) == f"#{v}"


class TestEdges:
    def test_add_and_remove_edge(self, graph):
        u, root = graph.index_of("u"), graph.root
        a = graph.index_of("a")
        v = graph.add_vertex("t2")
        graph.add_edge(u, v)
        graph.add_edge(v, a)
        assert v in graph.succ[u] and u in graph.pred[v]
        graph.remove_edge(u, v)
        assert v not in graph.succ[u] and u not in graph.pred[v]

    def test_cycle_rejected(self, graph):
        u, a = graph.index_of("u"), graph.index_of("a")
        # a is downstream of u: an a -> u edge would close a cycle.
        with pytest.raises(CircuitError):
            graph.add_edge(a, u)

    def test_self_loop_rejected(self, graph):
        u = graph.index_of("u")
        with pytest.raises(CircuitError):
            graph.add_edge(u, u)

    def test_parallel_edges_allowed(self, graph):
        u = graph.index_of("u")
        v = graph.add_vertex("par")
        graph.add_edge(u, v)
        graph.add_edge(u, v)
        assert graph.succ[u].count(v) == 2
        graph.remove_edge(u, v)
        assert graph.succ[u].count(v) == 1

    def test_remove_missing_edge(self, graph):
        with pytest.raises(CircuitError):
            graph.remove_edge(graph.index_of("u"), graph.root)


class TestSetFanins:
    def test_rewire_replaces_preds(self, graph):
        k = graph.index_of("k")
        e, h = graph.index_of("e"), graph.index_of("h")
        old = list(graph.pred[k])
        touched = graph.set_fanins(k, [e, h])
        assert graph.pred[k] == [e, h]
        assert k in graph.succ[e] and k in graph.succ[h]
        for p in old:
            assert k not in graph.succ[p]
        assert set(touched) == {k, e, h} | set(old)

    def test_rewire_cycle_rejected(self, graph):
        u = graph.index_of("u")
        root = graph.root
        with pytest.raises(CircuitError):
            graph.set_fanins(u, [root])  # root is in u's fanout cone


class TestKillVertex:
    def test_tombstone_semantics(self, graph):
        k = graph.index_of("k")
        neighbours = set(graph.pred[k]) | set(graph.succ[k])
        touched = graph.kill_vertex(k)
        assert not graph.is_alive(k)
        assert k in graph.dead
        assert graph.succ[k] == [] and graph.pred[k] == []
        for w in neighbours:
            assert k not in graph.succ[w] and k not in graph.pred[w]
        assert set(touched) == {k} | neighbours
        with pytest.raises(UnknownNodeError):
            graph.index_of("k")

    def test_name_freed_for_reuse(self, graph):
        graph.kill_vertex(graph.index_of("k"))
        v = graph.add_vertex("k")
        assert graph.index_of("k") == v

    def test_root_protected(self, graph):
        with pytest.raises(CircuitError):
            graph.kill_vertex(graph.root)

    def test_double_kill_rejected(self, graph):
        k = graph.index_of("k")
        graph.kill_vertex(k)
        with pytest.raises(CircuitError):
            graph.kill_vertex(k)

    def test_dead_vertex_not_a_source(self, graph):
        u = graph.index_of("u")
        assert u in graph.sources()
        graph.kill_vertex(u)
        assert u not in graph.sources()

    def test_dead_vertex_rejected_in_edges(self, graph):
        k = graph.index_of("k")
        graph.kill_vertex(k)
        with pytest.raises(CircuitError):
            graph.add_edge(graph.index_of("u"), k)


class TestStability:
    def test_untouched_indices_stable(self, graph):
        before = {graph.name_of(v): v for v in range(graph.n)}
        graph.add_vertex("x1")
        graph.kill_vertex(graph.index_of("k"))
        graph.set_fanins(
            graph.index_of("m"), [graph.index_of("e")]
        )
        for name, idx in before.items():
            if name == "k":
                continue
            assert graph.index_of(name) == idx

    def test_traversals_ignore_tombstones(self, graph):
        k = graph.index_of("k")
        graph.kill_vertex(k)
        assert not graph.reachable_from(graph.index_of("u"))[k]
        assert not graph.coreachable_to(graph.root)[k]
        order = graph.topological_order()  # still a DAG
        assert len(order) == graph.n
