"""Functional tests for the prefix/CRC/sorter generator families."""

import itertools
import random

import pytest

from repro.analysis import evaluate
from repro.circuits.generators import (
    POLYNOMIALS,
    batcher_sorter,
    crc_circuit,
    crc_reference,
    kogge_stone_adder,
    majority_network,
    prefix_or_network,
)
from repro.graph import assert_well_formed


def _drive(circuit, **buses):
    env = {}
    for prefix, value in buses.items():
        width = sum(
            1
            for name in circuit.inputs
            if name.startswith(prefix) and name[len(prefix):].isdigit()
        )
        for i in range(width):
            env[f"{prefix}{i}"] = (value >> i) & 1
    return env


def _num(values, names):
    return sum(values[name] << i for i, name in enumerate(names))


class TestKoggeStone:
    @pytest.mark.parametrize("width", [1, 2, 4, 5, 8])
    def test_adds(self, width):
        circuit = kogge_stone_adder(width)
        rng = random.Random(width)
        cases = (
            itertools.product(range(1 << width), range(1 << width), (0, 1))
            if width <= 3
            else (
                (
                    rng.randrange(1 << width),
                    rng.randrange(1 << width),
                    rng.randrange(2),
                )
                for _ in range(40)
            )
        )
        for a, b, cin in cases:
            env = _drive(circuit, a=a, b=b)
            env["cin"] = cin
            vals = evaluate(circuit, env)
            total = _num(vals, [f"s{i}" for i in range(width)]) + (
                vals["cout"] << width
            )
            assert total == a + b + cin

    def test_log_depth(self):
        from repro.graph import IndexedGraph, depth

        circuit = kogge_stone_adder(16)
        graph = IndexedGraph.from_circuit(circuit, "cout")
        # Prefix network: depth O(log w), far below the ripple ~2w.
        assert depth(graph) <= 14

    def test_matches_ripple_carry(self):
        from repro.circuits.generators import ripple_carry_adder

        ks = kogge_stone_adder(4)
        rc = ripple_carry_adder(4, with_cin=True)
        for a, b, cin in itertools.product(range(16), range(16), (0, 1)):
            env = _drive(ks, a=a, b=b)
            env["cin"] = cin
            v1 = evaluate(ks, env)
            v2 = evaluate(rc, env)
            assert _num(v1, [f"s{i}" for i in range(4)]) == _num(
                v2, rc.outputs[:-1]
            )


class TestPrefixOr:
    def test_prefix_semantics(self):
        circuit = prefix_or_network(9)
        rng = random.Random(1)
        for _ in range(20):
            x = rng.randrange(1 << 9)
            env = _drive(circuit, x=x)
            vals = evaluate(circuit, env)
            running = 0
            for i in range(9):
                running |= (x >> i) & 1
                assert vals[f"y{i}"] == running


class TestCrc:
    @pytest.mark.parametrize("poly", sorted(POLYNOMIALS))
    def test_matches_reference(self, poly):
        data_bits = 12
        circuit = crc_circuit(data_bits, poly)
        assert_well_formed(circuit)
        degree = len([o for o in circuit.outputs])
        rng = random.Random(hash(poly) & 0xFFFF)
        for _ in range(15):
            data = rng.randrange(1 << data_bits)
            init = rng.randrange(1 << degree)
            env = _drive(circuit, d=data, c=init)
            vals = evaluate(circuit, env)
            got = _num(vals, circuit.outputs)
            assert got == crc_reference(data, data_bits, poly, init)

    def test_unknown_polynomial(self):
        with pytest.raises(ValueError):
            crc_circuit(8, "crc999")

    def test_linear_in_data(self):
        """CRC is linear over GF(2): crc(a^b, init=0) = crc(a) ^ crc(b)."""
        poly = "crc8"
        bits = 10
        for a, b in ((0b1011001110, 0b0110110001), (5, 1000)):
            lhs = crc_reference(a ^ b, bits, poly)
            rhs = crc_reference(a, bits, poly) ^ crc_reference(b, bits, poly)
            assert lhs == rhs


class TestSorter:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_sorts_exhaustively(self, width):
        circuit = batcher_sorter(width)
        for x in range(1 << width):
            env = _drive(circuit, x=x)
            vals = evaluate(circuit, env)
            ones = bin(x).count("1")
            for k in range(width):
                assert vals[f"y{k}"] == int(k < ones)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            batcher_sorter(6)

    @pytest.mark.parametrize("width", [3, 5, 7])
    def test_majority(self, width):
        circuit = majority_network(width)
        for x in range(1 << width):
            env = _drive(circuit, x=x)
            expected = int(bin(x).count("1") > width // 2)
            assert evaluate(circuit, env)["maj"] == expected

    def test_majority_needs_odd(self):
        with pytest.raises(ValueError):
            majority_network(4)
