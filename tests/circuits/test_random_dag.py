"""Tests for the clustered random-netlist generator."""

import statistics

import pytest

from repro.circuits.generators import random_circuit
from repro.graph import IndexedGraph, assert_well_formed


class TestClusterStructure:
    def test_cones_stay_small(self):
        """The design goal: per-output cones are cluster-sized, not the
        whole circuit (what makes multi-output Table-1 workloads
        representative)."""
        circuit = random_circuit(60, 500, num_outputs=40, seed=7)
        sizes = [
            IndexedGraph.from_circuit(circuit, out).n
            for out in circuit.outputs
        ]
        assert statistics.mean(sizes) < len(circuit) / 2
        assert max(sizes) < len(circuit)

    def test_cones_overlap_through_shared_pool(self):
        """Clusters tap shared logic, so cones are not disjoint."""
        from repro.graph.traverse import output_cone

        circuit = random_circuit(30, 200, num_outputs=8, seed=3)
        cones = [output_cone(circuit, out) for out in circuit.outputs]
        overlaps = sum(
            1
            for i in range(len(cones))
            for j in range(i + 1, len(cones))
            if cones[i] & cones[j] - set(circuit.inputs)
        )
        assert overlaps > 0

    def test_no_dangling_gates(self):
        for seed in range(4):
            assert_well_formed(
                random_circuit(20, 120, num_outputs=6, seed=seed)
            )

    def test_shared_fraction_zero(self):
        circuit = random_circuit(
            10, 50, num_outputs=3, seed=1, shared_fraction=0.0
        )
        assert_well_formed(circuit)

    def test_exact_gate_budget_split(self):
        circuit = random_circuit(8, 30, num_outputs=7, seed=2)
        assert len(circuit.outputs) == 7
        circuit.validate()

    def test_single_output_includes_cluster(self):
        circuit = random_circuit(5, 25, num_outputs=1, seed=9)
        graph = IndexedGraph.from_circuit(circuit)
        assert graph.n > 5

    def test_reproducible(self):
        a = random_circuit(12, 80, num_outputs=5, seed=123)
        b = random_circuit(12, 80, num_outputs=5, seed=123)
        assert [(n.name, n.type, n.fanins) for n in a.nodes()] == [
            (n.name, n.type, n.fanins) for n in b.nodes()
        ]
