"""Functional tests for every circuit-family generator.

Generators are only useful if the circuits *compute what they claim*:
adders add, multipliers multiply, comparators compare, shifters rotate.
Each family is checked against its arithmetic specification by
simulation, plus structural well-formedness.
"""

import itertools
import random

import pytest

from repro.analysis import VectorSimulator, evaluate
from repro.circuits.generators import (
    array_multiplier,
    barrel_shifter,
    carry_lookahead_adder,
    carry_select_adder,
    cascade,
    decoder,
    dual_rail_parity,
    error_corrector,
    feistel_network,
    interrupt_controller,
    magnitude_comparator,
    mux_tree,
    parity_tree,
    priority_encoder,
    random_circuit,
    random_series_parallel,
    random_single_output,
    ripple_carry_adder,
    simple_alu,
)
from repro.graph import assert_well_formed


def _num(values, names):
    return sum(values[name] << i for i, name in enumerate(names))


def _drive(circuit, **buses):
    env = {}
    for prefix, value in buses.items():
        width = sum(
            1 for name in circuit.inputs if name.startswith(prefix)
            and name[len(prefix):].isdigit()
        )
        for i in range(width):
            env[f"{prefix}{i}"] = (value >> i) & 1
    return env


class TestAdders:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_ripple_carry_adds(self, width):
        circuit = ripple_carry_adder(width, with_cin=True)
        assert_well_formed(circuit)
        rng = random.Random(width)
        for _ in range(20):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            cin = rng.randrange(2)
            env = _drive(circuit, a=a, b=b)
            env["cin"] = cin
            vals = evaluate(circuit, env)
            total = _num(vals, circuit.outputs[:-1]) + (
                vals[circuit.outputs[-1]] << width
            )
            assert total == a + b + cin

    @pytest.mark.parametrize("width,block", [(4, 2), (6, 3), (7, 4)])
    def test_carry_select_adds(self, width, block):
        circuit = carry_select_adder(width, block)
        rng = random.Random(width * block)
        for _ in range(20):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            cin = rng.randrange(2)
            env = _drive(circuit, a=a, b=b)
            env["cin"] = cin
            vals = evaluate(circuit, env)
            total = _num(vals, circuit.outputs[:-1]) + (
                vals["cout"] << width
            )
            assert total == a + b + cin

    @pytest.mark.parametrize("width", [2, 4])
    def test_carry_lookahead_adds(self, width):
        circuit = carry_lookahead_adder(width)
        for a, b, cin in itertools.product(
            range(1 << width), range(1 << width), range(2)
        ):
            env = _drive(circuit, a=a, b=b)
            env["cin"] = cin
            vals = evaluate(circuit, env)
            total = _num(vals, circuit.outputs[:-1]) + (
                vals["cout"] << width
            )
            assert total == a + b + cin


class TestMultiplier:
    @pytest.mark.parametrize("wa,wb", [(2, 2), (3, 3), (4, 3)])
    def test_multiplies(self, wa, wb):
        circuit = array_multiplier(wa, wb)
        assert len(circuit.inputs) == wa + wb
        assert len(circuit.outputs) == wa + wb
        for a in range(1 << wa):
            for b in range(1 << wb):
                env = _drive(circuit, a=a, b=b)
                vals = evaluate(circuit, env)
                assert _num(vals, circuit.outputs) == a * b

    def test_well_formed(self):
        assert_well_formed(array_multiplier(5))


class TestAluAndComparator:
    def test_alu_ops(self):
        width = 4
        circuit = simple_alu(width, select_bits=2)
        rng = random.Random(7)
        for _ in range(30):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            for op, expected in (
                ((0, 0), a & b),
                ((1, 0), a | b),
                ((0, 1), a ^ b),
                ((1, 1), (a + b) % (1 << width)),
            ):
                env = _drive(circuit, a=a, b=b)
                env["op0"], env["op1"] = op
                vals = evaluate(circuit, env)
                got = _num(vals, [f"r{i}" for i in range(width)])
                assert got == expected

    def test_alu_extra_select_inverts(self):
        circuit = simple_alu(3, select_bits=3)
        env = _drive(circuit, a=5, b=3)
        env["op0"], env["op1"], env["op2"] = 0, 0, 0
        plain = _num(evaluate(circuit, env), [f"r{i}" for i in range(3)])
        env["op2"] = 1
        inverted = _num(
            evaluate(circuit, env), [f"r{i}" for i in range(3)]
        )
        assert inverted == plain ^ 0b111

    @pytest.mark.parametrize("width", [2, 4])
    def test_comparator(self, width):
        circuit = magnitude_comparator(width)
        lt, eq, gt = circuit.outputs
        for a in range(1 << width):
            for b in range(1 << width):
                env = _drive(circuit, a=a, b=b)
                vals = evaluate(circuit, env)
                assert vals[lt] == int(a < b)
                assert vals[eq] == int(a == b)
                assert vals[gt] == int(a > b)


class TestRoutingAndEncoding:
    def test_mux_tree_selects(self):
        circuit = mux_tree(3)
        for data in (0b10110100, 0b01010101):
            for sel in range(8):
                env = _drive(circuit, d=data, s=sel)
                assert evaluate(circuit, env)["y"] == (data >> sel) & 1

    def test_barrel_shifter_rotates(self):
        width = 8
        circuit = barrel_shifter(width)
        rng = random.Random(3)
        for _ in range(20):
            data = rng.randrange(1 << width)
            amount = rng.randrange(width)
            env = _drive(circuit, d=data, sh=amount)
            vals = evaluate(circuit, env)
            got = _num(vals, [f"q{i}" for i in range(width)])
            expected = (
                (data << amount) | (data >> (width - amount))
            ) & ((1 << width) - 1)
            assert got == expected

    def test_barrel_shifter_requires_power_of_two(self):
        with pytest.raises(ValueError):
            barrel_shifter(6)

    def test_decoder_one_hot(self):
        circuit = decoder(3)
        for code in range(8):
            env = _drive(circuit, s=code)
            env["en"] = 1
            vals = evaluate(circuit, env)
            for line in range(8):
                assert vals[f"y{line}"] == int(line == code)
            env["en"] = 0
            vals = evaluate(circuit, env)
            assert all(vals[f"y{line}"] == 0 for line in range(8))

    def test_priority_encoder(self):
        width = 6
        circuit = priority_encoder(width)
        rng = random.Random(9)
        for _ in range(30):
            reqs = rng.randrange(1 << width)
            env = _drive(circuit, r=reqs)
            vals = evaluate(circuit, env)
            if reqs == 0:
                assert vals["valid"] == 0
            else:
                highest = reqs.bit_length() - 1
                bits = max(1, (width - 1).bit_length())
                got = _num(vals, [f"e{j}" for j in range(bits)])
                assert vals["valid"] == 1
                assert got == highest

    def test_interrupt_controller_masks(self):
        circuit = interrupt_controller(6, groups=2)
        env = _drive(circuit, r=0b101010)
        env.update({"en0": 1, "en1": 1, "mask": 1})
        assert evaluate(circuit, env)["irq"] == 0  # global mask wins
        env["mask"] = 0
        assert evaluate(circuit, env)["irq"] == 1


class TestParityAndEcc:
    def test_parity_tree(self):
        circuit = parity_tree(8)
        rng = random.Random(1)
        for _ in range(20):
            x = rng.randrange(1 << 8)
            env = _drive(circuit, x=x)
            assert evaluate(circuit, env)["parity"] == bin(x).count("1") % 2

    def test_dual_rail_parity_constant(self):
        """even-parity XNOR odd-parity of inverted inputs is an invariant
        of the input width's parity — check it simulates consistently."""
        pytest.importorskip("numpy")
        circuit = dual_rail_parity(6)
        sim = VectorSimulator(circuit)
        out = sim.monte_carlo_probabilities(256, seed=0)["check"]
        assert out in (0.0, 1.0)  # the comparison is a constant function

    def test_error_corrector_no_error_passthrough(self):
        """With syndromes disabled (en=0) data passes through unchanged."""
        circuit = error_corrector(8, 4)
        rng = random.Random(4)
        for _ in range(10):
            data = rng.randrange(1 << 8)
            checks = rng.randrange(1 << 4)
            env = _drive(circuit, d=data, c=checks)
            env["en"] = 0
            vals = evaluate(circuit, env)
            got = _num(vals, [f"q{i}" for i in range(8)])
            assert got == data


class TestSyntheticFamilies:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuit_well_formed(self, seed):
        circuit = random_circuit(6, 40, num_outputs=3, seed=seed)
        assert_well_formed(circuit)
        assert len(circuit.inputs) == 6
        assert len(circuit.outputs) == 3

    def test_random_circuit_deterministic(self):
        a = random_circuit(5, 30, num_outputs=2, seed=42)
        b = random_circuit(5, 30, num_outputs=2, seed=42)
        assert [
            (n.name, n.type, n.fanins) for n in a.nodes()
        ] == [(n.name, n.type, n.fanins) for n in b.nodes()]

    def test_random_rejects_bad_params(self):
        with pytest.raises(ValueError):
            random_circuit(0, 5)

    def test_series_parallel(self):
        circuit = random_series_parallel(4, seed=2)
        circuit.validate()
        assert circuit.inputs == ["u"]

    def test_cascade_structure(self):
        circuit = cascade(depth=10, num_inputs=4, num_outputs=3, seed=1)
        assert_well_formed(circuit)
        assert len(circuit.outputs) == 3

    def test_feistel_shapes(self):
        circuit = feistel_network(16, 16, rounds=2, expose_rounds=True)
        assert len(circuit.inputs) == 32
        assert len(circuit.outputs) == 16 + 8  # block + one exposed round
        assert_well_formed(circuit)

    def test_feistel_is_a_permutation_per_key(self):
        """Distinct plaintexts map to distinct ciphertexts (Feistel
        networks are bijective for a fixed key)."""
        circuit = feistel_network(8, 8, rounds=2)
        seen = set()
        for pt in range(256):
            env = _drive(circuit, pt=pt, k=0x5A)
            vals = evaluate(circuit, env)
            ct = _num(vals, [f"ct{i}" for i in range(8)])
            seen.add(ct)
        assert len(seen) == 256
