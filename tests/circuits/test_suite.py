"""Tests for the 30-circuit Table-1 suite registry."""

import pytest

from repro.circuits import (
    QUICK_SUBSET,
    benchmark_names,
    get_benchmark,
    table1_suite,
)
from repro.graph import assert_well_formed


def test_thirty_entries_present():
    names = benchmark_names()
    assert len(names) == 30
    for expected in (
        "C432",
        "C6288",
        "C499",
        "C1355",
        "alu2",
        "des",
        "too_large",
        "x4",
    ):
        assert expected in names


def test_quick_subset_is_subset():
    assert set(QUICK_SUBSET) <= set(benchmark_names())


def test_paper_rows_recorded():
    suite = table1_suite()
    assert suite["C6288"].paper.t1_seconds == pytest.approx(58.89)
    assert suite["too_large"].paper.improvement == pytest.approx(
        614.1, rel=0.01
    )
    # The paper's headline: average improvement ~27.65x.
    mean = sum(e.paper.improvement for e in suite.values()) / 30
    assert mean == pytest.approx(27.65, rel=0.02)


@pytest.mark.parametrize("name", benchmark_names())
def test_every_benchmark_builds_at_small_scale(name):
    circuit = get_benchmark(name, scale=0.25)
    circuit.validate()
    assert circuit.name == name
    assert circuit.outputs


@pytest.mark.parametrize(
    "name", ["alu2", "comp", "C432", "C6288", "cordic", "cmb"]
)
def test_io_counts_near_paper(name):
    """At scale 1.0 the I/O counts track Table 1's in/out columns."""
    entry = table1_suite()[name]
    circuit = entry.circuit(1.0)
    assert abs(len(circuit.inputs) - entry.paper.inputs) <= 2
    assert abs(len(circuit.outputs) - entry.paper.outputs) <= 2


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        get_benchmark("c17_misspelled")


def test_structured_families_well_formed():
    for name in ("C6288", "comp", "C499"):
        assert_well_formed(get_benchmark(name, scale=0.3))


class TestSequentialSuite:
    """The sequential registry: s_shift, s_lfsr, s_alu."""

    def test_registry_names(self):
        from repro.circuits import sequential_names, sequential_suite

        assert sequential_names() == ["s_shift", "s_lfsr", "s_alu"]
        assert set(sequential_suite()) == set(sequential_names())

    @pytest.mark.parametrize("name", ["s_shift", "s_lfsr", "s_alu"])
    def test_every_entry_builds_at_small_scale(self, name):
        from repro.circuits import get_sequential
        from repro.graph.sequential import (
            extract_combinational_core,
            unrolled,
        )

        machine = get_sequential(name, scale=0.25)
        assert machine.name == name
        assert machine.flops
        assert machine.primary_inputs and machine.primary_outputs
        core = extract_combinational_core(machine)
        core.validate()
        assert len(core.outputs) == len(machine.primary_outputs) + len(
            machine.flops
        )
        expanded = unrolled(machine, 3)
        expanded.validate()
        assert len(expanded.outputs) == 3 * len(
            machine.primary_outputs
        ) + len(machine.flops)

    def test_unknown_name_rejected(self):
        from repro.circuits import get_sequential

        with pytest.raises(KeyError, match="nope"):
            get_sequential("nope")

    def test_suite_spans_prefilter_spectrum(self):
        # s_shift: every core cone certified; s_alu: real pairs survive.
        from repro.analysis.biconnectivity import has_no_double_dominator
        from repro.circuits import get_sequential
        from repro.graph import IndexedGraph
        from repro.graph.sequential import extract_combinational_core

        shift = extract_combinational_core(get_sequential("s_shift", 0.25))
        assert all(
            has_no_double_dominator(IndexedGraph.from_circuit(shift, out))
            for out in shift.outputs
        )
        alu = extract_combinational_core(get_sequential("s_alu", 0.25))
        assert not all(
            has_no_double_dominator(IndexedGraph.from_circuit(alu, out))
            for out in alu.outputs
        )
