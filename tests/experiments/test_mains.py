"""Tests for the module-level CLI entry points of the harness."""

import pytest

from repro.experiments import ablation, table1


class TestTable1Main:
    def test_main_with_names(self, capsys, tmp_path):
        md = tmp_path / "out.md"
        assert (
            table1.main(["--names", "alu2", "--markdown", str(md)]) == 0
        )
        out = capsys.readouterr().out
        assert "alu2" in out
        assert md.read_text().startswith("| name |")

    def test_main_check_flag(self, capsys):
        assert table1.main(["--names", "alu2", "--check"]) == 0

    def test_main_scale(self, capsys):
        assert table1.main(["--names", "cmb", "--scale", "0.5"]) == 0
        assert "cmb" in capsys.readouterr().out

    def test_main_jobs_parallel_t2(self, capsys):
        assert (
            table1.main(
                ["--names", "alu2", "--scale", "0.5", "--jobs", "2", "--check"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "alu2" in out
        assert "wall [s]" in out

    def test_main_seed_offset_restored(self, capsys):
        from repro.circuits.suite import seed_offset

        assert (
            table1.main(["--names", "cmb", "--scale", "0.5", "--seed", "3"])
            == 0
        )
        assert seed_offset() == 0  # harness restores the offset

    def test_seed_changes_random_family_counts(self):
        base = table1.run_table1(
            names=["cmb"], scale=0.5, verbose=False
        )[0]
        shifted = table1.run_table1(
            names=["cmb"], scale=0.5, verbose=False, seed=7
        )[0]
        # same I/O shape, resampled structure
        assert (base.inputs, base.outputs) == (
            shifted.inputs,
            shifted.outputs,
        )
        assert (
            base.double_doms != shifted.double_doms
            or base.single_doms != shifted.single_doms
        )

    def test_rows_record_wall_clock(self):
        (row,) = table1.run_table1(names=["alu2"], scale=0.5, verbose=False)
        assert row.wall >= row.t1 + row.t2


class TestAblationMain:
    @pytest.mark.parametrize("study", ["engine"])
    def test_main_runs_study(self, study, capsys, monkeypatch):
        # Shrink the study so the test is quick.
        monkeypatch.setitem(
            ablation._STUDIES,
            "engine",
            lambda family: ablation.single_algorithm_study(family, size=8),
        )
        assert ablation.main(["--study", study]) == 0
        out = capsys.readouterr().out
        assert "ablation: engine" in out

    def test_unknown_study_rejected(self):
        with pytest.raises(SystemExit):
            ablation.main(["--study", "nonsense"])
