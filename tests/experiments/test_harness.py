"""Tests for the Table-1 harness, reporting and ablation studies."""

import pytest

from repro.circuits.generators import random_circuit
from repro.circuits.suite import table1_suite
from repro.experiments import (
    format_results,
    format_table,
    lookup_study,
    measure_circuit,
    region_cache_study,
    run_entry,
    run_table1,
    scaling_study,
    single_algorithm_study,
)
from repro.experiments.reporting import format_markdown_table


class TestMeasure:
    def test_measure_small_circuit_with_check(self):
        circuit = random_circuit(5, 35, num_outputs=2, seed=77)
        row = measure_circuit(circuit, check=True)
        assert row.inputs == 5
        assert row.outputs == 2
        assert row.t1 > 0 and row.t2 > 0
        assert row.single_doms >= 0
        assert row.double_doms >= 0

    def test_run_entry_attaches_paper_numbers(self):
        entry = table1_suite()["alu2"]
        row = run_entry(entry, scale=1.0, check=True)
        assert row.paper_single == 48
        assert row.paper_double == 55
        assert row.paper_improvement == pytest.approx(55 / 55 * 0.81 / 0.16)

    def test_run_table1_selection(self):
        rows = run_table1(names=["alu2"], verbose=False)
        assert len(rows) == 1
        assert rows[0].name == "alu2"


class TestFormatting:
    def test_format_results_plain_and_markdown(self):
        rows = run_table1(names=["alu2"], verbose=False)
        plain = format_results(rows)
        assert "alu2" in plain and "average" in plain
        md = format_results(rows, markdown=True)
        assert md.startswith("| name |")

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]

    def test_markdown_table(self):
        md = format_markdown_table(["h1", "h2"], [[1, 2.5]])
        assert md.splitlines()[1] == "|---|---|"
        assert "2.500" in md


class TestAblations:
    def test_scaling_study_shapes(self):
        rows = scaling_study(family="cascade", sizes=(6, 12))
        assert [r["size"] for r in rows] == [6, 12]
        assert all(r["improvement"] > 0 for r in rows)

    def test_lookup_study_consistency(self):
        rows = lookup_study(family="cascade", sizes=(8,), queries=300)
        assert rows[0]["chain_us"] > 0

    def test_region_cache_study(self):
        rows = region_cache_study(family="cascade", sizes=(8,))
        assert rows[0]["cached_s"] > 0 and rows[0]["uncached_s"] > 0

    def test_engine_study_counts_agree(self):
        rows = single_algorithm_study(family="cascade", size=10)
        assert len({r["pairs"] for r in rows}) == 1
