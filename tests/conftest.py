"""Shared fixtures and hypothesis profiles for the test suite."""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.circuits.figures import figure1_circuit, figure2_circuit
from repro.graph import IndexedGraph

# Deterministic profile for CI: derandomized (same examples every run,
# so failures reproduce across reruns and machines), no wall-clock
# deadline (shared runners stall unpredictably), modest example count.
settings.register_profile(
    "ci",
    max_examples=30,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
# Local deep-soak profile: more examples, still no deadline.
settings.register_profile("dev", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def fig1():
    """The paper's Figure 1 circuit."""
    return figure1_circuit()


@pytest.fixture(scope="session")
def fig2():
    """The paper's Figure 2 circuit (dominator-chain running example)."""
    return figure2_circuit()


@pytest.fixture(scope="session")
def fig1_graph(fig1):
    return IndexedGraph.from_circuit(fig1)


@pytest.fixture(scope="session")
def fig2_graph(fig2):
    return IndexedGraph.from_circuit(fig2)
