"""Shared fixtures for the test suite."""

import pytest

from repro.circuits.figures import figure1_circuit, figure2_circuit
from repro.graph import IndexedGraph


@pytest.fixture(scope="session")
def fig1():
    """The paper's Figure 1 circuit."""
    return figure1_circuit()


@pytest.fixture(scope="session")
def fig2():
    """The paper's Figure 2 circuit (dominator-chain running example)."""
    return figure2_circuit()


@pytest.fixture(scope="session")
def fig1_graph(fig1):
    return IndexedGraph.from_circuit(fig1)


@pytest.fixture(scope="session")
def fig2_graph(fig2):
    return IndexedGraph.from_circuit(fig2)
