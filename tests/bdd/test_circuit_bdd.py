"""Tests for circuit→BDD construction and cut-point equivalence."""

import itertools

import pytest

from repro.analysis import evaluate
from repro.bdd import (
    BDDManager,
    CutpointError,
    build_net_bdds,
    check_equivalence,
    output_bdd,
    partitioned_output_bdd,
)
from repro.circuits.generators import (
    carry_lookahead_adder,
    cascade,
    kogge_stone_adder,
    random_single_output,
    ripple_carry_adder,
)
from repro.graph import CircuitBuilder


class TestBuild:
    @pytest.mark.parametrize("seed", range(5))
    def test_bdd_matches_simulation(self, seed):
        circuit = random_single_output(4, 18, seed=seed)
        manager, root = output_bdd(circuit, circuit.outputs[0])
        order = circuit.inputs
        for bits in itertools.product((0, 1), repeat=len(order)):
            env = dict(zip(order, bits))
            expected = evaluate(circuit, env)[circuit.outputs[0]]
            got = manager.evaluate(root, dict(enumerate(bits)))
            assert got == expected

    def test_constants_and_mux(self):
        b = CircuitBuilder()
        s, x = b.inputs("s", "x")
        one = b.constant(1)
        m = b.mux(s, x, one, name="m")
        circuit = b.finish([m])
        manager, root = output_bdd(circuit, "m")
        for sv, xv in itertools.product((0, 1), repeat=2):
            assert manager.evaluate(root, {0: sv, 1: xv}) == (
                1 if sv else xv
            )

    def test_multi_output_requires_choice(self):
        from repro.circuits.generators import random_circuit

        circuit = random_circuit(3, 10, num_outputs=2, seed=1)
        with pytest.raises(CutpointError):
            output_bdd(circuit)


class TestEquivalence:
    @pytest.mark.parametrize("width", [3, 5])
    def test_three_adders_equivalent(self, width):
        rca = ripple_carry_adder(width, with_cin=True)
        ks = kogge_stone_adder(width)
        cla = carry_lookahead_adder(width)
        assert check_equivalence(
            rca, ks, outputs=list(zip(rca.outputs, ks.outputs))
        )
        assert check_equivalence(
            rca, cla, outputs=list(zip(rca.outputs, cla.outputs))
        )

    def test_inequivalence_detected(self):
        b1 = CircuitBuilder()
        a, bb = b1.inputs("a", "b")
        c1 = b1.finish([b1.and_(a, bb, name="y")])
        b2 = CircuitBuilder()
        a, bb = b2.inputs("a", "b")
        c2 = b2.finish([b2.or_(a, bb, name="y")])
        assert not check_equivalence(c1, c2)

    def test_different_inputs_rejected(self):
        b1 = CircuitBuilder()
        (a,) = b1.inputs("a")
        c1 = b1.finish([b1.not_(a, name="y")])
        b2 = CircuitBuilder()
        (z,) = b2.inputs("z")
        c2 = b2.finish([b2.not_(z, name="y")])
        with pytest.raises(CutpointError):
            check_equivalence(c1, c2)


class TestPartitioned:
    @pytest.mark.parametrize("depth", [12, 30])
    def test_composition_is_lossless(self, depth):
        circuit = cascade(depth=depth, num_inputs=5, num_outputs=1, seed=4)
        proof = partitioned_output_bdd(circuit)
        assert proof.composed_matches
        assert proof.peak_partitioned > 0

    def test_explicit_frontier(self, fig2):
        proof = partitioned_output_bdd(fig2, frontier=("k", "l"))
        assert proof.composed_matches
        assert proof.frontier == ("k", "l")

    def test_every_figure2_frontier_composes(self, fig2):
        from repro.analysis import select_cut_frontiers

        for frontier in select_cut_frontiers(fig2):
            if frontier.width != 2:
                continue
            proof = partitioned_output_bdd(fig2, frontier=frontier.nets)
            assert proof.composed_matches, frontier

    def test_no_frontier_raises(self):
        from repro.circuits.generators import parity_tree

        # A tree's only 2-frontier is the root's children — remove it by
        # testing a 2-input tree whose "frontier" would be the PIs.
        b = CircuitBuilder()
        a, bb = b.inputs("a", "b")
        circuit = b.finish([b.and_(a, bb, name="y")])
        with pytest.raises(CutpointError):
            partitioned_output_bdd(circuit)
