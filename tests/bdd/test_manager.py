"""Tests for the ROBDD manager."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import ONE, ZERO, BddError, BDDManager


@pytest.fixture
def mgr():
    return BDDManager()


class TestBasics:
    def test_terminals(self, mgr):
        assert mgr.and_() == ONE
        assert mgr.or_() == ZERO
        assert mgr.not_(ZERO) == ONE
        assert mgr.not_(ONE) == ZERO

    def test_var_and_negation(self, mgr):
        x = mgr.var(0)
        assert mgr.evaluate(x, {0: 1}) == 1
        assert mgr.evaluate(mgr.not_(x), {0: 1}) == 0

    def test_canonicity(self, mgr):
        """Equivalent formulas share the same node — the ROBDD property."""
        x, y = mgr.var(0), mgr.var(1)
        demorgan_a = mgr.not_(mgr.and_(x, y))
        demorgan_b = mgr.or_(mgr.not_(x), mgr.not_(y))
        assert demorgan_a == demorgan_b
        assert mgr.xor(x, y) == mgr.xor(y, x)
        assert mgr.and_(x, mgr.not_(x)) == ZERO
        assert mgr.or_(x, mgr.not_(x)) == ONE

    def test_negative_level_rejected(self, mgr):
        with pytest.raises(BddError):
            mgr.var(-1)

    def test_node_budget(self):
        small = BDDManager(max_nodes=4)
        with pytest.raises(BddError):
            small.xor(small.var(0), small.var(1), small.var(2))

    def test_missing_assignment(self, mgr):
        x = mgr.var(3)
        with pytest.raises(BddError):
            mgr.evaluate(x, {})


class TestOperators:
    @pytest.mark.parametrize(
        "op,pyop",
        [
            ("and_", lambda a, b: a & b),
            ("or_", lambda a, b: a | b),
            ("xor", lambda a, b: a ^ b),
            ("nand", lambda a, b: 1 - (a & b)),
            ("nor", lambda a, b: 1 - (a | b)),
            ("xnor", lambda a, b: 1 - (a ^ b)),
        ],
    )
    def test_binary_truth_tables(self, mgr, op, pyop):
        x, y = mgr.var(0), mgr.var(1)
        f = getattr(mgr, op)(x, y)
        for a, b in itertools.product((0, 1), repeat=2):
            assert mgr.evaluate(f, {0: a, 1: b}) == pyop(a, b)

    def test_mux(self, mgr):
        s, a, b = mgr.var(0), mgr.var(1), mgr.var(2)
        f = mgr.mux(s, a, b)
        for sv, av, bv in itertools.product((0, 1), repeat=3):
            assert mgr.evaluate(f, {0: sv, 1: av, 2: bv}) == (
                bv if sv else av
            )

    def test_restrict(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        f = mgr.and_(x, y)
        assert mgr.restrict(f, 0, 1) == y
        assert mgr.restrict(f, 0, 0) == ZERO

    def test_compose(self, mgr):
        x, y, z = mgr.var(0), mgr.var(1), mgr.var(2)
        f = mgr.and_(x, y)
        g = mgr.or_(y, z)
        composed = mgr.compose(f, 0, g)  # (y|z) & y == y
        assert composed == y

    def test_support_and_size(self, mgr):
        x, z = mgr.var(0), mgr.var(2)
        f = mgr.xor(x, z)
        assert mgr.support(f) == [0, 2]
        assert mgr.size(f) == 3  # x node + two z nodes
        assert mgr.size(ONE) == 0


class TestCounting:
    def test_sat_count(self, mgr):
        x, y, z = mgr.var(0), mgr.var(1), mgr.var(2)
        assert mgr.sat_count(mgr.and_(x, y), 3) == 2
        assert mgr.sat_count(mgr.or_(x, y, z), 3) == 7
        assert mgr.sat_count(ONE, 3) == 8
        assert mgr.sat_count(ZERO, 3) == 0
        assert mgr.sat_count(mgr.xor(x, y, z), 3) == 4

    def test_any_sat(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        f = mgr.and_(x, mgr.not_(y))
        model = mgr.any_sat(f)
        assert model == {0: 1, 1: 0}
        assert mgr.any_sat(ZERO) is None
        assert mgr.any_sat(ONE) == {}


@st.composite
def formulas(draw, num_vars=4, depth=4):
    """A random formula as (builder, python evaluator) pair."""
    if depth == 0 or draw(st.booleans()) and depth < 3:
        idx = draw(st.integers(0, num_vars - 1))
        return ("var", idx)
    op = draw(st.sampled_from(["and", "or", "xor", "not"]))
    if op == "not":
        return ("not", draw(formulas(num_vars=num_vars, depth=depth - 1)))
    return (
        op,
        draw(formulas(num_vars=num_vars, depth=depth - 1)),
        draw(formulas(num_vars=num_vars, depth=depth - 1)),
    )


def _build(mgr, tree):
    if tree[0] == "var":
        return mgr.var(tree[1])
    if tree[0] == "not":
        return mgr.not_(_build(mgr, tree[1]))
    a = _build(mgr, tree[1])
    b = _build(mgr, tree[2])
    return {"and": mgr.and_, "or": mgr.or_, "xor": mgr.xor}[tree[0]](a, b)


def _eval(tree, env):
    if tree[0] == "var":
        return env[tree[1]]
    if tree[0] == "not":
        return 1 - _eval(tree[1], env)
    a = _eval(tree[1], env)
    b = _eval(tree[2], env)
    return {"and": a & b, "or": a | b, "xor": a ^ b}[tree[0]]


@given(formulas())
@settings(max_examples=80, deadline=None)
def test_bdd_matches_formula_semantics(tree):
    mgr = BDDManager()
    f = _build(mgr, tree)
    for bits in itertools.product((0, 1), repeat=4):
        env = dict(enumerate(bits))
        assert mgr.evaluate(f, env) == _eval(tree, env)


@given(formulas(), formulas())
@settings(max_examples=60, deadline=None)
def test_canonicity_random(tree_a, tree_b):
    """Two formulas get the same node iff they are logically equal."""
    mgr = BDDManager()
    fa, fb = _build(mgr, tree_a), _build(mgr, tree_b)
    equal_semantically = all(
        _eval(tree_a, dict(enumerate(bits)))
        == _eval(tree_b, dict(enumerate(bits)))
        for bits in itertools.product((0, 1), repeat=4)
    )
    assert (fa == fb) == equal_semantically
