"""Bounded Edmonds–Karp max-flow on a :class:`ResidualNetwork`.

The dominator algorithm never needs the exact flow value beyond 3 ("is the
min vertex cut exactly two?"), so :func:`max_flow` accepts a ``limit`` and
stops as soon as the accumulated flow reaches it.  With unit bottlenecks
this costs at most ``limit`` BFS passes — O(limit · E) total, the "efficient
algorithm" ingredient that keeps DOUBLEIDOM linear per call.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from .residual import ResidualNetwork

_UNSET = -1


def bfs_augmenting_path(
    net: ResidualNetwork, source: int, sink: int
) -> Optional[List[int]]:
    """Shortest augmenting path as a list of arc ids, or ``None``."""
    parent_arc = [_UNSET] * net.num_nodes
    parent_arc[source] = -2  # sentinel marking the source as visited
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for arc in net.adj[u]:
            v = net.head[arc]
            if net.cap[arc] > 0 and parent_arc[v] == _UNSET:
                parent_arc[v] = arc
                if v == sink:
                    path: List[int] = []
                    while v != source:
                        arc = parent_arc[v]
                        path.append(arc)
                        v = net.head[arc ^ 1]
                    path.reverse()
                    return path
                queue.append(v)
    return None


def max_flow(
    net: ResidualNetwork, source: int, sink: int, limit: Optional[int] = None
) -> int:
    """Push flow from ``source`` to ``sink`` until exhausted or ``limit``.

    Mutates ``net`` (residual capacities).  Returns the achieved flow
    value, clamped at ``limit`` when given.
    """
    total = 0
    while limit is None or total < limit:
        path = bfs_augmenting_path(net, source, sink)
        if path is None:
            break
        bottleneck = min(net.cap[arc] for arc in path)
        if limit is not None:
            bottleneck = min(bottleneck, limit - total)
        for arc in path:
            net.push(arc, bottleneck)
        total += bottleneck
    return total
