"""Residual flow network with unit *vertex* capacities.

The paper's DOUBLEIDOM assigns "each vertex in V except the source and sink
vertices ... a unit capacity" and computes max-flow with augmenting paths
[17]; "our version of the augmenting path algorithm uses vertex capacitances
instead of edge capacitances".  We realize vertex capacities with the
classic node-splitting construction: every graph vertex *v* becomes an arc
``v_in -> v_out`` whose capacity is the vertex capacity; every graph edge
``(u, w)`` becomes an arc ``u_out -> w_in`` with effectively-unlimited
capacity.

Because only the question "is the minimum cut at most 2?" matters to the
dominator algorithm, "unlimited" capacities are clamped to the caller's
flow bound, which keeps all arithmetic tiny.
"""

from __future__ import annotations

from typing import List

from ..errors import FlowError


class ResidualNetwork:
    """A residual network over twice-split vertices plus a super-source.

    Nodes ``2*v`` / ``2*v + 1`` are the in/out copies of graph vertex *v*;
    node ``2*n`` is the super-source.  Arcs are stored as parallel arrays
    with even/odd pairing (``arc ^ 1`` is the reverse arc).
    """

    __slots__ = ("num_nodes", "head", "cap", "adj")

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.head: List[int] = []  # arc -> target node
        self.cap: List[int] = []  # arc -> residual capacity
        self.adj: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_arc(self, u: int, v: int, capacity: int) -> int:
        """Add arc ``u -> v`` (plus zero-capacity reverse); returns arc id."""
        if capacity < 0:
            raise FlowError("arc capacity must be non-negative")
        arc = len(self.head)
        self.head.extend((v, u))
        self.cap.extend((capacity, 0))
        self.adj[u].append(arc)
        self.adj[v].append(arc + 1)
        return arc

    def push(self, arc: int, amount: int) -> None:
        """Send ``amount`` units along ``arc`` (updates the reverse arc)."""
        if amount > self.cap[arc]:
            raise FlowError("push exceeds residual capacity")
        self.cap[arc] -= amount
        self.cap[arc ^ 1] += amount

    def reachable_from(self, start: int) -> List[bool]:
        """Nodes reachable from ``start`` using positive-residual arcs."""
        seen = [False] * self.num_nodes
        seen[start] = True
        stack = [start]
        while stack:
            u = stack.pop()
            for arc in self.adj[u]:
                if self.cap[arc] > 0 and not seen[self.head[arc]]:
                    seen[self.head[arc]] = True
                    stack.append(self.head[arc])
        return seen


def in_node(v: int) -> int:
    """Split-network node receiving the incoming edges of graph vertex v."""
    return 2 * v


def out_node(v: int) -> int:
    """Split-network node emitting the outgoing edges of graph vertex v."""
    return 2 * v + 1
