"""Minimum vertex cuts between a source set and a sink (Menger form).

This is the engine behind the paper's DOUBLEIDOM: the immediate
double-vertex dominator of a set *S* within a search region is the
**source-nearest minimum vertex cut of size two** separating *S* from the
region's sink.  The source-nearest min cut falls out of the residual
network after max-flow: it consists of the saturated split arcs whose tail
is residually reachable from the sources and whose head is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import FlowError
from ..graph.indexed import IndexedGraph
from .maxflow import max_flow
from .residual import ResidualNetwork, in_node, out_node


@dataclass(frozen=True)
class VertexCutResult:
    """Outcome of a bounded min-vertex-cut computation.

    Attributes
    ----------
    flow:
        Achieved flow value; equals the min vertex cut size when it is
        below ``limit``, otherwise only certifies "cut >= limit".
    cut:
        The source-nearest minimum vertex cut (sorted vertex ids) when
        ``flow < limit``; ``None`` when the bound was hit.
    """

    flow: int
    cut: Optional[List[int]]

    @property
    def bounded(self) -> bool:
        """True when the flow hit the caller's limit (cut not computed)."""
        return self.cut is None


def build_split_network(
    graph: IndexedGraph,
    sources: Sequence[int],
    sink: int,
    limit: int,
) -> ResidualNetwork:
    """Node-split flow network for unit interior vertex capacities.

    Sources and the sink are uncapacitated (the paper assigns them infinite
    capacity); "infinite" arcs are clamped to ``limit`` which preserves all
    min-cut questions below the bound.
    """
    if sink in sources:
        raise FlowError("sink cannot be one of the sources")
    source_set = set(sources)
    super_source = 2 * graph.n
    net = ResidualNetwork(2 * graph.n + 1)
    for v in range(graph.n):
        interior = v not in source_set and v != sink
        net.add_arc(in_node(v), out_node(v), 1 if interior else limit)
    for v in range(graph.n):
        for w in graph.succ[v]:
            net.add_arc(out_node(v), in_node(w), limit)
    # Arcs are added in the caller's source order (first occurrence wins)
    # so the network layout never depends on set iteration order.
    seen = set()
    for s in sources:
        if s in seen:
            continue
        seen.add(s)
        # Paths *start at* the sources, so feed their out-copies directly.
        net.add_arc(super_source, out_node(s), limit)
    return net


def min_vertex_cut(
    graph: IndexedGraph,
    sources: Sequence[int],
    sink: int,
    limit: int = 3,
) -> VertexCutResult:
    """Source-nearest minimum vertex cut separating ``sources`` from ``sink``.

    Only *interior* vertices (neither source nor sink) may appear in the
    cut.  When every source→sink path can be covered by fewer than
    ``limit`` interior vertices, the returned cut has exactly ``flow``
    vertices; otherwise (including the case of a direct source→sink edge,
    which no interior vertex can cut) the result is bounded.

    **Determinism.**  A graph may have several minimum vertex cuts; the
    tie is broken *nearest the sources*, and that choice is unique: the
    residually-reachable node set after any max flow is the smallest
    closed set containing the sources, which depends only on the final
    flow values on saturated arcs — not on the order augmenting paths
    were discovered, the order arcs were inserted, or any dict/set
    iteration order.  Equal inputs therefore always produce the identical
    cut, returned in ascending vertex order.
    """
    if not sources:
        raise FlowError("min_vertex_cut requires at least one source")
    net = build_split_network(graph, sources, sink, limit)
    super_source = 2 * graph.n
    flow = max_flow(net, super_source, in_node(sink), limit=limit)
    if flow >= limit:
        return VertexCutResult(flow=flow, cut=None)
    reachable = net.reachable_from(super_source)
    cut = [
        v
        for v in range(graph.n)
        if reachable[in_node(v)] and not reachable[out_node(v)]
    ]
    if len(cut) != flow:
        raise FlowError(
            f"inconsistent min cut: flow={flow} but extracted {len(cut)} "
            "saturated vertices"
        )
    return VertexCutResult(flow=flow, cut=sorted(cut))


def count_disjoint_paths(
    graph: IndexedGraph,
    sources: Sequence[int],
    sink: int,
    limit: int = 1 << 30,
) -> int:
    """Number of internally vertex-disjoint paths from ``sources`` to ``sink``.

    By Menger's theorem this equals the minimum interior vertex cut except
    when a direct source→sink edge exists (such a path has no interior
    vertex and can never be cut).  Used by the property tests to validate
    :func:`min_vertex_cut`.
    """
    bound = min(limit, graph.n + 1)
    net = build_split_network(graph, sources, sink, limit=bound)
    return max_flow(net, 2 * graph.n, in_node(sink), limit=bound)
