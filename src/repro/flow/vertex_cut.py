"""Minimum vertex cuts between a source set and a sink (Menger form).

This is the engine behind the paper's DOUBLEIDOM: the immediate
double-vertex dominator of a set *S* within a search region is the
**source-nearest minimum vertex cut of size two** separating *S* from the
region's sink.  The source-nearest min cut falls out of the residual
network after max-flow: it consists of the saturated split arcs whose tail
is residually reachable from the sources and whose head is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import FlowError
from ..graph.indexed import IndexedGraph
from .maxflow import max_flow
from .residual import ResidualNetwork, in_node, out_node


@dataclass(frozen=True)
class VertexCutResult:
    """Outcome of a bounded min-vertex-cut computation.

    Attributes
    ----------
    flow:
        Achieved flow value; equals the min vertex cut size when it is
        below ``limit``, otherwise only certifies "cut >= limit".
    cut:
        The source-nearest minimum vertex cut (sorted vertex ids) when
        ``flow < limit``; ``None`` when the bound was hit.
    """

    flow: int
    cut: Optional[List[int]]

    @property
    def bounded(self) -> bool:
        """True when the flow hit the caller's limit (cut not computed)."""
        return self.cut is None


def build_split_network(
    graph: IndexedGraph,
    sources: Sequence[int],
    sink: int,
    limit: int,
) -> ResidualNetwork:
    """Node-split flow network for unit interior vertex capacities.

    Sources and the sink are uncapacitated (the paper assigns them infinite
    capacity); "infinite" arcs are clamped to ``limit`` which preserves all
    min-cut questions below the bound.
    """
    if sink in sources:
        raise FlowError("sink cannot be one of the sources")
    source_set = set(sources)
    super_source = 2 * graph.n
    net = ResidualNetwork(2 * graph.n + 1)
    for v in range(graph.n):
        interior = v not in source_set and v != sink
        net.add_arc(in_node(v), out_node(v), 1 if interior else limit)
    for v in range(graph.n):
        for w in graph.succ[v]:
            net.add_arc(out_node(v), in_node(w), limit)
    # Arcs are added in the caller's source order (first occurrence wins)
    # so the network layout never depends on set iteration order.
    seen = set()
    for s in sources:
        if s in seen:
            continue
        seen.add(s)
        # Paths *start at* the sources, so feed their out-copies directly.
        net.add_arc(super_source, out_node(s), limit)
    return net


def min_vertex_cut(
    graph: IndexedGraph,
    sources: Sequence[int],
    sink: int,
    limit: int = 3,
) -> VertexCutResult:
    """Source-nearest minimum vertex cut separating ``sources`` from ``sink``.

    Only *interior* vertices (neither source nor sink) may appear in the
    cut.  When every source→sink path can be covered by fewer than
    ``limit`` interior vertices, the returned cut has exactly ``flow``
    vertices; otherwise (including the case of a direct source→sink edge,
    which no interior vertex can cut) the result is bounded.

    **Determinism.**  A graph may have several minimum vertex cuts; the
    tie is broken *nearest the sources*, and that choice is unique: the
    residually-reachable node set after any max flow is the smallest
    closed set containing the sources, which depends only on the final
    flow values on saturated arcs — not on the order augmenting paths
    were discovered, the order arcs were inserted, or any dict/set
    iteration order.  Equal inputs therefore always produce the identical
    cut, returned in ascending vertex order.
    """
    if not sources:
        raise FlowError("min_vertex_cut requires at least one source")
    net = build_split_network(graph, sources, sink, limit)
    super_source = 2 * graph.n
    flow = max_flow(net, super_source, in_node(sink), limit=limit)
    if flow >= limit:
        return VertexCutResult(flow=flow, cut=None)
    reachable = net.reachable_from(super_source)
    cut = [
        v
        for v in range(graph.n)
        if reachable[in_node(v)] and not reachable[out_node(v)]
    ]
    if len(cut) != flow:
        raise FlowError(
            f"inconsistent min cut: flow={flow} but extracted {len(cut)} "
            "saturated vertices"
        )
    return VertexCutResult(flow=flow, cut=sorted(cut))


class RegionCutSolver:
    """Reusable min-vertex-cut solver over one fixed region graph.

    The chain search calls DOUBLEIDOM repeatedly inside the *same* search
    region, varying only the source set; :func:`min_vertex_cut` rebuilds
    the whole split network each time (the dominant cost on the Table-1
    sweep).  This solver builds the split and edge arcs **once**, then
    serves each query by

    * appending the query's super-source arcs (truncated away afterwards,
      so arc ids match the one-shot builder's exactly),
    * running the augmenting-path search with preallocated epoch-stamped
      visit/parent arrays instead of per-BFS allocations, and
    * undoing the query through a *touched-arc log*: a flow of at most
      ``limit`` changes O(limit · path length) arcs, so restoring only
      those beats recopying the whole capacity array.

    The arc layout is identical to :func:`build_split_network` (split
    arcs ``2*v``/``2*v+1``, then edge arcs in adjacency order, then
    super-source arcs in source order).  Augmenting paths are found by
    DFS rather than Edmonds–Karp BFS; the extracted cut is still
    bit-identical to the one-shot path because the residually-reachable
    set of *any* max flow is the unique minimal source side among min
    cuts — it does not depend on which augmenting paths were pushed.

    The sink is pinned to ``graph.root`` — the only sink the region
    search ever uses.
    """

    __slots__ = (
        "graph",
        "limit",
        "sink",
        "net",
        "_baseline",
        "_nbase",
        "_stamp",
        "_parent",
        "_epoch",
    )

    def __init__(self, graph: IndexedGraph, limit: int = 3):
        self.graph = graph
        self.limit = limit
        self.sink = sink = graph.root
        n = graph.n
        num_nodes = 2 * n + 1
        net = ResidualNetwork(num_nodes)
        # Bulk-build the arc arrays (per-arc ``add_arc`` calls are
        # measurable on the Table-1 sweep).  Layout: split arc of vertex
        # ``v`` is arc ``2*v`` (reverse ``2*v+1``), then the edge arcs.
        head = net.head
        head.extend(x ^ 1 for x in range(2 * n))
        cap = net.cap
        cap.extend([1, 0] * n)
        cap[2 * sink] = limit
        net.adj = adj = [[i] for i in range(2 * n)]
        adj.append([])  # super source
        aid = 2 * n
        for v in range(n):
            ov = 2 * v + 1
            adj_ov = adj[ov]
            for w in graph.succ[v]:
                iw = 2 * w
                head.append(iw)
                head.append(ov)
                adj_ov.append(aid)
                adj[iw].append(aid + 1)
                aid += 2
        cap.extend([limit, 0] * ((aid - 2 * n) // 2))
        self.net = net
        self._baseline = list(cap)
        self._nbase = aid
        self._stamp = [0] * num_nodes
        self._parent = [0] * num_nodes
        self._epoch = 0

    def min_cut(self, sources: Sequence[int]) -> VertexCutResult:
        """Source-nearest min vertex cut from ``sources`` to the sink.

        Same contract (and same deterministic answer) as
        :func:`min_vertex_cut` with ``sink=graph.root``.
        """
        if not sources:
            raise FlowError("min_vertex_cut requires at least one source")
        if self.sink in sources:
            raise FlowError("sink cannot be one of the sources")
        net = self.net
        head = net.head
        cap = net.cap
        adj = net.adj
        n = self.graph.n
        limit = self.limit
        ss = 2 * n  # super source
        t = 2 * self.sink  # in_node(sink)
        nbase = self._nbase
        adj_ss = adj[ss]
        stamp = self._stamp
        parent = self._parent
        touched: List[int] = []
        activated: List[int] = []
        try:
            aid = nbase
            seen = set()
            for s in sources:
                if s in seen:
                    continue
                seen.add(s)
                sp = 2 * s
                cap[sp] = limit
                touched.append(sp)
                ov = sp + 1
                head.append(ov)
                head.append(ss)
                cap.append(limit)
                cap.append(0)
                adj_ss.append(aid)
                adj[ov].append(aid + 1)
                activated.append(ov)
                aid += 2
            flow = 0
            while flow < limit:
                # Augmenting path by DFS over positive residuals.  Any
                # augmenting order yields the same final answer: the
                # residually-reachable set of *every* max flow is the
                # unique minimal source side among min cuts, so the
                # extracted cut never depends on path choice — and DFS
                # reaches the sink without expanding whole BFS frontiers.
                self._epoch += 1
                epoch = self._epoch
                stamp[ss] = epoch
                stack = [ss]
                found = False
                while stack:
                    u = stack.pop()
                    for arc in adj[u]:
                        v = head[arc]
                        if cap[arc] > 0 and stamp[v] != epoch:
                            stamp[v] = epoch
                            parent[v] = arc
                            if v == t:
                                found = True
                                stack.clear()
                                break
                            stack.append(v)
                if not found:
                    break
                path: List[int] = []
                v = t
                while v != ss:
                    arc = parent[v]
                    path.append(arc)
                    v = head[arc ^ 1]
                bottleneck = min(cap[a] for a in path)
                if bottleneck > limit - flow:
                    bottleneck = limit - flow
                for a in path:
                    cap[a] -= bottleneck
                    cap[a ^ 1] += bottleneck
                    touched.append(a)
                flow += bottleneck
            if flow >= limit:
                return VertexCutResult(flow=flow, cut=None)
            # Residual reachability from the super source; an in-node
            # reached with its out-node unreached is a saturated split
            # arc nearest the sources — a cut vertex.
            self._epoch += 1
            epoch = self._epoch
            stamp[ss] = epoch
            stack = [ss]
            reached_in: List[int] = []
            while stack:
                u = stack.pop()
                for arc in adj[u]:
                    v = head[arc]
                    if cap[arc] > 0 and stamp[v] != epoch:
                        stamp[v] = epoch
                        stack.append(v)
                        if not v & 1:
                            reached_in.append(v)
            cut = [iv >> 1 for iv in reached_in if stamp[iv | 1] != epoch]
            if len(cut) != flow:
                raise FlowError(
                    f"inconsistent min cut: flow={flow} but extracted "
                    f"{len(cut)} saturated vertices"
                )
            cut.sort()
            return VertexCutResult(flow=flow, cut=cut)
        finally:
            # Undo the query: restore touched base arcs from the baseline
            # and truncate the per-query super-source arcs.
            baseline = self._baseline
            for a in touched:
                if a < nbase:
                    cap[a] = baseline[a]
                    cap[a ^ 1] = baseline[a ^ 1]
            del head[nbase:]
            del cap[nbase:]
            adj_ss.clear()
            for ov in activated:
                adj[ov].pop()


def count_disjoint_paths(
    graph: IndexedGraph,
    sources: Sequence[int],
    sink: int,
    limit: int = 1 << 30,
) -> int:
    """Number of internally vertex-disjoint paths from ``sources`` to ``sink``.

    By Menger's theorem this equals the minimum interior vertex cut except
    when a direct source→sink edge exists (such a path has no interior
    vertex and can never be cut).  Used by the property tests to validate
    :func:`min_vertex_cut`.
    """
    bound = min(limit, graph.n + 1)
    net = build_split_network(graph, sources, sink, limit=bound)
    return max_flow(net, 2 * graph.n, in_node(sink), limit=bound)
