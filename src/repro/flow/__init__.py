"""Max-flow with unit vertex capacities and minimum vertex cuts."""

from .maxflow import bfs_augmenting_path, max_flow
from .residual import ResidualNetwork, in_node, out_node
from .vertex_cut import (
    RegionCutSolver,
    VertexCutResult,
    build_split_network,
    count_disjoint_paths,
    min_vertex_cut,
)

__all__ = [
    "RegionCutSolver",
    "ResidualNetwork",
    "VertexCutResult",
    "bfs_augmenting_path",
    "build_split_network",
    "count_disjoint_paths",
    "in_node",
    "max_flow",
    "min_vertex_cut",
    "out_node",
]
