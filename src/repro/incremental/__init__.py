"""Incremental dominator engine: stateful sessions with edit-driven
invalidation.

The serving layer the paper's conclusion calls for: open an
:class:`IncrementalEngine` on a cone, stream typed edits
(:class:`AddGate`, :class:`RemoveGate`, :class:`Rewire`,
:class:`ReplaceSubgraph`) and query dominator chains between them —
only the search regions an edit's dirty cone touches are recomputed,
everything else is served from the persistent region cache.
"""

from .edits import (
    AddGate,
    Edit,
    RemoveGate,
    ReplaceSubgraph,
    Rewire,
    dump_script,
    dumps_script,
    edit_from_dict,
    edit_to_dict,
    load_script,
    loads_script,
    xor_to_nand_edit,
)
from .engine import EngineStats, IncrementalEngine
from .idom_update import affected_cone, downstream_of, update_idoms
from .invalidate import invalidate_dirty

__all__ = [
    "AddGate",
    "Edit",
    "EngineStats",
    "IncrementalEngine",
    "RemoveGate",
    "ReplaceSubgraph",
    "Rewire",
    "affected_cone",
    "downstream_of",
    "dump_script",
    "dumps_script",
    "edit_from_dict",
    "edit_to_dict",
    "invalidate_dirty",
    "load_script",
    "loads_script",
    "update_idoms",
    "xor_to_nand_edit",
]
