"""Edit-driven invalidation of cached search regions.

A cached region entry ``(start, sink, members, pairs)`` stays valid
exactly when the induced subgraph of start→sink paths is unchanged
(``core/regions.py``: the expansion depends on nothing else).  After an
edit batch with *dirty set* ``D`` (every vertex whose fanin or fanout
list changed, plus added and removed vertices), the entry is kept only
if it passes three checks against the **post-edit** graph and dominator
tree:

1. **boundary** — ``start`` is alive, reaches the root, and
   ``idom(start) == sink``: the region is still a cell of the chain
   decomposition;
2. **old members** — ``members ∩ D = ∅``: no path that *existed* can
   have been destroyed, because a destroyed start→sink path must have
   used a removed edge, whose endpoints lay on that path — i.e. inside
   ``members`` — and are in ``D``;
3. **new members** — no ``d ∈ D`` lies on a start→sink path of the
   edited graph: no path can have been *created*, because a new path
   must use an added edge, whose endpoints lie on it and are in ``D``.

Checks 2+3 together also freeze the region's interior edges (a changed
edge inside the region has its endpoints in the old or new member set),
so surviving entries are byte-identical to what recomputation would
produce — the equivalence the property suite fuzzes
(``tests/property/test_incremental_engine.py``).

Check 3 is implemented with the *union* cone: evict when ``start`` can
reach some dirty vertex **and** some dirty vertex can reach ``sink``.
That is a superset of the exact per-``d`` test (for a single-vertex
dirty set they coincide), so it stays sound, and it needs only two
whole-graph BFS passes — the same affected cone
:mod:`repro.incremental.idom_update` computes for the dominator-tree
patch, so a flush shares the work.

Cost: O(E) for the two reachability passes plus O(entries) bookkeeping —
independent of how expensive the cached flow expansions were, which is
the whole point.

This is the circuit-DAG analogue of the edit-localized invalidation
that Georgiadis et al.'s dynamic-dominator study found to dominate
recomputation; the dominator tree itself is small enough to rebuild per
flush, and only the region expansions (max-flow + matching-vector
walks) are worth preserving.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..core.region_cache import RegionCache, RegionEntry
from ..dominators.tree import DominatorTree
from ..graph.indexed import IndexedGraph
from .idom_update import affected_cone, downstream_of


def _boundary_ok(
    entry: RegionEntry, graph: IndexedGraph, tree: DominatorTree
) -> bool:
    start = entry.start
    if not graph.is_alive(start) or not tree.is_reachable(start):
        return False
    if start == tree.root:
        return False
    return tree.idom[start] == entry.sink


def invalidate_dirty(
    cache: RegionCache,
    graph: IndexedGraph,
    tree: DominatorTree,
    dirty: Iterable[int],
    cone: Optional[Set[int]] = None,
    downstream: Optional[Set[int]] = None,
) -> int:
    """Evict every cache entry an edit with dirty set ``dirty`` may affect.

    ``graph`` and ``tree`` must be the **post-edit** graph and its
    refreshed dominator tree.  ``cone``/``downstream`` may pass in the
    precomputed :func:`affected_cone` / :func:`downstream_of` of the
    live dirty vertices to share work with the tree patch.  Returns the
    number of evictions.
    """
    dirty_set = frozenset(dirty)
    live_dirty = [d for d in dirty_set if 0 <= d < graph.n and graph.is_alive(d)]
    if cone is None:
        cone = affected_cone(graph, live_dirty)
    if downstream is None:
        downstream = downstream_of(graph, live_dirty)
    evicted = 0
    for entry in cache.entries():
        if (
            not _boundary_ok(entry, graph, tree)
            or not dirty_set.isdisjoint(entry.members)
            or (entry.start in cone and entry.sink in downstream)
        ):
            cache.evict(entry.start)
            evicted += 1
    return evicted
