"""The incremental dominator engine — stateful sessions over a mutating cone.

The paper closes by noting the algorithm's speed "makes it suitable for
running in an incremental manner during logic synthesis".
:class:`IncrementalEngine` is that serving layer: it owns a live
:class:`~repro.graph.indexed.IndexedGraph`, applies typed edits
(:mod:`repro.incremental.edits`) **in place** (vertex indices of
untouched gates never move), and keeps a cross-edit
:class:`~repro.core.region_cache.RegionCache` of expanded search
regions.  Queries between edits recompute only the regions the edits
could have affected:

* edits are applied eagerly to the graph but dominator state is lazy —
  the dirty set accumulates until the next query ("flush");
* a flush refreshes the single-vertex dominator tree — patched inside
  the edit's affected cone (:mod:`repro.incremental.idom_update`) when
  the cone is small, rebuilt from scratch otherwise — and runs the
  dirty-cone invalidation of :mod:`repro.incremental.invalidate` over
  the region cache (the expensive max-flow expansions are the entries
  being preserved);
* chain queries then run through a regular
  :class:`~repro.core.algorithm.ChainComputer` bound to the surviving
  cache — untouched regions are cache hits, dirty ones recompute.

A failed edit (unknown name, cycle, removing the root) raises before or
mid-way through a batch; already-applied elementary operations of that
batch stay applied — replay scripts should be validated with
``dry_run`` if all-or-nothing behaviour matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from ..core.algorithm import ChainComputer
from ..core.chain import DominatorChain
from ..core.region_cache import CacheStats, RegionCache
from ..dominators.dynamic import (
    EDGE_ADD,
    EDGE_REMOVE,
    VERTEX_ADD,
    VERTEX_REMOVE,
    DynamicDominators,
    certify_tree,
    validate_engine,
)
from ..dominators.shared import validate_backend
from ..dominators.single import circuit_dominator_tree
from ..dominators.tree import DominatorTree
from ..errors import CircuitError
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from .edits import AddGate, Edit, RemoveGate, ReplaceSubgraph, Rewire
from .idom_update import affected_cone, downstream_of, update_idoms
from .invalidate import invalidate_dirty


@dataclass
class EngineStats:
    """Session counters, cheap enough to read at any time.

    ``cache`` aliases the live :class:`CacheStats` of the region cache,
    so hit/miss counts are always current.
    """

    edits: int = 0  # edit records applied (a ReplaceSubgraph counts once)
    operations: int = 0  # elementary graph mutations
    flushes: int = 0  # dominator-state refreshes (one per dirty query)
    tree_patches: int = 0  # flushes served by the dirty-cone idom update
    tree_rebuilds: int = 0  # flushes that fell back to a full rebuild
    dynamic_updates: int = 0  # flushes served by the dynamic maintainer
    dynamic_fallbacks: int = 0  # dynamic flushes over the region threshold
    certificate_checks: int = 0  # low-high certificate runs
    evictions: int = 0  # cache entries dropped by edit invalidation
    chain_hits: int = 0  # queries served by an already-assembled chain
    cache: CacheStats = field(default_factory=CacheStats)

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "edits": self.edits,
            "operations": self.operations,
            "flushes": self.flushes,
            "tree_patches": self.tree_patches,
            "tree_rebuilds": self.tree_rebuilds,
            "dynamic_updates": self.dynamic_updates,
            "dynamic_fallbacks": self.dynamic_fallbacks,
            "certificate_checks": self.certificate_checks,
            "evictions": self.evictions,
            "chain_hits": self.chain_hits,
        }
        data.update(self.cache.as_dict())
        return data


class IncrementalEngine:
    """A stateful dominator-chain session over one output cone.

    Parameters
    ----------
    graph:
        The cone to serve.  The engine edits this object **in place**;
        hand it a private copy if the original must stay pristine.
    algorithm:
        Single-dominator algorithm for tree rebuilds (``"lt"``,
        ``"iterative"`` or ``"naive"``).
    backend:
        Chain-construction backend handed to every
        :class:`~repro.core.algorithm.ChainComputer` the engine builds
        (``"shared"`` default, ``"legacy"`` for the reference path).
        Cached region entries are backend-agnostic — both backends
        produce identical member orderings — so a session's cache
        survives either choice.
    engine:
        Dominator-maintenance strategy for flushes.  ``"patch"``
        (default) is the original dirty-cone idom patch with
        full-rebuild fallback; ``"dynamic"`` keeps a
        :class:`~repro.dominators.dynamic.DynamicDominators` maintainer
        updated in place from the edit stream — no full-graph pass per
        flush — with a static rebuild only when the affected region
        exceeds its threshold.  Both engines serve bit-identical chains.
    metrics:
        Optional :class:`repro.service.metrics.MetricsRegistry`.  The
        dynamic engine counts ``dynamic.updates``,
        ``dynamic.fallback_rebuilds`` and ``dynamic.certificate_checks``
        and observes ``dynamic.affected_region_size`` per batch.

    Examples
    --------
    >>> from repro.circuits.figures import figure2_circuit
    >>> from repro.incremental import IncrementalEngine, Rewire
    >>> engine = IncrementalEngine.from_circuit(figure2_circuit())
    >>> chain = engine.chain("u")          # cold query, fills the cache
    >>> engine.apply(Rewire("k", ("e", "h")))
    >>> engine.chain("u").num_dominators() >= 0   # re-query after the edit
    True
    """

    def __init__(
        self,
        graph: IndexedGraph,
        algorithm: str = "lt",
        backend: str = "shared",
        engine: str = "patch",
        metrics=None,
    ):
        self.graph = graph
        self.algorithm = algorithm
        self.backend = validate_backend(backend)
        self.engine = validate_engine(engine)
        self.metrics = metrics
        self.cache = RegionCache()
        self.gate_types: Dict[str, str] = {}
        self.log: List[Edit] = []
        #: Callbacks fired once per successful :meth:`apply` call that
        #: touched the graph — the hook external caches key on.  The
        #: service layer registers
        #: ``ArtifactStore.listener_for(circuit_key)`` here so on-disk
        #: artifacts version-invalidate in step with edits.
        self._edit_listeners: List = []
        self.stats = EngineStats(cache=self.cache.stats)
        self._dirty: Set[int] = set()
        self._computer: Optional[ChainComputer] = None
        self._tree = None  # DominatorTree (patch) or DynamicTree (dynamic)
        # Dynamic engine state: the maintainer is built lazily on the
        # first flush; elementary edge/vertex deltas queue up between
        # flushes and are folded in as one coalesced batch per cone.
        self._maintainer: Optional[DynamicDominators] = None
        self._deltas: List[tuple] = []
        self._record_deltas = self.engine == "dynamic"
        # assembled-chain cache: u -> (chain, its region cells at assembly
        # time).  A cell is (start, RegionEntry-identity); the chain is
        # valid while the tree chain visits the same cells and every cell
        # still holds the very same entry object (entries are immutable
        # and replaced wholesale, so identity is a validity token).
        self._chains: Dict[int, tuple] = {}

    @classmethod
    def from_circuit(
        cls,
        circuit: Circuit,
        output: Optional[str] = None,
        algorithm: str = "lt",
        backend: str = "shared",
        engine: str = "patch",
        metrics=None,
    ) -> "IncrementalEngine":
        """Open a session on one output cone of a netlist."""
        graph = IndexedGraph.from_circuit(circuit, output)
        engine = cls(graph, algorithm, backend=backend, engine=engine, metrics=metrics)
        for name in graph.names:
            if name is not None and name in circuit:
                engine.gate_types[name] = circuit.node(name).type.value
        return engine

    # ------------------------------------------------------------------
    # edits
    # ------------------------------------------------------------------
    def apply(self, *edits: Edit) -> List[int]:
        """Apply edit records in order; returns the touched vertex indices.

        Dominator state is not recomputed here — the next query pays one
        tree rebuild plus recomputation of the invalidated regions only.

        A failing edit mid-batch leaves the earlier edits applied (see
        the module docstring); the vertices they touched are still folded
        into the dirty set before the exception propagates, so subsequent
        queries never serve dominator state computed for the pre-batch
        graph.
        """
        touched: Set[int] = set()
        try:
            for edit in edits:
                self._apply_one(edit, touched)
                self.log.append(edit)
                self.stats.edits += 1
        finally:
            if touched:
                self._dirty |= touched
                self._computer = None
                for listener in self._edit_listeners:
                    listener()
        return sorted(touched)

    def add_edit_listener(self, callback) -> None:
        """Register a zero-argument callback fired after mutating edits.

        Listeners run after the graph changed but before any dominator
        state is refreshed; exceptions propagate to the ``apply``
        caller.  Used by :class:`repro.service.ArtifactStore` to bump
        its version counter for this circuit.
        """
        self._edit_listeners.append(callback)

    def _apply_one(self, edit: Edit, touched: Set[int]) -> None:
        graph = self.graph
        record = self._deltas.append if self._record_deltas else None
        if isinstance(edit, AddGate):
            fanins = [graph.index_of(f) for f in edit.fanins]
            v = graph.add_vertex(edit.name)
            if record is not None:
                record((VERTEX_ADD, v))
            for f in fanins:
                graph.add_edge(f, v)
                if record is not None:
                    record((EDGE_ADD, f, v))
            touched.add(v)
            touched.update(fanins)
            self.gate_types[edit.name] = edit.gate_type
            self.stats.operations += 1 + len(fanins)
        elif isinstance(edit, RemoveGate):
            v = graph.index_of(edit.name)
            old_preds = list(graph.pred[v]) if record is not None else ()
            old_succs = list(graph.succ[v]) if record is not None else ()
            touched.update(graph.kill_vertex(v))
            if record is not None:  # only after the kill succeeded
                for p in old_preds:
                    record((EDGE_REMOVE, p, v))
                for s in old_succs:
                    record((EDGE_REMOVE, v, s))
                record((VERTEX_REMOVE, v))
            self.gate_types.pop(edit.name, None)
            self.stats.operations += 1
        elif isinstance(edit, Rewire):
            v = graph.index_of(edit.name)
            fanins = [graph.index_of(f) for f in edit.fanins]
            old_preds = list(graph.pred[v]) if record is not None else ()
            touched.update(graph.set_fanins(v, fanins))
            if record is not None:  # only after the rewire succeeded
                for p in old_preds:
                    record((EDGE_REMOVE, p, v))
                for f in fanins:
                    record((EDGE_ADD, f, v))
            if edit.gate_type is not None:
                self.gate_types[edit.name] = edit.gate_type
            self.stats.operations += 1
        elif isinstance(edit, ReplaceSubgraph):
            # Sub-edits share this record's log entry and dirty set.
            for name in edit.remove:
                self._apply_one(RemoveGate(name), touched)
            for gate in edit.add:
                self._apply_one(gate, touched)
            for rewire in edit.rewire:
                self._apply_one(rewire, touched)
        else:
            raise CircuitError(f"not an edit: {edit!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Refresh dominator state now (queries do this automatically)."""
        if self._computer is not None and not self._dirty:
            return
        if self.engine == "dynamic":
            self._flush_dynamic()
            return
        tree: Optional[DominatorTree] = None
        cone = downstream = None
        if self._dirty:
            cone = affected_cone(self.graph, self._dirty)
            downstream = downstream_of(self.graph, self._dirty)
            if self._tree is not None:
                idoms = update_idoms(
                    self.graph, self._tree.idom, self._dirty, cone=cone
                )
                if idoms is not None:
                    tree = DominatorTree(idoms, self.graph.root)
                    self.stats.tree_patches += 1
        if tree is None:
            tree = circuit_dominator_tree(self.graph, self.algorithm)
            self.stats.tree_rebuilds += 1
        if self._dirty:
            self.stats.evictions += invalidate_dirty(
                self.cache, self.graph, tree, self._dirty, cone, downstream
            )
            self._dirty.clear()
        self._tree = tree
        self._computer = ChainComputer(
            self.graph,
            self.algorithm,
            tree=tree,
            region_cache=self.cache,
            backend=self.backend,
        )
        self.stats.flushes += 1

    def _flush_dynamic(self) -> None:
        """Dynamic-engine flush: fold queued deltas into the maintainer.

        Unlike the patch path this never pays a full-graph pass when the
        affected region is small: the maintainer updates its arrays in
        place, the live :class:`~repro.dominators.dynamic.DynamicTree`
        view is reused as-is, and the :class:`ChainComputer` is built
        with ``shared_index=False`` so no per-version cone index is
        rebuilt either.  The region the maintainer reports doubles as
        the invalidation cone for the region cache.
        """
        deltas, self._deltas = self._deltas, []
        cone = None
        if self._maintainer is None:
            # First flush: one static build over the current graph
            # (any edits queued before it are already in the graph).
            self._maintainer = DynamicDominators(self.graph)
            self.stats.tree_rebuilds += 1
        elif deltas:
            cone = self._maintainer.apply_batch(deltas)
            if cone is None:
                self.stats.dynamic_fallbacks += 1
                self.stats.tree_rebuilds += 1
                if self.metrics is not None:
                    self.metrics.inc("dynamic.fallback_rebuilds")
            else:
                self.stats.dynamic_updates += 1
                if self.metrics is not None:
                    self.metrics.inc("dynamic.updates")
                    self.metrics.observe(
                        "dynamic.affected_region_size", len(cone)
                    )
        elif self._dirty:
            # Dirty vertices with no recorded deltas means the graph was
            # mutated behind the engine's back; resync defensively.
            self._maintainer.rebuild()
            self.stats.dynamic_fallbacks += 1
            self.stats.tree_rebuilds += 1
        tree = self._maintainer.tree
        if self._dirty:
            downstream = downstream_of(self.graph, self._dirty)
            self.stats.evictions += invalidate_dirty(
                self.cache, self.graph, tree, self._dirty, cone, downstream
            )
            self._dirty.clear()
        self._tree = tree
        self._computer = ChainComputer(
            self.graph,
            self.algorithm,
            tree=tree,
            region_cache=self.cache,
            backend=self.backend,
            shared_index=False,
        )
        self.stats.flushes += 1

    def check_certificate(self) -> List[str]:
        """Run the O(n + m) low-high certificate on the current tree.

        Builds a low-high order of the flushed dominator tree and
        verifies the ancestor property, exact reachability span and the
        low-high condition (:mod:`repro.dominators.dynamic.lowhigh`).
        An empty list *proves* the tree is the dominator tree of the
        live graph, regardless of which engine maintained it — this is
        the fourth :mod:`repro.check` oracle, run after every edit
        batch in the fuzzer's incremental cases and the daemon's edit
        path.
        """
        self.flush()
        assert self._computer is not None
        if self._maintainer is not None:
            violations = self._maintainer.certificate()
        else:
            violations = certify_tree(self.graph, self._computer.tree.idom)
        self.stats.certificate_checks += 1
        if self.metrics is not None:
            self.metrics.inc("dynamic.certificate_checks")
            if violations:
                self.metrics.inc("dynamic.certificate_failures")
        return violations

    def stats_dict(self) -> Dict[str, object]:
        """Engine counters plus maintainer counters, one flat dict."""
        data = self.stats.as_dict()
        data["engine"] = self.engine
        if self._maintainer is not None:
            data.update(self._maintainer.stats.as_dict())
        return data

    @property
    def tree(self):
        """The current dominator tree (flushes if stale).

        A :class:`~repro.dominators.tree.DominatorTree` under
        ``engine="patch"``; the live
        :class:`~repro.dominators.dynamic.DynamicTree` view under
        ``engine="dynamic"`` (same query surface).
        """
        self.flush()
        assert self._computer is not None
        return self._computer.tree

    def resolve(self, u: Union[int, str]) -> int:
        """Vertex index of ``u`` (name or index)."""
        return self.graph.index_of(u) if isinstance(u, str) else u

    def chain(self, u: Union[int, str]) -> DominatorChain:
        """The dominator chain ``D(u)`` on the current circuit state.

        Served from the assembled-chain cache when every region cell of
        the chain survived all edits since assembly; the returned object
        is shared between such queries and must be treated as read-only.
        """
        self.flush()
        assert self._computer is not None
        u = self.resolve(u)
        cells = self._computer.tree.chain(u)
        cached = self._chains.get(u)
        if cached is not None:
            chain, deps = cached
            if len(deps) == len(cells) - 1 and all(
                start == cell
                and entry is not None
                and self.cache.entry_for(start) is entry
                for (start, entry), cell in zip(deps, cells)
            ):
                self.stats.chain_hits += 1
                return chain
        chain = self._computer.chain(u)
        deps = tuple((s, self.cache.entry_for(s)) for s in cells[:-1])
        self._chains[u] = (chain, deps)
        return chain

    def chains_for_sources(self) -> Dict[int, DominatorChain]:
        """Chains of every live, root-reaching primary input."""
        self.flush()
        assert self._computer is not None
        tree = self._computer.tree
        return {
            u: self.chain(u)
            for u in self.graph.sources()
            if tree.is_reachable(u)
        }

    def dominates(
        self, v1: Union[int, str], v2: Union[int, str], u: Union[int, str]
    ) -> bool:
        """O(1)-per-query check after the chain of ``u`` is (re)built."""
        return self.chain(u).dominates(self.resolve(v1), self.resolve(v2))

    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = self.graph.n - len(self.graph.dead)
        return (
            f"IncrementalEngine(vertices={alive}, edits={self.stats.edits}, "
            f"cache_entries={len(self.cache)}, {self.cache.stats})"
        )
