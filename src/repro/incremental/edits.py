"""Typed circuit edits — the input language of the incremental engine.

Edits are small, name-based, serializable records.  Four kinds:

* :class:`AddGate` — introduce a new gate driven by existing signals,
* :class:`RemoveGate` — delete a gate and every incident net,
* :class:`Rewire` — replace a gate's fanin list (optionally its type),
* :class:`ReplaceSubgraph` — a batch of the above applied atomically
  from the cache's point of view (one invalidation pass), the shape in
  which :mod:`repro.graph.rewrite`-style local rewrites are replayed.

Names rather than vertex indices keep scripts stable across sessions
and make them human-writable; the engine resolves names against its
live :class:`~repro.graph.indexed.IndexedGraph`.

The JSON form (``edit_to_dict``/``edit_from_dict``, ``load_script``/
``dump_script``) is what ``python -m repro edit-session`` replays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CircuitError


@dataclass(frozen=True)
class AddGate:
    """Add gate ``name`` driven by ``fanins`` (existing signal names)."""

    name: str
    fanins: Tuple[str, ...]
    gate_type: str = "and"

    def __post_init__(self) -> None:
        object.__setattr__(self, "fanins", tuple(self.fanins))


@dataclass(frozen=True)
class RemoveGate:
    """Remove gate ``name`` and all nets touching it."""

    name: str


@dataclass(frozen=True)
class Rewire:
    """Replace the fanin list of ``name`` (and optionally its type)."""

    name: str
    fanins: Tuple[str, ...]
    gate_type: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "fanins", tuple(self.fanins))


@dataclass(frozen=True)
class ReplaceSubgraph:
    """A local rewrite: removals, then additions, then rewires.

    The three phases run in that fixed order, so added gates may
    reference surviving signals and the final rewires may reference the
    added gates — sufficient to express the XOR→NAND expansion of
    :func:`repro.graph.rewrite.expand_xors` one gate at a time
    (:func:`xor_to_nand_edit`).
    """

    remove: Tuple[str, ...] = ()
    add: Tuple[AddGate, ...] = ()
    rewire: Tuple[Rewire, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "remove", tuple(self.remove))
        object.__setattr__(self, "add", tuple(self.add))
        object.__setattr__(self, "rewire", tuple(self.rewire))


Edit = Union[AddGate, RemoveGate, Rewire, ReplaceSubgraph]


def xor_to_nand_edit(
    name: str, a: str, b: str, prefix: Optional[str] = None
) -> ReplaceSubgraph:
    """The C499→C1355 rewrite for one 2-input XOR gate, as an edit.

    ``a XOR b = NAND(NAND(a, t), NAND(b, t))`` with ``t = NAND(a, b)``
    (same decomposition as :func:`repro.graph.rewrite.expand_xors`).
    The gate keeps its name — it is rewired to the top NAND — so no
    fanout of ``name`` needs touching.
    """
    p = prefix if prefix is not None else f"{name}_x"
    return ReplaceSubgraph(
        add=(
            AddGate(f"{p}_nt", (a, b), "nand"),
            AddGate(f"{p}_nl", (a, f"{p}_nt"), "nand"),
            AddGate(f"{p}_nr", (b, f"{p}_nt"), "nand"),
        ),
        rewire=(Rewire(name, (f"{p}_nl", f"{p}_nr"), "nand"),),
    )


# ----------------------------------------------------------------------
# JSON (de)serialization
# ----------------------------------------------------------------------
def edit_to_dict(edit: Edit) -> Dict[str, object]:
    """JSON-serializable form of one edit (inverse of ``edit_from_dict``)."""
    if isinstance(edit, AddGate):
        return {
            "op": "add-gate",
            "name": edit.name,
            "fanins": list(edit.fanins),
            "type": edit.gate_type,
        }
    if isinstance(edit, RemoveGate):
        return {"op": "remove-gate", "name": edit.name}
    if isinstance(edit, Rewire):
        data: Dict[str, object] = {
            "op": "rewire",
            "name": edit.name,
            "fanins": list(edit.fanins),
        }
        if edit.gate_type is not None:
            data["type"] = edit.gate_type
        return data
    if isinstance(edit, ReplaceSubgraph):
        return {
            "op": "replace-subgraph",
            "remove": list(edit.remove),
            "add": [edit_to_dict(g) for g in edit.add],
            "rewire": [edit_to_dict(r) for r in edit.rewire],
        }
    raise CircuitError(f"not an edit: {edit!r}")


def edit_from_dict(data: Dict[str, object]) -> Edit:
    """Parse one edit record; raises :class:`CircuitError` on bad input."""
    try:
        op = data["op"]
    except (TypeError, KeyError):
        raise CircuitError(f"edit record without 'op': {data!r}") from None
    if op == "add-gate":
        return AddGate(
            str(data["name"]),
            tuple(data.get("fanins", ())),  # type: ignore[arg-type]
            str(data.get("type", "and")),
        )
    if op == "remove-gate":
        return RemoveGate(str(data["name"]))
    if op == "rewire":
        gate_type = data.get("type")
        return Rewire(
            str(data["name"]),
            tuple(data.get("fanins", ())),  # type: ignore[arg-type]
            None if gate_type is None else str(gate_type),
        )
    if op == "replace-subgraph":
        adds = [edit_from_dict(d) for d in data.get("add", ())]  # type: ignore[union-attr]
        rewires = [edit_from_dict(d) for d in data.get("rewire", ())]  # type: ignore[union-attr]
        if not all(isinstance(g, AddGate) for g in adds):
            raise CircuitError("replace-subgraph 'add' must hold add-gate ops")
        if not all(isinstance(r, Rewire) for r in rewires):
            raise CircuitError("replace-subgraph 'rewire' must hold rewire ops")
        return ReplaceSubgraph(
            tuple(data.get("remove", ())),  # type: ignore[arg-type]
            tuple(adds),  # type: ignore[arg-type]
            tuple(rewires),  # type: ignore[arg-type]
        )
    raise CircuitError(f"unknown edit op {op!r}")


def loads_script(text: str) -> List[Edit]:
    """Parse an edit script: a JSON list or ``{"edits": [...]}``."""
    data = json.loads(text)
    if isinstance(data, dict):
        data = data.get("edits", [])
    if not isinstance(data, list):
        raise CircuitError("edit script must be a list of edit records")
    return [edit_from_dict(d) for d in data]


def load_script(path: str) -> List[Edit]:
    with open(path, "r", encoding="utf-8") as handle:
        return loads_script(handle.read())


def dumps_script(edits: Sequence[Edit], indent: int = 2) -> str:
    return json.dumps(
        {"edits": [edit_to_dict(e) for e in edits]}, indent=indent
    )


def dump_script(edits: Sequence[Edit], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_script(edits) + "\n")
