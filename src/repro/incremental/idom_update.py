"""Dirty-cone immediate-dominator update — skip the per-edit full rebuild.

After an edit batch with dirty set ``D`` (endpoints of every added or
removed edge, plus added/killed vertices), the only vertices whose
immediate dominator can differ from the pre-edit tree are those that can
reach ``D`` in signal orientation — the *affected cone* ``U``:

* a vertex whose dominators changed must have gained or lost a path to
  the root;
* a lost path used a removed edge, and the path prefix up to that edge's
  surviving endpoint is intact in the post-edit graph, so the vertex
  still reaches a member of ``D``;
* a gained path uses an added edge, whose endpoints are in ``D`` and on
  the new path.

So ``idom`` is recomputed only inside ``U``, seeded with the old values
everywhere else.  The restricted dominance equations with a correct
boundary have a *unique* fixpoint: any solution is squeezed between the
true dominator sets (from below, by monotonicity) and the vertex sets of
actual root paths (from above, unrolling the equations along any path
until it leaves ``U``) — both of which are the truth.  Reaching any
fixpoint therefore reproduces exactly what a from-scratch run computes.

The sweep is Cooper–Harvey–Kennedy's RPO pass (``dominators/iterative``)
restricted to ``U``.  Circuit graphs are DAGs, so one topological pass
converges and a second pass verifies; the cost is O(E) for the RPO walk
plus O(edges incident to ``U``) for the sweep — with constants far below
a Lengauer–Tarjan rebuild, which is what makes sub-millisecond flushes
possible on circuits where the edit touches a handful of gates.

``update_idoms`` is defensive: it returns ``None`` (caller falls back to
a full rebuild) when the cone covers most of the live graph, when the
sweep fails to settle, or when the seeded boundary contradicts post-edit
reachability — the invariant violations a bug elsewhere would produce.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from ..dominators.iterative import reverse_post_order
from ..dominators.lengauer_tarjan import UNREACHABLE
from ..graph.indexed import IndexedGraph


def affected_cone(graph: IndexedGraph, dirty: Iterable[int]) -> Set[int]:
    """Vertices that can reach a dirty vertex (the dirty set included)."""
    seen: Set[int] = {d for d in dirty if 0 <= d < graph.n}
    stack = list(seen)
    while stack:
        v = stack.pop()
        for p in graph.pred[v]:
            if p not in seen:
                seen.add(p)
                stack.append(p)
    return seen


def downstream_of(graph: IndexedGraph, dirty: Iterable[int]) -> Set[int]:
    """Vertices reachable from a dirty vertex (the dirty set included)."""
    seen: Set[int] = {d for d in dirty if 0 <= d < graph.n}
    stack = list(seen)
    while stack:
        v = stack.pop()
        for w in graph.succ[v]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return seen


def update_idoms(
    graph: IndexedGraph,
    old_idom: Sequence[int],
    dirty: Iterable[int],
    cone: Optional[Set[int]] = None,
    max_cone_fraction: float = 0.5,
    max_passes: int = 8,
) -> Optional[List[int]]:
    """Post-edit ``idom`` array, recomputed only inside the affected cone.

    ``old_idom`` is the idom array of the pre-edit graph (may be shorter
    than ``graph.n`` if the edits added vertices — additions are dirty,
    hence recomputed).  Returns ``None`` when a full rebuild is the
    better or safer choice; the result is then exactly what
    :func:`~repro.dominators.single.circuit_idoms` would produce.
    """
    n = graph.n
    root = graph.root
    if cone is None:
        cone = affected_cone(graph, dirty)
    alive = n - len(graph.dead)
    live_cone = sum(1 for v in cone if graph.is_alive(v))
    if live_cone > max_cone_fraction * max(1, alive):
        return None

    # RPO of the edge-reversed graph (root -> inputs), the orientation
    # every dominator pass in this repo uses.
    rpo = reverse_post_order(n, graph.pred, root)
    order = [UNREACHABLE] * n
    for pos, v in enumerate(rpo):
        order[v] = pos

    idom = list(old_idom) + [UNREACHABLE] * (n - len(old_idom))
    for v in cone:
        idom[v] = UNREACHABLE
    idom[root] = root

    # Boundary sanity: outside the cone, "has an idom" must still match
    # "reaches the root".  A mismatch means the cone missed an affected
    # vertex — impossible if the dirty set is honest, but cheap to check.
    for v in range(n):
        if (idom[v] != UNREACHABLE) != (order[v] != UNREACHABLE) and v not in cone:
            return None

    targets = sorted(
        (v for v in cone if v != root and order[v] != UNREACHABLE),
        key=order.__getitem__,
    )

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order[a] > order[b]:
                a = idom[a]
            while order[b] > order[a]:
                b = idom[b]
        return a

    # CHK preds in the reversed orientation are the signal-flow fanouts.
    # Topological order over a DAG: pass 1 computes, pass 2 verifies.
    for _ in range(max_passes):
        changed = False
        for v in targets:
            new_idom = UNREACHABLE
            for p in graph.succ[v]:
                if order[p] == UNREACHABLE or idom[p] == UNREACHABLE:
                    continue
                new_idom = p if new_idom == UNREACHABLE else intersect(p, new_idom)
            if new_idom != UNREACHABLE and idom[v] != new_idom:
                idom[v] = new_idom
                changed = True
        if not changed:
            return idom
    return None
