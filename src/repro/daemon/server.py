"""Asyncio front ends for :class:`~repro.daemon.service.DaemonService`.

Two transports share one dispatch path (parse → admit → handle in a
worker thread → reply):

* **JSONL** (:func:`serve_jsonl`, and :func:`serve_stdio` for
  stdin/stdout) — one JSON request per line, one JSON response per
  line.  Requests are processed **concurrently** (each line becomes a
  task; responses carry the request ``id`` and may interleave), which
  is what makes the admission controller's in-flight bound observable
  from a single connection.  An ``EOF`` or a successful ``shutdown``
  ends the session.
* **HTTP** (:func:`serve_http`) — a minimal hand-rolled HTTP/1.1
  endpoint (the toolchain has no aiohttp): ``POST /v1/<op>`` with a
  JSON body of ``{"id", "tenant", "params"}``, or a full protocol
  envelope to ``POST /v1``; ``GET /v1/stats`` for observability.  The
  protocol error code doubles as the HTTP status (200/400/404/429/500),
  and connections are ``Connection: close`` — clients are expected to
  be load generators and tests, not browsers.

CPU-bound work runs in the event loop's default thread pool via
``run_in_executor`` (the service itself fans sweeps to its process
pool), so the loop stays responsive to accept, shed, and report stats
while chains are being computed — backpressure comes from admission
control, not from the accept queue.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Optional, Tuple

from .protocol import ProtocolError, error_response, parse_request
from .service import DaemonService

_MAX_LINE = 16 * 1024 * 1024
_MAX_BODY = 16 * 1024 * 1024


async def _dispatch(service: DaemonService, raw: bytes) -> dict:
    """Parse one raw JSON request and run it on the thread pool."""
    try:
        obj = json.loads(raw)
    except ValueError as exc:
        return error_response(None, 400, "bad_json", f"invalid JSON: {exc}")
    try:
        request = parse_request(obj)
    except ProtocolError as exc:
        request_id = obj.get("id") if isinstance(obj, dict) else None
        return error_response(
            request_id if isinstance(request_id, str) else None,
            exc.code,
            exc.reason,
            str(exc),
        )
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, service.handle, request)


# ----------------------------------------------------------------------
# JSONL transport
# ----------------------------------------------------------------------
async def serve_jsonl(
    service: DaemonService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Run one JSONL session until EOF or shutdown.

    Lines are dispatched concurrently; the write side is serialized by
    a lock so interleaved responses stay line-atomic.
    """
    write_lock = asyncio.Lock()
    pending = set()

    async def _serve_line(line: bytes) -> None:
        response = await _dispatch(service, line)
        payload = json.dumps(response, sort_keys=True) + "\n"
        async with write_lock:
            writer.write(payload.encode("utf-8"))
            await writer.drain()

    while not service.shutdown_requested.is_set():
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):  # oversized or dropped
            break
        if not line:
            break
        if not line.strip():
            continue
        task = asyncio.ensure_future(_serve_line(line))
        pending.add(task)
        task.add_done_callback(pending.discard)
        if service.shutdown_requested.is_set():
            break
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    try:
        async with write_lock:
            await writer.drain()
    except ConnectionError:  # pragma: no cover - peer went away
        pass


async def serve_stdio(service: DaemonService) -> None:
    """JSONL over this process's stdin/stdout (the CLI ``--stdio`` mode)."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader(limit=_MAX_LINE)
    protocol = asyncio.StreamReaderProtocol(reader)
    await loop.connect_read_pipe(lambda: protocol, sys.stdin)
    transport, writer_protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, writer_protocol, reader, loop)
    try:
        await serve_jsonl(service, reader, writer)
    finally:
        transport.close()


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
def _http_payload(status: int, body: bytes) -> bytes:
    reasons = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        413: "Payload Too Large",
        429: "Too Many Requests",
        500: "Internal Server Error",
    }
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request; returns ``(method, path, body)`` or None on EOF."""
    try:
        request_line = await reader.readline()
    except (ValueError, ConnectionError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ProtocolError("malformed request line")
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise ProtocolError("bad Content-Length") from None
    if content_length > _MAX_BODY:
        raise ProtocolError("request body too large", code=413, reason="too_large")
    body = (
        await reader.readexactly(content_length) if content_length else b""
    )
    return method, path, body


async def _handle_http(
    service: DaemonService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            parsed = await _read_http_request(reader)
        except ProtocolError as exc:
            response = error_response(None, exc.code, exc.reason, str(exc))
            body = json.dumps(response).encode("utf-8")
            writer.write(_http_payload(exc.code, body))
            await writer.drain()
            return
        except asyncio.IncompleteReadError:
            return
        if parsed is None:
            return
        method, path, body = parsed

        if method == "GET" and path in ("/v1/stats", "/stats"):
            raw = json.dumps({"v": 1, "op": "stats"}).encode("utf-8")
            response = await _dispatch(service, raw)
        elif method != "POST":
            response = error_response(
                None, 405, "method_not_allowed", f"{method} not supported"
            )
        elif path == "/v1":
            response = await _dispatch(service, body)
        elif path.startswith("/v1/"):
            op = path[len("/v1/") :]
            try:
                extra = json.loads(body) if body.strip() else {}
            except ValueError as exc:
                extra = None
                response = error_response(
                    None, 400, "bad_json", f"invalid JSON body: {exc}"
                )
            if extra is not None:
                if not isinstance(extra, dict):
                    response = error_response(
                        None, 400, "bad_request", "body must be a JSON object"
                    )
                else:
                    envelope = {
                        "v": extra.get("v", 1),
                        "op": op,
                        "id": extra.get("id"),
                        "tenant": extra.get("tenant", "default"),
                        "params": extra.get("params", {}),
                    }
                    response = await _dispatch(
                        service, json.dumps(envelope).encode("utf-8")
                    )
        else:
            response = error_response(
                None, 404, "not_found", f"no route {path!r}"
            )

        status = 200
        if not response.get("ok", False):
            status = int(response.get("error", {}).get("code", 500))
        payload = json.dumps(response, sort_keys=True).encode("utf-8")
        writer.write(_http_payload(status, payload))
        await writer.drain()
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def serve_http(
    service: DaemonService, host: str = "127.0.0.1", port: int = 0
) -> "asyncio.AbstractServer":
    """Start the localhost HTTP endpoint; returns the listening server."""

    async def _client(reader, writer):
        await _handle_http(service, reader, writer)

    return await asyncio.start_server(_client, host=host, port=port)


async def run_daemon(
    service: DaemonService,
    stdio: bool = True,
    http_port: Optional[int] = None,
    host: str = "127.0.0.1",
) -> None:
    """Run the selected front ends until shutdown is requested."""
    http_server = None
    try:
        if http_port is not None:
            http_server = await serve_http(service, host=host, port=http_port)
            bound = http_server.sockets[0].getsockname()
            print(
                f"daemon: http on {bound[0]}:{bound[1]}",
                file=sys.stderr,
                flush=True,
            )
        if stdio:
            await serve_stdio(service)
        else:
            while not service.shutdown_requested.is_set():
                await asyncio.sleep(0.05)
    finally:
        if http_server is not None:
            http_server.close()
            await http_server.wait_closed()
        service.close()


__all__ = [
    "run_daemon",
    "serve_http",
    "serve_jsonl",
    "serve_stdio",
]
