""":class:`DaemonService` — the stateful core behind both front ends.

The service owns everything that should outlive a single request:

* **loaded circuits**, keyed by their canonical fingerprint at load
  time (the key is the client-facing handle and stays stable across
  edits; an internal version counter tracks mutations),
* **per-cone incremental engines** (:class:`~repro.incremental.engine.
  IncrementalEngine`), created on first query of a ``(circuit, output)``
  pair and kept warm so repeat queries hit the region cache and edits
  pay incremental — not from-scratch — recomputation,
* a :class:`~repro.daemon.shm.SharedCircuitPool` publishing each
  circuit version to shared memory once (when enabled and available);
  every engine gets the pool's invalidation listener registered, so an
  applied edit retires the shared segment before any worker could read
  a stale netlist,
* a persistent **worker pool** (``concurrent.futures``
  ``ProcessPoolExecutor``) that ``sweep`` fans cone chunks across —
  with shared memory on, chunk payloads carry a
  :class:`~repro.daemon.shm.CircuitRef` instead of a pickled netlist,
* the :class:`~repro.daemon.admission.AdmissionController` and a
  :class:`~repro.service.metrics.MetricsRegistry` observing per-op
  latency histograms (``daemon.<op>_seconds``) that the ``stats`` op
  reports with interpolated p50/p99.

:meth:`DaemonService.handle` is synchronous and thread-safe — the
asyncio server dispatches it to a thread so the event loop never blocks
on chain construction, and tests can drive the service without an event
loop at all.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..dominators.dynamic import validate_engine
from ..dominators.kernels import validate_kernels
from ..errors import ReproError
from ..graph.circuit import Circuit, Node
from ..graph.node import NodeType
from ..incremental.edits import edit_from_dict
from ..incremental.engine import IncrementalEngine
from ..service.executor import _chunk_entry, pairs_in_chain_dict
from ..service.hashing import circuit_fingerprint
from ..service.metrics import MetricsRegistry
from .admission import AdmissionController
from .protocol import (
    ProtocolError,
    Request,
    error_response,
    ok_response,
)
from .shm import (
    SharedCircuitPool,
    SharedMemoryUnavailable,
    shared_memory_available,
)

#: Ops that bypass admission control: observability and lifecycle must
#: stay reachable exactly when the service is saturated.
_UNGATED_OPS = frozenset({"stats", "shutdown"})


@dataclass
class ServiceConfig:
    """Tuning knobs of one daemon instance."""

    jobs: int = 1
    backend: str = "shared"
    kernels: str = "python"
    engine: str = "patch"
    use_shared_memory: bool = True
    max_in_flight: int = 16
    tenant_rate: float = 50.0
    tenant_burst: float = 20.0
    chunk_size: int = 4

    def __post_init__(self) -> None:
        if self.jobs <= 0:
            raise ValueError(f"jobs must be a positive integer, got {self.jobs}")
        if self.chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be a positive integer, got {self.chunk_size}"
            )
        validate_engine(self.engine)
        validate_kernels(self.kernels)


def _circuit_from_inline(definition: Dict[str, Any]) -> Circuit:
    """Build a circuit from the protocol's inline netlist form.

    ``{"name": ..., "nodes": [{"name", "type", "fanins"}...],
    "outputs": [...]}`` — fanins may reference later nodes, exactly like
    the :class:`Circuit` builder API.
    """
    circuit = Circuit(str(definition.get("name", "inline")))
    nodes = definition.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        raise ProtocolError("inline circuit needs a non-empty nodes list")
    for spec in nodes:
        try:
            name = spec["name"]
            node_type = NodeType(spec.get("type", "input"))
        except (TypeError, KeyError, ValueError) as exc:
            raise ProtocolError(f"bad inline node spec: {exc}") from None
        if node_type is NodeType.INPUT:
            circuit.add_input(name)
        elif node_type is NodeType.CONST0:
            circuit.add_constant(name, 0)
        elif node_type is NodeType.CONST1:
            circuit.add_constant(name, 1)
        else:
            circuit.add_gate(name, node_type, list(spec.get("fanins", ())))
    outputs = definition.get("outputs")
    if not outputs:
        raise ProtocolError("inline circuit needs a non-empty outputs list")
    circuit.set_outputs(outputs)
    circuit.validate()
    return circuit


def _apply_edits_to_circuit(circuit: Circuit, edits) -> Circuit:
    """The netlist-level counterpart of ``IncrementalEngine.apply``.

    Engines mutate per-cone graphs in place; the daemon also needs the
    *source* netlist updated so later sweeps, shared-memory publishes
    and newly opened cones all see the edited circuit.  Returns a fresh
    validated :class:`Circuit` (the old object stays untouched for any
    worker still holding it).
    """
    from ..incremental.edits import AddGate, RemoveGate, ReplaceSubgraph, Rewire

    nodes: Dict[str, Node] = {nm: circuit.node(nm) for nm in circuit}
    order: List[str] = list(circuit)

    def _apply_one(edit) -> None:
        if isinstance(edit, AddGate):
            if edit.name in nodes:
                raise ReproError(f"node {edit.name!r} already defined")
            nodes[edit.name] = Node(
                edit.name, NodeType(edit.gate_type), tuple(edit.fanins)
            )
            order.append(edit.name)
        elif isinstance(edit, RemoveGate):
            if edit.name not in nodes:
                raise ReproError(f"no node named {edit.name!r}")
            del nodes[edit.name]
        elif isinstance(edit, Rewire):
            old = nodes.get(edit.name)
            if old is None:
                raise ReproError(f"no node named {edit.name!r}")
            node_type = (
                NodeType(edit.gate_type)
                if edit.gate_type is not None
                else old.type
            )
            nodes[edit.name] = Node(edit.name, node_type, tuple(edit.fanins))
        elif isinstance(edit, ReplaceSubgraph):
            for name in edit.remove:
                _apply_one(RemoveGate(name))
            for gate in edit.add:
                _apply_one(gate)
            for rewire in edit.rewire:
                _apply_one(rewire)
        else:
            raise ReproError(f"not an edit: {edit!r}")

    for edit in edits:
        _apply_one(edit)

    updated = Circuit(circuit.name)
    for nm in order:
        node = nodes.get(nm)
        if node is None:
            continue
        if node.type is NodeType.INPUT:
            updated.add_input(nm)
        elif node.type is NodeType.CONST0:
            updated.add_constant(nm, 0)
        elif node.type is NodeType.CONST1:
            updated.add_constant(nm, 1)
        else:
            updated.add_gate(nm, node.type, list(node.fanins))
    updated.set_outputs([o for o in circuit.outputs if o in nodes])
    updated.validate()
    return updated


class DaemonService:
    """Request dispatcher over long-lived circuit state.

    Thread-safe: the JSONL and HTTP front ends call :meth:`handle` from
    worker threads concurrently.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.admission = AdmissionController(
            max_in_flight=self.config.max_in_flight,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            clock=clock,
        )
        self._lock = threading.RLock()
        self._circuits: Dict[str, Circuit] = {}
        self._versions: Dict[str, int] = {}
        self._engines: Dict[Tuple[str, str], IncrementalEngine] = {}
        self._closed = False
        self.shutdown_requested = threading.Event()

        self._shm_enabled = (
            self.config.use_shared_memory and shared_memory_available()
        )
        self._pool = SharedCircuitPool(self.metrics) if self._shm_enabled else None
        self._workers: Optional[concurrent.futures.Executor] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _worker_pool(self) -> Optional[concurrent.futures.Executor]:
        """The persistent process pool (created on first sweep)."""
        if self.config.jobs <= 1:
            return None
        with self._lock:
            if self._workers is None:
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-fork platform
                    context = multiprocessing.get_context()
                try:
                    self._workers = concurrent.futures.ProcessPoolExecutor(
                        max_workers=self.config.jobs, mp_context=context
                    )
                except (ImportError, OSError):  # pragma: no cover
                    self.metrics.inc("daemon.pool_fallbacks")
                    self._workers = None
            return self._workers

    def close(self) -> None:
        """Tear down workers and unlink every shared-memory segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, None
        if workers is not None:
            workers.shutdown(wait=True)
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "DaemonService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Dict[str, Any]:
        """Execute one request, returning the response envelope."""
        self.metrics.inc("daemon.requests")
        self.metrics.inc(f"daemon.requests_{request.op}")
        if request.op not in _UNGATED_OPS:
            admitted, reason = self.admission.admit(request.tenant)
            if not admitted:
                self.metrics.inc("daemon.shed")
                return error_response(
                    request.id,
                    429,
                    reason or "shed",
                    "request shed by admission control; retry with backoff",
                    tenant=request.tenant,
                )
        else:
            admitted = False
        start = time.perf_counter()
        try:
            handler = getattr(self, f"_op_{request.op}")
            result = handler(request.params)
            return ok_response(request.id, result)
        except ProtocolError as exc:
            return error_response(request.id, exc.code, exc.reason, str(exc))
        except ReproError as exc:
            return error_response(request.id, 400, "domain_error", str(exc))
        except Exception as exc:  # noqa: BLE001 - the service must not die
            self.metrics.inc("daemon.internal_errors")
            return error_response(
                request.id, 500, "internal_error", f"{type(exc).__name__}: {exc}"
            )
        finally:
            self.metrics.observe(
                f"daemon.{request.op}_seconds", time.perf_counter() - start
            )
            if admitted:
                self.admission.release()

    # ------------------------------------------------------------------
    # circuit registry helpers
    # ------------------------------------------------------------------
    def _resolve_circuit(self, params: Dict[str, Any]) -> Tuple[str, Circuit]:
        key = params.get("circuit")
        if not isinstance(key, str):
            raise ProtocolError("params.circuit (a load key) is required")
        with self._lock:
            circuit = self._circuits.get(key)
        if circuit is None:
            raise ProtocolError(
                f"unknown circuit {key!r}; load it first",
                code=404,
                reason="unknown_circuit",
            )
        return key, circuit

    def _resolve_output(self, circuit: Circuit, params: Dict[str, Any]) -> str:
        output = params.get("output")
        if output is None:
            if len(circuit.outputs) == 1:
                return circuit.outputs[0]
            raise ProtocolError(
                f"circuit has {len(circuit.outputs)} outputs; "
                "params.output is required"
            )
        if output not in circuit.outputs:
            raise ProtocolError(
                f"unknown output {output!r}",
                code=404,
                reason="unknown_output",
            )
        return output

    def _engine(self, key: str, output: str) -> IncrementalEngine:
        with self._lock:
            engine = self._engines.get((key, output))
            if engine is None:
                engine = IncrementalEngine.from_circuit(
                    self._circuits[key].copy(),
                    output,
                    backend=self.config.backend,
                    engine=self.config.engine,
                    metrics=self.metrics,
                )
                if self._pool is not None:
                    engine.add_edit_listener(self._pool.listener_for(key))
                self._engines[(key, output)] = engine
                self.metrics.inc("daemon.engines_opened")
            return engine

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_load(self, params: Dict[str, Any]) -> Dict[str, Any]:
        if "path" in params:
            from ..cli import load_netlist

            circuit = load_netlist(str(params["path"]))
        elif "suite" in params:
            from ..circuits.suite import table1_suite

            suite = table1_suite()
            name = str(params["suite"])
            if name not in suite:
                raise ProtocolError(
                    f"unknown suite circuit {name!r}",
                    code=404,
                    reason="unknown_circuit",
                )
            circuit = suite[name].circuit(float(params.get("scale", 1.0)))
        elif "definition" in params:
            circuit = _circuit_from_inline(params["definition"])
        else:
            raise ProtocolError(
                "params must carry one of: path, suite, definition"
            )
        key = circuit_fingerprint(circuit)
        with self._lock:
            fresh = key not in self._circuits
            self._circuits[key] = circuit
            if fresh:
                self._versions[key] = 1
        ref = None
        if self._pool is not None:
            try:
                ref = self._pool.publish(circuit, key)
            except SharedMemoryUnavailable:  # pragma: no cover - race w/ close
                ref = None
        self.metrics.inc("daemon.circuits_loaded")
        result: Dict[str, Any] = {
            "circuit": key,
            "name": circuit.name,
            "nodes": len(circuit),
            "inputs": len(circuit.inputs),
            "outputs": circuit.outputs,
            "version": self._versions[key],
        }
        if ref is not None:
            result["shared_memory"] = {
                "segment": ref.segment,
                "bytes": ref.size,
                "version": ref.version,
            }
        return result

    def _op_chain(self, params: Dict[str, Any]) -> Dict[str, Any]:
        key, circuit = self._resolve_circuit(params)
        output = self._resolve_output(circuit, params)
        targets = params.get("targets")
        if targets is not None and not isinstance(targets, list):
            raise ProtocolError("params.targets must be a list or null")
        engine = self._engine(key, output)
        graph = engine.graph
        if targets is None:
            indices = [
                u for u in graph.sources() if engine.tree.is_reachable(u)
            ]
        else:
            try:
                indices = [graph.index_of(t) for t in targets]
            except ReproError as exc:
                raise ProtocolError(
                    str(exc), code=404, reason="unknown_target"
                ) from None
        chains: Dict[str, Dict[str, Any]] = {}
        for u in indices:
            name = graph.name_of(u)
            chains[name if name is not None else str(u)] = (
                engine.chain(u).to_dict()
            )
        return {
            "circuit": key,
            "output": output,
            "version": self._versions[key],
            "chains": chains,
        }

    def _op_sweep(self, params: Dict[str, Any]) -> Dict[str, Any]:
        key, circuit = self._resolve_circuit(params)
        outputs = params.get("outputs")
        if outputs is None:
            outputs = circuit.outputs
        elif not isinstance(outputs, list):
            raise ProtocolError("params.outputs must be a list or null")
        bad = [o for o in outputs if o not in circuit.outputs]
        if bad:
            raise ProtocolError(
                f"unknown outputs: {bad}", code=404, reason="unknown_output"
            )
        cone_jobs = [(str(o), None) for o in outputs]
        start = time.perf_counter()
        results, dispatch = self._run_cone_jobs(key, circuit, cone_jobs)
        wall = time.perf_counter() - start
        cones = [
            {
                "output": output,
                "chains": len(chains),
                "pairs": sum(
                    pairs_in_chain_dict(c) for c in chains.values()
                ),
                "wall": cone_wall,
            }
            for output, chains, cone_wall in results
        ]
        return {
            "circuit": key,
            "version": self._versions[key],
            "dispatch": dispatch,
            "wall": wall,
            "cones": cones,
            "total_pairs": sum(c["pairs"] for c in cones),
        }

    def _run_cone_jobs(self, key: str, circuit: Circuit, cone_jobs):
        """Run cone jobs on the worker pool; returns (results, dispatch).

        Results keep submission order: ``[(output, chains, wall), ...]``.
        """
        workers = self._worker_pool()
        if workers is None or len(cone_jobs) <= 1:
            results, snapshot = _chunk_entry(
                (circuit, cone_jobs, self.config.backend, self.config.kernels)
            )
            self.metrics.merge_snapshot(snapshot)
            return results, "inline"

        payload_circuit: Any = circuit
        dispatch = "pickle"
        if self._pool is not None:
            try:
                payload_circuit = self._pool.publish(circuit, key)
                dispatch = "shm"
            except SharedMemoryUnavailable:
                payload_circuit = circuit
        size = self.config.chunk_size
        chunks = [
            cone_jobs[i : i + size] for i in range(0, len(cone_jobs), size)
        ]
        futures = [
            workers.submit(
                _chunk_entry,
                (payload_circuit, chunk, self.config.backend, self.config.kernels),
            )
            for chunk in chunks
        ]
        results = []
        for chunk, future in zip(chunks, futures):
            try:
                chunk_results, snapshot = future.result()
            except Exception:
                # A dead worker must not kill the request: recompute the
                # chunk inline.
                self.metrics.inc("daemon.worker_failures")
                chunk_results, snapshot = _chunk_entry(
                    (circuit, chunk, self.config.backend, self.config.kernels)
                )
            self.metrics.merge_snapshot(snapshot)
            results.extend(chunk_results)
        return results, dispatch

    def _op_edit(self, params: Dict[str, Any]) -> Dict[str, Any]:
        key, circuit = self._resolve_circuit(params)
        edit_dicts = params.get("edits")
        if not isinstance(edit_dicts, list) or not edit_dicts:
            raise ProtocolError("params.edits must be a non-empty list")
        try:
            edits = [edit_from_dict(d) for d in edit_dicts]
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad edit record: {exc}") from None

        # The source netlist first: if the edit script is invalid the
        # request fails here, before any engine state mutates.
        updated = _apply_edits_to_circuit(circuit, edits)

        output = params.get("output")
        touched: List[int] = []
        if output is not None:
            if output not in circuit.outputs:
                raise ProtocolError(
                    f"unknown output {output!r}",
                    code=404,
                    reason="unknown_output",
                )
            # Incremental path: the open engine applies the edits in
            # place (firing the shared-memory invalidation listener) and
            # keeps its region cache.
            touched = self._engine(key, str(output)).apply(*edits)

        with self._lock:
            self._circuits[key] = updated
            self._versions[key] += 1
            version = self._versions[key]
            # Engines of *other* cones were built from the pre-edit
            # netlist; drop them so the next query reopens fresh.
            for engine_key in list(self._engines):
                if engine_key[0] == key and engine_key[1] != output:
                    del self._engines[engine_key]
                    self.metrics.inc("daemon.engines_dropped")
        if self._pool is not None and output is None:
            # No engine applied the edit, so no listener fired; retire
            # the published segment explicitly.
            self._pool.invalidate(key)
        self.metrics.inc("daemon.edits_applied", len(edits))
        if output is not None and self.config.engine == "dynamic":
            # The dynamic engine proves its maintained tree correct
            # after every edit batch; a failed certificate is an
            # internal invariant violation, so the broken engine is
            # dropped (next query reopens fresh) and the client gets a
            # 500 — the netlist itself is already updated above.
            violations = self._engine(key, str(output)).check_certificate()
            if violations:
                with self._lock:
                    self._engines.pop((key, str(output)), None)
                self.metrics.inc("daemon.certificate_failures")
                raise ProtocolError(
                    "low-high certificate failed after edit: "
                    + "; ".join(violations[:3]),
                    code=500,
                    reason="certificate_failed",
                )
        return {
            "circuit": key,
            "version": version,
            "edits": len(edits),
            "touched": len(touched),
            "nodes": len(updated),
        }

    def _op_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        quantiles: Dict[str, Dict[str, float]] = {}
        for name, histogram in self.metrics.histograms().items():
            quantiles[name] = {
                "count": histogram.count,
                "p50": histogram.quantile(0.5),
                "p99": histogram.quantile(0.99),
            }
        with self._lock:
            circuits = {
                key: {
                    "name": c.name,
                    "nodes": len(c),
                    "version": self._versions[key],
                }
                for key, c in self._circuits.items()
            }
            engines = len(self._engines)
            # Aggregate the per-session counters of every warm engine —
            # under engine="dynamic" this includes the maintainer's
            # update/fallback/certificate counts.
            engine_stats: Dict[str, int] = {}
            for session in self._engines.values():
                for stat_key, value in session.stats_dict().items():
                    if isinstance(value, int):
                        engine_stats[stat_key] = (
                            engine_stats.get(stat_key, 0) + value
                        )
        result: Dict[str, Any] = {
            "metrics": self.metrics.snapshot(),
            "latency": quantiles,
            "admission": self.admission.as_dict(),
            "circuits": circuits,
            "engines": engines,
            "engine": self.config.engine,
            "engine_stats": engine_stats,
            "jobs": self.config.jobs,
            "backend": self.config.backend,
            "shared_memory": (
                self._pool.stats() if self._pool is not None else None
            ),
        }
        return result

    def _op_shutdown(self, params: Dict[str, Any]) -> Dict[str, Any]:
        self.shutdown_requested.set()
        return {"stopping": True}


__all__ = ["DaemonService", "ServiceConfig"]
