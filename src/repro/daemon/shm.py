"""Shared-memory circuit publication (:class:`SharedCircuitPool`).

The per-chunk cost of the :class:`~repro.service.executor.ParallelExecutor`
is dominated, for large netlists, by shipping the circuit: every chunk
pickles the whole :class:`~repro.graph.circuit.Circuit` into the task
payload, and every worker re-derives the
:class:`~repro.dominators.shared.SharedCircuitIndex` (topological order,
int-id adjacency) from scratch per chunk.  This module publishes each
circuit **version** into one :mod:`multiprocessing.shared_memory`
segment instead:

* the segment holds a compact, self-describing encoding — a JSON header
  (name, node order, gate types, inputs/outputs) followed by the flat
  CSR fanin arrays (``array('q')`` offsets + indices) that *are* the
  ``SharedCircuitIndex`` layout;
* :func:`attach_circuit` in a worker maps the segment, decodes it once,
  **pre-seeds** the circuit-index cache from the CSR arrays (no re-walk
  of the netlist), and caches the result in a refcounted worker-local
  table keyed by segment name — subsequent chunks for the same circuit
  version are a dictionary hit;
* a new circuit version gets a new segment name, so stale worker caches
  can never serve an edited circuit: invalidation is just "publish
  under the next name", wired to
  :meth:`repro.incremental.IncrementalEngine.add_edit_listener` through
  :meth:`SharedCircuitPool.listener_for`.

Decoded circuits are **bit-compatible** with pickled ones: the header
carries the publisher's topological order and the decoder installs it
verbatim, so every downstream vertex numbering (cone extraction, chain
vertex ids) matches the pickle path exactly — the equivalence tests
compare the two dispatch modes result-for-result.

On platforms without ``multiprocessing.shared_memory`` (or without
``/dev/shm``) the pool reports itself unavailable and callers fall back
to pickled dispatch.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - platform probe
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - no shm on this platform
    shared_memory = None  # type: ignore[assignment]

from ..dominators.shared import SharedCircuitIndex, _CIRCUIT_INDEXES
from ..graph.circuit import Circuit
from ..graph.node import NodeType
from .. import errors as _errors

_MAGIC = b"RPC1"
_LEN = struct.Struct("<Q")


class SharedMemoryUnavailable(_errors.ReproError):
    """Raised when shared-memory publication is requested but impossible."""


def shared_memory_available() -> bool:
    """Whether this platform can create shared-memory segments."""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):  # pragma: no cover - degraded platform
        return False
    probe.close()
    probe.unlink()
    return True


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def encode_circuit(circuit: Circuit) -> bytes:
    """Serialize a circuit into the flat segment layout.

    Layout: magic, length-prefixed JSON header, then the CSR fanin
    arrays (``offsets[n + 1]`` and ``fanins[nnz]`` as little-endian
    int64) indexing into the header's topological node order.
    """
    order = circuit.topological_order()
    index = {nm: i for i, nm in enumerate(order)}
    fanins = array("q")
    offsets = array("q", [0])
    for nm in order:
        for driver in circuit.fanins(nm):
            fanins.append(index[driver])
        offsets.append(len(fanins))
    header = json.dumps(
        {
            "name": circuit.name,
            "order": order,
            "types": [circuit.node(nm).type.value for nm in order],
            "inputs": circuit.inputs,
            "outputs": circuit.outputs,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    parts = [
        _MAGIC,
        _LEN.pack(len(header)),
        header,
        _LEN.pack(len(order)),
        _LEN.pack(len(fanins)),
        offsets.tobytes(),
        fanins.tobytes(),
    ]
    return b"".join(parts)


def decode_circuit(buf) -> Circuit:
    """Rebuild a circuit (plus its pre-seeded index) from segment bytes.

    The decoded circuit's cached topological order is the publisher's,
    and the :class:`SharedCircuitIndex` is reconstructed directly from
    the CSR arrays and installed in the circuit-index cache — a worker
    using the shared backend never re-derives either.
    """
    view = memoryview(buf)
    if bytes(view[:4]) != _MAGIC:
        raise ValueError("not a shared-circuit segment (bad magic)")
    pos = 4
    (header_len,) = _LEN.unpack_from(view, pos)
    pos += _LEN.size
    header = json.loads(bytes(view[pos : pos + header_len]).decode("utf-8"))
    pos += header_len
    (n,) = _LEN.unpack_from(view, pos)
    pos += _LEN.size
    (nnz,) = _LEN.unpack_from(view, pos)
    pos += _LEN.size
    offsets = array("q")
    offsets.frombytes(bytes(view[pos : pos + 8 * (n + 1)]))
    pos += 8 * (n + 1)
    fanins = array("q")
    fanins.frombytes(bytes(view[pos : pos + 8 * nnz]))

    order: List[str] = header["order"]
    types: List[str] = header["types"]
    circuit = Circuit(header["name"])
    for i, nm in enumerate(order):
        node_type = NodeType(types[i])
        if node_type is NodeType.INPUT:
            circuit.add_input(nm)
        elif node_type is NodeType.CONST0:
            circuit.add_constant(nm, 0)
        elif node_type is NodeType.CONST1:
            circuit.add_constant(nm, 1)
        else:
            circuit.add_gate(
                nm,
                node_type,
                [order[f] for f in fanins[offsets[i] : offsets[i + 1]]],
            )
    circuit.set_outputs(header["outputs"])
    # Restore the publisher's declaration order of inputs (nodes were
    # inserted in topological order above) and install its topological
    # order verbatim, so fingerprints and every downstream vertex
    # numbering match the pickle dispatch path exactly.
    circuit._inputs = list(header["inputs"])
    circuit._topo = list(order)

    shared_index = SharedCircuitIndex.__new__(SharedCircuitIndex)
    shared_index.order = list(order)
    shared_index.index = {nm: i for i, nm in enumerate(order)}
    succ: List[List[int]] = [[] for _ in range(n)]
    pred: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for f in fanins[offsets[i] : offsets[i + 1]]:
            succ[f].append(i)
            pred[i].append(f)
    shared_index.succ = succ
    shared_index.pred = pred
    shared_index._size = len(circuit)
    _CIRCUIT_INDEXES[circuit] = shared_index
    return circuit


# ----------------------------------------------------------------------
# refs and the worker-side attach cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CircuitRef:
    """Picklable handle to one published circuit version.

    This is what crosses the process boundary instead of the circuit:
    a segment name, the payload size, and bookkeeping identity
    (``key``/``version``) for diagnostics.
    """

    segment: str
    size: int
    key: str
    version: int


#: Worker-local attach cache: segment name -> (shm, circuit, refcount).
#: A new circuit version always has a new segment name, so a hit can
#: never be stale.
_ATTACHED: Dict[str, Tuple[object, Circuit, int]] = {}
_ATTACH_LOCK = threading.Lock()


def attach_circuit(ref: CircuitRef) -> Circuit:
    """Map a published segment and return its decoded circuit.

    Refcounted per segment name: the first attach maps + decodes, later
    ones are cache hits.  Pair every attach with :func:`detach_circuit`
    (or call :func:`detach_all` at worker teardown).
    """
    if shared_memory is None:  # pragma: no cover - degraded platform
        raise SharedMemoryUnavailable(
            "multiprocessing.shared_memory is unavailable"
        )
    with _ATTACH_LOCK:
        cached = _ATTACHED.get(ref.segment)
        if cached is not None:
            shm, circuit, count = cached
            _ATTACHED[ref.segment] = (shm, circuit, count + 1)
            return circuit
        shm = shared_memory.SharedMemory(name=ref.segment)
        try:
            circuit = decode_circuit(shm.buf[: ref.size])
        except Exception:
            shm.close()
            raise
        _ATTACHED[ref.segment] = (shm, circuit, 1)
        return circuit


def detach_circuit(ref: CircuitRef) -> None:
    """Release one attach; unmaps the segment at refcount zero."""
    with _ATTACH_LOCK:
        cached = _ATTACHED.get(ref.segment)
        if cached is None:
            return
        shm, circuit, count = cached
        if count > 1:
            _ATTACHED[ref.segment] = (shm, circuit, count - 1)
            return
        del _ATTACHED[ref.segment]
        shm.close()


def detach_all() -> None:
    """Drop every cached attachment (worker teardown)."""
    with _ATTACH_LOCK:
        for shm, _circuit, _count in _ATTACHED.values():
            shm.close()
        _ATTACHED.clear()


def attached_segments() -> List[str]:
    """Names of currently attached segments (diagnostics/tests)."""
    with _ATTACH_LOCK:
        return sorted(_ATTACHED)


# ----------------------------------------------------------------------
# the publisher
# ----------------------------------------------------------------------
class SharedCircuitPool:
    """Publishes circuit versions to shared memory, exactly once each.

    One pool lives in the dispatching process (the daemon, or a
    shared-memory-enabled executor).  ``publish`` is idempotent per
    ``(key, version)``; ``invalidate`` retires the current version so
    the next ``publish`` creates a fresh segment under a new name.
    Unlinking is safe while workers are still attached (POSIX keeps the
    mapping alive until the last close), so invalidation never races a
    worker mid-decode.
    """

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics
        self._lock = threading.Lock()
        self._segments: Dict[str, Tuple[int, object, CircuitRef]] = {}
        self._versions: Dict[str, int] = {}
        self._counter = 0
        self._closed = False

    # -- bookkeeping ----------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def version(self, key: str) -> int:
        """Current published version of a circuit key (0 = never)."""
        with self._lock:
            return self._versions.get(key, 0)

    def ref(self, key: str) -> Optional[CircuitRef]:
        """The live ref for a key, if its current version is published."""
        with self._lock:
            entry = self._segments.get(key)
            return entry[2] if entry is not None else None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "published": self._counter,
                "live_segments": len(self._segments),
                "bytes_live": sum(
                    ref.size for _, _, ref in self._segments.values()
                ),
            }

    # -- publish / invalidate ------------------------------------------
    def publish(self, circuit: Circuit, key: str) -> CircuitRef:
        """Ensure the circuit's current version is in shared memory.

        Returns the existing ref when ``(key, current version)`` is
        already published — the once-per-version guarantee.
        """
        if shared_memory is None:  # pragma: no cover - degraded platform
            raise SharedMemoryUnavailable(
                "multiprocessing.shared_memory is unavailable"
            )
        with self._lock:
            if self._closed:
                raise SharedMemoryUnavailable("pool is closed")
            entry = self._segments.get(key)
            if entry is not None:
                self._count("shm.publish_hits")
                return entry[2]
            version = self._versions.get(key, 0) + 1
            self._versions[key] = version
            payload = encode_circuit(circuit)
            self._counter += 1
            name = f"rpro_{key[:8]}_{version}_{os.getpid()}_{self._counter}"
            shm = shared_memory.SharedMemory(
                create=True, size=len(payload), name=name
            )
            shm.buf[: len(payload)] = payload
            ref = CircuitRef(
                segment=shm.name,
                size=len(payload),
                key=key,
                version=version,
            )
            self._segments[key] = (version, shm, ref)
            self._count("shm.publishes")
            self._count("shm.bytes_published", len(payload))
            return ref

    def invalidate(self, key: str) -> None:
        """Retire the published version of a circuit (e.g. after an edit).

        The old segment is unlinked immediately; attached workers keep
        their mapping until they detach, and the next :meth:`publish`
        creates version + 1 under a fresh name.
        """
        with self._lock:
            entry = self._segments.pop(key, None)
            if entry is None:
                return
            _version, shm, _ref = entry
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._count("shm.invalidations")

    def listener_for(self, key: str):
        """Zero-argument edit callback retiring this key's segment.

        Register with
        :meth:`repro.incremental.IncrementalEngine.add_edit_listener`
        so circuit edits invalidate the shared-memory copy in step.
        """

        def _on_edit() -> None:
            self.invalidate(key)

        return _on_edit

    def close(self) -> None:
        """Unlink every live segment; the pool rejects further publishes."""
        with self._lock:
            for _version, shm, _ref in self._segments.values():
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            self._segments.clear()
            self._closed = True

    def __enter__(self) -> "SharedCircuitPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "CircuitRef",
    "SharedCircuitPool",
    "SharedMemoryUnavailable",
    "attach_circuit",
    "attached_segments",
    "decode_circuit",
    "detach_all",
    "detach_circuit",
    "encode_circuit",
    "shared_memory_available",
]
