"""Admission control for the daemon: bounded in-flight + token buckets.

A long-lived service must fail *fast* when oversubscribed — queueing
every burst unboundedly just converts overload into timeout storms.  The
daemon therefore runs every request (except ``stats``/``shutdown``)
through an :class:`AdmissionController` before any work is scheduled:

* a global **in-flight cap**: at most ``max_in_flight`` requests may be
  executing or queued for the worker pool at once; request number
  ``max_in_flight + 1`` is shed immediately with a 429-style response,
* a per-tenant **token bucket** (``rate`` tokens/second, ``burst``
  capacity): a single chatty tenant exhausts its own bucket and gets
  shed while other tenants' buckets stay full — per-tenant fairness
  without queues or scheduling.

Shedding is explicit and cheap: the caller gets
``{"error": {"code": 429, "reason": ...}}`` and may retry with backoff.
The controller is thread-safe (the asyncio front end and pool callbacks
touch it from different contexts) and takes an injectable clock so
tests can drive refill deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    The bucket starts full.  ``try_acquire`` refills lazily from the
    injected clock and either takes a token or reports the shortage —
    it never blocks.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` (and no debit) if not."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token count (after a lazy refill)."""
        with self._lock:
            self._refill()
            return self._tokens


@dataclass
class AdmissionStats:
    """Lifetime counters of one controller."""

    admitted: int = 0
    shed_in_flight: int = 0
    shed_rate_limited: int = 0
    peak_in_flight: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "shed_in_flight": self.shed_in_flight,
            "shed_rate_limited": self.shed_rate_limited,
            "peak_in_flight": self.peak_in_flight,
        }


class AdmissionController:
    """Admit-or-shed gate in front of the daemon's work queue.

    Parameters
    ----------
    max_in_flight:
        Global cap on concurrently admitted requests.
    tenant_rate, tenant_burst:
        Token-bucket parameters applied to every tenant individually
        (buckets are created on first sight of a tenant id).
    clock:
        Injectable monotonic clock shared by all buckets.
    """

    #: Shed reasons, stable strings for clients and metrics.
    REASON_IN_FLIGHT = "in_flight_limit"
    REASON_RATE = "tenant_rate_limit"

    def __init__(
        self,
        max_in_flight: int = 16,
        tenant_rate: float = 50.0,
        tenant_burst: float = 20.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_in_flight <= 0:
            raise ValueError(
                f"max_in_flight must be positive, got {max_in_flight}"
            )
        if tenant_rate <= 0:
            raise ValueError(f"tenant_rate must be positive, got {tenant_rate}")
        if tenant_burst <= 0:
            raise ValueError(
                f"tenant_burst must be positive, got {tenant_burst}"
            )
        self.max_in_flight = max_in_flight
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._in_flight = 0
        self._lock = threading.Lock()
        self.stats = AdmissionStats()

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.tenant_rate, self.tenant_burst, self._clock
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str = "default") -> Tuple[bool, Optional[str]]:
        """Try to admit one request; returns ``(admitted, shed_reason)``.

        An admitted request **must** be paired with exactly one
        :meth:`release` call when it finishes (success or failure).
        """
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                self.stats.shed_in_flight += 1
                return False, self.REASON_IN_FLIGHT
            bucket = self._bucket(tenant)
            if not bucket.try_acquire():
                self.stats.shed_rate_limited += 1
                return False, self.REASON_RATE
            self._in_flight += 1
            self.stats.admitted += 1
            if self._in_flight > self.stats.peak_in_flight:
                self.stats.peak_in_flight = self._in_flight
            return True, None

    def release(self) -> None:
        """Return one in-flight slot (exactly once per admitted request)."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching admit()")
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            data: Dict[str, object] = {
                "in_flight": self._in_flight,
                "max_in_flight": self.max_in_flight,
                "tenants": len(self._buckets),
            }
        data.update(self.stats.as_dict())
        return data


__all__ = ["AdmissionController", "AdmissionStats", "TokenBucket"]
