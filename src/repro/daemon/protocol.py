"""The daemon's versioned request/response protocol.

Every request is one JSON object (one line in JSONL transport, one POST
body over HTTP)::

    {"v": 1, "op": "chain", "id": "q-17", "tenant": "alice",
     "params": {"circuit": "<key>", "output": "f", "targets": ["a"]}}

* ``v`` — protocol version; requests with a different major version are
  rejected with code 400 (``unsupported_version``) so clients never get
  silently misinterpreted,
* ``op`` — one of ``load``, ``chain``, ``sweep``, ``edit``, ``stats``,
  ``shutdown``,
* ``id`` — opaque client token echoed in the response (responses may be
  delivered out of order on the JSONL transport),
* ``tenant`` — admission-control identity (defaults to ``"default"``),
* ``params`` — operation arguments.

Responses mirror the shape::

    {"v": 1, "id": "q-17", "ok": true,  "result": {...}}
    {"v": 1, "id": "q-17", "ok": false,
     "error": {"code": 429, "reason": "tenant_rate_limit", ...}}

Error codes follow HTTP semantics (400 malformed / 404 unknown circuit
/ 429 shed / 500 internal) and double as the HTTP status on the HTTP
transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

PROTOCOL_VERSION = 1

#: Operations the daemon understands.
OPERATIONS = ("load", "chain", "sweep", "edit", "stats", "shutdown")


class ProtocolError(Exception):
    """A malformed or unsupported request (maps to a 4xx response)."""

    def __init__(self, message: str, code: int = 400, reason: str = "bad_request"):
        super().__init__(message)
        self.code = code
        self.reason = reason


@dataclass
class Request:
    """One parsed, validated protocol request."""

    op: str
    id: Optional[str] = None
    tenant: str = "default"
    params: Dict[str, Any] = field(default_factory=dict)


def parse_request(obj: Any) -> Request:
    """Validate a decoded JSON object into a :class:`Request`.

    Raises :class:`ProtocolError` (code 400) on anything malformed; the
    error message is safe to echo back to the client.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    version = obj.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this daemon speaks v{PROTOCOL_VERSION})",
            reason="unsupported_version",
        )
    op = obj.get("op")
    if op not in OPERATIONS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}",
            reason="unknown_op",
        )
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError("id must be a string when present")
    tenant = obj.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("tenant must be a non-empty string")
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("params must be a JSON object")
    return Request(op=op, id=request_id, tenant=tenant, params=params)


def ok_response(request_id: Optional[str], result: Any) -> Dict[str, Any]:
    """A success envelope for one request."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": result,
    }


def error_response(
    request_id: Optional[str],
    code: int,
    reason: str,
    message: str,
    **extra: Any,
) -> Dict[str, Any]:
    """A failure envelope; ``code`` doubles as the HTTP status."""
    error: Dict[str, Any] = {
        "code": code,
        "reason": reason,
        "message": message,
    }
    error.update(extra)
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error,
    }


__all__ = [
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "error_response",
    "ok_response",
    "parse_request",
]
