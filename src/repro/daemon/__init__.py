"""``repro.daemon`` — the long-lived async dominator-query service.

Where :mod:`repro.service` runs one batch and exits, this package keeps
a process alive between queries and makes the expensive state persistent:

* :mod:`~repro.daemon.shm` — :class:`SharedCircuitPool` publishes each
  circuit version into a :mod:`multiprocessing.shared_memory` segment
  exactly once (flat CSR arrays plus the
  :class:`~repro.dominators.shared.SharedCircuitIndex` layout); workers
  attach refcounted and decode once per circuit version instead of
  unpickling the netlist with every chunk,
* :mod:`~repro.daemon.admission` — bounded in-flight admission with
  per-tenant token buckets; oversubscribed tenants are shed with
  429-style responses instead of queueing unboundedly,
* :mod:`~repro.daemon.protocol` — the versioned JSON request protocol
  (``load`` / ``chain`` / ``sweep`` / ``edit`` / ``stats`` /
  ``shutdown``),
* :mod:`~repro.daemon.service` — :class:`DaemonService`, the stateful
  core holding loaded circuits, per-cone incremental engines and the
  persistent worker pool,
* :mod:`~repro.daemon.server` — the asyncio front ends: stdin/stdout
  JSONL and a localhost HTTP/1.1 endpoint.

The CLI surface is ``python -m repro daemon`` (``--stdio`` or
``--http PORT``); see ``docs/DAEMON.md`` for the architecture notes.
"""

from .admission import AdmissionController, TokenBucket
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
)
from .service import DaemonService, ServiceConfig
from .shm import (
    CircuitRef,
    SharedCircuitPool,
    attach_circuit,
    decode_circuit,
    detach_circuit,
    encode_circuit,
)

__all__ = [
    "AdmissionController",
    "CircuitRef",
    "DaemonService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "ServiceConfig",
    "SharedCircuitPool",
    "TokenBucket",
    "attach_circuit",
    "decode_circuit",
    "detach_circuit",
    "encode_circuit",
    "error_response",
    "ok_response",
    "parse_request",
]
