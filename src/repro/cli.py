"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``chains``  — dominator chains of a netlist's primary inputs::

    python -m repro chains design.bench --output out1 --target in3

``stats``   — circuit statistics (Table 1's descriptive columns)::

    python -m repro stats design.blif

``counts``  — single/double dominator counts (Table 1 columns 4 and 5)::

    python -m repro counts design.bench

``table1``  — delegate to the full experiment harness.

``edit-session`` — replay a JSON edit script against one cone with the
incremental engine, re-querying chains after every edit and reporting
cache hit/miss/invalidation statistics (optionally comparing against
full recomputation)::

    python -m repro edit-session design.bench edits.json --compare

``sweep`` — parallel dominator-chain sweep over the built-in circuit
suite through :mod:`repro.service` (worker pool, artifact store,
metrics snapshot)::

    python -m repro sweep --jobs 4 --quick --metrics metrics.json

With ``--sequential {core,unroll:N}`` the sweep runs the built-in
*sequential* suite (shift register, LFSR, pipelined ALU) in the chosen
view; ``--prefilter biconn`` skips chain construction on cones whose
undirected skeleton certifies them pair-free::

    python -m repro sweep --sequential core --prefilter biconn

``chains`` and ``check`` accept the same ``--sequential`` flag for
``.bench`` netlists with ``DFF`` lines; ``check --sequential`` also
cross-checks the combinational core against the frame-0 slice of the
time-frame unrolling (mismatch kind ``sequential``).

``serve-batch`` — answer a JSON file of chain requests (deduplicated,
batched per cone, optionally parallel and artifact-backed)::

    python -m repro serve-batch requests.json --out responses.json

``check`` — differential correctness oracle over a netlist: the paper's
algorithm, the baseline [11] and brute-force enumeration must agree
pair-for-pair, and the chain's O(1) look-up structure must be
self-consistent at its interval boundaries.  Exit 1 on mismatch::

    python -m repro check design.bench --metrics check-metrics.json

``fuzz`` — seeded randomized differential fuzzing; mismatching circuits
are shrunk to minimal ``.bench`` repros.  Exit 1 on any failure::

    python -m repro fuzz --seed 0 --cases 500 --out repros/

Error contract: every command exits 2 with a one-line message on stderr
for malformed netlists, unknown outputs/targets and unreadable files —
a traceback out of the CLI is always a bug.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .core.algorithm import ChainComputer
from .core.api import count_double_dominators, count_single_dominators
from .dominators.dynamic import ENGINES, validate_engine
from .dominators.kernels import KERNELS, validate_kernels
from .dominators.shared import BACKENDS, validate_backend
from .analysis.biconnectivity import VALID_PREFILTERS, validate_prefilter
from .errors import ReproError
from .graph.circuit import Circuit
from .graph.indexed import IndexedGraph
from .graph.sequential import extract_combinational_core, unrolled
from .graph.stats import circuit_stats
from .parsers import bench, blif, verilog


def load_netlist(path: str) -> Circuit:
    """Load a netlist by extension (.bench, .blif or .v)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".bench":
        return bench.load(path)
    if suffix == ".blif":
        return blif.load(path)
    if suffix in (".v", ".verilog"):
        return verilog.load(path)
    raise SystemExit(
        f"unsupported netlist format {suffix!r} "
        "(expected .bench, .blif or .v)"
    )


def load_analysis_netlist(path: str, sequential):
    """Load a netlist, optionally through the sequential front end.

    ``sequential`` is ``None`` (combinational, any format) or a parsed
    ``--sequential`` view — ``("core", 0)`` or ``("unroll", N)``.  In a
    sequential view the netlist must be a ``.bench`` file with ``DFF``
    lines (:func:`repro.parsers.bench.load_sequential`); it is lowered
    to the flop-cut combinational core or the ``N``-frame unrolling.

    Returns ``(circuit, sequential_circuit_or_None)`` so callers that
    need the original state machine (the ``check`` command's
    core-vs-unrolling differential) still have it.
    """
    if sequential is None:
        return load_netlist(path), None
    suffix = Path(path).suffix.lower()
    if suffix != ".bench":
        raise SystemExit(
            f"--sequential requires a .bench netlist with DFF lines, "
            f"got {suffix!r}"
        )
    machine = bench.load_sequential(path)
    mode, frames = sequential
    if mode == "core":
        return extract_combinational_core(machine), machine
    return unrolled(machine, frames), machine


def _cmd_chains(args: argparse.Namespace) -> int:
    circuit, _ = load_analysis_netlist(args.netlist, args.sequential)
    output = args.output or (
        circuit.outputs[0] if len(circuit.outputs) == 1 else None
    )
    if output is None:
        print(
            f"circuit has {len(circuit.outputs)} outputs; pass --output",
            file=sys.stderr,
        )
        return 2
    graph = IndexedGraph.from_circuit(circuit, output)
    computer = ChainComputer(
        graph,
        backend=args.backend,
        kernels=args.kernels,
        prefilter=args.prefilter,
    )
    if computer.certified_empty:
        print(
            f"prefilter: cone {output} certified pair-free "
            "(chain construction skipped)",
            file=sys.stderr,
        )
    targets = (
        [graph.index_of(args.target)]
        if args.target
        else graph.sources()
    )
    for u in targets:
        chain = computer.chain(u)
        print(
            f"{graph.name_of(u)}: {chain.num_dominators()} pairs  "
            f"D = {chain.format(graph.name_of)}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = circuit_stats(load_netlist(args.netlist))
    for key, value in stats.as_dict().items():
        print(f"{key:12s} {value}")
    return 0


def _cmd_counts(args: argparse.Namespace) -> int:
    circuit = load_netlist(args.netlist)
    singles = count_single_dominators(circuit)
    doubles = count_double_dominators(
        circuit, backend=args.backend, kernels=args.kernels
    )
    print(f"single-vertex dominators of >=1 PI (per cone, summed): {singles}")
    print(f"double-vertex dominators of >=1 PI (per cone, summed): {doubles}")
    return 0


def _cmd_edit_session(args: argparse.Namespace) -> int:
    from .errors import CircuitError
    from .incremental import IncrementalEngine, load_script

    circuit = load_netlist(args.netlist)
    output = args.output or (
        circuit.outputs[0] if len(circuit.outputs) == 1 else None
    )
    if output is None:
        print(
            f"circuit has {len(circuit.outputs)} outputs; pass --output",
            file=sys.stderr,
        )
        return 2
    try:
        edits = load_script(args.script)
    except OSError as exc:
        print(f"cannot read edit script {args.script}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, CircuitError) as exc:
        # ValueError covers json.JSONDecodeError (malformed/empty file);
        # CircuitError covers structurally invalid edit records.
        print(f"invalid edit script {args.script}: {exc}", file=sys.stderr)
        return 2
    if not edits:
        print(
            f"edit script {args.script} contains no edits", file=sys.stderr
        )
        return 2
    engine = IncrementalEngine.from_circuit(
        circuit, output, backend=args.backend, engine=args.engine
    )

    def query():
        chains = engine.chains_for_sources()
        return len(chains), sum(c.num_dominators() for c in chains.values())

    start = time.perf_counter()
    n_chains, n_pairs = query()
    print(
        f"initial: {n_chains} PI chains, {n_pairs} dominator pairs "
        f"({engine.graph.n} vertices)"
    )
    for step, edit in enumerate(edits, 1):
        touched = engine.apply(edit)
        n_chains, n_pairs = query()
        print(
            f"edit {step:3d} [{type(edit).__name__}]: "
            f"{len(touched)} vertices touched, "
            f"{n_chains} chains, {n_pairs} pairs"
        )
    incremental_time = time.perf_counter() - start

    print("\nsession statistics:")
    for key, value in engine.stats_dict().items():
        print(f"  {key:28s} {value}")

    if args.compare:
        # replay as a cold engine per step: the from-scratch strawman
        start = time.perf_counter()
        cold = IncrementalEngine.from_circuit(
            circuit, output, backend=args.backend
        )
        ChainComputer(
            cold.graph, tree=None, backend=args.backend
        ).chains_for_sources()
        for edit in edits:
            cold.apply(edit)
            cold.flush()
            fresh = ChainComputer(cold.graph, backend=args.backend)
            tree = fresh.tree
            for u in cold.graph.sources():
                if tree.is_reachable(u):
                    fresh.chain(u)
        recompute_time = time.perf_counter() - start
        speedup = recompute_time / incremental_time if incremental_time else 0
        print(
            f"\nincremental {incremental_time * 1e3:9.1f} ms   "
            f"full recompute {recompute_time * 1e3:9.1f} ms   "
            f"speedup {speedup:.1f}x"
        )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import check_circuit, check_sequential
    from .service import MetricsRegistry

    circuit, machine = load_analysis_netlist(args.netlist, args.sequential)
    outputs = None
    if args.output:
        if args.output not in circuit:
            print(
                f"unknown output {args.output!r} in {args.netlist}",
                file=sys.stderr,
            )
            return 2
        outputs = [args.output]
    metrics = MetricsRegistry()
    report = check_circuit(
        circuit,
        outputs=outputs,
        algorithm=args.algorithm,
        brute_limit=args.brute_limit,
        metrics=metrics,
        backend=args.backend,
        kernels=args.kernels,
    )
    print(report.summary())
    for mismatch in report.mismatches:
        print(f"MISMATCH {mismatch}")
    ok = report.ok
    if machine is not None:
        # The sequential differential rides along: the combinational
        # core and the frame-0 slice of the unrolling must serve
        # identical chains for every cone (2 frames unless the user
        # asked for a deeper unrolling).
        frames = max(args.sequential[1], 2)
        seq_report = check_sequential(
            machine,
            frames=frames,
            algorithm=args.algorithm,
            metrics=metrics,
            backend=args.backend,
            kernels=args.kernels,
        )
        print(seq_report.summary())
        for mismatch in seq_report.mismatches:
            print(f"MISMATCH {mismatch}")
        ok = ok and seq_report.ok
    _export_metrics(metrics, args.metrics)
    return 0 if ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .check import run_fuzz
    from .service import MetricsRegistry

    inject = None
    if args.inject_fault == "xor":
        from .graph.node import NodeType

        def inject(circuit):  # noqa: F811 - selected fault predicate
            return any(
                node.type in (NodeType.XOR, NodeType.XNOR)
                for node in circuit.nodes()
            )

    metrics = MetricsRegistry()
    progress = None
    if args.progress:
        progress = lambda i, case: print(  # noqa: E731
            f"case {i:5d}: {case.kind} ({case.circuit.name})",
            file=sys.stderr,
        )
    result = run_fuzz(
        seed=args.seed,
        cases=args.cases,
        max_gates=args.max_gates,
        out_dir=args.out,
        inject_fault=inject,
        metrics=metrics,
        progress=progress,
        backend=args.backend,
        kernels=args.kernels,
    )
    print(result.summary())
    for failure in result.failures:
        where = (
            f" -> {failure.repro_path}" if failure.repro_path else ""
        )
        print(
            f"FAILURE case {failure.case.index} [{failure.case.kind}] "
            f"shrunk to {failure.shrunk_gates} gate(s){where}"
        )
        for mismatch in failure.mismatches[:4]:
            print(f"  {mismatch}")
    _export_metrics(metrics, args.metrics)
    return 0 if result.ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import table1

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.scale != 1.0:
        forwarded.extend(["--scale", str(args.scale)])
    if args.jobs != 1:
        forwarded.extend(["--jobs", str(args.jobs)])
    if args.seed is not None:
        forwarded.extend(["--seed", str(args.seed)])
    if args.backend != "shared":
        forwarded.extend(["--backend", args.backend])
    return table1.main(forwarded)


def _make_executor(args: argparse.Namespace):
    """Executor + metrics + optional artifact store from CLI flags."""
    from .service import (
        ArtifactStore,
        ExecutorConfig,
        MetricsRegistry,
        ParallelExecutor,
    )

    metrics = MetricsRegistry()
    store = (
        ArtifactStore(args.artifacts, metrics=metrics)
        if getattr(args, "artifacts", None)
        else None
    )
    executor = ParallelExecutor(
        ExecutorConfig(
            jobs=args.jobs,
            timeout=args.timeout,
            backend=getattr(args, "backend", "shared"),
            kernels=getattr(args, "kernels", "python"),
            prefilter=getattr(args, "prefilter", "none"),
        ),
        metrics=metrics,
        store=store,
    )
    return executor, metrics


def _export_metrics(metrics, path: Optional[str]) -> None:
    if path:
        metrics.export_json(path)
        print(f"metrics snapshot written to {path}", file=sys.stderr)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .circuits.suite import QUICK_SUBSET, sequential_suite, table1_suite
    from .service import sweep_sequential_suite, sweep_suite

    if args.sequential:
        suite = sequential_suite()
        names = args.names or None
        unknown = [n for n in (names or []) if n not in suite]
        if unknown:
            print(
                f"unknown sequential benchmark(s): {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(suite))})",
                file=sys.stderr,
            )
            return 2
        executor, metrics = _make_executor(args)
        report = sweep_sequential_suite(
            executor,
            names=names,
            scale=args.scale,
            view=args.sequential,
            verbose=not args.no_progress,
        )
    else:
        suite = table1_suite()
        names = args.names or (QUICK_SUBSET if args.quick else None)
        unknown = [n for n in (names or []) if n not in suite]
        if unknown:
            print(
                f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr
            )
            return 2
        executor, metrics = _make_executor(args)
        report = sweep_suite(
            executor,
            names=names,
            scale=args.scale,
            verbose=not args.no_progress,
        )
    header = (
        f"{'name':10s} {'cones':>6s} {'chains':>7s} {'pairs':>8s} "
        f"{'wall [s]':>9s} {'art.hits':>8s}"
    )
    print(header)
    print("-" * len(header))
    for row in report.circuits:
        print(
            f"{row.name:10s} {row.cones:6d} {row.chains:7d} {row.pairs:8d} "
            f"{row.wall:9.3f} {row.artifact_hits:8d}"
        )
    print(
        f"\ntotal: {report.total_pairs} pairs over "
        f"{len(report.circuits)} circuits in {report.total_wall:.3f} s "
        f"(jobs={report.jobs})"
    )
    if args.prefilter != "none":
        counters = metrics.snapshot()["counters"]
        print(
            f"prefilter={args.prefilter}: "
            f"{counters.get('core.prefilter_certified', 0)} cone(s) "
            f"certified pair-free, "
            f"{counters.get('core.prefilter_skipped', 0)} chain "
            "construction(s) skipped"
        )
    _export_metrics(metrics, args.metrics)
    return 0


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    import json

    from .service import ChainRequest, JobQueue, circuit_fingerprint

    try:
        with open(args.requests, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        print(f"cannot read {args.requests}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"invalid request file {args.requests}: {exc}", file=sys.stderr)
        return 2
    raw_requests = (
        data.get("requests") if isinstance(data, dict) else data
    )
    if not isinstance(raw_requests, list) or not raw_requests:
        print(
            f"request file {args.requests} holds no requests "
            '(expected {"requests": [...]})',
            file=sys.stderr,
        )
        return 2

    executor, metrics = _make_executor(args)
    queue = JobQueue()
    circuits = {}  # fingerprint -> Circuit
    keys_by_path = {}  # netlist path -> fingerprint
    records = []  # (record, circuit_key, outputs, targets)
    for idx, record in enumerate(raw_requests):
        if not isinstance(record, dict) or "netlist" not in record:
            print(
                f"request #{idx} is malformed (needs a 'netlist' field)",
                file=sys.stderr,
            )
            return 2
        path = record["netlist"]
        if path not in keys_by_path:
            circuit = load_netlist(path)
            key = circuit_fingerprint(circuit)
            keys_by_path[path] = key
            circuits[key] = circuit
        key = keys_by_path[path]
        circuit = circuits[key]
        outputs = (
            [record["output"]] if record.get("output") else circuit.outputs
        )
        bad = [o for o in outputs if o not in circuit]
        if bad:
            print(
                f"request #{idx}: unknown output(s) {', '.join(bad)}",
                file=sys.stderr,
            )
            return 2
        targets = record.get("targets")
        bad = [t for t in targets or () if t not in circuit]
        if bad:
            print(
                f"request #{idx}: unknown target(s) {', '.join(bad)}",
                file=sys.stderr,
            )
            return 2
        request_id = str(record.get("id", idx))
        for output in outputs:
            if targets:
                for target in targets:
                    queue.submit(
                        ChainRequest(key, output, target, request_id)
                    )
            else:
                queue.submit(ChainRequest(key, output, None, request_id))
        records.append((record, key, outputs, targets))

    from .errors import CircuitError

    batches = queue.drain()
    try:
        results = executor.run_batches(circuits, batches)
    except CircuitError as exc:
        # e.g. a target that exists in the netlist but not in the
        # requested output cone.
        print(f"cannot serve batch: {exc}", file=sys.stderr)
        return 2

    responses = []
    for idx, (record, key, outputs, targets) in enumerate(records):
        for output in outputs:
            cone = results[(key, output)]
            chains = cone.chains
            if targets:
                chains = {t: chains[t] for t in targets if t in chains}
            responses.append(
                {
                    "id": str(record.get("id", idx)),
                    "circuit": key,
                    "output": output,
                    "source": cone.source,
                    "chains": chains,
                }
            )
    payload = {
        "responses": responses,
        "queue": queue.stats.as_dict(),
        "metrics": metrics.snapshot(),
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"{len(responses)} response(s) written to {args.out}",
            file=sys.stderr,
        )
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    _export_metrics(metrics, args.metrics)
    return 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    import asyncio

    from .daemon import DaemonService, ServiceConfig
    from .daemon.server import run_daemon

    if not args.stdio and args.http is None:
        print(
            "error: pick at least one transport (--stdio and/or --http PORT)",
            file=sys.stderr,
        )
        return 2
    service = DaemonService(
        ServiceConfig(
            jobs=args.jobs,
            backend=getattr(args, "backend", "shared"),
            kernels=getattr(args, "kernels", "python"),
            engine=getattr(args, "engine", "patch"),
            use_shared_memory=not args.no_shared_memory,
            max_in_flight=args.max_in_flight,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
        )
    )
    try:
        asyncio.run(
            run_daemon(service, stdio=args.stdio, http_port=args.http)
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        service.close()
        _export_metrics(service.metrics, args.metrics)
    return 0


def jobs_arg(value: str) -> int:
    """Shared ``argparse`` validator for every ``--jobs`` flag.

    Worker counts must be positive integers (``1`` = in-process); zero,
    negative or non-integer values exit 2 with a one-line message in
    every CLI that takes the flag (``sweep``, ``serve-batch``,
    ``table1``, ``daemon``) instead of misbehaving deep inside the pool
    setup.
    """
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {value!r}"
        ) from None
    if jobs <= 0:
        raise argparse.ArgumentTypeError(
            f"worker count must be positive, got {jobs}"
        )
    return jobs


def timeout_arg(value: str) -> float:
    """Shared ``argparse`` validator for every ``--timeout`` flag."""
    try:
        timeout = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got {value!r}"
        ) from None
    if timeout < 0:
        raise argparse.ArgumentTypeError(
            f"timeout must be non-negative, got {value}"
        )
    return timeout


def positive_float_arg(value: str) -> float:
    """Shared ``argparse`` validator for rate/burst-style flags."""
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {value!r}"
        ) from None
    if number <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return number


def sequential_arg(value: str):
    """Shared ``argparse`` validator for every ``--sequential`` flag.

    Accepts ``core`` (flop-cut combinational core) or ``unroll:N``
    (``N``-frame time-frame unrolling, ``N`` >= 1); anything else exits
    2 with a one-line message.  Returns the parsed ``(mode, frames)``
    view tuple consumed by :func:`load_analysis_netlist`.
    """
    if value == "core":
        return ("core", 0)
    if value.startswith("unroll:"):
        raw = value.split(":", 1)[1]
        try:
            frames = int(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected an integer frame count after 'unroll:', "
                f"got {raw!r}"
            ) from None
        if frames < 1:
            raise argparse.ArgumentTypeError(
                f"frame count must be positive, got {frames}"
            )
        return ("unroll", frames)
    raise argparse.ArgumentTypeError(
        f"expected 'core' or 'unroll:N', got {value!r}"
    )


def _add_sequential_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sequential",
        default=None,
        type=sequential_arg,
        metavar="{core,unroll:N}",
        help="sequential view: the flop-cut combinational core or an "
        "N-frame time-frame unrolling (chains/check: the netlist must "
        "be a .bench with DFF lines; sweep: runs the built-in "
        "sequential suite instead of Table 1)",
    )


def prefilter_arg(value: str) -> str:
    """Shared ``argparse`` validator for every ``--prefilter`` flag.

    Mirrors :func:`backend_arg`: an unknown pre-filter name exits 2
    with the canonical one-line message listing the registered filters
    (:data:`repro.analysis.biconnectivity.VALID_PREFILTERS`).
    """
    try:
        return validate_prefilter(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_prefilter_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prefilter",
        default="none",
        type=prefilter_arg,
        metavar="{%s}" % ",".join(VALID_PREFILTERS),
        help="cone pre-filter: 'biconn' certifies pair-free cones by "
        "chain decomposition of the undirected skeleton and skips chain "
        "construction there (identical results, empty chains served "
        "in O(1))",
    )


def backend_arg(value: str) -> str:
    """Shared ``argparse`` validator for every ``--backend`` flag.

    All CLIs (including the benchmark scripts) funnel backend names
    through this so an unknown backend is rejected uniformly — exit 2
    with the canonical one-line message instead of a per-tool variant
    or, worse, a traceback deep inside the run.
    """
    try:
        return validate_backend(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def engine_arg(value: str) -> str:
    """Shared ``argparse`` validator for every ``--engine`` flag.

    Mirrors :func:`backend_arg`: an unknown incremental-engine name
    exits 2 with the canonical one-line message listing the registered
    engines (:data:`repro.dominators.dynamic.ENGINES`) in every CLI
    that takes the flag (``edit-session``, ``daemon``).
    """
    try:
        return validate_engine(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default="patch",
        type=engine_arg,
        metavar="{%s}" % ",".join(ENGINES),
        help="incremental dominator maintenance: dirty-cone idom patch "
        "with rebuild fallback (default) or the true dynamic maintainer "
        "with low-high certificates",
    )


def kernels_arg(value: str) -> str:
    """Shared ``argparse`` validator for every ``--kernels`` flag.

    Mirrors :func:`backend_arg`: an unknown kernels name exits 2 with
    the canonical one-line message listing the registered
    implementations (:data:`repro.dominators.kernels.KERNELS`).
    """
    try:
        return validate_kernels(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_kernels_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernels",
        default="python",
        type=kernels_arg,
        metavar="{%s}" % ",".join(KERNELS),
        help="hot-path implementation: pure python (default, always "
        "available) or numpy flat-array kernels for the tree pass and "
        "wide shared-backend regions (identical chains)",
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="shared",
        type=backend_arg,
        metavar="{%s}" % ",".join(BACKENDS),
        help="chain-construction backend: one shared array index per "
        "circuit version (default), the legacy per-call subgraphs, or "
        "the linear-time all-pairs construction",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="double-vertex dominator toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_chains = sub.add_parser("chains", help="dominator chains of a netlist")
    p_chains.add_argument("netlist")
    p_chains.add_argument("--output", help="output cone to analyze")
    p_chains.add_argument("--target", help="single target vertex (default: all PIs)")
    _add_backend_flag(p_chains)
    _add_kernels_flag(p_chains)
    _add_sequential_flag(p_chains)
    _add_prefilter_flag(p_chains)
    p_chains.set_defaults(func=_cmd_chains)

    p_stats = sub.add_parser("stats", help="circuit statistics")
    p_stats.add_argument("netlist")
    p_stats.set_defaults(func=_cmd_stats)

    p_counts = sub.add_parser("counts", help="Table-1 dominator counts")
    p_counts.add_argument("netlist")
    _add_backend_flag(p_counts)
    _add_kernels_flag(p_counts)
    p_counts.set_defaults(func=_cmd_counts)

    p_edit = sub.add_parser(
        "edit-session",
        help="replay a JSON edit script with the incremental engine",
    )
    p_edit.add_argument("netlist")
    p_edit.add_argument("script", help="JSON edit script (see repro.incremental.edits)")
    p_edit.add_argument("--output", help="output cone to analyze")
    p_edit.add_argument(
        "--compare",
        action="store_true",
        help="also time from-scratch recomputation per edit",
    )
    _add_backend_flag(p_edit)
    _add_engine_flag(p_edit)
    p_edit.set_defaults(func=_cmd_edit_session)

    p_check = sub.add_parser(
        "check",
        help="differential correctness oracle (chain vs baseline vs brute)",
    )
    p_check.add_argument("netlist")
    p_check.add_argument("--output", help="check a single output cone")
    p_check.add_argument(
        "--algorithm",
        default="lt",
        choices=("lt", "iterative", "naive"),
        help="single-dominator algorithm used internally",
    )
    p_check.add_argument(
        "--brute-limit",
        type=int,
        default=48,
        metavar="N",
        help="skip brute-force confirmation above N cone vertices",
    )
    p_check.add_argument(
        "--metrics", metavar="FILE", help="write metrics snapshot JSON"
    )
    _add_backend_flag(p_check)
    _add_kernels_flag(p_check)
    _add_sequential_flag(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="seeded randomized differential fuzzing with auto-shrink",
    )
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--cases", type=int, default=100)
    p_fuzz.add_argument(
        "--max-gates",
        type=int,
        default=24,
        help="upper bound on drawn circuit size",
    )
    p_fuzz.add_argument(
        "--out", metavar="DIR", help="directory for shrunk .bench repros"
    )
    p_fuzz.add_argument(
        "--inject-fault",
        choices=("xor",),
        help="self-test: treat circuits with XOR/XNOR gates as failing "
        "to exercise the shrink pipeline",
    )
    p_fuzz.add_argument(
        "--metrics", metavar="FILE", help="write metrics snapshot JSON"
    )
    p_fuzz.add_argument(
        "--progress", action="store_true", help="log each case to stderr"
    )
    _add_backend_flag(p_fuzz)
    _add_kernels_flag(p_fuzz)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_t1 = sub.add_parser("table1", help="run the Table-1 harness")
    p_t1.add_argument("--quick", action="store_true")
    p_t1.add_argument("--scale", type=float, default=1.0)
    p_t1.add_argument(
        "--jobs", type=jobs_arg, default=1, help="worker processes for t2"
    )
    p_t1.add_argument(
        "--seed", type=int, default=None, help="suite seed offset"
    )
    _add_backend_flag(p_t1)
    p_t1.set_defaults(func=_cmd_table1)

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel dominator sweep over the built-in circuit suite",
    )
    p_sweep.add_argument(
        "--jobs",
        type=jobs_arg,
        default=1,
        help="worker processes (1 = in-process)",
    )
    p_sweep.add_argument("--quick", action="store_true")
    p_sweep.add_argument("--names", nargs="*", help="benchmark names")
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument(
        "--timeout",
        type=timeout_arg,
        default=None,
        help="per-cone seconds budget",
    )
    p_sweep.add_argument(
        "--artifacts", metavar="DIR", help="artifact store directory"
    )
    p_sweep.add_argument(
        "--metrics", metavar="FILE", help="write metrics snapshot JSON"
    )
    p_sweep.add_argument(
        "--no-progress", action="store_true", help="suppress progress lines"
    )
    _add_backend_flag(p_sweep)
    _add_kernels_flag(p_sweep)
    _add_sequential_flag(p_sweep)
    _add_prefilter_flag(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_serve = sub.add_parser(
        "serve-batch",
        help="answer a JSON batch of dominator-chain requests",
    )
    p_serve.add_argument("requests", help="JSON request file")
    p_serve.add_argument("--out", help="response file (default: stdout)")
    p_serve.add_argument("--jobs", type=jobs_arg, default=1)
    p_serve.add_argument("--timeout", type=timeout_arg, default=None)
    p_serve.add_argument("--artifacts", metavar="DIR")
    p_serve.add_argument(
        "--metrics", metavar="FILE", help="write metrics snapshot JSON"
    )
    _add_backend_flag(p_serve)
    _add_kernels_flag(p_serve)
    p_serve.set_defaults(func=_cmd_serve_batch)

    p_daemon = sub.add_parser(
        "daemon",
        help="long-lived async query service (JSONL stdio and/or HTTP)",
    )
    p_daemon.add_argument(
        "--stdio",
        action="store_true",
        help="serve JSONL requests on stdin/stdout",
    )
    p_daemon.add_argument(
        "--http",
        type=int,
        metavar="PORT",
        default=None,
        help="serve HTTP on 127.0.0.1:PORT (0 = ephemeral)",
    )
    p_daemon.add_argument("--jobs", type=jobs_arg, default=1)
    p_daemon.add_argument(
        "--no-shared-memory",
        action="store_true",
        help="disable shared-memory circuit publication",
    )
    p_daemon.add_argument(
        "--max-in-flight",
        type=jobs_arg,
        default=16,
        help="admission control: concurrent request cap",
    )
    p_daemon.add_argument(
        "--tenant-rate",
        type=positive_float_arg,
        default=50.0,
        help="admission control: per-tenant requests/second",
    )
    p_daemon.add_argument(
        "--tenant-burst",
        type=positive_float_arg,
        default=20.0,
        help="admission control: per-tenant burst capacity",
    )
    p_daemon.add_argument(
        "--metrics", metavar="FILE", help="write metrics snapshot JSON on exit"
    )
    _add_backend_flag(p_daemon)
    _add_kernels_flag(p_daemon)
    _add_engine_flag(p_daemon)
    p_daemon.set_defaults(func=_cmd_daemon)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        # One-line diagnostics for user errors — malformed netlist files,
        # unknown node/output names, unreadable paths.  A traceback
        # escaping the CLI is reserved for genuine bugs.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
