"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``chains``  — dominator chains of a netlist's primary inputs::

    python -m repro chains design.bench --output out1 --target in3

``stats``   — circuit statistics (Table 1's descriptive columns)::

    python -m repro stats design.blif

``counts``  — single/double dominator counts (Table 1 columns 4 and 5)::

    python -m repro counts design.bench

``table1``  — delegate to the full experiment harness.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core.algorithm import ChainComputer
from .core.api import count_double_dominators, count_single_dominators
from .graph.circuit import Circuit
from .graph.indexed import IndexedGraph
from .graph.stats import circuit_stats
from .parsers import bench, blif, verilog


def load_netlist(path: str) -> Circuit:
    """Load a netlist by extension (.bench, .blif or .v)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".bench":
        return bench.load(path)
    if suffix == ".blif":
        return blif.load(path)
    if suffix in (".v", ".verilog"):
        return verilog.load(path)
    raise SystemExit(
        f"unsupported netlist format {suffix!r} "
        "(expected .bench, .blif or .v)"
    )


def _cmd_chains(args: argparse.Namespace) -> int:
    circuit = load_netlist(args.netlist)
    output = args.output or (
        circuit.outputs[0] if len(circuit.outputs) == 1 else None
    )
    if output is None:
        print(
            f"circuit has {len(circuit.outputs)} outputs; pass --output",
            file=sys.stderr,
        )
        return 2
    graph = IndexedGraph.from_circuit(circuit, output)
    computer = ChainComputer(graph)
    targets = (
        [graph.index_of(args.target)]
        if args.target
        else graph.sources()
    )
    for u in targets:
        chain = computer.chain(u)
        print(
            f"{graph.name_of(u)}: {chain.num_dominators()} pairs  "
            f"D = {chain.format(graph.name_of)}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = circuit_stats(load_netlist(args.netlist))
    for key, value in stats.as_dict().items():
        print(f"{key:12s} {value}")
    return 0


def _cmd_counts(args: argparse.Namespace) -> int:
    circuit = load_netlist(args.netlist)
    singles = count_single_dominators(circuit)
    doubles = count_double_dominators(circuit)
    print(f"single-vertex dominators of >=1 PI (per cone, summed): {singles}")
    print(f"double-vertex dominators of >=1 PI (per cone, summed): {doubles}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import table1

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.scale != 1.0:
        forwarded.extend(["--scale", str(args.scale)])
    return table1.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="double-vertex dominator toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_chains = sub.add_parser("chains", help="dominator chains of a netlist")
    p_chains.add_argument("netlist")
    p_chains.add_argument("--output", help="output cone to analyze")
    p_chains.add_argument("--target", help="single target vertex (default: all PIs)")
    p_chains.set_defaults(func=_cmd_chains)

    p_stats = sub.add_parser("stats", help="circuit statistics")
    p_stats.add_argument("netlist")
    p_stats.set_defaults(func=_cmd_stats)

    p_counts = sub.add_parser("counts", help="Table-1 dominator counts")
    p_counts.add_argument("netlist")
    p_counts.set_defaults(func=_cmd_counts)

    p_t1 = sub.add_parser("table1", help="run the Table-1 harness")
    p_t1.add_argument("--quick", action="store_true")
    p_t1.add_argument("--scale", type=float, default=1.0)
    p_t1.set_defaults(func=_cmd_table1)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
