"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``chains``  — dominator chains of a netlist's primary inputs::

    python -m repro chains design.bench --output out1 --target in3

``stats``   — circuit statistics (Table 1's descriptive columns)::

    python -m repro stats design.blif

``counts``  — single/double dominator counts (Table 1 columns 4 and 5)::

    python -m repro counts design.bench

``table1``  — delegate to the full experiment harness.

``edit-session`` — replay a JSON edit script against one cone with the
incremental engine, re-querying chains after every edit and reporting
cache hit/miss/invalidation statistics (optionally comparing against
full recomputation)::

    python -m repro edit-session design.bench edits.json --compare
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .core.algorithm import ChainComputer
from .core.api import count_double_dominators, count_single_dominators
from .graph.circuit import Circuit
from .graph.indexed import IndexedGraph
from .graph.stats import circuit_stats
from .parsers import bench, blif, verilog


def load_netlist(path: str) -> Circuit:
    """Load a netlist by extension (.bench, .blif or .v)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".bench":
        return bench.load(path)
    if suffix == ".blif":
        return blif.load(path)
    if suffix in (".v", ".verilog"):
        return verilog.load(path)
    raise SystemExit(
        f"unsupported netlist format {suffix!r} "
        "(expected .bench, .blif or .v)"
    )


def _cmd_chains(args: argparse.Namespace) -> int:
    circuit = load_netlist(args.netlist)
    output = args.output or (
        circuit.outputs[0] if len(circuit.outputs) == 1 else None
    )
    if output is None:
        print(
            f"circuit has {len(circuit.outputs)} outputs; pass --output",
            file=sys.stderr,
        )
        return 2
    graph = IndexedGraph.from_circuit(circuit, output)
    computer = ChainComputer(graph)
    targets = (
        [graph.index_of(args.target)]
        if args.target
        else graph.sources()
    )
    for u in targets:
        chain = computer.chain(u)
        print(
            f"{graph.name_of(u)}: {chain.num_dominators()} pairs  "
            f"D = {chain.format(graph.name_of)}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = circuit_stats(load_netlist(args.netlist))
    for key, value in stats.as_dict().items():
        print(f"{key:12s} {value}")
    return 0


def _cmd_counts(args: argparse.Namespace) -> int:
    circuit = load_netlist(args.netlist)
    singles = count_single_dominators(circuit)
    doubles = count_double_dominators(circuit)
    print(f"single-vertex dominators of >=1 PI (per cone, summed): {singles}")
    print(f"double-vertex dominators of >=1 PI (per cone, summed): {doubles}")
    return 0


def _cmd_edit_session(args: argparse.Namespace) -> int:
    from .incremental import IncrementalEngine, load_script

    circuit = load_netlist(args.netlist)
    output = args.output or (
        circuit.outputs[0] if len(circuit.outputs) == 1 else None
    )
    if output is None:
        print(
            f"circuit has {len(circuit.outputs)} outputs; pass --output",
            file=sys.stderr,
        )
        return 2
    edits = load_script(args.script)
    engine = IncrementalEngine.from_circuit(circuit, output)

    def query():
        chains = engine.chains_for_sources()
        return len(chains), sum(c.num_dominators() for c in chains.values())

    start = time.perf_counter()
    n_chains, n_pairs = query()
    print(
        f"initial: {n_chains} PI chains, {n_pairs} dominator pairs "
        f"({engine.graph.n} vertices)"
    )
    for step, edit in enumerate(edits, 1):
        touched = engine.apply(edit)
        n_chains, n_pairs = query()
        print(
            f"edit {step:3d} [{type(edit).__name__}]: "
            f"{len(touched)} vertices touched, "
            f"{n_chains} chains, {n_pairs} pairs"
        )
    incremental_time = time.perf_counter() - start

    print("\nsession statistics:")
    for key, value in engine.stats.as_dict().items():
        print(f"  {key:14s} {value}")

    if args.compare:
        # replay as a cold engine per step: the from-scratch strawman
        start = time.perf_counter()
        cold = IncrementalEngine.from_circuit(circuit, output)
        ChainComputer(cold.graph, tree=None).chains_for_sources()
        for edit in edits:
            cold.apply(edit)
            cold.flush()
            fresh = ChainComputer(cold.graph)
            tree = fresh.tree
            for u in cold.graph.sources():
                if tree.is_reachable(u):
                    fresh.chain(u)
        recompute_time = time.perf_counter() - start
        speedup = recompute_time / incremental_time if incremental_time else 0
        print(
            f"\nincremental {incremental_time * 1e3:9.1f} ms   "
            f"full recompute {recompute_time * 1e3:9.1f} ms   "
            f"speedup {speedup:.1f}x"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import table1

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.scale != 1.0:
        forwarded.extend(["--scale", str(args.scale)])
    return table1.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="double-vertex dominator toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_chains = sub.add_parser("chains", help="dominator chains of a netlist")
    p_chains.add_argument("netlist")
    p_chains.add_argument("--output", help="output cone to analyze")
    p_chains.add_argument("--target", help="single target vertex (default: all PIs)")
    p_chains.set_defaults(func=_cmd_chains)

    p_stats = sub.add_parser("stats", help="circuit statistics")
    p_stats.add_argument("netlist")
    p_stats.set_defaults(func=_cmd_stats)

    p_counts = sub.add_parser("counts", help="Table-1 dominator counts")
    p_counts.add_argument("netlist")
    p_counts.set_defaults(func=_cmd_counts)

    p_edit = sub.add_parser(
        "edit-session",
        help="replay a JSON edit script with the incremental engine",
    )
    p_edit.add_argument("netlist")
    p_edit.add_argument("script", help="JSON edit script (see repro.incremental.edits)")
    p_edit.add_argument("--output", help="output cone to analyze")
    p_edit.add_argument(
        "--compare",
        action="store_true",
        help="also time from-scratch recomputation per edit",
    )
    p_edit.set_defaults(func=_cmd_edit_session)

    p_t1 = sub.add_parser("table1", help="run the Table-1 harness")
    p_t1.add_argument("--quick", action="store_true")
    p_t1.add_argument("--scale", type=float, default=1.0)
    p_t1.set_defaults(func=_cmd_table1)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
