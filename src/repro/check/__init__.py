"""Differential correctness harness for the dominator-chain computation.

Three independent implementations of Definition 1 live in this package's
neighbours — DOMINATORCHAIN (:mod:`repro.core.algorithm`), the baseline
algorithm [11] (:mod:`repro.core.baseline`) and the brute-force
enumeration (:mod:`repro.core.bruteforce`).  :mod:`repro.check` turns
that redundancy into an oracle, in the tradition of the cross-checking
harnesses used to validate dynamic dominator algorithms:

* :mod:`repro.check.oracle` runs all three on the same cone and diffs
  the results pair-for-pair and vector-for-vector, including the O(1)
  ``(flag, index, min, max)`` look-up structure at its interval
  boundaries, and certifies the shared single-dominator tree with a
  low-high order (:func:`~repro.check.oracle.check_low_high`) — the
  fourth, non-differential oracle — and audits the biconnectivity
  pre-filter's pair-free certificates against those filter-free
  implementations (kind ``prefilter``);
* :func:`~repro.check.oracle.check_sequential` compares every
  combinational-core cone of a :class:`~repro.graph.sequential
  .SequentialCircuit` against the frame-0 cone of its time-frame
  unrolling (kind ``sequential``);
* :mod:`repro.check.fuzzer` draws seeded random circuits from
  :mod:`repro.circuits.generators`, applies structured mutations
  (:func:`repro.graph.rewrite.expand_xors`, random incremental edit
  scripts) and feeds every case through the oracle;
* :mod:`repro.check.shrink` minimizes any mismatching circuit to a
  small repro and dumps it as a ``.bench`` fixture that round-trips
  through the parsers.

CLI: ``python -m repro check NETLIST`` and
``python -m repro fuzz --seed N --cases K`` (nonzero exit on mismatch).
"""

from .oracle import (
    Mismatch,
    OracleReport,
    check_circuit,
    check_cone,
    check_incremental,
    check_low_high,
    check_sequential,
    diff_chains,
    other_backend,
)
from .fuzzer import FuzzFailure, FuzzResult, generate_case, run_fuzz
from .shrink import dump_repro, shrink_circuit

__all__ = [
    "FuzzFailure",
    "FuzzResult",
    "Mismatch",
    "OracleReport",
    "check_circuit",
    "check_cone",
    "check_incremental",
    "check_low_high",
    "check_sequential",
    "diff_chains",
    "dump_repro",
    "generate_case",
    "other_backend",
    "run_fuzz",
    "shrink_circuit",
]
