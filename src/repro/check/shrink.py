"""Greedy netlist minimization of failing fuzz cases (delta debugging).

Given a circuit and a failure predicate, :func:`shrink_circuit` applies
structure-preserving reduction moves — drop an output, bypass a gate with
one of its fanins, narrow a gate's fanin list, prune logic outside the
output cones — keeping a move whenever the reduced circuit still fails.
Moves are tried in deterministic (insertion) order, so a given failing
input always shrinks to the same repro.

The result is written as a ``.bench`` fixture (:func:`dump_repro`) that
is verified to round-trip through ``parsers.bench.dumps``/``loads``
before it is reported, so a shrunk repro can always be replayed with
``python -m repro check repro.bench``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterator, List, Optional, Union

from ..errors import CircuitError, ReproError
from ..graph.circuit import Circuit
from ..graph.node import MIN_FANIN, NodeType
from ..parsers import bench

Predicate = Callable[[Circuit], bool]

#: Upper bound on full passes over the move list; each accepted move
#: strictly shrinks the node count, so this is a safety net, not a tuning
#: knob.
MAX_ROUNDS = 10_000


def _cone_prune(circuit: Circuit, name: Optional[str] = None) -> Circuit:
    """Restrict to the fanin cones of the outputs (drops dead logic)."""
    keep = set()
    stack = list(circuit.outputs)
    while stack:
        node = stack.pop()
        if node in keep:
            continue
        keep.add(node)
        stack.extend(circuit.node(node).fanins)
    pruned = Circuit(name or circuit.name)
    for pi in circuit.inputs:
        if pi in keep:
            pruned.add_input(pi)
    for node in circuit.nodes():
        if node.name in keep and node.type is not NodeType.INPUT:
            if node.type.is_constant:
                pruned.add_constant(
                    node.name, 1 if node.type is NodeType.CONST1 else 0
                )
            else:
                pruned.add_gate(node.name, node.type, node.fanins)
    pruned.set_outputs(circuit.outputs)
    pruned.validate()
    return pruned


def _substitute(circuit: Circuit, victim: str, replacement: str) -> Circuit:
    """Rebuild with every use of ``victim`` rewired to ``replacement``."""
    result = Circuit(circuit.name)
    for pi in circuit.inputs:
        if pi != victim:
            result.add_input(pi)
    for node in circuit.nodes():
        if node.name == victim or node.type is NodeType.INPUT:
            continue
        fanins = tuple(
            replacement if f == victim else f for f in node.fanins
        )
        if node.type.is_constant:
            result.add_constant(
                node.name, 1 if node.type is NodeType.CONST1 else 0
            )
        else:
            result.add_gate(node.name, node.type, fanins)
    result.set_outputs(
        replacement if out == victim else out for out in circuit.outputs
    )
    result.validate()
    return _cone_prune(result)


def _narrow(circuit: Circuit, gate: str, drop_index: int) -> Circuit:
    """Rebuild with one fanin removed from ``gate``.

    When the narrowed arity falls below the gate type's minimum the gate
    degrades to a BUF of its remaining fanin — function changes are fine,
    the predicate decides what to keep.
    """
    result = Circuit(circuit.name)
    for pi in circuit.inputs:
        result.add_input(pi)
    for node in circuit.nodes():
        if node.type is NodeType.INPUT:
            continue
        if node.type.is_constant:
            result.add_constant(
                node.name, 1 if node.type is NodeType.CONST1 else 0
            )
            continue
        fanins = list(node.fanins)
        node_type = node.type
        if node.name == gate:
            del fanins[drop_index]
            if len(fanins) < MIN_FANIN[node_type]:
                node_type = NodeType.BUF
                fanins = fanins[:1]
        result.add_gate(node.name, node_type, fanins)
    result.set_outputs(circuit.outputs)
    result.validate()
    return _cone_prune(result)


def _drop_output(circuit: Circuit, out: str) -> Circuit:
    result = circuit.copy()
    result.set_outputs(o for o in circuit.outputs if o != out)
    return _cone_prune(result)


def _candidates(circuit: Circuit) -> Iterator[Circuit]:
    """Reduction moves in deterministic order, aggressive first."""
    if len(circuit.outputs) > 1:
        for out in circuit.outputs:
            yield _drop_output(circuit, out)
    # Bypass gates with each of their (distinct) fanins.
    for node in circuit.nodes():
        if not node.type.is_gate:
            continue
        seen = set()
        for fanin in node.fanins:
            if fanin not in seen:
                seen.add(fanin)
                yield _substitute(circuit, node.name, fanin)
    # Merge primary inputs pairwise (victim -> first other input).
    inputs = circuit.inputs
    for pi in inputs[1:]:
        yield _substitute(circuit, pi, inputs[0])
    # Narrow wide gates one fanin at a time.
    for node in circuit.nodes():
        if node.type.is_gate and len(node.fanins) > 1:
            for i in range(len(node.fanins)):
                yield _narrow(circuit, node.name, i)


def _size(circuit: Circuit) -> int:
    return len(circuit)


def shrink_circuit(
    circuit: Circuit,
    is_failing: Predicate,
    max_rounds: int = MAX_ROUNDS,
) -> Circuit:
    """Minimize ``circuit`` while ``is_failing`` stays true.

    ``is_failing`` is evaluated on structurally valid candidate circuits
    only; a predicate that raises is treated as "does not fail" so a
    reduction that makes the failure unreproducible is simply not taken.
    The predicate always receives a private copy of the candidate, and an
    accepted candidate is re-validated before it replaces the current
    circuit — a predicate that mutates its argument (the oracle replays
    edit scripts in place) can therefore never corrupt the shrink state
    or the final repro.  The input circuit itself must satisfy the
    predicate.
    """
    current = _cone_prune(circuit)
    if not is_failing(current.copy()):
        # Pruning dead logic must never lose the failure; fall back to
        # the exact input if it somehow does.
        current = circuit

    for _ in range(max_rounds):
        improved = False
        for candidate in _candidates(current):
            if _size(candidate) >= _size(current):
                continue
            try:
                failing = is_failing(candidate.copy())
            except ReproError:
                failing = False
            if not failing:
                continue
            try:
                candidate.validate()
            except CircuitError:
                # The move itself produced a valid circuit; reaching here
                # means the predicate mutated shared state.  Skip the move
                # rather than adopt a corrupt candidate.
                continue
            current = candidate
            improved = True
            break
        if not improved:
            break
    current.validate()
    return current


def dump_repro(
    circuit: Circuit,
    directory: Union[str, Path],
    tag: str,
    comment: str = "",
) -> Path:
    """Write a shrunk repro as a ``.bench`` fixture; returns its path.

    The circuit is validated and the rendered text re-parsed **before**
    anything is written — a repro that cannot round-trip through the
    parser (same nodes *and* same output list) would be useless, so that
    is treated as an internal error and no file is left on disk.
    """
    directory = Path(directory)
    circuit.validate()
    text = bench.dumps(circuit)
    if comment:
        lines = [f"# {line}" for line in comment.splitlines()]
        text = "\n".join(lines) + "\n" + text
    path = directory / f"{tag}.bench"
    reparsed = bench.loads(text, name=circuit.name)
    if sorted(reparsed) != sorted(circuit) or sorted(
        reparsed.outputs
    ) != sorted(circuit.outputs):
        raise ReproError(
            f"repro {path} does not round-trip through the bench parser"
        )
    directory.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def gate_count(circuit: Circuit) -> int:
    """Gate count of a repro (the shrinker's quality metric)."""
    return circuit.gate_count()


__all__: List[str] = [
    "dump_repro",
    "gate_count",
    "shrink_circuit",
]
