"""The differential oracle: chain vs. baseline [11] vs. brute force.

Every check compares complete *sets of dominator pairs* (pair-for-pair)
and, for the chain, the per-vertex look-up structure (vector-for-vector):
each stored matching vector must reproduce the reference partner set, and
the O(1) ``(flag, index, min, max)`` membership test must flip exactly at
the interval boundaries — the first and last matching vector positions —
in both query directions.

The chain itself is computed by **both construction backends** (the
shared array-index backend and the legacy per-call subgraph backend, see
:mod:`repro.dominators.shared`): every target's chain must be identical
between them — not just the same pair set but the same pair vectors and
intervals — so every fuzz case doubles as a backend-equivalence proof.

A disagreement is reported as a :class:`Mismatch` record instead of an
exception so a fuzzing run can keep going, collect everything, and hand
the failing circuit to the shrinker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set

from ..analysis.biconnectivity import has_no_double_dominator
from ..core.algorithm import ChainComputer
from ..core.baseline import baseline_double_dominators
from ..core.bruteforce import all_double_dominators
from ..core.chain import DominatorChain
from ..dominators import kernels as kernels_mod
from ..dominators.dynamic import certify_tree
from ..dominators.shared import validate_backend
from ..errors import ReproError
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from ..graph.sequential import (
    PSEUDO_INPUT_PREFIX,
    PSEUDO_OUTPUT_PREFIX,
    SequentialCircuit,
    extract_combinational_core,
    unrolled,
)

#: Largest cone (vertex count) the O(n³)-ish brute-force enumeration is
#: asked to confirm; beyond it the oracle still cross-checks the chain
#: against the independent baseline algorithm [11].
DEFAULT_BRUTE_LIMIT = 48

PairSet = Set[FrozenSet[int]]
ChainFn = Callable[[IndexedGraph, int], DominatorChain]


def other_backend(backend: str) -> str:
    """The counterpart construction backend cross-run by the oracle.

    ``shared`` is checked against ``legacy`` (array views vs. per-call
    subgraph copies); ``legacy`` and ``linear`` are each checked
    against ``shared``, so every fuzz case on the linear backend proves
    it equivalent to the max-flow construction pair that brute force
    already guards.
    """
    return "legacy" if validate_backend(backend) == "shared" else "shared"


def diff_chains(
    a: DominatorChain, b: DominatorChain
) -> Optional[str]:
    """First structural divergence between two chains, or ``None``.

    "Structural" means the full serving contract: the ordered pair
    vectors *and* every vertex's matching interval, not just the
    unordered pair set.
    """
    if a.pairs != b.pairs:
        return f"pair vectors differ: {a.pairs} vs {b.pairs}"
    for v in a.vertices():
        if a.interval(v) != b.interval(v):
            return (
                f"interval of vertex {v} differs: "
                f"{a.interval(v)} vs {b.interval(v)}"
            )
    return None


@dataclass(frozen=True)
class Mismatch:
    """One observed disagreement between implementations.

    Attributes
    ----------
    kind:
        Discriminator: ``chain-vs-brute``, ``baseline-vs-brute``,
        ``chain-vs-baseline``, ``lookup`` (the O(1) membership structure
        disagrees with the chain's own pair set), ``backend`` (the shared
        and legacy chain backends disagree), ``kernels`` (the numpy and
        python hot-path implementations disagree), ``incremental``,
        ``certificate`` (the dominator tree fails its low-high
        certificate), ``prefilter`` (the biconnectivity pre-filter
        certified a cone pair-free but pairs exist), ``sequential``
        (a combinational-core chain disagrees with the frame-0 chain of
        the time-frame unrolling) or ``crash`` (an implementation raised
        instead of answering).
    circuit / output / target:
        Where it happened, by name where names exist.
    detail:
        Human-readable one-liner pinpointing the first divergence.
    """

    kind: str
    circuit: str
    output: str
    target: str
    detail: str

    def __str__(self) -> str:
        where = f"{self.circuit}/{self.output}"
        if self.target:
            where += f" target {self.target}"
        return f"[{self.kind}] {where}: {self.detail}"


@dataclass
class OracleReport:
    """Outcome of one differential run over a whole circuit."""

    circuit: str
    cones: int = 0
    targets: int = 0
    comparisons: int = 0
    brute_confirmed: int = 0  # targets additionally checked by brute force
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        return (
            f"{self.circuit}: {self.cones} cone(s), {self.targets} "
            f"target(s), {self.comparisons} comparison(s), "
            f"{self.brute_confirmed} brute-confirmed — {status}"
        )


def _name(graph: IndexedGraph, v: int) -> str:
    name = graph.names[v] if 0 <= v < len(graph.names) else None
    return name if name is not None else f"#{v}"


def _format_pairs(graph: IndexedGraph, pairs: PairSet, limit: int = 4) -> str:
    rendered = sorted(
        "{%s}" % ",".join(sorted(_name(graph, v) for v in pair))
        for pair in pairs
    )
    shown = ", ".join(rendered[:limit])
    if len(rendered) > limit:
        shown += f", ... (+{len(rendered) - limit})"
    return shown or "(none)"


def _diff_pairs(
    graph: IndexedGraph,
    kind: str,
    circuit: str,
    output: str,
    target: int,
    got: PairSet,
    want: PairSet,
    got_label: str,
    want_label: str,
) -> List[Mismatch]:
    if got == want:
        return []
    extra = got - want
    missing = want - got
    parts = []
    if extra:
        parts.append(
            f"{got_label} reports {_format_pairs(graph, extra)} "
            f"not found by {want_label}"
        )
    if missing:
        parts.append(
            f"{got_label} misses {_format_pairs(graph, missing)} "
            f"found by {want_label}"
        )
    return [
        Mismatch(kind, circuit, output, _name(graph, target), "; ".join(parts))
    ]


def check_chain_lookup(
    graph: IndexedGraph,
    chain: DominatorChain,
    circuit: str = "",
    output: str = "",
) -> List[Mismatch]:
    """Vector-for-vector audit of one chain's O(1) look-up structure.

    Validates, for every stored vertex *v* with interval ``(min, max)``:

    * ``matching_vector(v)`` equals the partner set implied by the
      chain's own enumerated pair set (order included: partners appear
      in opposite-side index order);
    * ``dominates`` answers True at both interval boundaries (the first
      and the last matching vector element) and False one position
      outside on either end — the off-by-one sentinels;
    * the membership test is symmetric (``dominates(v, w)`` iff
      ``dominates(w, v)``) and rejects same-side queries.
    """
    mismatches: List[Mismatch] = []
    target_name = _name(graph, chain.target)

    def report(detail: str) -> None:
        mismatches.append(
            Mismatch("lookup", circuit, output, target_name, detail)
        )

    partners: Dict[int, List[int]] = {v: [] for v in chain.vertices()}
    for v, w in chain.iter_dominator_pairs():
        partners[v].append(w)
        partners[w].append(v)

    enumerated = chain.pair_set()
    if len(enumerated) != chain.num_dominators():
        report(
            f"num_dominators()={chain.num_dominators()} but "
            f"{len(enumerated)} distinct pairs were enumerated"
        )

    for v in chain.vertices():
        vec = chain.matching_vector(v)
        if vec != partners[v]:
            report(
                f"matching_vector({_name(graph, v)}) = "
                f"{[_name(graph, w) for w in vec]} but enumeration gives "
                f"{[_name(graph, w) for w in partners[v]]}"
            )
            continue
        if not vec:
            report(f"vertex {_name(graph, v)} stored with empty interval")
            continue
        lo, hi = chain.interval(v)
        opposite = chain.side(2 if chain.flag(v) == 1 else 1)
        first, last = vec[0], vec[-1]
        if opposite[lo - 1] != first or opposite[hi - 1] != last:
            report(
                f"interval ({lo}, {hi}) of {_name(graph, v)} does not "
                f"select its first/last partners"
            )
        for w, label in ((first, "first"), (last, "last")):
            if not chain.dominates(v, w) or not chain.dominates(w, v):
                report(
                    f"{{{_name(graph, v)}, {_name(graph, w)}}} is the "
                    f"{label} matching pair but dominates() rejects it"
                )
        # Off-by-one sentinels just outside the interval.
        if lo >= 2 and chain.dominates(v, opposite[lo - 2]):
            report(
                f"dominates({_name(graph, v)}, "
                f"{_name(graph, opposite[lo - 2])}) accepted one position "
                f"before min={lo}"
            )
        if hi < len(opposite) and chain.dominates(v, opposite[hi]):
            report(
                f"dominates({_name(graph, v)}, {_name(graph, opposite[hi])})"
                f" accepted one position after max={hi}"
            )
        same_side = chain.side(chain.flag(v))
        if any(chain.dominates(v, w) for w in same_side):
            report(f"same-side pair accepted for {_name(graph, v)}")
    return mismatches


def check_low_high(
    graph: IndexedGraph,
    idom: Sequence[int],
    circuit: str = "",
    output: str = "",
) -> List[Mismatch]:
    """The fourth oracle: certify a dominator tree by low-high order.

    Builds a low-high order of ``idom`` over ``graph`` and verifies it
    together with the ancestor property and the exact reachable span
    (:mod:`repro.dominators.dynamic.lowhigh`) — one O(n + m) pass that
    *proves* the tree correct without re-running any dominator
    algorithm.  Unlike the differential comparisons this needs no second
    implementation to disagree with: the certificate is unconditional,
    so it also guards the single-dominator layer that all three chain
    producers share (a bug common to every backend would slip past the
    backend and baseline cross-checks but not past this).
    """
    return [
        Mismatch("certificate", circuit, output, "", detail)
        for detail in certify_tree(graph, idom)
    ]


def check_cone(
    graph: IndexedGraph,
    targets: Optional[Sequence[int]] = None,
    algorithm: str = "lt",
    brute_limit: int = DEFAULT_BRUTE_LIMIT,
    circuit: str = "",
    output: str = "",
    chain_fn: Optional[ChainFn] = None,
    report: Optional[OracleReport] = None,
    metrics=None,
    backend: str = "shared",
    kernels: str = "python",
) -> List[Mismatch]:
    """Differential check of one single-output cone.

    Parameters
    ----------
    graph:
        The cone, in signal orientation.
    targets:
        Vertices to check (default: every primary input — the paper's
        Table 1 workload).
    brute_limit:
        Cones with more vertices skip the brute-force confirmation and
        rely on chain-vs-baseline cross-checking only.
    chain_fn:
        Override for the chain producer — the fault-injection hook the
        harness's own tests use.  Defaults to a shared
        :class:`ChainComputer`.  Providing it disables the
        backend-equivalence comparison (the oracle cannot know which
        backend the override represents).
    backend:
        Primary chain backend under test.  Every target is *also*
        computed with the counterpart backend and the two chains must be
        structurally identical (kind ``backend`` on divergence).
    kernels:
        Hot-path implementation of the primary computer.  Whenever
        numpy is importable (and ``chain_fn`` is not overridden), every
        target is additionally computed with the *opposite* kernels —
        with the kernel region threshold forced to 0, so even
        single-gate cones exercise the vectorized path — and compared
        structurally (kind ``kernels`` on divergence).

    Every cone is additionally run through the biconnectivity
    pre-filter (:func:`~repro.analysis.biconnectivity
    .has_no_double_dominator`): when the filter certifies the cone
    pair-free, every target's reference pair set (brute force where
    available, otherwise the computed chain) must indeed be empty —
    kind ``prefilter`` on violation.  This is the soundness guard for
    ``prefilter="biconn"`` sweeps: a cone the filter would skip is
    proven here, against filter-free implementations, to lose nothing.
    """
    if report is None:
        report = OracleReport(circuit or "cone")
    mismatches: List[Mismatch] = []
    if targets is None:
        targets = graph.sources()
    target_list = list(targets)
    started = time.perf_counter()
    prefilter_certified = has_no_double_dominator(graph)

    cross_computer: Optional[ChainComputer] = None
    kernel_computer: Optional[ChainComputer] = None
    kernel_label = ""
    if chain_fn is None:
        computer = ChainComputer(
            graph, algorithm, backend=backend, kernels=kernels
        )
        chain_fn = lambda g, u: computer.chain(u)  # noqa: E731
        cross_computer = ChainComputer(
            graph, algorithm, backend=other_backend(backend)
        )
        if kernels_mod.numpy_available():
            # Kernels differential: identical chains from the opposite
            # hot-path implementation, threshold forced to 0 so the
            # kernels run even on tiny fuzz regions.
            other_kernels = "python" if kernels == "numpy" else "numpy"
            kernel_backend = (
                backend if backend in ("shared", "linear") else "shared"
            )
            kernel_computer = ChainComputer(
                graph,
                algorithm,
                backend=kernel_backend,
                kernels=other_kernels,
            )
            kernel_label = f"{kernels} vs {other_kernels} kernels"

        # Fourth oracle: certify the cone's single-dominator tree once
        # per cone (the chain producers all consume this tree).
        report.comparisons += 1
        mismatches += check_low_high(graph, computer.tree.idom, circuit, output)

    try:
        per_target = baseline_double_dominators(
            graph, target_list, algorithm=algorithm
        )
    except ReproError as exc:
        mismatches.append(
            Mismatch(
                "crash", circuit, output, "", f"baseline raised: {exc!r}"
            )
        )
        per_target = {u: None for u in target_list}

    use_brute = graph.n <= brute_limit
    for u in target_list:
        report.targets += 1
        try:
            chain = chain_fn(graph, u)
            chain_pairs: Optional[PairSet] = chain.pair_set()
        except ReproError as exc:
            mismatches.append(
                Mismatch(
                    "crash",
                    circuit,
                    output,
                    _name(graph, u),
                    f"dominator chain raised: {exc!r}",
                )
            )
            chain = None
            chain_pairs = None
        baseline_pairs = per_target.get(u)
        brute_pairs: Optional[PairSet] = None
        if use_brute:
            brute_pairs = all_double_dominators(graph, u)
            report.brute_confirmed += 1

        if prefilter_certified:
            reference = brute_pairs if brute_pairs is not None else chain_pairs
            report.comparisons += 1
            if reference:
                reference_label = (
                    "brute force" if brute_pairs is not None else "the chain"
                )
                mismatches.append(
                    Mismatch(
                        "prefilter",
                        circuit,
                        output,
                        _name(graph, u),
                        f"biconn pre-filter certified the cone pair-free "
                        f"but {reference_label} finds "
                        f"{_format_pairs(graph, reference)}",
                    )
                )
        if chain_pairs is not None and brute_pairs is not None:
            report.comparisons += 1
            mismatches += _diff_pairs(
                graph, "chain-vs-brute", circuit, output, u,
                chain_pairs, brute_pairs, "chain", "brute force",
            )
        if baseline_pairs is not None and brute_pairs is not None:
            report.comparisons += 1
            mismatches += _diff_pairs(
                graph, "baseline-vs-brute", circuit, output, u,
                baseline_pairs, brute_pairs, "baseline", "brute force",
            )
        if chain_pairs is not None and baseline_pairs is not None:
            report.comparisons += 1
            mismatches += _diff_pairs(
                graph, "chain-vs-baseline", circuit, output, u,
                chain_pairs, baseline_pairs, "chain", "baseline",
            )
        if chain is not None:
            report.comparisons += 1
            mismatches += check_chain_lookup(graph, chain, circuit, output)
        if chain is not None and cross_computer is not None:
            report.comparisons += 1
            try:
                cross = cross_computer.chain(u)
            except ReproError as exc:
                mismatches.append(
                    Mismatch(
                        "crash",
                        circuit,
                        output,
                        _name(graph, u),
                        f"{cross_computer.backend} backend raised: {exc!r}",
                    )
                )
            else:
                divergence = diff_chains(chain, cross)
                if divergence is not None:
                    mismatches.append(
                        Mismatch(
                            "backend",
                            circuit,
                            output,
                            _name(graph, u),
                            f"{backend} vs {cross_computer.backend}: "
                            + divergence,
                        )
                    )
        if chain is not None and kernel_computer is not None:
            report.comparisons += 1
            try:
                with kernels_mod.forced_region_threshold(0):
                    kernel_chain = kernel_computer.chain(u)
            except ReproError as exc:
                mismatches.append(
                    Mismatch(
                        "crash",
                        circuit,
                        output,
                        _name(graph, u),
                        f"{kernel_computer.kernels} kernels raised: "
                        f"{exc!r}",
                    )
                )
            else:
                divergence = diff_chains(chain, kernel_chain)
                if divergence is not None:
                    mismatches.append(
                        Mismatch(
                            "kernels",
                            circuit,
                            output,
                            _name(graph, u),
                            f"{kernel_label}: " + divergence,
                        )
                    )

    if metrics is not None:
        metrics.inc("check.cones")
        metrics.inc("check.targets", len(target_list))
        if mismatches:
            metrics.inc("check.mismatches", len(mismatches))
        metrics.observe("check.cone_seconds", time.perf_counter() - started)
    report.cones += 1
    report.mismatches.extend(mismatches)
    return mismatches


def check_circuit(
    circuit: Circuit,
    outputs: Optional[Sequence[str]] = None,
    algorithm: str = "lt",
    brute_limit: int = DEFAULT_BRUTE_LIMIT,
    metrics=None,
    backend: str = "shared",
    kernels: str = "python",
) -> OracleReport:
    """Differential check of every requested output cone of a netlist."""
    report = OracleReport(circuit.name)
    for out in outputs if outputs is not None else circuit.outputs:
        graph = IndexedGraph.from_circuit(circuit, out)
        check_cone(
            graph,
            algorithm=algorithm,
            brute_limit=brute_limit,
            circuit=circuit.name,
            output=out,
            report=report,
            metrics=metrics,
            backend=backend,
            kernels=kernels,
        )
    return report


def check_incremental(
    circuit: Circuit,
    edits: Sequence,
    output: Optional[str] = None,
    algorithm: str = "lt",
    metrics=None,
    backend: str = "shared",
    engine: str = "patch",
) -> List[Mismatch]:
    """Cross-check the incremental engine against from-scratch results.

    Applies ``edits`` one record at a time to an
    :class:`~repro.incremental.IncrementalEngine` session and, after
    every edit, compares the engine's chains for all live primary inputs
    against a fresh :class:`ChainComputer` on the same (edited) graph —
    pair sets, pair vectors and intervals must be identical — and runs
    the low-high certificate on the engine's maintained tree (kind
    ``certificate`` on failure).

    The engine runs on ``backend``; the from-scratch reference runs on
    the *counterpart* backend, so each step also cross-checks the two
    construction backends on the edited (not freshly extracted) graph —
    the one shape the pure-fuzz oracle path never sees.  ``engine``
    selects the dominator-maintenance strategy under test
    (``"patch"`` or ``"dynamic"``).
    """
    from ..incremental import IncrementalEngine

    engine_obj = IncrementalEngine.from_circuit(
        circuit, output, algorithm, backend=backend, engine=engine
    )
    out_name = output or (circuit.outputs[0] if circuit.outputs else "")
    mismatches: List[Mismatch] = []
    engine_obj.chains_for_sources()  # warm the cache pre-edit
    for step, edit in enumerate(edits, 1):
        engine_obj.apply(edit)
        fresh = ChainComputer(
            engine_obj.graph, algorithm, backend=other_backend(backend)
        )
        for detail in engine_obj.check_certificate():
            mismatches.append(
                Mismatch(
                    "certificate",
                    circuit.name,
                    out_name,
                    "",
                    f"after edit {step} ({engine_obj.engine} engine): "
                    + detail,
                )
            )
        tree = engine_obj.tree
        for u in engine_obj.graph.sources():
            if not tree.is_reachable(u):
                continue
            incremental = engine_obj.chain(u)
            scratch = fresh.chain(u)
            if incremental.pair_set() != scratch.pair_set():
                mismatches += _diff_pairs(
                    engine_obj.graph,
                    "incremental",
                    circuit.name,
                    out_name,
                    u,
                    incremental.pair_set(),
                    scratch.pair_set(),
                    f"incremental (after edit {step})",
                    "from-scratch",
                )
                continue
            if incremental.pairs != scratch.pairs or any(
                incremental.interval(v) != scratch.interval(v)
                for v in incremental.vertices()
            ):
                mismatches.append(
                    Mismatch(
                        "incremental",
                        circuit.name,
                        out_name,
                        _name(engine_obj.graph, u),
                        f"after edit {step}: same pair set but different "
                        "chain layout (pair vectors or intervals differ)",
                    )
                )
    if metrics is not None:
        metrics.inc("check.incremental_sessions")
        if mismatches:
            metrics.inc("check.mismatches", len(mismatches))
    return mismatches


def _frame0_name(sequential: SequentialCircuit, core_net: str) -> str:
    """Frame-0 time-frame name of a combinational-core net.

    Flop outputs become frame-0 pseudo-inputs (``q`` → ``ppi_q@0``);
    every other net — primary inputs and gates alike — is simply stamped
    with the frame suffix (``n`` → ``n@0``).
    """
    if core_net in sequential.flops:
        return f"{PSEUDO_INPUT_PREFIX}{core_net}@0"
    return f"{core_net}@0"


def _core_net_name(unrolled_net: str) -> str:
    """Inverse of :func:`_frame0_name` for frame-0 nets."""
    base = unrolled_net[:-2] if unrolled_net.endswith("@0") else unrolled_net
    if base.startswith(PSEUDO_INPUT_PREFIX):
        return base[len(PSEUDO_INPUT_PREFIX):]
    return base


def check_sequential(
    sequential: SequentialCircuit,
    frames: int = 2,
    algorithm: str = "lt",
    metrics=None,
    backend: str = "shared",
    kernels: str = "python",
) -> OracleReport:
    """Kind ``sequential``: core vs. unrolled-frame-0 chain agreement.

    The flop-cut combinational core and the ``frames``-deep time-frame
    unrolling describe the same frame-0 logic under two name spaces:
    core net ``n`` is unrolled net ``n@0``, except flop outputs ``q``
    which become the frame-0 pseudo-inputs ``ppi_q@0``.  Because frame 0
    reads only frame-0 nets, the frame-0 cone of every core output is
    isomorphic to the core's own cone — so for every cone source the
    two dominator chains must carry the *same pair set* once both sides
    are mapped back to core net names.  Any divergence means the
    unroller rewired a frame (the historical flop-to-flop bug) or the
    chain construction is sensitive to graph relabelling; either is
    reported as kind ``sequential``.

    One cone pair is checked per core output: original primary outputs
    are compared root-to-root, and each next-state output ``ppo_q``
    (a buffer the core adds over the flop's data input) is compared
    against the frame-0 cone of that data input — the buffer only
    prepends a single-dominator, never a pair, so pair sets still agree.

    Returns an :class:`OracleReport`; ``report.ok`` is the pass signal.
    """
    core = extract_combinational_core(sequential)
    expanded = unrolled(sequential, frames)
    report = OracleReport(f"{sequential.name}[core-vs-unroll:{frames}]")
    started = time.perf_counter()
    for out in core.outputs:
        if out.startswith(PSEUDO_OUTPUT_PREFIX):
            seed = sequential.flops[out[len(PSEUDO_OUTPUT_PREFIX):]]
        else:
            seed = out
        core_graph = IndexedGraph.from_circuit(core, out)
        frame_graph = IndexedGraph.from_circuit(
            expanded, _frame0_name(sequential, seed)
        )
        core_chains = ChainComputer(
            core_graph, algorithm, backend=backend, kernels=kernels
        )
        frame_chains = ChainComputer(
            frame_graph, algorithm, backend=backend, kernels=kernels
        )
        report.cones += 1

        # Root-as-source entries stay in (a cone whose root is itself an
        # input — e.g. the frame-0 cone of a flop that latches a bare
        # input): their chains are trivially empty on both sides, but
        # excluding them would make the source sets diverge because the
        # core wraps every next-state net in a ppo_* buffer while the
        # unrolling exposes the net directly.
        core_sources = {
            core_graph.name_of(u): u for u in core_graph.sources()
        }
        frame_sources = {
            _core_net_name(frame_graph.name_of(u)): u
            for u in frame_graph.sources()
        }
        report.comparisons += 1
        if set(core_sources) != set(frame_sources):
            report.mismatches.append(
                Mismatch(
                    "sequential",
                    sequential.name,
                    out,
                    "",
                    f"cone sources differ: core has "
                    f"{sorted(set(core_sources) - set(frame_sources))} "
                    f"missing from frame 0, frame 0 has "
                    f"{sorted(set(frame_sources) - set(core_sources))} "
                    f"missing from the core",
                )
            )

        for name in sorted(set(core_sources) & set(frame_sources)):
            report.targets += 1
            report.comparisons += 1
            try:
                core_pairs = {
                    frozenset(core_graph.name_of(v) for v in pair)
                    for pair in core_chains.chain(core_sources[name]).pair_set()
                }
                frame_pairs = {
                    frozenset(
                        _core_net_name(frame_graph.name_of(v)) for v in pair
                    )
                    for pair in frame_chains.chain(
                        frame_sources[name]
                    ).pair_set()
                }
            except ReproError as exc:
                report.mismatches.append(
                    Mismatch(
                        "crash",
                        sequential.name,
                        out,
                        name,
                        f"sequential chain raised: {exc!r}",
                    )
                )
                continue
            if core_pairs != frame_pairs:
                extra = core_pairs - frame_pairs
                missing = frame_pairs - core_pairs
                parts = []
                if extra:
                    parts.append(
                        f"core-only pairs: "
                        + ", ".join(
                            sorted("{%s}" % ",".join(sorted(p)) for p in extra)
                        )
                    )
                if missing:
                    parts.append(
                        f"frame-0-only pairs: "
                        + ", ".join(
                            sorted(
                                "{%s}" % ",".join(sorted(p)) for p in missing
                            )
                        )
                    )
                report.mismatches.append(
                    Mismatch(
                        "sequential",
                        sequential.name,
                        out,
                        name,
                        "; ".join(parts),
                    )
                )
    if metrics is not None:
        metrics.inc("check.sequential_circuits")
        metrics.inc("check.targets", report.targets)
        if report.mismatches:
            metrics.inc("check.mismatches", len(report.mismatches))
        metrics.observe(
            "check.sequential_seconds", time.perf_counter() - started
        )
    return report
