"""Seeded randomized differential fuzzing of the dominator algorithms.

Every case derives its own :class:`random.Random` stream from
``(seed, index)``, so ``run_fuzz(seed=0, cases=500)`` draws the same 500
circuits on every machine — the CI contract.  Case kinds cover:

* seeded random reconvergent DAGs (:func:`~repro.circuits.generators.random_circuit`
  and friends), the main workload;
* structured generator families (adders, parity trees, mux trees, ...)
  at small widths — known-shape reconvergence;
* degenerate shapes the worked examples never exercise: single-gate
  cones, PI-only cones (a primary input that *is* the output),
  multi-fanout roots and fanout-free chains;
* structural mutations: XOR→NAND expansion
  (:func:`repro.graph.rewrite.expand_xors`) multiplies reconvergence
  exactly like the paper's C499→C1355 pair;
* incremental sessions: a random edit script (mixed, deletion-heavy or
  strictly interleaved insert/delete schedule) replayed through
  :class:`~repro.incremental.IncrementalEngine`, alternating the
  ``patch`` and ``dynamic`` engines by case index, cross-checked
  against from-scratch recomputation and the low-high certificate
  after every edit.

A mismatching case is handed to :mod:`repro.check.shrink`; the minimized
circuit is dumped as a ``.bench`` fixture for the bug report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..circuits.generators import (
    mux_tree,
    parity_tree,
    prefix_or_network,
    random_circuit,
    random_series_parallel,
    random_single_output,
    ripple_carry_adder,
)
from ..graph.circuit import Circuit
from ..graph.node import NodeType
from ..graph.rewrite import expand_xors
from ..incremental.edits import AddGate, Edit, RemoveGate, Rewire
from .oracle import (
    DEFAULT_BRUTE_LIMIT,
    Mismatch,
    OracleReport,
    check_circuit,
    check_incremental,
)
from .shrink import dump_repro, shrink_circuit

Fault = Callable[[Circuit], bool]


@dataclass(frozen=True)
class FuzzCase:
    """One drawn test case.

    ``engine`` is the incremental-engine strategy the case's edit script
    is replayed under (``"patch"`` or ``"dynamic"``); it is meaningful
    only when ``edits`` is non-empty.
    """

    index: int
    kind: str
    circuit: Circuit
    edits: Tuple[Edit, ...] = ()
    engine: str = "patch"


@dataclass
class FuzzFailure:
    """A mismatching case, after shrinking."""

    case: FuzzCase
    mismatches: List[Mismatch]
    shrunk: Circuit
    repro_path: Optional[str] = None

    @property
    def shrunk_gates(self) -> int:
        return self.shrunk.gate_count()


@dataclass
class FuzzResult:
    """Outcome of one fuzzing run."""

    seed: int
    cases: int = 0
    targets: int = 0
    comparisons: int = 0
    incremental_sessions: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"fuzz seed={self.seed}: {self.cases} case(s), "
            f"{self.targets} target(s), {self.comparisons} comparison(s), "
            f"{self.incremental_sessions} incremental session(s) — {status}"
        )


# ----------------------------------------------------------------------
# case generation
# ----------------------------------------------------------------------
def _degenerate_case(rng: random.Random, tag: str) -> Tuple[str, Circuit]:
    """Tiny shapes at the edges of the algorithm's domain."""
    shape = rng.choice(
        ("single_gate", "pi_only", "buffer_chain", "multi_fanout_root")
    )
    c = Circuit(f"degen_{shape}_{tag}")
    if shape == "single_gate":
        # One gate over 2..4 PIs — the whole cone is one search region.
        fanins = [c.add_input(f"i{k}") for k in range(rng.randint(2, 4))]
        c.add_gate("g", rng.choice((NodeType.AND, NodeType.OR)), fanins)
        c.set_outputs(["g"])
    elif shape == "pi_only":
        # The output *is* a primary input: a one-vertex cone.
        c.add_input("i0")
        c.add_input("i1")
        c.set_outputs(["i0"])
    elif shape == "buffer_chain":
        # Fanout-free chain: every vertex single-dominates the input, so
        # every search region is trivial (no interior vertices).
        sig = c.add_input("i0")
        for k in range(rng.randint(1, 5)):
            sig = c.add_gate(f"b{k}", NodeType.BUF, [sig])
        c.set_outputs([sig])
    else:  # multi_fanout_root
        # The root gate's operands reconverge right below the output and
        # a PI feeds several gates (multi-fanout everywhere).
        a, b = c.add_input("a"), c.add_input("b")
        left = c.add_gate("l", NodeType.AND, [a, b])
        right = c.add_gate("r", NodeType.OR, [a, b])
        c.add_gate("root", rng.choice((NodeType.XOR, NodeType.NAND)),
                   [left, right])
        c.set_outputs(["root"])
    c.validate()
    return shape, c


def _structured_case(rng: random.Random) -> Tuple[str, Circuit]:
    pick = rng.randrange(5)
    if pick == 0:
        return "ripple_carry", ripple_carry_adder(rng.randint(2, 3))
    if pick == 1:
        return "parity_tree", parity_tree(rng.randint(3, 6))
    if pick == 2:
        return "mux_tree", mux_tree(rng.randint(1, 2))
    if pick == 3:
        return "prefix_or", prefix_or_network(rng.randint(3, 6))
    return "series_parallel", random_series_parallel(
        depth=rng.randint(2, 4), seed=rng.randrange(1 << 30)
    )


def generate_case(seed: int, index: int, max_gates: int = 24) -> FuzzCase:
    """Deterministically draw case ``index`` of stream ``seed``."""
    rng = random.Random(f"repro-fuzz:{seed}:{index}")
    roll = rng.random()
    edits: Tuple[Edit, ...] = ()
    engine = "patch"
    if roll < 0.45:
        kind = "random"
        circuit = random_circuit(
            num_inputs=rng.randint(2, 6),
            num_gates=rng.randint(3, max_gates),
            num_outputs=rng.randint(1, 2),
            seed=rng.randrange(1 << 30),
            max_fanin=rng.randint(2, 3),
            name=f"fuzz_{seed}_{index}",
        )
    elif roll < 0.60:
        kind = "single_output"
        circuit = random_single_output(
            num_inputs=rng.randint(2, 5),
            num_gates=rng.randint(3, max_gates),
            seed=rng.randrange(1 << 30),
        )
    elif roll < 0.72:
        kind, circuit = _structured_case(rng)
    elif roll < 0.84:
        kind, circuit = _degenerate_case(rng, f"{seed}_{index}")
    else:
        # Alternate the engine under test by case index so a fixed-seed
        # run covers both strategies evenly; the edit schedule is drawn
        # per case (deletion-heavy and interleaved schedules stress the
        # dynamic maintainer's region sweep far harder than pure
        # insertion streams do).
        schedule = rng.choice(("mixed", "deletion_heavy", "interleaved"))
        engine = ("patch", "dynamic")[index % 2]
        kind = f"incremental[{schedule},{engine}]"
        circuit = random_circuit(
            num_inputs=rng.randint(2, 5),
            num_gates=rng.randint(3, max(3, max_gates // 2)),
            num_outputs=1,
            seed=rng.randrange(1 << 30),
            name=f"fuzz_inc_{seed}_{index}",
        )
        edits = tuple(
            _draw_edits(rng, circuit, rng.randint(1, 6), schedule)
        )
    if not edits and rng.random() < 0.2:
        expanded = expand_xors(circuit)
        if expanded.gate_count() <= max_gates * 4:
            kind += "+xor_expanded"
            circuit = expanded
    return FuzzCase(
        index=index, kind=kind, circuit=circuit, edits=edits, engine=engine
    )


#: Edit-kind pools per schedule: ``mixed`` is the balanced original,
#: ``deletion_heavy`` biases toward removals (stressing affected-region
#: recomputation) and ``interleaved`` alternates insert/delete strictly
#: so every batch both grows and shrinks the cone.
_SCHEDULES = {
    "mixed": ("rewire", "add", "remove", "add"),
    "deletion_heavy": ("remove", "remove", "remove", "rewire", "add"),
    "interleaved": None,  # add on even steps, remove on odd
}


def _draw_edits(
    rng: random.Random,
    circuit: Circuit,
    count: int,
    schedule: str = "mixed",
) -> List[Edit]:
    """A random, applicable edit script against a *simulated* netlist.

    Tracks name liveness and a conservative reachability map so every
    generated edit is valid for the engine (no cycles, no dead names).
    Schedules stay shrinker-compatible: the output is a plain edit list
    and any prefix of it is still a valid script.
    """
    from ..graph.indexed import IndexedGraph

    graph = IndexedGraph.from_circuit(circuit)
    pool = _SCHEDULES[schedule]
    edits: List[Edit] = []
    for step in range(count):
        alive = [v for v in range(graph.n) if graph.is_alive(v)]
        gates = [v for v in alive if graph.pred[v]]
        removable = [v for v in alive if v != graph.root]
        if pool is None:
            kind = ("add", "remove")[step % 2]
        else:
            kind = rng.choice(pool)
        if kind == "rewire" and gates:
            w = rng.choice(gates)
            reach = graph.reachable_from(w)
            pool = [v for v in alive if v != w and not reach[v]]
            if pool:
                fanins = tuple(
                    graph.name_of(rng.choice(pool))
                    for _ in range(rng.randint(1, min(3, len(pool))))
                )
                graph.set_fanins(w, [graph.index_of(f) for f in fanins])
                edits.append(Rewire(graph.name_of(w), fanins))
                continue
        if kind == "remove" and removable:
            v = rng.choice(removable)
            name = graph.name_of(v)
            graph.kill_vertex(v)
            edits.append(RemoveGate(name))
            continue
        fanins = tuple(
            graph.name_of(rng.choice(alive))
            for _ in range(rng.randint(1, min(3, len(alive))))
        )
        name = f"fz_{step}"
        v = graph.add_vertex(name)
        for f in fanins:
            graph.add_edge(graph.index_of(f), v)
        edits.append(AddGate(name, fanins, "and"))
    return edits


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def run_fuzz(
    seed: int = 0,
    cases: int = 100,
    max_gates: int = 24,
    brute_limit: int = DEFAULT_BRUTE_LIMIT,
    out_dir: Optional[str] = None,
    inject_fault: Optional[Fault] = None,
    metrics=None,
    progress: Optional[Callable[[int, FuzzCase], None]] = None,
    backend: str = "shared",
    kernels: str = "python",
) -> FuzzResult:
    """Run ``cases`` differential checks; shrink and dump any failure.

    Parameters
    ----------
    inject_fault:
        Self-test hook: a predicate over circuits that marks a case as
        failing *regardless of the oracle* — used to exercise the
        shrink-and-dump pipeline against a known, artificial fault.
    out_dir:
        Where shrunk ``.bench`` repros are written (omit to skip
        dumping; the shrunk circuits are still returned).
    backend:
        Primary chain backend under test; the oracle additionally runs
        the counterpart backend on every target, so one fuzzing pass
        exercises both regardless of this choice.
    kernels:
        Primary hot-path implementation; whenever numpy is importable
        the oracle also runs the opposite kernels per target (with the
        kernel region threshold forced to 0), so fuzzing covers the
        vectorized path by default.
    """
    result = FuzzResult(seed=seed)
    for index in range(cases):
        case = generate_case(seed, index, max_gates=max_gates)
        if progress is not None:
            progress(index, case)
        result.cases += 1
        if metrics is not None:
            metrics.inc("fuzz.cases")

        mismatches = _case_mismatches(
            case, brute_limit, metrics, result, backend, kernels
        )
        if inject_fault is not None and inject_fault(case.circuit):
            mismatches = mismatches + [
                Mismatch(
                    "injected",
                    case.circuit.name,
                    ",".join(case.circuit.outputs),
                    "",
                    "artificial fault injected for pipeline self-test",
                )
            ]
        if not mismatches:
            continue

        if metrics is not None:
            metrics.inc("fuzz.failures")
        predicate = _shrink_predicate(
            case, brute_limit, inject_fault, backend
        )
        shrunk = shrink_circuit(case.circuit, predicate)
        failure = FuzzFailure(case=case, mismatches=mismatches, shrunk=shrunk)
        if out_dir is not None:
            comment = "\n".join(
                [f"fuzz repro: seed={seed} case={index} kind={case.kind}"]
                + [str(m) for m in mismatches[:8]]
            )
            failure.repro_path = str(
                dump_repro(
                    shrunk, out_dir, f"repro_s{seed}_c{index}", comment
                )
            )
            if metrics is not None:
                metrics.inc("fuzz.repros_dumped")
        result.failures.append(failure)
    return result


def _case_mismatches(
    case: FuzzCase,
    brute_limit: int,
    metrics,
    result: FuzzResult,
    backend: str = "shared",
    kernels: str = "python",
) -> List[Mismatch]:
    if case.edits:
        result.incremental_sessions += 1
        return check_incremental(
            case.circuit,
            case.edits,
            metrics=metrics,
            backend=backend,
            engine=case.engine,
        )
    report: OracleReport = check_circuit(
        case.circuit, brute_limit=brute_limit, metrics=metrics,
        backend=backend, kernels=kernels,
    )
    result.targets += report.targets
    result.comparisons += report.comparisons
    return report.mismatches


def _shrink_predicate(
    case: FuzzCase,
    brute_limit: int,
    inject_fault: Optional[Fault],
    backend: str = "shared",
) -> Callable[[Circuit], bool]:
    """Failure predicate the shrinker minimizes against.

    For an injected fault the artificial predicate *is* the failure; for
    oracle failures a candidate fails when any oracle mismatch persists
    (incremental cases replay the prefix of the edit script that is
    still applicable to the reduced circuit).
    """
    if inject_fault is not None:
        return inject_fault
    if case.edits:

        def failing_incremental(candidate: Circuit) -> bool:
            applicable = _applicable_edits(candidate, case.edits)
            if not applicable:
                return False
            return bool(
                check_incremental(
                    candidate,
                    applicable,
                    backend=backend,
                    engine=case.engine,
                )
            )

        return failing_incremental

    def failing(candidate: Circuit) -> bool:
        return not check_circuit(
            candidate, brute_limit=brute_limit, backend=backend
        ).ok

    return failing


def _applicable_edits(
    circuit: Circuit, edits: Sequence[Edit]
) -> List[Edit]:
    """Longest prefix of ``edits`` whose name references still resolve."""
    known = set(circuit)
    out: List[Edit] = []
    for edit in edits:
        if isinstance(edit, AddGate):
            if edit.name in known or any(f not in known for f in edit.fanins):
                break
            known.add(edit.name)
        elif isinstance(edit, RemoveGate):
            if edit.name not in known:
                break
            known.discard(edit.name)
        elif isinstance(edit, Rewire):
            if edit.name not in known or any(
                f not in known for f in edit.fanins
            ):
                break
        else:
            break
        out.append(edit)
    return out
