"""Testability analysis — the paper's test-generation motivation.

Section 1 cites "computation of signal probabilities for test generation"
(PREDICT [5]): random-pattern test coverage is driven by how *controllable*
and *observable* each net is.  This module provides:

* :func:`cop_controllability` — the classic COP 1-controllability
  (identical to the naive correlation-blind signal probability; kept under
  its testability name with 0/1-controllability accessors),
* :func:`cop_observability` — COP observability propagated from the
  output through gate sensitization probabilities,
* :func:`detectability` — per-net stuck-at detection probabilities and
  the set of random-pattern-resistant nets,
* :func:`dominator_detectability_profile` /
  :func:`fault_detectability_exact` — the dominator refinement: a fault
  effect on net *x* must traverse every single-vertex dominator of *x*
  in chain order, so the exact probability that each dominator's value
  differs (computed with the BDD engine) forms a monotone non-increasing
  profile whose last entry is the fault's exact random-pattern
  detectability.  Comparing the profile against COP's correlation-blind
  estimate quantifies where COP goes wrong — with a sound reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..dominators.single import circuit_dominator_tree
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from ..graph.node import NodeType
from .signal_probability import naive_signal_probabilities


def cop_controllability(
    circuit: Circuit, input_probs: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    """COP 1-controllability of every net (0-controllability = 1 - this)."""
    return naive_signal_probabilities(circuit, input_probs)


def _sensitization(
    node_type: NodeType, fanin_c1: List[float], position: int
) -> float:
    """COP probability that a gate propagates a change on one fanin."""
    others = [c for i, c in enumerate(fanin_c1) if i != position]
    if node_type in (NodeType.BUF, NodeType.NOT):
        return 1.0
    if node_type in (NodeType.AND, NodeType.NAND):
        prod = 1.0
        for c in others:
            prod *= c
        return prod
    if node_type in (NodeType.OR, NodeType.NOR):
        prod = 1.0
        for c in others:
            prod *= 1.0 - c
        return prod
    if node_type in (NodeType.XOR, NodeType.XNOR):
        return 1.0  # any single-fanin change always flips parity
    if node_type is NodeType.MUX:
        sel, a, b = fanin_c1
        if position == 0:  # select: propagates when a != b
            return a * (1 - b) + b * (1 - a)
        if position == 1:  # a: selected when sel == 0
            return 1.0 - sel
        return sel
    raise ValueError(f"no sensitization rule for {node_type}")


def cop_observability(
    circuit: Circuit,
    output: Optional[str] = None,
    input_probs: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """COP observability of every net of one cone (output = 1.0).

    ``obs(x) = max over fanout branches of obs(gate) * sensitization`` —
    the standard single-path COP approximation.
    """
    graph = IndexedGraph.from_circuit(circuit, output)
    c1 = cop_controllability(circuit, input_probs)
    obs: Dict[int, float] = {graph.root: 1.0}
    order = list(reversed(graph.topological_order()))
    for v in order:
        if v == graph.root:
            continue
        best = 0.0
        for w in graph.succ[v]:
            node = circuit.node(graph.name_of(w))
            fanin_c1 = [c1[f] for f in node.fanins]
            for position, f in enumerate(node.fanins):
                if graph.index_of(f) != v:
                    continue
                sens = _sensitization(node.type, fanin_c1, position)
                best = max(best, obs.get(w, 0.0) * sens)
        obs[v] = best
    return {graph.name_of(v): p for v, p in obs.items()}


@dataclass(frozen=True)
class FaultDetectability:
    """Random-pattern detectability of the two stuck-at faults on a net."""

    net: str
    stuck_at_0: float  # P(net == 1) * observability
    stuck_at_1: float  # P(net == 0) * observability

    @property
    def hardest(self) -> float:
        return min(self.stuck_at_0, self.stuck_at_1)


def detectability(
    circuit: Circuit,
    output: Optional[str] = None,
    input_probs: Optional[Mapping[str, float]] = None,
    resistant_threshold: float = 0.01,
) -> Tuple[Dict[str, FaultDetectability], List[str]]:
    """Stuck-at detectabilities plus the random-pattern-resistant nets."""
    c1 = cop_controllability(circuit, input_probs)
    obs = cop_observability(circuit, output, input_probs)
    table: Dict[str, FaultDetectability] = {}
    resistant: List[str] = []
    for net, o in obs.items():
        entry = FaultDetectability(
            net=net,
            stuck_at_0=c1[net] * o,
            stuck_at_1=(1.0 - c1[net]) * o,
        )
        table[net] = entry
        if entry.hardest < resistant_threshold:
            resistant.append(net)
    return table, resistant


def dominator_detectability_profile(
    circuit: Circuit,
    net: str,
    stuck_at: int,
    output: Optional[str] = None,
) -> List[Tuple[str, float]]:
    """Exact stuck-at fault detectability along the dominator chain.

    The effect of ``net`` stuck-at-``stuck_at`` reaches the output only by
    changing, in turn, *every* single-vertex dominator of ``net``.  For
    each dominator *d* (ending with the output itself) this computes —
    exactly, with BDDs — the probability over uniform random inputs that
    *d*'s value differs between the good and the faulty circuit:

        ``P[ d  !=  d[net := stuck_at] ]``

    The sequence is monotone non-increasing toward the output: all of
    the fault's influence on a later dominator flows through each earlier
    one (every path from the net passes them in chain order), so a vector
    that changes a later dominator necessarily changes every earlier one.
    The final entry *is* the fault's exact random-pattern detectability.  Comparing it to the
    COP estimate from :func:`detectability` quantifies COP's correlation
    blindness with a sound reference.

    Returns ``[(dominator_name, probability), ...]`` from the nearest
    dominator to the output.
    """
    from ..bdd.circuit_bdd import build_net_bdds
    from ..bdd.manager import BDDManager

    if stuck_at not in (0, 1):
        raise ValueError("stuck_at must be 0 or 1")
    graph = IndexedGraph.from_circuit(circuit, output)
    v = graph.index_of(net)
    if v == graph.root:
        return []
    tree = circuit_dominator_tree(graph)
    order = [graph.name_of(s) for s in graph.sources()]
    num_inputs = len(order)
    manager = BDDManager()
    cut_level = num_inputs
    with_cut = build_net_bdds(
        circuit, manager, order, cut_vars={net: cut_level}
    )
    plain = build_net_bdds(circuit, manager, order)
    total = 1 << num_inputs

    profile: List[Tuple[str, float]] = []
    for d in tree.strict_dominators(v):
        d_name = graph.name_of(d)
        good = manager.compose(with_cut[d_name], cut_level, plain[net])
        faulty = manager.restrict(with_cut[d_name], cut_level, stuck_at)
        differs = manager.xor(good, faulty)
        probability = manager.sat_count(differs, num_inputs) / total
        profile.append((d_name, probability))
    return profile


def fault_detectability_exact(
    circuit: Circuit,
    net: str,
    stuck_at: int,
    output: Optional[str] = None,
) -> float:
    """Exact random-pattern detectability of one stuck-at fault (BDD).

    The last entry of :func:`dominator_detectability_profile` — the
    probability that a uniform random vector produces a different value
    at the cone's output.
    """
    profile = dominator_detectability_profile(
        circuit, net, stuck_at, output
    )
    if not profile:
        return 0.0
    return profile[-1][1]
