"""Schmidt chain decomposition and the double-dominator pre-filter.

Schmidt's test ("A Simple Test on 2-Vertex- and 2-Edge-Connectivity",
arXiv:1209.0700) decomposes an undirected graph into an ear-like set of
*chains* in O(n + m): do a DFS, then for every back edge — taken from the
ancestor endpoint, in DFS preorder — walk the tree path back up from the
descendant endpoint until the first already-visited vertex.  The
decomposition answers both connectivity questions at once:

* the graph is 2-edge-connected iff it is connected and every edge lies
  in some chain (the uncovered tree edges are exactly the bridges);
* it is 2-vertex-connected iff additionally exactly one chain — the
  first — is a cycle.

This module runs the test on the **undirected skeleton** of a dominator
cone (:class:`~repro.graph.indexed.IndexedGraph` with ``succ`` and
``pred`` merged, parallel edges collapsed) and derives from it the sweep
pre-filter :func:`has_no_double_dominator`.

Why skeleton structure bounds double-dominator existence
--------------------------------------------------------

For a cone with root *r* (single-vertex dominators first): *v* strictly
dominates *u* iff *v* is an undirected cut vertex separating *u* from
*r*.  The forward direction is immediate; for the converse, an
undirected *u*–*r* path avoiding *v* could only use "backward" edges,
and rerouting a directed escape through them would close a directed
cycle through *v* — impossible in a DAG.

Two consequences give the filter:

1. Any double dominator ``{v, w}`` of *u* lies inside **one**
   biconnected block of the skeleton.  If a cut vertex *c* separated *v*
   from *w*, splicing a ``u -> c`` path avoiding *v* with a ``c -> r``
   path avoiding *w* would produce a ``u -> r`` path avoiding both.
2. A bridge block (a single edge) cannot host an irredundant pair:
   every undirected *u*–*r* walk crosses the bridge, so each endpoint
   already single-dominates *u* and the pair is redundant.

Hence an irredundant double dominator needs a block with at least three
vertices — i.e. a **cycle in the skeleton** (reconvergent fanout).  If
the skeleton is acyclic (every edge a bridge; equivalently, Schmidt's
decomposition is empty), *no* vertex of the cone has a double-vertex
dominator, and a sweep may skip the cone wholesale.  The converse does
not hold — a cyclic, even 3-connected, skeleton may or may not yield
pairs — so the filter is sound but deliberately one-sided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from ..graph.indexed import IndexedGraph

__all__ = [
    "ChainDecomposition",
    "VALID_PREFILTERS",
    "chain_decomposition",
    "has_no_double_dominator",
    "is_biconnected",
    "is_two_edge_connected",
    "skeleton_bridges",
    "validate_prefilter",
]

#: Sweep pre-filter settings understood across the stack
#: (:class:`~repro.core.algorithm.ChainComputer`, ``ExecutorConfig``,
#: the CLI): ``"none"`` computes every cone; ``"biconn"`` skips cones
#: certified by :func:`has_no_double_dominator`.
VALID_PREFILTERS = ("none", "biconn")


def validate_prefilter(value: str) -> str:
    """Validate a prefilter setting, returning it unchanged."""
    if value not in VALID_PREFILTERS:
        raise ValueError(
            f"unknown prefilter {value!r}; expected one of "
            f"{', '.join(VALID_PREFILTERS)}"
        )
    return value


@dataclass(frozen=True)
class ChainDecomposition:
    """Result of Schmidt's chain decomposition on a cone skeleton.

    Attributes
    ----------
    n:
        Vertex count of the underlying graph.
    edge_count:
        Distinct undirected skeleton edges.
    chains:
        Vertex sequences; ``chains[i][0]`` is the chain's start and every
        consecutive pair is a skeleton edge.  A chain is a *cycle* when
        it ends where it started.
    bridges:
        Tree edges covered by no chain — exactly the graph's bridges
        when the skeleton is connected.
    is_connected:
        Whether the DFS from the root reached every vertex.
    """

    n: int
    edge_count: int
    chains: List[List[int]]
    bridges: List[Tuple[int, int]]
    is_connected: bool

    @property
    def is_acyclic(self) -> bool:
        """True iff the skeleton is a forest (no chain exists)."""
        return not self.chains

    @property
    def is_two_edge_connected(self) -> bool:
        return self.n >= 2 and self.is_connected and not self.bridges

    @property
    def is_biconnected(self) -> bool:
        """2-vertex-connectivity per Schmidt: one cycle, and it is first."""
        if self.n < 3 or not self.is_two_edge_connected:
            return False
        cycles = sum(
            1 for chain in self.chains if chain[0] == chain[-1]
        )
        return cycles == 1 and self.chains[0][0] == self.chains[0][-1]


def _skeleton(graph: IndexedGraph) -> List[List[int]]:
    """Undirected adjacency of the cone, parallel edges collapsed."""
    adj: List[Set[int]] = [set() for _ in range(graph.n)]
    for v in range(graph.n):
        for w in graph.succ[v]:
            if v != w:
                adj[v].add(w)
                adj[w].add(v)
    return [sorted(s) for s in adj]


def chain_decomposition(graph: IndexedGraph) -> ChainDecomposition:
    """Schmidt's chain decomposition of the cone's undirected skeleton.

    O(n + m).  The DFS starts at ``graph.root``; vertices outside the
    root's undirected component (possible after tombstoning edits) are
    reported through ``is_connected=False`` and carry no chains.
    """
    n = graph.n
    adj = _skeleton(graph)
    edge_count = sum(len(a) for a in adj) // 2

    parent = [-1] * n
    pre = [-1] * n
    order: List[int] = []
    # Iterative DFS from the root with explicit neighbour cursors.
    if n:
        pre[graph.root] = 0
        order.append(graph.root)
        stack: List[Tuple[int, int]] = [(graph.root, 0)]
        while stack:
            v, i = stack.pop()
            if i < len(adj[v]):
                stack.append((v, i + 1))
                w = adj[v][i]
                if pre[w] < 0:
                    parent[w] = v
                    pre[w] = len(order)
                    order.append(w)
                    stack.append((w, 0))

    visited = [False] * n
    chains: List[List[int]] = []
    covered: Set[FrozenSet[int]] = set()
    for v in order:
        for w in adj[v]:
            # Back edges only, taken from the ancestor endpoint.
            if pre[w] <= pre[v] or parent[w] == v:
                continue
            visited[v] = True
            chain = [v, w]
            covered.add(frozenset((v, w)))
            x = w
            while not visited[x]:
                visited[x] = True
                covered.add(frozenset((x, parent[x])))
                x = parent[x]
                chain.append(x)
            chains.append(chain)

    bridges = [
        (v, parent[v])
        for v in order
        if parent[v] >= 0 and frozenset((v, parent[v])) not in covered
    ]
    return ChainDecomposition(
        n=n,
        edge_count=edge_count,
        chains=chains,
        bridges=bridges,
        is_connected=len(order) == n,
    )


def skeleton_bridges(graph: IndexedGraph) -> List[Tuple[int, int]]:
    """The skeleton's bridge edges (child, parent) in DFS-tree direction."""
    return chain_decomposition(graph).bridges


def is_two_edge_connected(graph: IndexedGraph) -> bool:
    return chain_decomposition(graph).is_two_edge_connected


def is_biconnected(graph: IndexedGraph) -> bool:
    return chain_decomposition(graph).is_biconnected


def has_no_double_dominator(graph: IndexedGraph) -> bool:
    """Certify that *no* vertex of this cone has a double dominator.

    True iff the cone's undirected skeleton is a connected forest — i.e.
    a tree: every edge is a bridge, Schmidt's decomposition is empty,
    and therefore every block is a single edge, which (see the module
    docstring) cannot host an irredundant pair.  A ``False`` answer is
    *not* a claim that pairs exist, only that the cheap certificate does
    not apply; disconnected skeletons are conservatively refused.
    """
    n = graph.n
    if n == 0:
        return True
    # Quick reject: a connected skeleton with >= n edges has a cycle.
    adj = _skeleton(graph)
    if sum(len(a) for a in adj) // 2 > n - 1:
        return False
    decomposition = chain_decomposition(graph)
    return decomposition.is_connected and decomposition.is_acyclic
