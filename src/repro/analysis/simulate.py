"""Logic simulation of circuit netlists.

Two engines:

* :func:`evaluate` — single-vector interpreted evaluation (ground truth).
* :class:`VectorSimulator` — bit-parallel Monte-Carlo engine over numpy
  boolean arrays, used to validate the dominator-partitioned exact signal
  probabilities of :mod:`repro.analysis.signal_probability` on thousands
  of random vectors at once.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from ..errors import CircuitError
from ..graph.circuit import Circuit
from ..graph.node import NodeType, evaluate_gate


def evaluate(circuit: Circuit, assignment: Mapping[str, int]) -> Dict[str, int]:
    """Evaluate every net for one input assignment.

    Parameters
    ----------
    circuit:
        A validated netlist.
    assignment:
        0/1 value for every primary input.

    Returns
    -------
    dict
        Value of every node, inputs included.
    """
    values: Dict[str, int] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.type is NodeType.INPUT:
            if name not in assignment:
                raise CircuitError(f"no value provided for input {name!r}")
            values[name] = int(bool(assignment[name]))
        else:
            values[name] = evaluate_gate(
                node.type, [values[f] for f in node.fanins]
            )
    return values


_VECTOR_OPS = {
    NodeType.BUF: lambda ins: ins[0],
    NodeType.NOT: lambda ins: ~ins[0],
    NodeType.AND: lambda ins: np.logical_and.reduce(ins),
    NodeType.NAND: lambda ins: ~np.logical_and.reduce(ins),
    NodeType.OR: lambda ins: np.logical_or.reduce(ins),
    NodeType.NOR: lambda ins: ~np.logical_or.reduce(ins),
    NodeType.XOR: lambda ins: np.logical_xor.reduce(ins),
    NodeType.XNOR: lambda ins: ~np.logical_xor.reduce(ins),
    NodeType.MUX: lambda ins: np.where(ins[0], ins[2], ins[1]),
}


class VectorSimulator:
    """Bit-parallel simulator: one numpy bool array per net.

    Examples
    --------
    >>> from repro.circuits.figures import figure2_circuit
    >>> sim = VectorSimulator(figure2_circuit())
    >>> probs = sim.monte_carlo_probabilities(num_vectors=1024, seed=7)
    >>> 0.0 <= probs["f"] <= 1.0
    True
    """

    def __init__(self, circuit: Circuit):
        if np is None:
            raise ImportError("VectorSimulator requires numpy")
        circuit.validate()
        self.circuit = circuit
        self._order = circuit.topological_order()

    def run(
        self, input_vectors: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Simulate a batch: each input maps to a bool array of vectors."""
        values: Dict[str, np.ndarray] = {}
        widths = {
            np.asarray(vec).shape[0] for vec in input_vectors.values()
        }
        if len(widths) > 1:
            raise CircuitError("input vector lengths differ")
        width = widths.pop() if widths else 1
        for name in self._order:
            node = self.circuit.node(name)
            if node.type is NodeType.INPUT:
                values[name] = np.asarray(input_vectors[name], dtype=bool)
            elif node.type is NodeType.CONST0:
                values[name] = np.zeros(width, dtype=bool)
            elif node.type is NodeType.CONST1:
                values[name] = np.ones(width, dtype=bool)
            else:
                ins = [values[f] for f in node.fanins]
                values[name] = _VECTOR_OPS[node.type](ins)
        return values

    def random_vectors(
        self,
        num_vectors: int,
        seed: int = 0,
        input_probs: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, np.ndarray]:
        """Random input batch; per-input 1-probabilities default to 0.5."""
        rng = np.random.default_rng(seed)
        vectors: Dict[str, np.ndarray] = {}
        for name in self.circuit.inputs:
            p = 0.5 if input_probs is None else input_probs.get(name, 0.5)
            vectors[name] = rng.random(num_vectors) < p
        return vectors

    def monte_carlo_probabilities(
        self,
        num_vectors: int = 4096,
        seed: int = 0,
        input_probs: Optional[Mapping[str, float]] = None,
        nets: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Estimated signal probability of each net from random vectors."""
        values = self.run(
            self.random_vectors(num_vectors, seed, input_probs)
        )
        wanted = nets if nets is not None else list(values)
        return {name: float(values[name].mean()) for name in wanted}

    def monte_carlo_switching(
        self,
        num_vectors: int = 4096,
        seed: int = 0,
        input_probs: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Estimated switching activity under temporally independent vectors.

        Two consecutive random vectors are independent, so the toggle rate
        of a net with signal probability *p* converges to ``2·p·(1-p)``.
        """
        values = self.run(
            self.random_vectors(num_vectors, seed, input_probs)
        )
        return {
            name: float(np.mean(arr[1:] != arr[:-1]))
            for name, arr in values.items()
        }
