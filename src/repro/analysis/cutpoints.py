"""Cut-point selection for equivalence checking (paper Section 1).

Combinational equivalence checkers (e.g. CLEVER [18]) partition the two
circuits under comparison at *cut points* — internal frontiers behind
which the cones can be proven equivalent independently.  A frontier is
usable when it separates the primary inputs from the output; that is
exactly the definition of a common dominator of the PI set:

* common *single*-vertex dominators give 1-wide cut frontiers (rare),
* common *double*-vertex dominators give 2-wide frontiers (the paper's
  point: far more frequent, and all of them are enumerated by one
  dominator chain of the fake super-source).

:func:`select_cut_frontiers` returns the frontiers ordered from the inputs
toward the output — the natural sweep order for a cut-based prover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.common import common_chain
from ..dominators.single import circuit_dominator_tree
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from ..graph.transform import merge_sources


@dataclass(frozen=True)
class CutFrontier:
    """One input/output-separating frontier of a cone.

    ``width`` is 1 for a single-vertex cut, 2 for a double-vertex cut;
    ``nets`` are the frontier's net names.
    """

    width: int
    nets: Tuple[str, ...]


def common_single_cutpoints(graph: IndexedGraph) -> List[int]:
    """Common single-vertex dominators of all primary inputs, in order.

    Computed with the same fake-super-source trick as the double case:
    the idom chain of the fake vertex (excluding the root itself is kept —
    the root is always a valid, if useless, frontier).
    """
    sources = graph.sources()
    if not sources:
        return []
    augmented = merge_sources(graph, sources)
    tree = circuit_dominator_tree(augmented)
    source_set = set(sources)
    # Strict dominators of the fake vertex; a primary input can only show
    # up when it is the sole source (it trivially "covers" its own paths)
    # and is not a usable internal frontier, so it is dropped.
    return [
        v for v in tree.chain(graph.n)[1:] if v not in source_set
    ]


def select_cut_frontiers(
    circuit: Circuit,
    output: Optional[str] = None,
    include_root: bool = False,
) -> List[CutFrontier]:
    """All 1- and 2-wide PI-separating frontiers of one output cone.

    Frontiers are ordered from the inputs toward the output: single cuts
    by dominator-chain position, double cuts in dominator-chain order
    (each yielded pair separates the PIs from the output).

    Examples
    --------
    >>> from repro.circuits.figures import figure2_circuit
    >>> frontiers = select_cut_frontiers(figure2_circuit())
    >>> [f.nets for f in frontiers if f.width == 1]
    [('t',)]
    """
    graph = IndexedGraph.from_circuit(circuit, output)
    frontiers: List[CutFrontier] = []
    for v in common_single_cutpoints(graph):
        if v == graph.root and not include_root:
            continue
        frontiers.append(CutFrontier(width=1, nets=(graph.name_of(v),)))
    source_set = set(graph.sources())
    chain = common_chain(graph, graph.sources())
    for v, w in chain.iter_dominator_pairs():
        if v in source_set or w in source_set:
            continue  # a PI is not a usable internal frontier
        frontiers.append(
            CutFrontier(
                width=2, nets=(graph.name_of(v), graph.name_of(w))
            )
        )
    return frontiers


def verify_frontier(
    graph: IndexedGraph, nets: Tuple[str, ...]
) -> bool:
    """Check that removing ``nets`` disconnects every PI from the output.

    Used by the tests and the equivalence-checking example to certify
    that every frontier returned by :func:`select_cut_frontiers` is a
    genuine cut.
    """
    banned = {graph.index_of(n) for n in nets}
    if graph.root in banned:
        return True
    seen = set()
    stack = [s for s in graph.sources() if s not in banned]
    seen.update(stack)
    while stack:
        v = stack.pop()
        if v == graph.root:
            return False
        for w in graph.succ[v]:
            if w not in seen and w not in banned:
                seen.add(w)
                stack.append(w)
    return True
