"""Re-converging path identification (paper Section 2).

    "Every edge of the dominator tree (idom(v), v) represents the starting
    and the ending points of a path.  If the fanout degree of v is one,
    then the re-converging path is trivial (i.e. an edge).  Otherwise,
    vertex v is the origin of a re-converging path and vertex idom(v) is
    the earliest point at which such a path converges."

With double-vertex dominators the story refines: when the single-vertex
convergence point is far away, the *immediate double-vertex dominator*
gives the earliest 2-cut through which all of v's fanout paths squeeze —
usually much closer.  :func:`reconvergence_report` reports both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.algorithm import ChainComputer
from ..dominators.single import circuit_dominator_tree
from ..graph.indexed import IndexedGraph
from ..graph.topo import levels_from_inputs


@dataclass(frozen=True)
class ReconvergentPath:
    """One non-trivial re-converging path of the cone.

    Attributes
    ----------
    origin:
        Name of the multi-fanout vertex the path fans out from.
    convergence:
        Name of ``idom(origin)`` — the single-vertex convergence point.
    span:
        Logic-level distance from origin to convergence.
    double_cut:
        The immediate double-vertex dominator of the origin (names), or
        ``None`` if the origin has none; when present, its span is at
        most ``span`` and typically much smaller.
    double_span:
        Logic-level distance to the farther vertex of ``double_cut``.
    """

    origin: str
    convergence: str
    span: int
    double_cut: Optional[Tuple[str, str]]
    double_span: Optional[int]


def reconvergence_report(
    graph: IndexedGraph, with_double: bool = True
) -> List[ReconvergentPath]:
    """All non-trivial re-converging paths of a cone, origins in topo order.

    A path is non-trivial when its origin has fanout degree > 1.
    """
    tree = circuit_dominator_tree(graph)
    levels = levels_from_inputs(graph)
    computer = ChainComputer(graph, tree=tree) if with_double else None
    report: List[ReconvergentPath] = []
    for v in graph.topological_order():
        if v == graph.root or len(graph.succ[v]) <= 1:
            continue
        if not tree.is_reachable(v):
            continue
        w = tree.idom[v]
        double_cut = None
        double_span = None
        if computer is not None:
            immediate = computer.chain(v).immediate()
            if immediate is not None:
                double_cut = (
                    graph.name_of(immediate[0]),
                    graph.name_of(immediate[1]),
                )
                double_span = max(
                    levels[immediate[0]], levels[immediate[1]]
                ) - levels[v]
        report.append(
            ReconvergentPath(
                origin=graph.name_of(v),
                convergence=graph.name_of(w),
                span=levels[w] - levels[v],
                double_cut=double_cut,
                double_span=double_span,
            )
        )
    return report


def reconvergence_summary(graph: IndexedGraph) -> dict:
    """Aggregate statistics: how much closer double cuts are than single.

    Returns a dict with the number of non-trivial origins, how many have a
    double-vertex cut strictly closer than the single convergence point,
    and the average span reduction — the quantitative version of the
    paper's "single-vertex dominators are too rare / too far" motivation.
    """
    report = reconvergence_report(graph, with_double=True)
    origins = len(report)
    closer = sum(
        1
        for r in report
        if r.double_span is not None and r.double_span < r.span
    )
    reductions = [
        r.span - r.double_span
        for r in report
        if r.double_span is not None
    ]
    return {
        "origins": origins,
        "with_double_cut": sum(
            1 for r in report if r.double_cut is not None
        ),
        "double_cut_closer": closer,
        "mean_span_reduction": (
            sum(reductions) / len(reductions) if reductions else 0.0
        ),
    }
