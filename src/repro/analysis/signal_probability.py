"""Signal probability analysis partitioned at dominator points.

This is the paper's first motivating application (Section 1):

    "Dominators provide the earliest points during topological processing
    at which the re-converging paths meet and thus the signals cease to be
    correlated.  Therefore, the computation of signal probabilities ...
    can be efficiently partitioned along the dominator points.  At the
    origin of a re-converging path, v, an auxiliary variable is
    introduced.  At the end of the path, the immediate dominator of v,
    this variable is eliminated.  As a result, the computation is carried
    out using a minimum set of variables."

Implementation model
--------------------
Every multi-fanout vertex becomes an *auxiliary variable* (it is exactly
the potential origin of a re-converging path).  Each net stores a table of
conditional 1-probabilities over the auxiliary variables *visible* from it
(reachable backwards through aux-free paths).  Because every branching
point is itself auxiliary, distinct fanins are conditionally independent
given an assignment of the visible variables, so gate composition is
exact.

A variable *a* is summed out of a table with the exact elimination rule

    T'(env) = (1 - P[a=1 | env∩S_a]) · T(env, a=0) + P[a=1 | env∩S_a] · T(env, a=1)

which re-introduces *a*'s own support ``S_a`` (visible variables of *a*)
into the table — this is what keeps correlated auxiliary variables (two
variables sharing an earlier stem) exact.  The dominator structure enters
as the *scheduling* optimization the paper describes: the scope of the
variable of *v* closes at ``idom(v)``, and the nesting of scopes along the
dominator tree guarantees tables stay small whenever dominators are close.

:func:`naive_signal_probabilities` is the classic first-order propagation
that ignores correlation — the "generally produces incorrect results"
strawman of Section 1, kept for comparison.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..dominators.single import circuit_dominator_tree
from ..errors import ReproError
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from ..graph.node import NodeType, evaluate_gate


class SupportExplosion(ReproError):
    """The active auxiliary-variable set exceeded the configured bound."""


def naive_signal_probabilities(
    circuit: Circuit, input_probs: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    """First-order propagation assuming all fanins independent.

    Exact only on fanout-free (tree) circuits; wrong in general because
    ``P[f ∧ g] ≠ P[f]·P[g]`` when f and g share variables (the paper's
    Section 1 example).
    """
    probs: Dict[str, float] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.type is NodeType.INPUT:
            p = 0.5 if input_probs is None else input_probs.get(name, 0.5)
            probs[name] = float(p)
        elif node.type is NodeType.CONST0:
            probs[name] = 0.0
        elif node.type is NodeType.CONST1:
            probs[name] = 1.0
        else:
            fanin_probs = [probs[f] for f in node.fanins]
            total = 0.0
            for bits in itertools.product((0, 1), repeat=len(fanin_probs)):
                weight = 1.0
                for bit, p in zip(bits, fanin_probs):
                    weight *= p if bit else (1.0 - p)
                if weight and evaluate_gate(node.type, bits):
                    total += weight
            probs[name] = total
    return probs


#: Conditional probability table: assignment of the ordered support
#: variables -> probability that the net is 1.
_Table = Dict[Tuple[int, ...], float]


class DominatorPartitionedProbability:
    """Exact signal probabilities of one output cone.

    Parameters
    ----------
    circuit:
        Netlist; dominators are defined per single-output cone, so one
        output is analyzed at a time.
    output:
        Which output cone to analyze (required for multi-output circuits).
    input_probs:
        Per-input 1-probabilities (default 0.5 each).
    max_support:
        Bound on simultaneously active auxiliary variables; a table over
        *k* variables has 2^k rows — exactly the "2^k combinations of a
        k-vertex dominator" cost the paper's Section 1 refers to.

    Attributes
    ----------
    peak_support:
        Largest active-variable set encountered — the quantity dominator
        partitioning minimizes.
    """

    def __init__(
        self,
        circuit: Circuit,
        output: Optional[str] = None,
        input_probs: Optional[Mapping[str, float]] = None,
        max_support: int = 18,
    ):
        self.circuit = circuit
        self.graph = IndexedGraph.from_circuit(circuit, output)
        self.tree = circuit_dominator_tree(self.graph)
        self.max_support = max_support
        self.peak_support = 0
        self._input_probs = dict(input_probs or {})
        self._topo_pos = {
            v: i for i, v in enumerate(self.graph.topological_order())
        }
        self._tables: Dict[int, _Table] = {}
        self._supports: Dict[int, List[int]] = {}
        self._marginals: Dict[int, float] = {}
        self._run()

    # ------------------------------------------------------------------
    def probability(self, name: str) -> float:
        """Unconditional 1-probability of a net of the cone."""
        return self._marginals[self.graph.index_of(name)]

    def probabilities(self) -> Dict[str, float]:
        """Unconditional 1-probability of every net of the cone."""
        return {
            self.graph.name_of(v): p for v, p in self._marginals.items()
        }

    # ------------------------------------------------------------------
    def _is_aux(self, v: int) -> bool:
        return len(self.graph.succ[v]) > 1

    def _ordered(self, vars_: Sequence[int]) -> List[int]:
        return sorted(set(vars_), key=self._topo_pos.__getitem__)

    def _eliminate(
        self, table: _Table, support: List[int], var: int
    ) -> Tuple[_Table, List[int]]:
        """Sum ``var`` out of a table — the exact elimination rule."""
        var_support = self._supports[var]
        var_table = self._tables[var]
        new_support = self._ordered(
            [s for s in support if s != var] + list(var_support)
        )
        if len(new_support) > self.max_support:
            raise SupportExplosion(
                f"elimination of variable {self.graph.name_of(var)!r} "
                f"needs {len(new_support)} active variables "
                f"(> {self.max_support})"
            )
        old_pos = {s: i for i, s in enumerate(support)}
        var_idx = old_pos[var]
        new_table: _Table = {}
        for env in itertools.product((0, 1), repeat=len(new_support)):
            env_of = dict(zip(new_support, env))
            p_var = var_table[tuple(env_of[s] for s in var_support)]
            base = [0.0, 0.0]
            for bit in (0, 1):
                key = tuple(
                    bit if s == var else env_of[s] for s in support
                )
                base[bit] = table[key]
            new_table[env] = (1.0 - p_var) * base[0] + p_var * base[1]
        return new_table, new_support

    def _marginalize(self, table: _Table, support: List[int]) -> float:
        """Fully sum out a table (latest variable first, exactly)."""
        while support:
            var = support[-1]  # topologically latest: never re-appears late
            table, support = self._eliminate(table, support, var)
        return table[()]

    def _gate_table(self, v: int) -> Tuple[_Table, List[int]]:
        node = self.circuit.node(self.graph.name_of(v))
        fanins = [self.graph.index_of(f) for f in node.fanins]
        support_vars: List[int] = []
        for f in fanins:
            contributed = [f] if self._is_aux(f) else self._supports[f]
            support_vars.extend(contributed)
        support = self._ordered(support_vars)
        if len(support) > self.max_support:
            raise SupportExplosion(
                f"net {node.name!r} needs {len(support)} active variables "
                f"(> {self.max_support}); dominators of this cone are too "
                "far apart for exact analysis"
            )
        table: _Table = {}
        for env in itertools.product((0, 1), repeat=len(support)):
            env_of = dict(zip(support, env))
            fanin_p: List[float] = []
            for f in fanins:
                if f in env_of:
                    fanin_p.append(float(env_of[f]))
                else:
                    key = tuple(env_of[s] for s in self._supports[f])
                    fanin_p.append(self._tables[f][key])
            total = 0.0
            for bits in itertools.product((0, 1), repeat=len(fanins)):
                weight = 1.0
                for bit, p in zip(bits, fanin_p):
                    weight *= p if bit else (1.0 - p)
                    if weight == 0.0:
                        break
                if weight and evaluate_gate(node.type, bits):
                    total += weight
            table[env] = total
        return table, support

    def _run(self) -> None:
        # Variables whose scope closes at w: idom(v) == w for aux v.
        closes_at: Dict[int, List[int]] = {}
        for v in range(self.graph.n):
            if self._is_aux(v):
                closes_at.setdefault(self.tree.idom[v], []).append(v)

        for v in self.graph.topological_order():
            node = self.circuit.node(self.graph.name_of(v))
            if node.type is NodeType.INPUT:
                p = float(self._input_probs.get(node.name, 0.5))
                table: _Table = {(): p}
                support: List[int] = []
            elif node.type is NodeType.CONST0:
                table, support = {(): 0.0}, []
            elif node.type is NodeType.CONST1:
                table, support = {(): 1.0}, []
            else:
                table, support = self._gate_table(v)

            # Close the scope of every variable whose idom is v (the
            # paper's "the variable is eliminated at the immediate
            # dominator").  Latest-first, and repeat because eliminating
            # a variable re-introduces its own (earlier) support, which
            # may itself be scheduled to close here.
            closing = set(closes_at.get(v, ()))
            while True:
                pending = [s for s in support if s in closing]
                if not pending:
                    break
                table, support = self._eliminate(table, support, pending[-1])

            self.peak_support = max(self.peak_support, len(support))
            self._tables[v] = table
            self._supports[v] = support
            self._marginals[v] = self._marginalize(dict(table), list(support))


def exact_signal_probabilities(
    circuit: Circuit,
    output: Optional[str] = None,
    input_probs: Optional[Mapping[str, float]] = None,
    max_support: int = 18,
) -> Dict[str, float]:
    """Exact signal probability of every net of one output cone.

    Convenience wrapper around :class:`DominatorPartitionedProbability`.

    Examples
    --------
    >>> from repro.graph import CircuitBuilder
    >>> b = CircuitBuilder()
    >>> a = b.input("a")
    >>> f = b.and_(a, b.not_(a))  # f == 0 despite naive P = 0.25
    >>> c = b.finish([f])
    >>> exact_signal_probabilities(c)[f]
    0.0
    """
    analysis = DominatorPartitionedProbability(
        circuit, output, input_probs, max_support
    )
    return analysis.probabilities()
