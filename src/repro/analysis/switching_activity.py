"""Switching-activity estimation — the paper's second motivating use.

    "The average switching activity in a combinational circuit is the
    probability of its net values to change from 0 to 1 or vice versa.
    It correlates directly with the average power dissipation [3]."

Under the standard zero-delay, temporally-independent vector model, the
toggle probability of a net with (exact) signal probability *p* is
``2·p·(1-p)`` — so the hard part is the *exact* signal probability, which
is where the dominator partitioning of
:mod:`repro.analysis.signal_probability` comes in.  A weighted sum over
nets gives the average-power figure of merit.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..graph.circuit import Circuit
from .signal_probability import (
    exact_signal_probabilities,
    naive_signal_probabilities,
)


def activity_from_probability(p: float) -> float:
    """Toggle probability of a net with stationary 1-probability ``p``."""
    return 2.0 * p * (1.0 - p)


def switching_activities(
    circuit: Circuit,
    output: Optional[str] = None,
    input_probs: Optional[Mapping[str, float]] = None,
    exact: bool = True,
    max_support: int = 18,
) -> Dict[str, float]:
    """Per-net switching activity of one output cone.

    With ``exact=False`` the naive (correlation-blind) probabilities are
    used instead — the comparison shown in ``examples/`` quantifies how
    much re-convergence skews power estimates.
    """
    if exact:
        probs = exact_signal_probabilities(
            circuit, output, input_probs, max_support
        )
    else:
        probs = naive_signal_probabilities(circuit, input_probs)
    return {net: activity_from_probability(p) for net, p in probs.items()}


def average_power_proxy(
    circuit: Circuit,
    output: Optional[str] = None,
    input_probs: Optional[Mapping[str, float]] = None,
    load: Optional[Mapping[str, float]] = None,
    exact: bool = True,
) -> float:
    """Capacitance-weighted total switching activity (arbitrary units).

    ``load`` defaults to each net's fanout degree — the usual first-order
    wire/gate capacitance proxy.
    """
    acts = switching_activities(circuit, output, input_probs, exact=exact)
    total = 0.0
    for net, act in acts.items():
        weight = (
            load.get(net, 1.0) if load is not None
            else max(1, circuit.fanout_degree(net))
        )
        total += weight * act
    return total
