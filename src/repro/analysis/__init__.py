"""The paper's motivating applications, built on dominator analysis."""

from .biconnectivity import (
    ChainDecomposition,
    chain_decomposition,
    has_no_double_dominator,
    is_biconnected,
    is_two_edge_connected,
    skeleton_bridges,
)
from .cutpoints import (
    CutFrontier,
    common_single_cutpoints,
    select_cut_frontiers,
    verify_frontier,
)
from .reconvergence import (
    ReconvergentPath,
    reconvergence_report,
    reconvergence_summary,
)
from .signal_probability import (
    DominatorPartitionedProbability,
    SupportExplosion,
    exact_signal_probabilities,
    naive_signal_probabilities,
)
from .simulate import VectorSimulator, evaluate
from .testability import (
    FaultDetectability,
    cop_controllability,
    cop_observability,
    detectability,
    dominator_detectability_profile,
    fault_detectability_exact,
)
from .timing import (
    ArrivalStats,
    CutCriticality,
    DelayModel,
    MonteCarloTiming,
    cut_criticality,
    static_arrival_times,
)
from .switching_activity import (
    activity_from_probability,
    average_power_proxy,
    switching_activities,
)

__all__ = [
    "ArrivalStats",
    "ChainDecomposition",
    "CutCriticality",
    "CutFrontier",
    "DelayModel",
    "MonteCarloTiming",
    "DominatorPartitionedProbability",
    "FaultDetectability",
    "ReconvergentPath",
    "SupportExplosion",
    "VectorSimulator",
    "activity_from_probability",
    "average_power_proxy",
    "chain_decomposition",
    "common_single_cutpoints",
    "cop_controllability",
    "cop_observability",
    "cut_criticality",
    "detectability",
    "dominator_detectability_profile",
    "fault_detectability_exact",
    "evaluate",
    "exact_signal_probabilities",
    "has_no_double_dominator",
    "is_biconnected",
    "is_two_edge_connected",
    "naive_signal_probabilities",
    "reconvergence_report",
    "reconvergence_summary",
    "select_cut_frontiers",
    "skeleton_bridges",
    "static_arrival_times",
    "switching_activities",
    "verify_frontier",
]
