"""Timing analysis — the paper's declared future-work application.

    "Future work includes exploring new applications of the presented
    algorithm, e.g. statistical timing analysis."  (Section 7)

Statistical static timing analysis (SSTA) suffers from the same
re-convergence problem as signal probability: the max of two arrival
times is only easy when the operands are independent, and they stop being
independent exactly where paths re-converge.  Dominators localize that
correlation: the arrival-time correlation created at a fanout stem *v*
dies at ``idom(v)`` — and when the single dominator is far, the immediate
double-vertex dominator {w1, w2} is the earliest 2-cut at which the whole
downstream distribution can be summarized by the joint arrival at just
two nets.

This module provides:

* :func:`static_arrival_times` — classic deterministic STA (longest path).
* :class:`MonteCarloTiming` — vectorized SSTA over independent per-gate
  delay distributions (numpy), giving arrival-time samples per net.
* :func:`cut_criticality` — for each double-vertex cut frontier of a
  cone, the probability that the statistically critical path crosses each
  frontier vertex: the dominator-chain-guided criticality report that the
  future-work remark points toward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from ..core.common import common_chain
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph


def static_arrival_times(
    circuit: Circuit, gate_delay: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    """Deterministic worst-case arrival time of every net.

    ``gate_delay`` maps node names to delays (default 1.0 per gate, 0.0
    for primary inputs and constants).
    """
    arrival: Dict[str, float] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.type.is_input or node.type.is_constant:
            arrival[name] = 0.0
            continue
        delay = 1.0 if gate_delay is None else gate_delay.get(name, 1.0)
        arrival[name] = delay + max(
            (arrival[f] for f in node.fanins), default=0.0
        )
    return arrival


@dataclass(frozen=True)
class DelayModel:
    """Per-gate delay distribution: ``nominal * (1 + sigma * N(0,1))``,
    truncated at zero."""

    nominal: float = 1.0
    sigma: float = 0.2


class MonteCarloTiming:
    """Vectorized statistical timing over one output cone.

    Every gate's delay is an independent random variable; a batch of
    ``num_samples`` full-circuit delay assignments is propagated at once,
    yielding an arrival-time *sample matrix* per net.

    Examples
    --------
    >>> from repro.circuits.generators import carry_select_adder
    >>> adder = carry_select_adder(4)
    >>> timing = MonteCarloTiming(adder, "cout", num_samples=256)
    >>> stats = timing.arrival_statistics()
    >>> stats["cout"].mean > 0
    True
    """

    def __init__(
        self,
        circuit: Circuit,
        output: Optional[str] = None,
        num_samples: int = 1024,
        model: DelayModel = DelayModel(),
        seed: int = 0,
    ):
        if np is None:
            raise ImportError("MonteCarloTiming requires numpy")
        self.circuit = circuit
        self.graph = IndexedGraph.from_circuit(circuit, output)
        self.num_samples = num_samples
        self.model = model
        rng = np.random.default_rng(seed)
        self._arrival: Dict[int, np.ndarray] = {}
        zeros = np.zeros(num_samples)
        for v in self.graph.topological_order():
            node = circuit.node(self.graph.name_of(v))
            if node.type.is_input or node.type.is_constant:
                self._arrival[v] = zeros
                continue
            delay = model.nominal * (
                1.0 + model.sigma * rng.standard_normal(num_samples)
            )
            np.maximum(delay, 0.0, out=delay)
            fanin_arrivals = [
                self._arrival[self.graph.index_of(f)] for f in node.fanins
            ]
            stacked = (
                np.maximum.reduce(fanin_arrivals)
                if fanin_arrivals
                else zeros
            )
            self._arrival[v] = stacked + delay

    def samples(self, name: str) -> np.ndarray:
        """Arrival-time samples of one net."""
        return self._arrival[self.graph.index_of(name)]

    def arrival_statistics(self) -> Dict[str, "ArrivalStats"]:
        """Mean / std / q95 arrival time per net of the cone."""
        out = {}
        for v, arr in self._arrival.items():
            out[self.graph.name_of(v)] = ArrivalStats(
                mean=float(arr.mean()),
                std=float(arr.std()),
                q95=float(np.quantile(arr, 0.95)),
            )
        return out

    def output_distribution(self) -> np.ndarray:
        return self._arrival[self.graph.root]


@dataclass(frozen=True)
class ArrivalStats:
    mean: float
    std: float
    q95: float


@dataclass(frozen=True)
class CutCriticality:
    """Criticality of one double-vertex cut frontier.

    ``p_first``/``p_second`` estimate how often the statistically latest
    path into the root crosses each frontier net (they sum to ~1 up to
    ties, since every input-to-output path crosses the frontier).
    """

    nets: Tuple[str, str]
    p_first: float
    p_second: float

    @property
    def balance(self) -> float:
        """0.0 = all criticality on one net, 1.0 = perfectly split."""
        return 1.0 - abs(self.p_first - self.p_second)


def cut_criticality(
    circuit: Circuit,
    output: Optional[str] = None,
    num_samples: int = 1024,
    model: DelayModel = DelayModel(),
    seed: int = 0,
    max_frontiers: Optional[int] = None,
) -> List[CutCriticality]:
    """Statistical criticality across every common double-vertex frontier.

    For each frontier {w1, w2} (a common double-vertex dominator of all
    primary inputs of the cone), compare per-sample arrival times of the
    two frontier nets: the later one carries the critical path through
    the frontier in that sample.  Frontiers whose criticality is heavily
    one-sided are where timing optimization should focus — the
    dominator-chain structure enumerates all of them in one pass.
    """
    timing = MonteCarloTiming(circuit, output, num_samples, model, seed)
    graph = timing.graph
    sources = graph.sources()
    if not sources:
        return []
    chain = common_chain(graph, sources)
    source_set = set(sources)
    results: List[CutCriticality] = []
    for v, w in chain.iter_dominator_pairs():
        if v in source_set or w in source_set:
            continue
        a = timing._arrival[v]
        b = timing._arrival[w]
        first = float(np.mean(a > b))
        second = float(np.mean(b > a))
        results.append(
            CutCriticality(
                nets=(graph.name_of(v), graph.name_of(w)),
                p_first=first,
                p_second=second,
            )
        )
        if max_frontiers is not None and len(results) >= max_frontiers:
            break
    return results
