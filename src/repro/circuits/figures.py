"""The paper's worked-example circuits (Figures 1 and 2).

The published PDF renders the figures as images, so the exact netlists are
reconstructed here from the *textual* facts the paper states about them;
every one of those facts is asserted in ``tests/core/test_figures.py``.

Figure 1 facts encoded:

* n dominates e; p dominates h; idom(e) = n; idom(b) = f,
* n is the immediate dominator of j, e and k; f of n and p,
* primary input b is dominated by the set {e, h},
* b has exactly two immediate 3-vertex dominators {e, l, m} and {h, j, k},
* all paths from e to f pass through {j, n}, with j redundant.

Figure 2 facts encoded (the dominator-chain running example):

* the double-vertex dominators of u are exactly {a,b}, {a,c}, {a,d},
  {e,c}, {e,d}, {h,c}, {h,d}, {h,g}, {k,l}, {m,l}, {k,n}, {m,n},
* D(u) = <{<a,e,h>, <b,c,d,g>}, {<k,m>, <l,n>}>,
* index(b)=1, index(c)=2, index(l)=5, index(n)=6,
* (min,max): b=(1,1), c=(1,3), d=(1,3), g=(3,3),
* {d,h} dominates u; {g,a} does not.
"""

from __future__ import annotations

from ..graph.circuit import Circuit
from ..graph.node import NodeType


def figure1_circuit() -> Circuit:
    """The example circuit of Figure 1 (with its dominator-tree facts)."""
    c = Circuit("figure1")
    for name in ("a", "b", "c", "d", "g"):
        c.add_input(name)
    c.add_gate("e", NodeType.OR, ["a", "b"])
    c.add_gate("h", NodeType.AND, ["b", "c"])
    c.add_gate("j", NodeType.AND, ["e", "d"])
    c.add_gate("k", NodeType.OR, ["e", "d"])
    c.add_gate("l", NodeType.AND, ["h", "c"])
    c.add_gate("m", NodeType.NOT, ["h"])
    c.add_gate("n", NodeType.OR, ["j", "k", "g"])
    c.add_gate("p", NodeType.OR, ["l", "m", "g"])
    c.add_gate("f", NodeType.AND, ["n", "p"])
    c.set_outputs(["f"])
    c.validate()
    return c


def figure2_circuit() -> Circuit:
    """The dominator-chain running example of Figure 2.

    Region 1 (u up to the single dominator t) is a two-rail ladder — rail
    one ``u→a→e→h→t``, rail two ``u→b→c→d→g→t`` — with the two cross
    edges ``a→c`` and ``d→h`` that prune the pair grid down to exactly
    the staircase the paper lists.  Region 2 (t up to the root f) is the
    cross-free ladder ``t→k→m→f`` / ``t→l→n→f`` contributing the full
    2×2 grid {k,m} × {l,n}.
    """
    c = Circuit("figure2")
    c.add_input("u")
    c.add_gate("a", NodeType.BUF, ["u"])
    c.add_gate("b", NodeType.NOT, ["u"])
    c.add_gate("e", NodeType.BUF, ["a"])
    c.add_gate("c", NodeType.AND, ["b", "a"])
    c.add_gate("d", NodeType.BUF, ["c"])
    c.add_gate("h", NodeType.OR, ["e", "d"])
    c.add_gate("g", NodeType.NOT, ["d"])
    c.add_gate("t", NodeType.AND, ["h", "g"])
    c.add_gate("k", NodeType.BUF, ["t"])
    c.add_gate("l", NodeType.NOT, ["t"])
    c.add_gate("m", NodeType.NOT, ["k"])
    c.add_gate("n", NodeType.BUF, ["l"])
    c.add_gate("f", NodeType.OR, ["m", "n"])
    c.set_outputs(["f"])
    c.validate()
    return c


#: All double-vertex dominator pairs of u in Figure 2, from the paper text.
FIGURE2_PAIRS = [
    ("a", "b"),
    ("a", "c"),
    ("a", "d"),
    ("e", "c"),
    ("e", "d"),
    ("h", "c"),
    ("h", "d"),
    ("h", "g"),
    ("k", "l"),
    ("m", "l"),
    ("k", "n"),
    ("m", "n"),
]
