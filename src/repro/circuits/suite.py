"""The Table-1 benchmark suite: 30 stand-ins for the IWLS'02 circuits.

The paper evaluates on the 30 largest IWLS'02 benchmarks.  Those netlists
are not redistributable inside this repository, so each entry below maps a
benchmark name to a *parametric generator* chosen to match the circuit's
actual function where it is known (C6288 is a 16×16 array multiplier,
C499/C1355 are the 32-bit single-error corrector in XOR/NAND form, C432 a
27-channel interrupt controller, comp a comparator, rot a rotator/shifter,
des Feistel rounds, ...) and a calibrated random reconvergent netlist
where it is not (the apex/i/x/pair/frg2 two-level-synthesis circuits).
Primary input/output counts reproduce Table 1's ``in``/``out`` columns at
``scale=1.0``.

Every entry also records the paper's measured row (single/double dominator
counts, baseline and new runtimes) so the experiment harness can print
paper-vs-measured side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..graph.circuit import Circuit
from ..graph.rewrite import expand_xors
from .generators.alu import magnitude_comparator, simple_alu
from .generators.cascades import cascade
from .generators.des_like import feistel_network
from .generators.ecc import error_corrector
from .generators.encoders import interrupt_controller
from .generators.multipliers import array_multiplier
from .generators.muxtree import barrel_shifter
from .generators.random_dag import random_circuit


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1 (the published numbers)."""

    inputs: int
    outputs: int
    single_doms: int
    double_doms: int
    t1_seconds: float  # baseline [11]
    t2_seconds: float  # the paper's algorithm

    @property
    def improvement(self) -> float:
        return self.t1_seconds / self.t2_seconds


@dataclass(frozen=True)
class SuiteEntry:
    """A named benchmark: its generator plus the paper's published row."""

    name: str
    build: Callable[[float], Circuit]
    paper: PaperRow
    family: str

    def circuit(self, scale: float = 1.0) -> Circuit:
        built = self.build(scale)
        built.name = self.name
        return built


def _dim(value: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(value * scale)))


#: Global shift applied to every random-family generator seed.  The
#: deterministic (structural) generators ignore it — an ALU is an ALU —
#: but the calibrated random netlists resample under a different offset,
#: which is what ``table1 --seed`` uses to probe run-to-run robustness.
_SEED_OFFSET = 0


def set_seed_offset(offset: int) -> None:
    """Shift the seeds of the random-family suite circuits.

    Builders read the offset at build time, so already-created
    :class:`SuiteEntry` records pick it up without cache invalidation.
    """
    global _SEED_OFFSET
    _SEED_OFFSET = int(offset)


def seed_offset() -> int:
    """The currently active random-family seed offset."""
    return _SEED_OFFSET


def _rand(
    inputs: int, gates: int, outputs: int, seed: int
) -> Callable[[float], Circuit]:
    def build(scale: float) -> Circuit:
        return random_circuit(
            num_inputs=_dim(inputs, scale),
            num_gates=_dim(gates, scale, minimum=4),
            num_outputs=_dim(outputs, scale, minimum=1),
            seed=seed + _SEED_OFFSET,
            locality=14,
        )

    return build


def _entries() -> List[SuiteEntry]:
    rows: List[SuiteEntry] = []

    def add(
        name: str,
        build: Callable[[float], Circuit],
        paper: PaperRow,
        family: str,
    ) -> None:
        rows.append(SuiteEntry(name, build, paper, family))

    add(
        "C1355",
        lambda s: expand_xors(
            error_corrector(_dim(32, s, 4), _dim(8, s, 3))
        ),
        PaperRow(41, 32, 6, 10512, 3.5, 0.45),
        "ecc-nand",
    )
    add(
        "C1908",
        lambda s: error_corrector(_dim(24, s, 4), _dim(8, s, 3)),
        PaperRow(33, 25, 636, 5696, 1.5, 0.36),
        "ecc",
    )
    add(
        "C2670",
        _rand(233, 620, 140, seed=2670),
        PaperRow(233, 140, 2091, 410, 1.55, 0.23),
        "random",
    )
    add(
        "C3540",
        lambda s: simple_alu(_dim(23, s, 3), select_bits=4),
        PaperRow(50, 22, 727, 5657, 6.85, 0.42),
        "alu",
    )
    add(
        "C432",
        lambda s: interrupt_controller(_dim(29, s, 4), groups=6),
        PaperRow(36, 7, 195, 2127, 0.3, 0.17),
        "interrupt",
    )
    add(
        "C499",
        lambda s: error_corrector(_dim(32, s, 4), _dim(8, s, 3)),
        PaperRow(41, 32, 960, 9968, 2.3, 0.45),
        "ecc",
    )
    add(
        "C5315",
        _rand(178, 900, 123, seed=5315),
        PaperRow(178, 123, 4093, 11068, 5.5, 0.71),
        "random",
    )
    add(
        "C6288",
        lambda s: array_multiplier(_dim(16, s, 3)),
        PaperRow(32, 32, 480, 3366, 58.89, 0.88),
        "multiplier",
    )
    add(
        "C7552",
        _rand(207, 950, 108, seed=7552),
        PaperRow(207, 108, 4604, 14728, 7.27, 1.16),
        "random",
    )
    add(
        "C880",
        _rand(60, 260, 26, seed=880),
        PaperRow(60, 26, 432, 1309, 0.26, 0.18),
        "random",
    )
    add(
        "alu2",
        lambda s: simple_alu(_dim(4, s, 2), select_bits=2),
        PaperRow(10, 6, 48, 55, 0.81, 0.16),
        "alu",
    )
    add(
        "alu4",
        lambda s: simple_alu(_dim(6, s, 2), select_bits=2),
        PaperRow(14, 8, 77, 214, 3.36, 0.16),
        "alu",
    )
    add(
        "apex5",
        _rand(114, 700, 88, seed=5),
        PaperRow(114, 88, 800, 8107, 3.21, 0.61),
        "random",
    )
    add(
        "apex6",
        _rand(135, 500, 99, seed=6),
        PaperRow(135, 99, 525, 1169, 0.42, 0.24),
        "random",
    )
    add(
        "apex7",
        _rand(49, 180, 37, seed=7),
        PaperRow(49, 37, 140, 476, 0.17, 0.15),
        "random",
    )
    add(
        "cmb",
        _rand(16, 40, 4, seed=16),
        PaperRow(16, 4, 38, 60, 0.16, 0.09),
        "random",
    )
    add(
        "comp",
        lambda s: magnitude_comparator(_dim(16, s, 3)),
        PaperRow(32, 3, 8, 439, 0.16, 0.12),
        "comparator",
    )
    add(
        "cordic",
        lambda s: cascade(
            depth=_dim(18, s, 4), num_inputs=_dim(23, s, 4), num_outputs=2
        ),
        PaperRow(23, 2, 38, 65, 0.12, 0.1),
        "cascade",
    )
    add(
        "des",
        lambda s: feistel_network(
            block_bits=8 * _dim(16, s, 2),
            key_bits=8 * _dim(16, s, 2),
            rounds=3,
            expose_rounds=True,
        ),
        PaperRow(256, 245, 3361, 2349, 8.19, 0.77),
        "feistel",
    )
    add(
        "frg2",
        _rand(143, 740, 139, seed=143),
        PaperRow(143, 139, 1502, 3609, 1.76, 0.44),
        "random",
    )
    add(
        "i8",
        _rand(133, 1000, 81, seed=8),
        PaperRow(133, 81, 2068, 3296, 2.87, 0.5),
        "random",
    )
    add(
        "i9",
        _rand(88, 550, 63, seed=9),
        PaperRow(88, 63, 876, 1827, 0.95, 0.3),
        "random",
    )
    add(
        "i10",
        _rand(257, 1500, 224, seed=10),
        PaperRow(257, 224, 6446, 30608, 16.32, 1.57),
        "random",
    )
    add(
        "pair",
        _rand(173, 1000, 137, seed=173),
        PaperRow(173, 137, 2459, 9196, 1.82, 0.63),
        "random",
    )
    add(
        "rot",
        lambda s: barrel_shifter(
            1 << max(2, int(round(math.log2(128) * s)) if s != 1.0 else 7)
        ),
        PaperRow(135, 107, 1657, 4617, 1.49, 0.38),
        "shifter",
    )
    add(
        "term1",
        _rand(34, 160, 10, seed=34),
        PaperRow(34, 10, 46, 453, 0.31, 0.16),
        "random",
    )
    add(
        "too_large",
        lambda s: cascade(
            depth=_dim(480, s, 8),
            num_inputs=_dim(38, s, 4),
            num_outputs=3,
            seed=99,
        ),
        PaperRow(38, 3, 971, 1467, 423.73, 0.69),
        "cascade",
    )
    add(
        "x1",
        _rand(51, 230, 35, seed=51),
        PaperRow(51, 35, 366, 1297, 0.99, 0.22),
        "random",
    )
    add(
        "x3",
        _rand(135, 540, 99, seed=135),
        PaperRow(135, 99, 495, 1801, 0.68, 0.22),
        "random",
    )
    add(
        "x4",
        _rand(94, 400, 71, seed=94),
        PaperRow(94, 71, 305, 2250, 0.41, 0.18),
        "random",
    )
    return rows


_SUITE: Optional[Dict[str, SuiteEntry]] = None


def table1_suite() -> Dict[str, SuiteEntry]:
    """The full 30-entry registry, keyed by benchmark name."""
    global _SUITE
    if _SUITE is None:
        _SUITE = {entry.name: entry for entry in _entries()}
    return _SUITE


def get_benchmark(name: str, scale: float = 1.0) -> Circuit:
    """Build one suite circuit by its Table-1 name."""
    suite = table1_suite()
    if name not in suite:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(suite)}"
        )
    return suite[name].circuit(scale)


def benchmark_names() -> List[str]:
    """All 30 benchmark names in the paper's (alphabetical) table order."""
    return list(table1_suite())


#: A small subset with diverse structure, for fast CI/benchmark runs.
QUICK_SUBSET = [
    "alu2",
    "alu4",
    "comp",
    "cordic",
    "cmb",
    "C432",
    "C6288",
    "too_large",
]


# ----------------------------------------------------------------------
# scaling tiers (kernel benchmarks, far beyond Table 1's sizes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScalingEntry:
    """One scaling-tier benchmark: a named million-ish-gate build.

    ``tier`` groups entries by cost: ``"mid"`` circuits (tens of
    thousands of gates) are CI material, ``"mega"`` circuits (about a
    million gates each) are the checked-in ``BENCH_scaling.json``
    workload and take minutes per backend on the python path.
    """

    name: str
    tier: str
    build: Callable[[], Circuit]
    approx_gates: int

    def circuit(self) -> Circuit:
        built = self.build()
        built.name = self.name
        return built


_SCALING: Optional[Dict[str, ScalingEntry]] = None


def scaling_suite() -> Dict[str, ScalingEntry]:
    """The scaling-tier registry, keyed by entry name.

    Two families cover the two scaling axes: ``cascade`` is deep and
    narrow (a million tiny regions — tree-pass bound), the
    ``mixing_pipeline`` entries are shallow and wide (regions of
    thousands of vertices — region-work bound, where the numpy kernels
    engage).
    """
    global _SCALING
    if _SCALING is None:
        from .generators.pipeline import mixing_pipeline

        entries = [
            ScalingEntry(
                "pipe_mid",
                "mid",
                lambda: mixing_pipeline(44, 512, seed=7),
                91_000,
            ),
            ScalingEntry(
                "cascade_mega",
                "mega",
                lambda: cascade(250_000, seed=7),
                1_000_000,
            ),
            ScalingEntry(
                "pipe_mega_2k",
                "mega",
                lambda: mixing_pipeline(122, 2048, seed=7),
                1_003_000,
            ),
            ScalingEntry(
                "pipe_mega_4k",
                "mega",
                lambda: mixing_pipeline(61, 4096, seed=7),
                1_007_000,
            ),
            ScalingEntry(
                "pipe_mega_8k",
                "mega",
                lambda: mixing_pipeline(30, 8192, seed=7),
                999_000,
            ),
        ]
        _SCALING = {e.name: e for e in entries}
    return _SCALING


# ----------------------------------------------------------------------
# sequential tier (flip-flop netlists for core/unrolled sweeps)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SequentialEntry:
    """One sequential benchmark: a named parametric state machine.

    ``build(scale)`` returns a
    :class:`~repro.graph.sequential.SequentialCircuit`; sweeps analyze
    either its combinational core or a time-frame unrolling
    (``repro ... --sequential {core,unroll:N}``).
    """

    name: str
    build: Callable[[float], "object"]
    family: str

    def sequential(self, scale: float = 1.0):
        built = self.build(scale)
        built.name = self.name
        built.combinational.name = self.name
        return built


_SEQUENTIAL: Optional[Dict[str, SequentialEntry]] = None


def sequential_suite() -> Dict[str, SequentialEntry]:
    """The sequential registry, keyed by entry name.

    The three families span the pre-filter spectrum: ``s_shift``'s
    flop-cut cones are all certified pair-free by the biconnectivity
    pre-filter, ``s_lfsr`` adds fanout-free XOR feedback (still
    certified), and ``s_alu`` pipelines reconvergent adder stages whose
    cones carry real pairs (never certified).
    """
    global _SEQUENTIAL
    if _SEQUENTIAL is None:
        from .generators.sequential import lfsr, pipelined_alu, shift_register

        entries = [
            SequentialEntry(
                "s_shift",
                lambda s: shift_register(_dim(16, s, 2)),
                "register-chain",
            ),
            SequentialEntry(
                "s_lfsr",
                lambda s: lfsr(_dim(16, s, 4)),
                "lfsr",
            ),
            SequentialEntry(
                "s_alu",
                lambda s: pipelined_alu(
                    width=_dim(8, s, 2), stages=_dim(3, s, 1)
                ),
                "pipeline",
            ),
        ]
        _SEQUENTIAL = {e.name: e for e in entries}
    return _SEQUENTIAL


def sequential_names() -> List[str]:
    """All sequential-suite entry names."""
    return list(sequential_suite())


def get_sequential(name: str, scale: float = 1.0):
    """Build one sequential-suite machine by name."""
    suite = sequential_suite()
    if name not in suite:
        raise KeyError(
            f"unknown sequential benchmark {name!r}; "
            f"choose from {sorted(suite)}"
        )
    return suite[name].sequential(scale)


def scaling_names(tier: Optional[str] = None) -> List[str]:
    """Scaling-entry names, optionally restricted to one tier."""
    return [
        name
        for name, entry in scaling_suite().items()
        if tier is None or entry.tier == tier
    ]


def get_scaling_circuit(name: str) -> Circuit:
    """Build one scaling-tier circuit by name."""
    suite = scaling_suite()
    if name not in suite:
        raise KeyError(
            f"unknown scaling benchmark {name!r}; "
            f"choose from {sorted(suite)}"
        )
    return suite[name].circuit()
