"""Error-correcting-code circuits — the C499/C1355 family.

C499 and C1355 are the ISCAS-85 "32-bit single-error-correcting circuit"
(C1355 is C499 with its XORs expanded to NAND gates): 41 inputs (32 data +
9 syndrome-related), 32 outputs.  The generator below follows the same
recipe: compute parity-check syndromes over overlapping data groups,
decode the syndrome, and conditionally flip each data bit — the syndrome
logic fans out to *every* output, creating the enormous double-dominator
counts Table 1 reports for these circuits (9968 and 10512).
"""

from __future__ import annotations

from typing import List, Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def error_corrector(
    data_bits: int = 32, check_bits: int = 8, name: Optional[str] = None
) -> Circuit:
    """Single-error corrector: data + check inputs, corrected data out.

    Data bit *i* belongs to check group *j* when bit *j* of ``i+1`` is set
    (Hamming-style overlapping groups, wrapped modulo ``check_bits``).
    """
    if data_bits < 2 or check_bits < 2:
        raise ValueError("need at least 2 data and 2 check bits")
    b = CircuitBuilder(name or f"ecc{data_bits}_{check_bits}")
    data = b.input_bus("d", data_bits)
    checks = b.input_bus("c", check_bits)
    b.input("en")  # enable line, mirrors C499's control input count
    enable = "en"

    # Syndrome: recomputed group parity vs transmitted check bit.
    syndromes: List[str] = []
    for j in range(check_bits):
        members = [
            data[i]
            for i in range(data_bits)
            if ((i + 1) >> (j % check_bits.bit_length())) & 1
            or (i % check_bits) == j
        ]
        if not members:
            members = [data[j % data_bits]]
        recomputed = b.xor_tree(members)
        syndromes.append(b.and_(b.xor(recomputed, checks[j]), enable))

    # Decode: data bit i flips when its member groups' syndromes all fire.
    outputs: List[str] = []
    for i in range(data_bits):
        groups = [
            syndromes[j]
            for j in range(check_bits)
            if ((i + 1) >> (j % check_bits.bit_length())) & 1
            or (i % check_bits) == j
        ]
        flip = b.and_tree(groups) if groups else syndromes[i % check_bits]
        outputs.append(b.xor(data[i], flip, name=f"q{i}"))
    return b.finish(outputs)
