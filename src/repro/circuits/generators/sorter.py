"""Batcher odd–even sorting networks over 1-bit lines.

A comparator on single-bit wires is simply (AND, OR) = (min, max); the
full network sorts its Boolean inputs (i.e. counts ones).  Sorting
networks are a classic dominator playground: every comparator is a
2-in/2-out exchange whose outputs jointly dominate nothing individually
but pair with their siblings throughout the merge tree.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def _comparator(b: CircuitBuilder, x: str, y: str) -> Tuple[str, str]:
    """(max, min) exchange for 1-bit values."""
    return b.or_(x, y), b.and_(x, y)


def batcher_sorter(width: int, name: Optional[str] = None) -> Circuit:
    """Odd–even merge sort network over ``width`` Boolean inputs.

    ``width`` must be a power of two.  Output ``y0`` is the largest
    (OR-like), ``y<width-1>`` the smallest (AND-like): the outputs are
    the sorted inputs in descending order, i.e. ``y_k = [popcount > k]``.
    """
    if width < 2 or width & (width - 1):
        raise ValueError("width must be a power of two >= 2")
    b = CircuitBuilder(name or f"sorter{width}")
    lines = b.input_bus("x", width)

    def oddeven_merge_sort(lo: int, n: int) -> None:
        if n > 1:
            half = n // 2
            oddeven_merge_sort(lo, half)
            oddeven_merge_sort(lo + half, half)
            oddeven_merge(lo, n, 1)

    def oddeven_merge(lo: int, n: int, step: int) -> None:
        double = step * 2
        if double < n:
            oddeven_merge(lo, n, double)
            oddeven_merge(lo + step, n, double)
            for i in range(lo + step, lo + n - step, double):
                _exchange(i, i + step)
        else:
            _exchange(lo, lo + step)

    def _exchange(i: int, j: int) -> None:
        hi, lo_ = _comparator(b, lines[i], lines[j])
        lines[i], lines[j] = hi, lo_

    oddeven_merge_sort(0, width)
    outputs = [b.buf(s, name=f"y{i}") for i, s in enumerate(lines)]
    return b.finish(outputs)


def majority_network(width: int, name: Optional[str] = None) -> Circuit:
    """Boolean majority via the median line of a sorting network."""
    if width % 2 == 0:
        raise ValueError("majority needs an odd number of inputs")
    padded = 1
    while padded < width + 1:
        padded *= 2
    b = CircuitBuilder(name or f"maj{width}")
    xs = b.input_bus("x", width)
    zero = b.constant(0, name="pad0")
    lines: List[str] = xs + [zero] * (padded - width)

    # Run the same odd-even recursion over the padded lines.
    def oddeven_merge_sort(lo: int, n: int) -> None:
        if n > 1:
            half = n // 2
            oddeven_merge_sort(lo, half)
            oddeven_merge_sort(lo + half, half)
            oddeven_merge(lo, n, 1)

    def oddeven_merge(lo: int, n: int, step: int) -> None:
        double = step * 2
        if double < n:
            oddeven_merge(lo, n, double)
            oddeven_merge(lo + step, n, double)
            for i in range(lo + step, lo + n - step, double):
                _exchange(i, i + step)
        else:
            _exchange(lo, lo + step)

    def _exchange(i: int, j: int) -> None:
        hi, lo_ = _comparator(b, lines[i], lines[j])
        lines[i], lines[j] = hi, lo_

    oddeven_merge_sort(0, padded)
    median = lines[width // 2]  # descending order: > half ones => 1
    return b.finish([b.buf(median, name="maj")])
