"""Priority/interrupt logic and decoders — the C432 family.

C432 is the ISCAS-85 27-channel interrupt controller (36 inputs, 7
outputs): channel requests gated by a priority chain, with encoded outputs.
Priority chains are long AND cascades shared by all outputs — classic
dominator-rich structure.
"""

from __future__ import annotations

from typing import List, Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def priority_encoder(width: int, name: Optional[str] = None) -> Circuit:
    """Highest-index-wins priority encoder with a valid flag.

    ``width`` request inputs; ``ceil(log2(width))`` encoded outputs plus
    ``valid``.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    b = CircuitBuilder(name or f"prio{width}")
    reqs = b.input_bus("r", width)

    # grant[i] = r[i] AND none of the higher requests.
    grants: List[str] = []
    none_higher = None
    for i in range(width - 1, -1, -1):
        if none_higher is None:
            grants.append(reqs[i])
            none_higher = b.not_(reqs[i])
        else:
            grants.append(b.and_(reqs[i], none_higher))
            if i > 0:
                none_higher = b.and_(none_higher, b.not_(reqs[i]))
    grants.reverse()

    bits = max(1, (width - 1).bit_length())
    outputs: List[str] = []
    for j in range(bits):
        members = [grants[i] for i in range(width) if (i >> j) & 1]
        outputs.append(
            b.or_tree(members, name=f"e{j}") if members else b.constant(0, f"e{j}")
        )
    outputs.append(b.or_tree(reqs, name="valid"))
    return b.finish(outputs)


def interrupt_controller(
    channels: int = 27,
    groups: int = 3,
    name: Optional[str] = None,
) -> Circuit:
    """C432-style interrupt controller.

    ``channels`` request lines plus ``groups`` group-enable lines and a
    global mask; requests are AND-masked by their group enable, arbitrated
    by a priority chain, and encoded.  ``interrupt_controller(27, 3)``
    gives 31 inputs / 6 outputs, C432's neighbourhood.
    """
    if channels < 2 or groups < 1:
        raise ValueError("need at least 2 channels and 1 group")
    b = CircuitBuilder(name or f"intc{channels}")
    reqs = b.input_bus("r", channels)
    enables = b.input_bus("en", groups)
    mask = b.input("mask")

    gated = [
        b.and_(req, enables[i % groups], b.not_(mask))
        for i, req in enumerate(reqs)
    ]
    chain = None
    grants: List[str] = []
    for i, g in enumerate(gated):
        if chain is None:
            grants.append(g)
            chain = b.not_(g)
        else:
            grants.append(b.and_(g, chain))
            if i < channels - 1:
                chain = b.and_(chain, b.not_(g))

    bits = max(1, (channels - 1).bit_length())
    outputs: List[str] = []
    for j in range(bits):
        members = [grants[i] for i in range(channels) if (i >> j) & 1]
        outputs.append(b.or_tree(members, name=f"vec{j}"))
    outputs.append(b.or_tree(gated, name="irq"))
    return b.finish(outputs)


def decoder(select_bits: int, name: Optional[str] = None) -> Circuit:
    """Full ``select_bits``-to-``2**select_bits`` line decoder with enable."""
    if select_bits < 1:
        raise ValueError("select_bits must be positive")
    b = CircuitBuilder(name or f"dec{select_bits}")
    sel = b.input_bus("s", select_bits)
    enable = b.input("en")
    inverted = [b.not_(s) for s in sel]
    outputs: List[str] = []
    for code in range(1 << select_bits):
        literals = [
            sel[j] if (code >> j) & 1 else inverted[j]
            for j in range(select_bits)
        ]
        outputs.append(b.and_(*(literals + [enable]), name=f"y{code}"))
    return b.finish(outputs)
