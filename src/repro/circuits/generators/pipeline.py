"""Wide mixing pipelines — the kernel-scaling stress family.

The cascade family is deep and narrow: millions of tiny regions, each a
handful of vertices.  This family is the opposite axis — a bus of
``width`` signals is repeatedly collapsed through **two** parallel
reduction trees (the stage's double-vertex dominator pair) into a single
join gate (its single dominator), then fanned back out against fresh
primary inputs.  Every consecutive pair of joins therefore bounds a
search region of roughly ``3 * width`` vertices: the whole bus plus both
rails sits strictly between them.  Chains over such a circuit spend all
their time in per-region work — region extraction, the size-two cut,
matching vectors — which is exactly the path the numpy kernels
(:mod:`repro.dominators.kernels`) vectorize, making this the scaling
benchmark's workload.

Fresh inputs per stage matter: reusing the primary bus would let early
inputs bypass later joins, dissolving the single-dominator chain (and
with it the per-stage regions) into one giant region.
"""

from __future__ import annotations

import random
from typing import Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit
from ...graph.node import NodeType

_OPS = (NodeType.AND, NodeType.OR, NodeType.XOR, NodeType.NAND)


def _reduce_tree(b: CircuitBuilder, rng: random.Random, layer):
    """Pairwise reduction of ``layer`` to a single signal."""
    layer = list(layer)
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(b.gate(rng.choice(_OPS), [layer[i], layer[i + 1]]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


def mixing_pipeline(
    stages: int,
    width: int,
    seed: int = 0,
    name: Optional[str] = None,
) -> Circuit:
    """``stages`` wide reconvergent stages over a ``width``-signal bus.

    Each stage reduces the bus through two independent trees (one
    double-dominator pair), joins the rails (one single dominator), and
    rebuilds the bus from the join and ``width - 1`` fresh inputs.
    Gate count is roughly ``stages * (3 * width - 2)``; region size per
    stage is ``3 * width - 1`` vertices, independent of depth — size
    the bus, not the stage count, to control region width.
    """
    if stages < 1 or width < 2:
        raise ValueError("stages >= 1, width >= 2")
    rng = random.Random(seed)
    b = CircuitBuilder(name or f"pipe{stages}x{width}")
    bus = list(b.input_bus("x", width))
    for s in range(stages):
        rails = [_reduce_tree(b, rng, bus) for _ in range(2)]
        join = b.gate(NodeType.OR, rails)
        fresh = [b.input(f"x{s + 1}_{j}") for j in range(width - 1)]
        bus = [join] + [
            b.gate(rng.choice(_OPS), [join, fresh[j]])
            for j in range(width - 1)
        ]
    # Final reduction keeps the last stage's whole bus inside the cone.
    return b.finish([b.buf(_reduce_tree(b, rng, bus), name="y0")])


__all__ = ["mixing_pipeline"]
