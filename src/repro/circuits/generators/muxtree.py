"""Mux trees and barrel shifters — routing-style circuits (i8/i9/rot/x*).

Barrel shifters route every input to every output through log-depth mux
stages: each stage's select line fans out across the whole datapath, so
stage boundaries are dense with common dominators of many inputs.
"""

from __future__ import annotations

from typing import List, Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def mux_tree(select_bits: int, name: Optional[str] = None) -> Circuit:
    """2^k-to-1 multiplexer tree (pure tree on data, shared selects)."""
    if select_bits < 1:
        raise ValueError("select_bits must be positive")
    b = CircuitBuilder(name or f"muxtree{select_bits}")
    data = b.input_bus("d", 1 << select_bits)
    sel = b.input_bus("s", select_bits)
    level = list(data)
    for j in range(select_bits):
        level = [
            b.mux(sel[j], level[2 * i], level[2 * i + 1])
            for i in range(len(level) // 2)
        ]
    return b.finish([b.buf(level[0], name="y")])


def barrel_shifter(
    width: int, name: Optional[str] = None, rotate: bool = True
) -> Circuit:
    """Logarithmic barrel shifter/rotator (the ``rot`` stand-in).

    ``width`` data inputs, ``log2(width)`` shift-amount inputs, ``width``
    outputs; stage *j* conditionally rotates by ``2^j``.
    """
    if width < 2 or width & (width - 1):
        raise ValueError("width must be a power of two >= 2")
    b = CircuitBuilder(name or f"rot{width}")
    data = b.input_bus("d", width)
    bits = width.bit_length() - 1
    amount = b.input_bus("sh", bits)
    zero = None
    level = list(data)
    for j in range(bits):
        shift = 1 << j
        nxt: List[str] = []
        for i in range(width):
            src = (i - shift) % width
            if rotate:
                shifted = level[src]
            else:
                if i < shift:
                    if zero is None:
                        zero = b.constant(0, name="zero")
                    shifted = zero
                else:
                    shifted = level[i - shift]
            nxt.append(b.mux(amount[j], level[i], shifted))
        level = nxt
    outputs = [b.buf(s, name=f"q{i}") for i, s in enumerate(level)]
    return b.finish(outputs)
