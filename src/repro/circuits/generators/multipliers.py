"""Array multipliers — the C6288 family.

C6288, the paper's biggest baseline blow-up among the ISCAS circuits
(58.89 s → 0.88 s, 67x), is a 16×16 array multiplier.  The carry-save
array below reproduces its structure at parametric width: a grid of
partial-product AND gates feeding rows of carry-save adders, with long
criss-crossing re-convergence and very few single-vertex dominators —
exactly the regime where the baseline's per-vertex restriction passes
become expensive.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def _full_adder(
    b: CircuitBuilder, x: str, y: str, z: str
) -> Tuple[str, str]:
    p = b.xor(x, y)
    s = b.xor(p, z)
    c = b.or_(b.and_(x, y), b.and_(p, z))
    return s, c


def _half_adder(b: CircuitBuilder, x: str, y: str) -> Tuple[str, str]:
    return b.xor(x, y), b.and_(x, y)


def array_multiplier(
    width_a: int, width_b: Optional[int] = None, name: Optional[str] = None
) -> Circuit:
    """Carry-save array multiplier: ``width_a + width_b`` inputs/outputs.

    ``array_multiplier(16)`` is the C6288 stand-in (32 in, 32 out);
    smaller widths give the same structure at benchmark-friendly size.
    """
    wa = width_a
    wb = width_b if width_b is not None else width_a
    if wa < 2 or wb < 2:
        raise ValueError("multiplier widths must be at least 2")
    b = CircuitBuilder(name or f"mult{wa}x{wb}")
    xs = b.input_bus("a", wa)
    ys = b.input_bus("b", wb)

    # Partial products pp[i][j] = a_i AND b_j contributes to bit i+j.
    columns: List[List[str]] = [[] for _ in range(wa + wb)]
    for i in range(wa):
        for j in range(wb):
            columns[i + j].append(b.and_(xs[i], ys[j]))

    # Carry-save reduction: repeatedly compress each column with full and
    # half adders until at most one signal per column remains (no final
    # carry-propagate stage — like the CSA core of C6288, compressing to
    # completion column by column).
    out_bits: List[str] = []
    for col in range(wa + wb):
        signals = columns[col]
        overflow: List[str] = []
        while len(signals) > 1:
            if len(signals) >= 3:
                s, c = _full_adder(b, signals[0], signals[1], signals[2])
                rest = signals[3:]
            else:
                s, c = _half_adder(b, signals[0], signals[1])
                rest = signals[2:]
            signals = rest + [s]
            if col + 1 < wa + wb:
                columns[col + 1].append(c)
            else:
                # A carry out of the top column is arithmetically always 0
                # (the product of w-bit operands fits in 2w bits).  OR-ing
                # it into the MSB keeps the gate alive without changing
                # the function — mirroring how C6288 wires its top row.
                overflow.append(c)
        bit = signals[0] if signals else b.constant(0, name=f"z{col}")
        if overflow:
            bit = b.or_(bit, *overflow)
        out_bits.append(bit)
    outputs = [b.buf(s, name=f"p{i}") for i, s in enumerate(out_bits)]
    return b.finish(outputs)
