"""Adder families.

Ripple-carry adders have long single-dominator chains along the carry
path; carry-select adders duplicate logic and recombine through muxes,
creating exactly the kind of two-vertex cuts (the two candidate carries)
that double-vertex dominators capture and single-vertex dominators miss.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def _full_adder(
    b: CircuitBuilder, x: str, y: str, cin: str
) -> Tuple[str, str]:
    """One full adder; returns (sum, carry-out)."""
    p = b.xor(x, y)
    s = b.xor(p, cin)
    carry = b.or_(b.and_(x, y), b.and_(p, cin))
    return s, carry


def ripple_carry_adder(
    width: int, name: Optional[str] = None, with_cin: bool = False
) -> Circuit:
    """``width``-bit ripple-carry adder: 2w(+1) inputs, w+1 outputs."""
    if width < 1:
        raise ValueError("width must be positive")
    b = CircuitBuilder(name or f"rca{width}")
    xs = b.input_bus("a", width)
    ys = b.input_bus("b", width)
    sums: List[str] = []
    if with_cin:
        carry = b.input("cin")
        start = 0
    else:
        sums.append(b.xor(xs[0], ys[0], name="s0"))
        carry = b.and_(xs[0], ys[0])
        start = 1
    for i in range(start, width):
        s, carry = _full_adder(b, xs[i], ys[i], carry)
        sums.append(s)
    return b.finish(sums + [carry])


def carry_select_adder(
    width: int, block: int = 4, name: Optional[str] = None
) -> Circuit:
    """Carry-select adder: each block computed for cin=0 and cin=1.

    The per-block (sum0, sum1) rails re-join at the selecting muxes, so
    every block boundary contributes a rich double-dominator structure.
    """
    if width < 1 or block < 1:
        raise ValueError("width and block must be positive")
    b = CircuitBuilder(name or f"csa{width}x{block}")
    xs = b.input_bus("a", width)
    ys = b.input_bus("b", width)
    cin = b.input("cin")

    sums: List[str] = []
    carry = cin
    for lo in range(0, width, block):
        hi = min(lo + block, width)
        # Two speculative copies of the block.
        rails: List[Tuple[List[str], str]] = []
        for assumed in (0, 1):
            const = b.constant(assumed)
            c = const
            ss: List[str] = []
            for i in range(lo, hi):
                s, c = _full_adder(b, xs[i], ys[i], c)
                ss.append(s)
            rails.append((ss, c))
        (s0, c0), (s1, c1) = rails
        for i, (a0, a1) in enumerate(zip(s0, s1)):
            sums.append(b.mux(carry, a0, a1, name=f"s{lo + i}"))
        carry = b.mux(carry, c0, c1)
    return b.finish(sums + [b.buf(carry, name="cout")])


def carry_lookahead_adder(width: int, name: Optional[str] = None) -> Circuit:
    """Flat carry-lookahead adder: every carry from generate/propagate.

    Wide AND-OR carry trees share the g/p signals heavily, producing many
    re-converging paths with *no* internal single-vertex dominators at
    all — the regime where double-vertex dominators matter most.
    """
    if width < 1:
        raise ValueError("width must be positive")
    b = CircuitBuilder(name or f"cla{width}")
    xs = b.input_bus("a", width)
    ys = b.input_bus("b", width)
    cin = b.input("cin")
    gen = [b.and_(x, y) for x, y in zip(xs, ys)]
    prop = [b.xor(x, y) for x, y in zip(xs, ys)]
    carries = [cin]
    for i in range(width):
        # c[i+1] = g[i] + p[i]g[i-1] + ... + p[i]..p[0]cin
        terms = [gen[i]]
        for j in range(i - 1, -1, -1):
            terms.append(b.and_(*( [gen[j]] + prop[j + 1 : i + 1] )))
        terms.append(b.and_(*(prop[0 : i + 1] + [cin])))
        carries.append(b.or_(*terms))
    sums = [
        b.xor(prop[i], carries[i], name=f"s{i}") for i in range(width)
    ]
    return b.finish(sums + [b.buf(carries[width], name="cout")])
