"""Parity trees and checked-parity circuits.

A pure parity tree is the paper's Section 6 boundary case: "in the extreme
case of a tree-like circuit with n vertices, 'N single doms' would be n and
'N double doms' would [be] 0" — no pair of vertices satisfies Definition 1.
The checked variant (two interleaved parity trees compared at the output)
re-introduces re-convergence and with it double-vertex dominators.
"""

from __future__ import annotations

from typing import Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """Balanced XOR tree over ``width`` inputs — strictly fanout-free."""
    if width < 2:
        raise ValueError("width must be at least 2")
    b = CircuitBuilder(name or f"parity{width}")
    xs = b.input_bus("x", width)
    return b.finish([b.xor_tree(xs, name="parity")])


def dual_rail_parity(width: int, name: Optional[str] = None) -> Circuit:
    """Two parity trees over the same inputs, compared at the output.

    Every input fans out into both trees; all of its re-converging paths
    close only at the final comparator, so the pairs of corresponding
    internal tree nodes become double-vertex dominators.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    b = CircuitBuilder(name or f"dualparity{width}")
    xs = b.input_bus("x", width)
    even = b.xor_tree([b.buf(x) for x in xs])
    odd = b.xor_tree([b.not_(x) for x in xs])
    return b.finish([b.xnor(even, odd, name="check")])
