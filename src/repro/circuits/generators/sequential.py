"""Sequential benchmark generators: shift register, LFSR, pipelined ALU.

These return :class:`~repro.graph.sequential.SequentialCircuit` records
rather than plain netlists: flip-flop outputs appear as INPUT nodes of
the embedded combinational circuit (same net name), and ``flops`` maps
each flop output to its data-input net — the shape
:func:`~repro.graph.sequential.extract_combinational_core` and
:func:`~repro.graph.sequential.unrolled` consume.

The three families deliberately span the pre-filter spectrum: a shift
register's flop-cut cones are all single wires or buffers (every cone is
certified pair-free by the biconnectivity pre-filter), an LFSR adds
fanout-free XOR feedback (still mostly certified), and the pipelined ALU
carries reconvergent carry/select logic per stage (real double-dominator
pairs, never certified).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...graph.circuit import Circuit
from ...graph.node import NodeType
from ...graph.sequential import SequentialCircuit


def shift_register(width: int, name: Optional[str] = None) -> SequentialCircuit:
    """A ``width``-bit serial-in shift register with an inverted tap.

    Stage 0 latches the serial input directly and every later stage
    latches its predecessor's output — the two flop-to-flop shapes the
    time-frame unroller must resolve through previous-frame renames.
    """
    if width < 1:
        raise ValueError("width must be positive")
    circuit_name = name or f"shift{width}"
    comb = Circuit(circuit_name)
    comb.add_input("d")
    for i in range(width):
        comb.add_input(f"q{i}")
    flops: Dict[str, str] = {"q0": "d"}
    for i in range(1, width):
        flops[f"q{i}"] = f"q{i - 1}"
    comb.add_gate("so", NodeType.NOT, [f"q{width - 1}"])
    comb.set_outputs(["so"])
    comb.validate()
    return SequentialCircuit(
        name=circuit_name,
        combinational=comb,
        flops=flops,
        primary_inputs=["d"],
        primary_outputs=["so"],
    )


def lfsr(
    width: int,
    taps: Optional[Sequence[int]] = None,
    name: Optional[str] = None,
) -> SequentialCircuit:
    """A Fibonacci LFSR with a scramble input folded into the feedback.

    ``taps`` are the stage indices XOR-ed into the feedback bit
    (defaults to stage 0, the middle stage and the last stage).  The
    stream output XORs the last stage with the scramble input, so the
    machine has both a primary input and a primary output.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    if taps is None:
        taps = sorted({0, width // 2, width - 1})
    if not taps or any(t < 0 or t >= width for t in taps):
        raise ValueError(f"taps must be stage indices in [0, {width})")
    circuit_name = name or f"lfsr{width}"
    comb = Circuit(circuit_name)
    comb.add_input("sin")
    for i in range(width):
        comb.add_input(f"q{i}")
    comb.add_gate(
        "fb", NodeType.XOR, [f"q{t}" for t in taps] + ["sin"]
    )
    flops: Dict[str, str] = {"q0": "fb"}
    for i in range(1, width):
        flops[f"q{i}"] = f"q{i - 1}"
    comb.add_gate("stream", NodeType.XOR, [f"q{width - 1}", "sin"])
    comb.set_outputs(["stream"])
    comb.validate()
    return SequentialCircuit(
        name=circuit_name,
        combinational=comb,
        flops=flops,
        primary_inputs=["sin"],
        primary_outputs=["stream"],
    )


def _alu_stage(
    comb: Circuit,
    xs: Sequence[str],
    ys: Sequence[str],
    sel: str,
    prefix: str,
) -> List[str]:
    """One ALU stage: ripple add / bitwise AND, selected per bit.

    The carry chain reconverges with the propagate bits at every sum
    XOR, so each stage contributes genuine double-dominator pairs.
    """
    width = len(xs)
    outs: List[str] = []
    carry = None
    for i in range(width):
        p = comb.add_gate(f"{prefix}_p{i}", NodeType.XOR, [xs[i], ys[i]])
        g = comb.add_gate(f"{prefix}_g{i}", NodeType.AND, [xs[i], ys[i]])
        if carry is None:
            s = p
            carry = g
        else:
            s = comb.add_gate(f"{prefix}_s{i}", NodeType.XOR, [p, carry])
            chain = comb.add_gate(
                f"{prefix}_cc{i}", NodeType.AND, [p, carry]
            )
            carry = comb.add_gate(
                f"{prefix}_c{i}", NodeType.OR, [g, chain]
            )
        outs.append(
            comb.add_gate(f"{prefix}_o{i}", NodeType.MUX, [sel, s, g])
        )
    return outs


def pipelined_alu(
    width: int = 4, stages: int = 2, name: Optional[str] = None
) -> SequentialCircuit:
    """A ``stages``-deep pipelined ALU slice over ``width``-bit operands.

    Stage 0 combines the operand buses; every later stage combines the
    previous stage's register bank with the ``b`` bus again (a typical
    operand-feedthrough pipeline).  A shared ``sel`` input picks between
    the add and AND function in every stage.  The flop-cut cones carry
    the stage adders' reconvergent carry logic, so unlike the register
    chains above these cones are *not* certified by the pre-filter.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    if stages < 1:
        raise ValueError("stages must be positive")
    circuit_name = name or f"palu{width}x{stages}"
    comb = Circuit(circuit_name)
    a_bus = [comb.add_input(f"a{i}") for i in range(width)]
    b_bus = [comb.add_input(f"b{i}") for i in range(width)]
    sel = comb.add_input("sel")
    for s in range(stages):
        for i in range(width):
            comb.add_input(f"r{s}_{i}")

    flops: Dict[str, str] = {}
    xs = a_bus
    for s in range(stages):
        stage_outs = _alu_stage(comb, xs, b_bus, sel, f"st{s}")
        for i, net in enumerate(stage_outs):
            flops[f"r{s}_{i}"] = net
        xs = [f"r{s}_{i}" for i in range(width)]

    outputs = [
        comb.add_gate(f"y{i}", NodeType.NOT, [xs[i]]) for i in range(width)
    ]
    comb.set_outputs(outputs)
    comb.validate()
    return SequentialCircuit(
        name=circuit_name,
        combinational=comb,
        flops=flops,
        primary_inputs=a_bus + b_bus + [sel],
        primary_outputs=outputs,
    )
