"""Feistel-network round logic — the ``des`` stand-in.

The MCNC ``des`` benchmark (256 inputs, 245 outputs) is the combinational
expansion of DES round logic.  This generator reproduces the structure:
the data block is split in halves, the right half is expanded, XOR-ed with
key bits, pushed through small S-box-like nonlinear blocks, permuted and
XOR-ed onto the left half, for a configurable number of rounds.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def _sbox(
    b: CircuitBuilder, bits: List[str], rng: random.Random
) -> List[str]:
    """A tiny 4-in/4-out nonlinear block of ANDs, ORs and XORs."""
    w, x, y, z = bits
    t0 = b.xor(w, z)
    t1 = b.and_(x, y)
    t2 = b.or_(w, y)
    t3 = b.xor(x, t2)
    outs = [
        b.xor(t0, t1),
        b.or_(t0, t3),
        b.xor(t1, t2),
        b.and_(t3, b.not_(z)),
    ]
    rng.shuffle(outs)
    return outs


def feistel_network(
    block_bits: int = 32,
    key_bits: int = 32,
    rounds: int = 2,
    seed: int = 1,
    expose_rounds: bool = False,
    name: Optional[str] = None,
) -> Circuit:
    """Feistel cipher round logic, fully combinational.

    ``block_bits`` data inputs (must be a multiple of 8) plus ``key_bits``
    key inputs; ``block_bits`` outputs, plus each round's fresh half as
    extra outputs when ``expose_rounds`` is set (the MCNC ``des``
    benchmark similarly exposes intermediate round values, which is how
    it reaches 245 outputs).
    """
    if block_bits % 8 or block_bits < 8:
        raise ValueError("block_bits must be a positive multiple of 8")
    rng = random.Random(seed)
    b = CircuitBuilder(name or f"feistel{block_bits}r{rounds}")
    data = b.input_bus("pt", block_bits)
    key = b.input_bus("k", key_bits)

    half = block_bits // 2
    left, right = data[:half], data[half:]
    round_taps: List[str] = []
    for rnd in range(rounds):
        # Round function F(right, round key).
        mixed = [
            b.xor(r, key[(rnd * half + i) % key_bits])
            for i, r in enumerate(right)
        ]
        substituted: List[str] = []
        for i in range(0, half, 4):
            chunk = mixed[i : i + 4]
            while len(chunk) < 4:
                chunk.append(mixed[i % half])
            substituted.extend(_sbox(b, chunk, rng))
        substituted = substituted[:half]
        perm = list(range(half))
        rng.shuffle(perm)
        f_out = [substituted[p] for p in perm]
        new_right = [b.xor(l, f) for l, f in zip(left, f_out)]
        left, right = right, new_right
        if expose_rounds and rnd < rounds - 1:
            round_taps.extend(
                b.buf(s, name=f"md{rnd}_{i}") for i, s in enumerate(new_right)
            )

    outputs = [
        b.buf(s, name=f"ct{i}") for i, s in enumerate(left + right)
    ]
    return b.finish(outputs + round_taps)
