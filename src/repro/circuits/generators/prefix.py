"""Parallel-prefix (Kogge–Stone) adders and prefix networks.

Prefix adders are the modern counterpart of the carry-lookahead family:
log-depth carry networks whose group-generate/propagate signals fan out
massively and re-converge at every carry — a stress test for dominator
analysis with *no* internal single dominators at all, but a rich common-
double-dominator structure at the (g, p) pair granularity.
"""

from __future__ import annotations

from typing import List, Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def kogge_stone_adder(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit Kogge–Stone adder with carry-in.

    Inputs ``a*``, ``b*``, ``cin``; outputs ``s*`` plus ``cout``.
    """
    if width < 1:
        raise ValueError("width must be positive")
    b = CircuitBuilder(name or f"ks{width}")
    xs = b.input_bus("a", width)
    ys = b.input_bus("b", width)
    cin = b.input("cin")

    # Bit-level generate/propagate.
    gen: List[str] = [b.and_(x, y) for x, y in zip(xs, ys)]
    prop: List[str] = [b.xor(x, y) for x, y in zip(xs, ys)]

    # Prefix tree: (G, P) pairs combined at power-of-two distances.
    g_level = list(gen)
    p_level = list(prop)
    distance = 1
    while distance < width:
        next_g = list(g_level)
        next_p = list(p_level)
        for i in range(distance, width):
            next_g[i] = b.or_(
                g_level[i], b.and_(p_level[i], g_level[i - distance])
            )
            next_p[i] = b.and_(p_level[i], p_level[i - distance])
        g_level, p_level = next_g, next_p
        distance *= 2

    # carry[i] = G[0..i-1] OR (P[0..i-1] AND cin); carry[0] = cin.
    carries = [cin]
    for i in range(width):
        carries.append(
            b.or_(g_level[i], b.and_(p_level[i], cin))
        )
    sums = [
        b.xor(prop[i], carries[i], name=f"s{i}") for i in range(width)
    ]
    return b.finish(sums + [b.buf(carries[width], name="cout")])


def prefix_or_network(width: int, name: Optional[str] = None) -> Circuit:
    """All prefix ORs ``y_i = x_0 | ... | x_i`` via a Kogge–Stone network.

    Every output shares the network's internal nodes — a clean source of
    many-output common-dominator structure.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    b = CircuitBuilder(name or f"prefix_or{width}")
    xs = b.input_bus("x", width)
    level = list(xs)
    distance = 1
    while distance < width:
        nxt = list(level)
        for i in range(distance, width):
            nxt[i] = b.or_(level[i], level[i - distance])
        level = nxt
        distance *= 2
    outputs = [b.buf(s, name=f"y{i}") for i, s in enumerate(level)]
    return b.finish(outputs)
