"""ALU and comparator families — the alu2/alu4/comp stand-ins.

A bit-sliced ALU computes several functions of the operand buses in
parallel and selects among them with opcode muxes; the mux spine makes the
selected-result nets strong dominator material.  The magnitude comparator
(``comp`` in Table 1: 32 inputs, 3 outputs) is a classic deep-reconvergence
circuit: every output depends on every input through a chain of
per-bit equality links.
"""

from __future__ import annotations

from typing import List, Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit


def simple_alu(
    width: int, select_bits: int = 2, name: Optional[str] = None
) -> Circuit:
    """Bit-sliced ALU: ops AND / OR / XOR / ADD selected by opcode.

    Inputs: two ``width``-bit operands plus ``select_bits`` opcode lines
    (alu2 ≈ ``simple_alu(3)``, alu4 ≈ ``simple_alu(5)`` by I/O counts).
    Outputs: ``width`` result bits plus carry-out.
    """
    if width < 1 or select_bits < 2:
        raise ValueError("width >= 1 and select_bits >= 2 required")
    b = CircuitBuilder(name or f"alu{width}")
    xs = b.input_bus("a", width)
    ys = b.input_bus("b", width)
    sel = b.input_bus("op", select_bits)

    and_res = [b.and_(x, y) for x, y in zip(xs, ys)]
    or_res = [b.or_(x, y) for x, y in zip(xs, ys)]
    xor_res = [b.xor(x, y) for x, y in zip(xs, ys)]
    # Ripple-carry sum.
    add_res: List[str] = []
    carry = b.and_(xs[0], ys[0])
    add_res.append(b.xor(xs[0], ys[0]))
    for i in range(1, width):
        p = b.xor(xs[i], ys[i])
        add_res.append(b.xor(p, carry))
        carry = b.or_(b.and_(xs[i], ys[i]), b.and_(p, carry))

    # Extra opcode lines (beyond the two mux selects) act as an output
    # polarity control, so every select input stays live.
    invert = b.xor_tree(sel[2:]) if len(sel) > 2 else None
    outputs: List[str] = []
    for i in range(width):
        lo = b.mux(sel[0], and_res[i], or_res[i])
        hi = b.mux(sel[0], xor_res[i], add_res[i])
        picked = b.mux(sel[1], lo, hi)
        if invert is not None:
            picked = b.xor(picked, invert)
        outputs.append(b.buf(picked, name=f"r{i}"))
    outputs.append(b.and_(carry, sel[1], name="cout"))
    return b.finish(outputs)


def magnitude_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit comparator with LT / EQ / GT outputs (comp stand-in).

    Built MSB-first: ``gt = Σ_i (a_i > b_i) · Π_{j>i} eq_j`` — the shared
    equality-prefix products re-converge at every output.
    """
    if width < 1:
        raise ValueError("width must be positive")
    b = CircuitBuilder(name or f"comp{width}")
    xs = b.input_bus("a", width)
    ys = b.input_bus("b", width)

    eq = [b.xnor(x, y) for x, y in zip(xs, ys)]
    gt_terms: List[str] = []
    lt_terms: List[str] = []
    for i in range(width - 1, -1, -1):
        prefix = eq[i + 1 :]  # equality of all more-significant bits
        gt_bit = b.and_(xs[i], b.not_(ys[i]))
        lt_bit = b.and_(b.not_(xs[i]), ys[i])
        if prefix:
            gt_terms.append(b.and_(*([gt_bit] + prefix)))
            lt_terms.append(b.and_(*([lt_bit] + prefix)))
        else:
            gt_terms.append(gt_bit)
            lt_terms.append(lt_bit)
    gt = b.or_tree(gt_terms, name="gt")
    lt = b.or_tree(lt_terms, name="lt")
    equal = b.and_tree(eq, name="eq")
    return b.finish([lt, equal, gt])
