"""Combinational CRC and linear (XOR-network) circuits.

CRC update logic is a pure XOR network — like C499/C1355 it is linear
over GF(2), with systematic fanout from every input into many outputs.
The generator unrolls the standard LFSR update over a full message block,
giving deep XOR cones with heavy re-convergence.
"""

from __future__ import annotations

from typing import List, Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit

#: Common generator polynomials (bit i set => x^i term), MSB implicit.
POLYNOMIALS = {
    "crc4": 0b0011,  # x^4 + x + 1
    "crc5": 0b00101,  # x^5 + x^2 + 1
    "crc8": 0b00000111,  # x^8 + x^2 + x + 1
    "crc16": 0b1000000000000101,  # x^16 + x^15 + x^2 + 1
}


def crc_circuit(
    data_bits: int,
    polynomial: str = "crc8",
    name: Optional[str] = None,
) -> Circuit:
    """Combinational CRC over a ``data_bits`` message.

    Inputs: message bits ``d*`` plus the initial register state ``c*``;
    outputs: the final register.  The register update is unrolled one
    message bit at a time (MSB first), exactly like the serial LFSR.
    """
    if polynomial not in POLYNOMIALS:
        raise ValueError(
            f"unknown polynomial {polynomial!r}; choose from "
            f"{sorted(POLYNOMIALS)}"
        )
    if data_bits < 1:
        raise ValueError("data_bits must be positive")
    taps = POLYNOMIALS[polynomial]
    degree = max(4, taps.bit_length(), int(polynomial[3:]))
    b = CircuitBuilder(name or f"{polynomial}_d{data_bits}")
    data = b.input_bus("d", data_bits)
    state: List[str] = b.input_bus("c", degree)

    zero = None
    for t in range(data_bits - 1, -1, -1):  # MSB first
        feedback = b.xor(state[degree - 1], data[t])
        nxt: List[str] = []
        for i in range(degree):
            shifted = state[i - 1] if i > 0 else None
            if (taps >> i) & 1:
                nxt.append(
                    b.buf(feedback)
                    if shifted is None
                    else b.xor(shifted, feedback)
                )
            elif shifted is not None:
                nxt.append(shifted)
            else:
                if zero is None:
                    zero = b.constant(0, name="zero")
                nxt.append(zero)
        state = nxt

    outputs = [b.buf(s, name=f"crc{i}") for i, s in enumerate(state)]
    return b.finish(outputs)


def crc_reference(
    data: int, data_bits: int, polynomial: str, init: int = 0
) -> int:
    """Bit-serial software CRC matching :func:`crc_circuit` (for tests).

    Galois LFSR, MSB-first: shift left, and when the bit falling off the
    top XOR the incoming data bit is 1, XOR the tap mask in.
    """
    taps = POLYNOMIALS[polynomial]
    degree = max(4, taps.bit_length(), int(polynomial[3:]))
    mask = (1 << degree) - 1
    state = init & mask
    for t in range(data_bits - 1, -1, -1):
        feedback = ((state >> (degree - 1)) & 1) ^ ((data >> t) & 1)
        state = (state << 1) & mask
        if feedback:
            state ^= taps
    return state
