"""Deep cascade circuits — the ``too_large`` pathology.

``too_large`` is Table 1's extreme outlier: the baseline [11] needs
423.73 s where the paper's algorithm needs 0.69 s (614x).  The baseline's
cost is one restricted dominator pass *per vertex per cone*, so its worst
case is a deep, narrow circuit whose every vertex lies in every cone — a
long cascade of small reconvergent blocks.  :func:`cascade` builds exactly
that: ``depth`` chained diamond blocks over a handful of inputs, with
feed-forward taps so inner blocks stay inside all output cones.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit
from ...graph.node import NodeType


def cascade(
    depth: int,
    num_inputs: int = 8,
    num_outputs: int = 3,
    seed: int = 0,
    name: Optional[str] = None,
) -> Circuit:
    """Chain of ``depth`` two-rail reconvergent blocks.

    Each block splits the running value into two rails mixed with a
    primary input and re-joins — so every block contributes one double-
    vertex dominator pair (its two rails) and one single dominator (its
    join), and chains/cones grow linearly with ``depth``.
    """
    if depth < 1 or num_inputs < 2 or num_outputs < 1:
        raise ValueError("depth >= 1, num_inputs >= 2, num_outputs >= 1")
    rng = random.Random(seed)
    b = CircuitBuilder(name or f"cascade{depth}")
    ins = b.input_bus("x", num_inputs)

    # Only near-the-end taps feed the extra outputs: long-range taps would
    # bypass the inner blocks and destroy the deep single-dominator chain
    # that makes this family the baseline's worst case.
    taps: List[str] = []
    current = b.xor(ins[0], ins[1])
    for d in range(depth):
        side_input = ins[d % num_inputs]
        left = b.gate(
            rng.choice((NodeType.AND, NodeType.OR)), [current, side_input]
        )
        right = b.gate(
            rng.choice((NodeType.XOR, NodeType.NAND)),
            [current, b.not_(side_input)],
        )
        current = b.gate(rng.choice((NodeType.OR, NodeType.XOR)), [left, right])
        if d >= depth - num_outputs:
            taps.append(current)

    outputs = [b.buf(current, name="y0")]
    for k in range(1, num_outputs):
        mix = taps[(k - 1) % len(taps)] if taps else current
        outputs.append(b.xor(current, ins[-k], mix, name=f"y{k}"))
    return b.finish(outputs)
