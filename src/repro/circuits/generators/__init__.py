"""Parametric circuit-family generators for the benchmark suite."""

from .adders import (
    carry_lookahead_adder,
    carry_select_adder,
    ripple_carry_adder,
)
from .alu import magnitude_comparator, simple_alu
from .cascades import cascade
from .crc import POLYNOMIALS, crc_circuit, crc_reference
from .des_like import feistel_network
from .ecc import error_corrector
from .encoders import decoder, interrupt_controller, priority_encoder
from .multipliers import array_multiplier
from .muxtree import barrel_shifter, mux_tree
from .parity import dual_rail_parity, parity_tree
from .pipeline import mixing_pipeline
from .prefix import kogge_stone_adder, prefix_or_network
from .sequential import lfsr, pipelined_alu, shift_register
from .sorter import batcher_sorter, majority_network
from .random_dag import (
    random_circuit,
    random_series_parallel,
    random_single_output,
)

__all__ = [
    "array_multiplier",
    "barrel_shifter",
    "carry_lookahead_adder",
    "carry_select_adder",
    "batcher_sorter",
    "cascade",
    "crc_circuit",
    "crc_reference",
    "decoder",
    "dual_rail_parity",
    "error_corrector",
    "feistel_network",
    "interrupt_controller",
    "kogge_stone_adder",
    "lfsr",
    "magnitude_comparator",
    "majority_network",
    "mixing_pipeline",
    "mux_tree",
    "parity_tree",
    "pipelined_alu",
    "prefix_or_network",
    "POLYNOMIALS",
    "priority_encoder",
    "random_circuit",
    "random_series_parallel",
    "random_single_output",
    "ripple_carry_adder",
    "shift_register",
    "simple_alu",
]
