"""Seeded random reconvergent circuits.

Used in two roles: (a) fuzzing substrate for the property-based tests —
every random DAG's dominator chain must agree with the brute-force
Definition-1 enumeration — and (b) calibrated stand-ins for the Table-1
benchmarks that have no obvious arithmetic structure (apex*, frg2, i8-i10,
pair, rot, x*...): layered netlists whose primary-input/-output counts are
matched to the published table and whose multi-fanout fraction controls the
amount of reconvergence (hence the number of double-vertex dominators).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ...graph.builder import CircuitBuilder
from ...graph.circuit import Circuit
from ...graph.node import NodeType

#: Gate vocabulary drawn from (weights favour AND/OR as in mapped netlists).
_GATE_POOL: Sequence[NodeType] = (
    NodeType.AND,
    NodeType.AND,
    NodeType.OR,
    NodeType.OR,
    NodeType.NAND,
    NodeType.NOR,
    NodeType.XOR,
    NodeType.NOT,
)


def random_circuit(
    num_inputs: int,
    num_gates: int,
    num_outputs: int = 1,
    seed: int = 0,
    max_fanin: int = 3,
    locality: int = 12,
    shared_fraction: float = 0.25,
    name: Optional[str] = None,
) -> Circuit:
    """Random clustered netlist with realistic per-output cones.

    Mapped multi-output netlists are *clusters*: a pool of shared logic
    (decoders, common subexpressions) feeding mostly-separate per-output
    cones.  The generator mirrors that: ``shared_fraction`` of the gates
    form a locally-wired shared pool over all inputs; the remaining gates
    are split into ``num_outputs`` clusters, each wired over its own
    input subset, its own recent signals, and occasional taps into the
    shared pool.  Per-output cones stay small (cluster + the slices of
    the pool it taps) while still overlapping — which is what keeps the
    Table-1 baseline workload representative instead of degenerate.
    """
    if num_inputs < 1 or num_gates < 1 or num_outputs < 1:
        raise ValueError("need at least one input, gate and output")
    rng = random.Random(seed)
    builder = CircuitBuilder(name or f"rand_i{num_inputs}_g{num_gates}_s{seed}")
    inputs: List[str] = builder.input_bus("pi", num_inputs)

    def new_gate(window: Sequence[str], idx: int, extra: Sequence[str]) -> str:
        gate_type = rng.choice(_GATE_POOL)
        fanin_count = 1 if gate_type is NodeType.NOT else rng.randint(2, max_fanin)
        fanins: List[str] = []
        for _ in range(fanin_count):
            if extra and rng.random() < 0.25:
                pick = rng.choice(extra)
            else:
                pick = rng.choice(window)
            if pick not in fanins:
                fanins.append(pick)
        return builder.gate(gate_type, fanins, name=f"n{idx}")

    # Shared pool: locally-wired logic over all inputs.
    shared_count = min(num_gates - num_outputs, int(num_gates * shared_fraction))
    shared_count = max(0, shared_count)
    shared: List[str] = []
    for idx in range(shared_count):
        window = (inputs + shared)[-locality:]
        shared.append(new_gate(window, idx, extra=inputs))

    # Per-output clusters over input subsets plus shared-pool taps.
    cluster_gates = num_gates - shared_count
    outputs: List[str] = []
    per_cluster = [
        cluster_gates // num_outputs
        + (1 if k < cluster_gates % num_outputs else 0)
        for k in range(num_outputs)
    ]
    idx = shared_count
    clusters: List[List[str]] = []
    for k, budget in enumerate(per_cluster):
        subset_size = rng.randint(
            min(3, num_inputs), min(num_inputs, max(4, num_inputs // 3))
        )
        subset = rng.sample(inputs, subset_size)
        taps = rng.sample(shared, min(len(shared), 4)) if shared else []
        local: List[str] = []
        for _ in range(max(1, budget)):
            window = (subset + taps + local)[-locality:]
            local.append(new_gate(window, idx, extra=subset + taps))
            idx += 1
        clusters.append(local)
        outputs.append(local[-1])

    # Fold each cluster's dangling gates into that cluster's own output,
    # keeping cones cluster-sized.  Shared-pool gates nobody tapped fold
    # into the first output.
    read = {f for node in builder.circuit.nodes() for f in node.fanins}
    for k, local in enumerate(clusters):
        dangling = [
            s for s in local if s not in read and s != outputs[k]
        ]
        if dangling:
            outputs[k] = builder.or_tree(
                dangling + [outputs[k]], name=f"fold{k}"
            )
            read.update(dangling)
    read = {f for node in builder.circuit.nodes() for f in node.fanins}
    stale_shared = [s for s in shared if s not in read]
    if stale_shared:
        outputs[0] = builder.or_tree(
            stale_shared + [outputs[0]], name="foldshared"
        )
    return builder.finish(outputs)


def random_single_output(
    num_inputs: int, num_gates: int, seed: int = 0, max_fanin: int = 3
) -> Circuit:
    """Single-output random cone — the fuzzing workhorse."""
    return random_circuit(
        num_inputs, num_gates, num_outputs=1, seed=seed, max_fanin=max_fanin
    )


def random_series_parallel(
    depth: int, seed: int = 0, name: Optional[str] = None
) -> Circuit:
    """Recursive series-parallel single-input cone — dense with dominators.

    Series composition stacks sub-blocks (every block boundary is a
    single-vertex dominator); parallel composition splits and re-joins
    (the join's two last rails form double-vertex dominators).  These
    circuits exercise deep dominator chains with many regions.
    """
    rng = random.Random(seed)
    builder = CircuitBuilder(name or f"sp_d{depth}_s{seed}")
    src = builder.input("u")

    def block(inp: str, d: int) -> str:
        if d <= 0:
            return builder.not_(inp)
        if rng.random() < 0.5:  # series
            return block(block(inp, d - 1), d - 1)
        left = block(builder.buf(inp), d - 1)
        right = block(builder.not_(inp), d - 1)
        return builder.gate(
            rng.choice((NodeType.AND, NodeType.OR, NodeType.XOR)),
            [left, right],
        )

    return builder.finish([block(src, depth)])
