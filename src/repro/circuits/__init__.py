"""Benchmark circuits: paper figures, parametric generators, Table-1 suite."""

from . import generators
from .figures import FIGURE2_PAIRS, figure1_circuit, figure2_circuit
from .suite import (
    QUICK_SUBSET,
    PaperRow,
    SequentialEntry,
    SuiteEntry,
    benchmark_names,
    get_benchmark,
    get_sequential,
    sequential_names,
    sequential_suite,
    table1_suite,
)

__all__ = [
    "FIGURE2_PAIRS",
    "PaperRow",
    "QUICK_SUBSET",
    "SequentialEntry",
    "SuiteEntry",
    "benchmark_names",
    "figure1_circuit",
    "figure2_circuit",
    "generators",
    "get_benchmark",
    "get_sequential",
    "sequential_names",
    "sequential_suite",
    "table1_suite",
]
