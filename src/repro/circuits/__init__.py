"""Benchmark circuits: paper figures, parametric generators, Table-1 suite."""

from . import generators
from .figures import FIGURE2_PAIRS, figure1_circuit, figure2_circuit
from .suite import (
    QUICK_SUBSET,
    PaperRow,
    SuiteEntry,
    benchmark_names,
    get_benchmark,
    table1_suite,
)

__all__ = [
    "FIGURE2_PAIRS",
    "PaperRow",
    "QUICK_SUBSET",
    "SuiteEntry",
    "benchmark_names",
    "figure1_circuit",
    "figure2_circuit",
    "generators",
    "get_benchmark",
    "table1_suite",
]
