"""Cooper–Harvey–Kennedy iterative dominator computation.

"A Simple, Fast Dominance Algorithm" — the data-flow fixpoint formulated
over immediate dominators with reverse-post-order iteration.  Asymptotically
worse than Lengauer–Tarjan but with tiny constants; we ship it both as an
independent cross-check of :mod:`repro.dominators.lengauer_tarjan` (the two
must agree on every graph — tested) and as a practical alternative for the
small region graphs the paper's algorithm works on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .lengauer_tarjan import UNREACHABLE


def reverse_post_order(
    n: int, succ: Sequence[Sequence[int]], entry: int
) -> List[int]:
    """Reverse post-order of vertices reachable from ``entry``."""
    state = [0] * n  # 0=unvisited, 1=on stack, 2=done
    post: List[int] = []
    stack: List[tuple] = [(entry, iter(succ[entry]))]
    state[entry] = 1
    while stack:
        v, it = stack[-1]
        advanced = False
        for w in it:
            if state[w] == 0:
                state[w] = 1
                stack.append((w, iter(succ[w])))
                advanced = True
                break
        if not advanced:
            stack.pop()
            state[v] = 2
            post.append(v)
    post.reverse()
    return post


def compute_idoms(
    n: int,
    succ: Sequence[Sequence[int]],
    entry: int,
    pred: Optional[Sequence[Sequence[int]]] = None,
) -> List[int]:
    """Immediate dominators via the CHK fixpoint.

    Same contract as :func:`repro.dominators.lengauer_tarjan.compute_idoms`.
    """
    if pred is None:
        pred_local: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            for w in succ[v]:
                pred_local[w].append(v)
        pred = pred_local

    rpo = reverse_post_order(n, succ, entry)
    order = [UNREACHABLE] * n  # vertex -> rpo position
    for pos, v in enumerate(rpo):
        order[v] = pos

    idom = [UNREACHABLE] * n
    idom[entry] = entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order[a] > order[b]:
                a = idom[a]
            while order[b] > order[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for v in rpo:
            if v == entry:
                continue
            new_idom = UNREACHABLE
            for p in pred[v]:
                if order[p] == UNREACHABLE or idom[p] == UNREACHABLE:
                    continue  # unreachable or not yet processed
                new_idom = p if new_idom == UNREACHABLE else intersect(p, new_idom)
            if new_idom != UNREACHABLE and idom[v] != new_idom:
                idom[v] = new_idom
                changed = True
    return idom
