"""Numpy/packed-bitset kernels for the shared-index hot path.

The shared backend's per-region work — extracting the search region,
finding the source-nearest size-two cut, and expanding each pair's
matching vectors — is pointer-chasing python over list-of-list
adjacency.  On wide regions (thousands of vertices per level) that
interpreter overhead dominates; this module re-implements the hot path
over flat arrays, selected via ``kernels="numpy"`` on
:class:`~repro.core.algorithm.ChainComputer` and everything above it.

The kernels operate in **level-order position space**: ``IndexedGraph``
vertex ids come out of a LIFO-Kahn topological sort and are therefore
DFS-flavored, which shreds a wide circuit into thousands of tiny
contiguous runs.  :class:`KernelConeIndex` computes longest-path levels
once (one python O(E) pass) and a stable permutation ``P`` sorting
vertices by level; in P-space every level is one contiguous chunk with
no intra-chunk edges, so the reach/coreach region sweeps and the
matcher's dominator recurrence become a handful of
``np.logical_or.reduceat`` / ``np.bitwise_and.reduceat`` calls per
level instead of a python loop per vertex.  Dominator chains and cut
sets sort identically under any topological numbering, so results map
back to cone ids bit-identically to the pure-python path (the
differential oracle and the hypothesis property suite assert this).

Four kernels:

* **region extraction** — dense chunked reach/coreach over CSR
  adjacency inside the ``[P(start), P(sink)]`` window
  (:meth:`KernelConeIndex.extract`);
* **cut solver** — frontier BFS over the implicit split network
  (:func:`kernel_min_cut`), with the handful of flowed arcs kept in a
  sparse residual overlay; the residually-reachable side after any
  max flow is the unique source-nearest cut, so path selection cannot
  change the answer;
* **matcher** — adaptive: ADDVECTOR excludes a *different* vertex on
  almost every call, so per-exclusion precomputation amortizes
  nothing; each call is answered by the vectorized counting engine
  (:func:`counting_vector`) — two path-counting sweeps modulo a prime
  nominate candidate dominators, one exact reach sweep per candidate
  confirms them — and an exclusion that keeps being re-queried
  graduates to a packed-uint64 postdominator table
  (:class:`KernelBitsetMatcher`): one AND-fold per level computes
  every vertex's full chain at 64 vertices per machine word, after
  which a vector is one row decode;
* **tree pass** — :func:`guarded_cone_idoms` meters the topological
  CHK sweep's NCA walks and falls back to the flat-array SNCA pass
  when a deep circuit degenerates the recurrence toward O(E·depth)
  (pure python, no numpy needed — idoms are unique so the output is
  unchanged, only the worst case is).

Everything degrades gracefully: the module imports without numpy
(``kernels="numpy"`` then raises a clear error), small regions are
served by the existing python path below :data:`MIN_KERNEL_REGION`, and
a region whose bitset table would exceed :data:`BITSET_BYTE_CAP` simply
keeps the matcher's sweep engine and never allocates the table.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

try:  # pragma: no cover - exercised via the numpy-less CI job
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in dev envs
    _np = None

from ..errors import ChainConstructionError, CircuitError, FlowError

#: Valid values of the public ``kernels=`` parameter.
#:
#: * ``python`` — the existing pure-python hot path (always available);
#: * ``numpy`` — flat-array kernels from this module for the cone tree
#:   pass and for shared-backend regions at least
#:   :data:`MIN_KERNEL_REGION` wide, python elsewhere.  Bit-identical
#:   chains either way.
KERNELS = ("python", "numpy")

#: Regions narrower than this (by topological-id window) stay on the
#: python path: below a few hundred vertices the numpy call overhead
#: costs more than the interpreter loop it replaces.  Tests pin this to
#: 0 to force kernel coverage on small circuits.
MIN_KERNEL_REGION = 512

#: Minimum mean vertices per level for a region to take the kernel
#: path.  The kernels sweep one numpy call per level chunk, so a deep
#: and narrow region (a cascade's merge region runs ~1.6 vertices per
#: level over tens of thousands of levels) pays call overhead per
#: *level* while the interpreter pays per *vertex* — the python path
#: wins there.  Gated on the cheap window/span estimate before any
#: extraction work.
MIN_KERNEL_LEVEL_WIDTH = 8

#: Upper bound on one region's packed dominator table
#: (``(r + 1) * ceil(r / 64) * 8`` bytes).  Regions above it never
#: graduate an exclusion to the bitset engine and answer every query
#: with the sweep — the table is quadratic in region size, and a
#: single degenerate region must not allocate gigabytes.
BITSET_BYTE_CAP = 64 << 20


def validate_kernels(kernels: str) -> str:
    if kernels not in KERNELS:
        raise ValueError(
            f"unknown kernels {kernels!r}; choose from {list(KERNELS)}"
        )
    return kernels


@contextmanager
def forced_region_threshold(value: int) -> Iterator[None]:
    """Temporarily override :data:`MIN_KERNEL_REGION`.

    The differential oracle and the property tests force the threshold
    to 0 so that *every* region — including the few-vertex regions of
    fuzzed circuits — exercises the kernel path; production dispatch
    reads the module attribute per region, so the override takes effect
    immediately and is restored on exit.
    """
    global MIN_KERNEL_REGION
    previous = MIN_KERNEL_REGION
    MIN_KERNEL_REGION = value
    try:
        yield
    finally:
        MIN_KERNEL_REGION = previous


def numpy_available() -> bool:
    """True when the numpy kernels can actually run in this process."""
    return _np is not None


def require_numpy() -> None:
    """Raise the canonical error when ``kernels='numpy'`` cannot run."""
    if _np is None:
        raise CircuitError(
            "kernels='numpy' requested but numpy is not installed; "
            "use kernels='python' (the always-available fallback)"
        )


# ----------------------------------------------------------------------
# tree pass: metered CHK with SNCA fallback
# ----------------------------------------------------------------------
def guarded_cone_idoms(graph, budget_factor: int = 8) -> Optional[List[int]]:
    """Cone idoms with a step budget on the CHK sweep's NCA walks.

    Historical alias: the metered sweep started here, then the
    million-gate cascade tier showed the unguarded python sweep hitting
    the same O(E·depth) pathology, so the budget moved into
    :func:`repro.dominators.shared.topo_cone_idoms` itself — one
    implementation, same contract (``None`` when vertex ids are not
    topological or some vertex misses the root; on a budget blow-out,
    the flat-array SNCA of :func:`repro.dominators.dsu.compute_idoms`,
    which is near-linear regardless of depth).
    """
    from .shared import topo_cone_idoms

    return topo_cone_idoms(graph, budget_factor)


# ----------------------------------------------------------------------
# level-order cone index
# ----------------------------------------------------------------------
class KernelConeIndex:
    """Flat CSR adjacency of one cone in level-order position space.

    ``P[pos]`` is the cone id at position ``pos``; positions ascend by
    longest-path level (stable within a level, so equal-level vertices
    keep ascending cone ids).  ``bounds[k]`` is the first position of
    level ``k`` — every edge crosses at least one bound, which is what
    lets the region sweeps process a whole level per numpy call.
    """

    __slots__ = (
        "graph",
        "n",
        "P",
        "Pinv",
        "bounds",
        "indptr",
        "indices",
        "rindptr",
        "rindices",
    )

    def __init__(self, graph):
        require_numpy()
        np = _np
        self.graph = graph
        n = graph.n
        self.n = n
        gsucc = graph.succ
        level = [0] * n
        for v in range(n):
            lv1 = level[v] + 1
            for w in gsucc[v]:
                if level[w] < lv1:
                    level[w] = lv1
        lv = np.asarray(level, dtype=np.int64)
        P = np.argsort(lv, kind="stable")
        self.P = P
        Pinv = np.empty(n, dtype=np.int64)
        Pinv[P] = np.arange(n)
        self.Pinv = Pinv
        lv_sorted = lv[P]
        nlev = int(lv_sorted[-1]) + 1 if n else 0
        self.bounds = np.searchsorted(lv_sorted, np.arange(nlev + 1))
        adj_in_order = list(map(gsucc.__getitem__, P.tolist()))
        counts = np.fromiter(
            map(len, adj_in_order), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat = np.fromiter(
            itertools.chain.from_iterable(adj_in_order),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        self.indptr, self.indices = indptr, Pinv[flat]
        rcounts = np.bincount(self.indices, minlength=n)
        rindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(rcounts, out=rindptr[1:])
        order = np.argsort(self.indices, kind="stable")
        tails = np.repeat(np.arange(n, dtype=np.int64), counts)
        self.rindptr, self.rindices = rindptr, tails[order]

    def window(self, start: int, sink: int) -> int:
        """Width of the P-space window the region is confined to."""
        return int(self.Pinv[sink]) - int(self.Pinv[start]) + 1

    def level_span(self, start: int, sink: int) -> int:
        """Number of level chunks the region's P-window crosses.

        ``window / level_span`` estimates the region's mean level width
        — the per-numpy-call batch size of every kernel sweep — without
        extracting anything: two binary searches on the level bounds.
        """
        np = _np
        ps, pk = int(self.Pinv[start]), int(self.Pinv[sink])
        lo = int(np.searchsorted(self.bounds, ps, side="right"))
        hi = int(np.searchsorted(self.bounds, pk + 1, side="left"))
        return hi - lo + 1

    def extract(self, start: int, sink: int):
        """Region members as ascending P positions (``None``: no path).

        A start→sink path ascends levels, so every member position lies
        in ``[P(start), P(sink)]``; the reach pass sweeps that window
        level chunk by level chunk (predecessor gathers never look
        outside earlier chunks), the coreach pass sweeps it back down
        with the sink's own successors excluded — the same pruning as
        ``SharedConeIndex.extract_region``.
        """
        np = _np
        ps, pk = int(self.Pinv[start]), int(self.Pinv[sink])
        width = pk - ps + 1
        bounds = self.bounds
        lo_i = int(np.searchsorted(bounds, ps, side="right"))
        hi_i = int(np.searchsorted(bounds, pk + 1, side="left"))
        cuts = [ps] + [int(x) for x in bounds[lo_i:hi_i]] + [pk + 1]
        rindptr, rindices = self.rindptr, self.rindices
        reach = np.zeros(width, dtype=bool)
        reach[0] = True
        for ci in range(1, len(cuts) - 1):
            a, b = cuts[ci], cuts[ci + 1]
            base = rindptr[a]
            seg = rindices[base : rindptr[b]]
            offs = rindptr[a:b] - base
            degs = rindptr[a + 1 : b + 1] - rindptr[a:b]
            vals = (seg >= ps) & reach[np.maximum(seg - ps, 0)]
            nzi = np.nonzero(degs > 0)[0]
            if nzi.size:
                reach[a - ps + nzi] = np.logical_or.reduceat(
                    vals, offs[nzi]
                )
        if not reach[width - 1]:
            return None
        indptr, indices = self.indptr, self.indices
        co = np.zeros(width, dtype=bool)
        co[width - 1] = True
        for ci in range(len(cuts) - 2, -1, -1):
            a, b = cuts[ci], cuts[ci + 1]
            if b == pk + 1:
                b = pk  # the sink is seeded, not expanded
                if a >= b:
                    continue
            base = indptr[a]
            seg = indices[base : indptr[b]]
            offs = indptr[a:b] - base
            degs = indptr[a + 1 : b + 1] - indptr[a:b]
            vals = (seg <= pk) & co[np.minimum(seg - ps, width - 1)]
            nzi = np.nonzero(degs > 0)[0]
            if nzi.size:
                co[a - ps + nzi] = np.logical_or.reduceat(vals, offs[nzi])
        return np.nonzero(reach & co)[0] + ps

    def region(self, start: int, sink: int) -> Optional["KernelRegion"]:
        pmem = self.extract(start, sink)
        if pmem is None:
            return None
        return KernelRegion(self, pmem)


class KernelRegion:
    """One search region as local CSR arrays plus cone-id mappings.

    Local ids ascend by P position (level order).  ``cone_ids[x]`` maps
    a local id back to the cone; ``local_of`` inverts it.  ``lbounds``
    are the region-local level-chunk boundaries the matcher and the
    flow BFS reuse.
    """

    __slots__ = (
        "index",
        "pmem",
        "r",
        "lptr",
        "lind",
        "rlptr",
        "rlind",
        "lbounds",
        "cone_ids",
        "local_of",
    )

    def __init__(self, index: KernelConeIndex, pmem):
        np = _np
        self.index = index
        self.pmem = pmem
        r = int(pmem.size)
        self.r = r
        ps, pk = int(pmem[0]), int(pmem[-1])
        in_reg = np.zeros(pk - ps + 1, dtype=bool)
        in_reg[pmem - ps] = True
        indptr, indices = index.indptr, index.indices
        base = indptr[pmem]
        cnts = indptr[pmem + 1] - base
        ends = np.cumsum(cnts)
        total = int(ends[-1]) if r else 0
        offs = np.repeat(base - ends + cnts, cnts)
        tgt = indices[offs + np.arange(total)]
        ok = (tgt >= ps) & (tgt <= pk)
        okk = ok.copy()
        okk[ok] = in_reg[tgt[ok] - ps]
        seg_ids = np.repeat(np.arange(r), cnts)
        keep_per = np.bincount(seg_ids[okk], minlength=r)
        lptr = np.zeros(r + 1, dtype=np.int64)
        np.cumsum(keep_per, out=lptr[1:])
        self.lptr, self.lind = lptr, np.searchsorted(pmem, tgt[okk])
        rcounts = np.bincount(self.lind, minlength=r)
        rlptr = np.zeros(r + 1, dtype=np.int64)
        np.cumsum(rcounts, out=rlptr[1:])
        order = np.argsort(self.lind, kind="stable")
        tails = np.repeat(np.arange(r, dtype=np.int64), keep_per)
        self.rlptr, self.rlind = rlptr, tails[order]
        gb = index.bounds
        li = int(np.searchsorted(gb, ps, side="right"))
        hi = int(np.searchsorted(gb, pk + 1, side="left"))
        inner = np.searchsorted(pmem, gb[li:hi])
        self.lbounds = sorted({0, r, *(int(x) for x in inner)})
        self.cone_ids = index.P[pmem]
        self.local_of = dict(zip(self.cone_ids.tolist(), range(r)))

    def members_sorted(self) -> List[int]:
        """Region members as ascending cone ids (the cache contract)."""
        return sorted(self.cone_ids.tolist())

    def bitset_bytes(self) -> int:
        """Size of this region's packed dominator table per ``excl``."""
        words = (self.r + 63) >> 6
        return (self.r + 1) * words * 8


# ----------------------------------------------------------------------
# cut solver
# ----------------------------------------------------------------------
def kernel_min_cut(region: KernelRegion, sources: List[int], limit: int = 3):
    """Source-nearest min vertex cut of one region, frontier-BFS style.

    The split network is implicit: a boolean pair of frontiers walks
    in-nodes and out-nodes separately, ``split_flow`` counts units
    through each vertex, and the few arcs carrying flow live in python
    dict overlays (``arc_flow``/``rev_over``) since an augmenting path
    touches O(depth) arcs out of millions.  Interior vertices cap at 1
    and sources/sink at ``limit``, exactly like
    :func:`repro.flow.vertex_cut.build_split_network`.  Returns
    ``(flow, cut_local_ids)`` with ``cut`` ``None`` once ``flow``
    reaches ``limit``; the cut is the residually-reachable in-node set,
    which is the unique source-nearest minimum cut for *any* maximum
    flow, so BFS path order cannot diverge from the python solver.
    """
    np = _np
    lptr, lind = region.lptr, region.lind
    r = region.r
    root = r - 1
    if not sources:
        raise FlowError("min_cut needs at least one source")
    if root in sources:
        raise FlowError("region sink cannot be a flow source")
    srcs = np.asarray(sorted(set(sources)), dtype=np.int64)
    uncapped = np.zeros(r, dtype=bool)
    uncapped[srcs] = True
    uncapped[root] = True
    split_flow = np.zeros(r, dtype=np.int8)
    arc_flow = {}
    rev_over = {}
    flow = 0

    in_layer = np.zeros(r, dtype=bool)

    def bfs():
        seen_in = np.zeros(r, dtype=bool)
        seen_out = np.zeros(r, dtype=bool)
        par_in = np.full(r, -1, dtype=np.int64)
        par_out = np.full(r, -1, dtype=np.int64)
        stamp = np.empty(r, dtype=np.int64)
        f_out = srcs.copy()
        seen_out[f_out] = True
        par_out[f_out] = -3
        f_in = np.empty(0, dtype=np.int64)
        while f_out.size or f_in.size:
            new_in = np.empty(0, dtype=np.int64)
            if f_out.size:
                base = lptr[f_out]
                cnts = lptr[f_out + 1] - base
                ends = np.cumsum(cnts)
                total = int(ends[-1])
                if total:
                    offs = np.repeat(base - ends + cnts, cnts)
                    tails = np.repeat(f_out, cnts)
                    heads = lind[offs + np.arange(total)]
                    fresh = ~seen_in[heads]
                    heads = heads[fresh]
                    tails = tails[fresh]
                    if heads.size:
                        # Duplicate heads keep the last tail: any
                        # in-region edge is a valid residual parent,
                        # and the cut itself is path-independent.
                        par_in[heads] = tails
                        seen_in[heads] = True
                        # Frontier-sized dedup: stale stamps can never
                        # be read, every head was just stamped.
                        idx = np.arange(heads.size)
                        stamp[heads] = idx
                        new_in = heads[stamp[heads] == idx]
                    if seen_in[root]:
                        break
                # Reverse split arcs: out_v -> in_v wherever v carries
                # flow (the only backward residual inside a split pair).
                cand = f_out[(split_flow[f_out] > 0) & ~seen_in[f_out]]
                if cand.size:
                    seen_in[cand] = True
                    par_in[cand] = -4
                    new_in = (
                        np.concatenate((new_in, cand))
                        if new_in.size
                        else cand
                    )
            new_out = np.empty(0, dtype=np.int64)
            if f_in.size:
                capv = np.where(uncapped[f_in], limit, 1)
                open_ = (split_flow[f_in] < capv) & ~seen_out[f_in]
                cand = f_in[open_]
                if cand.size:
                    seen_out[cand] = True
                    par_out[cand] = -2
                    new_out = cand
                # The reverse-arc overlay holds O(flow · depth) entries,
                # so scan it — not the frontier, which is O(region).
                extra = []
                if rev_over:
                    in_layer[f_in] = True
                    for v, us in rev_over.items():
                        if in_layer[v]:
                            for u in us:
                                if not seen_out[u]:
                                    seen_out[u] = True
                                    par_out[u] = v
                                    extra.append(u)
                    in_layer[f_in] = False
                if extra:
                    new_out = np.concatenate(
                        (new_out, np.asarray(extra, dtype=np.int64))
                    )
            f_out, f_in = new_out, new_in
        return seen_in, seen_out, par_in, par_out

    residual = None
    while flow < limit:
        seen_in, seen_out, par_in, par_out = bfs()
        if not seen_in[root]:
            # A failed search never early-breaks, so it has already
            # computed the full residual reachability — exactly what
            # the cut readback needs, no extra sweep required.
            residual = (seen_in, seen_out)
            break
        # Read the augmenting path back through the alternating parents.
        steps = []
        kind = "in"
        v = root
        while True:
            if kind == "in":
                p = int(par_in[v])
                if p == -4:
                    steps.append(("unsplit", v))
                    kind = "out"
                else:
                    steps.append(("edge", p, v))
                    v = p
                    kind = "out"
            else:
                p = int(par_out[v])
                if p == -3:
                    break
                if p == -2:
                    steps.append(("split", v))
                    kind = "in"
                else:
                    steps.append(("unedge", v, p))
                    v = p
                    kind = "in"
        # A purely forward path through uncapped splits bottlenecks on
        # the source/sink cap only, so the whole remaining limit goes at
        # once; any reverse step may carry as little as one unit.
        clean = all(
            s[0] == "edge" or (s[0] == "split" and uncapped[s[1]])
            for s in steps
        )
        push = limit - flow if clean else 1
        for s in steps:
            if s[0] == "split":
                split_flow[s[1]] += push
            elif s[0] == "unsplit":
                split_flow[s[1]] -= push
            elif s[0] == "edge":
                u, w = s[1], s[2]
                carried = arc_flow.get((u, w), 0)
                if carried == 0:
                    rev_over.setdefault(w, []).append(u)
                arc_flow[(u, w)] = carried + push
            else:
                u, w = s[1], s[2]  # cancelling flow on arc u -> w
                carried = arc_flow[(u, w)] - push
                if carried == 0:
                    del arc_flow[(u, w)]
                    rev_over[w].remove(u)
                else:
                    arc_flow[(u, w)] = carried
        flow += push
    if flow >= limit:
        return flow, None
    seen_in, seen_out = residual
    cut = np.nonzero(seen_in & ~seen_out)[0]
    if cut.size != flow:  # pragma: no cover - max-flow/min-cut invariant
        raise FlowError(
            f"residual cut size {cut.size} != flow {flow} (kernel bug)"
        )
    return flow, cut.tolist()


# ----------------------------------------------------------------------
# counting matcher
# ----------------------------------------------------------------------
#: Modulus for the counting matcher's path counts.  Any prime below
#: 2**31 keeps every reduceat partial sum and every ``f*g`` product
#: inside int64.  The choice cannot affect correctness: a collision can
#: only let a *false* candidate through to the exact verification
#: sweep, never hide a true dominator — the divisibility identity
#: ``N(w→root) = N(w→d) · N(d→root)`` for a dominator ``d`` holds over
#: the integers and therefore under any modulus.
_COUNT_PRIME = (1 << 31) - 1


def _reach_to_root(region, excl, excl2=-1, down_to=0):
    """Bool array (length ``r + 1``): reaches the root avoiding ``excl``
    (and ``excl2``), swept down to level chunk ``down_to`` only — lower
    chunks keep their zero initialisation.  The extra slot keeps the
    array usable against sentinel-padded index templates."""
    np = _np
    r = region.r
    root = r - 1
    lptr, lind = region.lptr, region.lind
    reach = np.zeros(r + 1, dtype=bool)
    reach[root] = True
    lb = region.lbounds
    for ci in range(len(lb) - 2, down_to - 1, -1):
        a, b = lb[ci], min(lb[ci + 1], root)
        if a >= b:
            continue
        base = lptr[a]
        seg = lind[base : lptr[b]]
        offs = lptr[a:b] - base
        degs = lptr[a + 1 : b + 1] - lptr[a:b]
        vals = reach[seg] & (seg != excl) & (seg != excl2)
        nzi = np.nonzero(degs > 0)[0]
        if nzi.size:
            reach[a + nzi] = np.logical_or.reduceat(vals, offs[nzi])
    reach[excl] = False
    if excl2 >= 0:
        reach[excl2] = False
    return reach


def counting_vector(
    region: KernelRegion, excl: int, w_start: int
) -> Optional[List[int]]:
    """Dominator chain of ``w_start`` in the region minus ``excl``, in
    ascending local ids, or ``None`` when ``w_start`` no longer reaches
    the root.  All vectorized, no per-region precomputation.

    ``d`` dominates ``w_start`` exactly when every path runs through
    it, i.e. ``N(w_start→root) = N(w_start→d) · N(d→root)``.  Two
    level-order ``np.add.reduceat`` sweeps count paths modulo
    :data:`_COUNT_PRIME` — candidates are every vertex satisfying the
    identity mod p (a superset of the true chain for *any* modulus) —
    and one boolean reach sweep per candidate then decides exactly:
    ``d`` is kept iff removing ``{excl, d}`` disconnects ``w_start``
    from the root.  True chains are short, so the verification loop
    runs a handful of times.
    """
    np = _np
    r = region.r
    root = r - 1
    lptr, lind = region.lptr, region.lind
    rlptr, rlind = region.rlptr, region.rlind
    lb = region.lbounds
    k = bisect_right(lb, w_start) - 1
    reach = _reach_to_root(region, excl, down_to=k)
    if not reach[w_start]:
        return None
    P = _COUNT_PRIME
    # f[v] = #paths w_start→v, swept upward from w_start's chunk.
    f = np.zeros(r, dtype=np.int64)
    f[w_start] = 1
    for ci in range(k + 1, len(lb) - 1):
        a, b = lb[ci], lb[ci + 1]
        base = rlptr[a]
        seg = rlind[base : rlptr[b]]
        offs = rlptr[a:b] - base
        degs = rlptr[a + 1 : b + 1] - rlptr[a:b]
        nzi = np.nonzero(degs > 0)[0]
        if nzi.size:
            f[a + nzi] = np.add.reduceat(f[seg], offs[nzi]) % P
        if a <= excl < b:
            f[excl] = 0
    # g[v] = #paths v→root, swept downward to just above w_start's
    # chunk — lower vertices cannot be dominators of w_start.
    g = np.zeros(r, dtype=np.int64)
    g[root] = 1
    for ci in range(len(lb) - 2, k, -1):
        a, b = lb[ci], min(lb[ci + 1], root)
        if a >= b:
            continue
        base = lptr[a]
        seg = lind[base : lptr[b]]
        offs = lptr[a:b] - base
        degs = lptr[a + 1 : b + 1] - lptr[a:b]
        nzi = np.nonzero(degs > 0)[0]
        if nzi.size:
            g[a + nzi] = np.add.reduceat(g[seg], offs[nzi]) % P
        if a <= excl < b:
            g[excl] = 0
    total = int(f[root])
    mask = (f * g) % P == total
    mask[: w_start + 1] = False
    mask[root] = False
    if 0 <= excl < r:
        mask[excl] = False
    out = [w_start]
    for d in np.nonzero(mask)[0].tolist():
        if not _reach_to_root(region, excl, d, down_to=k)[w_start]:
            out.append(d)
    return out


# ----------------------------------------------------------------------
# packed-bitset matcher
# ----------------------------------------------------------------------
class KernelBitsetMatcher:
    """Packed-uint64 postdominator sets of one region, per exclusion.

    ``dombits(excl)[v]`` is the bitset of vertices on every v→root path
    in the region minus ``excl`` — computed for *all* vertices in one
    descending level sweep of ``np.bitwise_and.reduceat`` folds (AND
    over successors' sets, OR in the self bit).  A matching vector is
    then one row decode.  The table is O(r²/64) per ``excl``, so it
    only pays off under dense reuse — many ``matching_vector(excl, ·)``
    calls against the *same* exclusion; :class:`KernelRegionMatcher`
    routes an exclusion here once its query count shows that reuse.

    The per-vertex AND segments are built over ``[sentinel, succs...]``
    templates — the sentinel row is all-ones, so segments are never
    empty and out-of-region/excluded successors fold away as identity.
    """

    __slots__ = ("region", "r", "words", "tmpl", "tstarts", "selfw", "selfb", "_cache")

    def __init__(self, region: KernelRegion):
        np = _np
        self.region = region
        r = region.r
        self.r = r
        self.words = (r + 63) >> 6
        self._cache = {}
        lptr, lind = region.lptr, region.lind
        degs = np.diff(lptr)
        cnts = degs + 1
        tot = int(cnts.sum())
        tmpl = np.empty(tot, dtype=np.int64)
        starts = np.zeros(r + 1, dtype=np.int64)
        np.cumsum(cnts, out=starts[1:])
        tmpl[starts[:-1]] = r  # sentinel leads every segment
        body = np.ones(tot, dtype=bool)
        body[starts[:-1]] = False
        tmpl[body] = lind
        self.tmpl = tmpl
        self.tstarts = starts
        ids = np.arange(r, dtype=np.uint64)
        self.selfw = (ids >> np.uint64(6)).astype(np.int64)
        self.selfb = np.uint64(1) << (ids & np.uint64(63))

    def dombits(self, excl: int):
        table = self._cache.get(excl)
        if table is not None:
            return table
        np = _np
        region = self.region
        r, words = self.r, self.words
        root = r - 1
        lb = region.lbounds
        # Which vertices still reach the root with ``excl`` removed —
        # unreachable rows must read all-ones so they AND away.
        reach = _reach_to_root(region, excl)
        dom = np.empty((r + 1, words), dtype=np.uint64)
        dom[r] = ~np.uint64(0)  # sentinel: identity under AND
        dom[root] = 0
        dom[root, root >> 6] = np.uint64(1) << np.uint64(root & 63)
        tmpl, tstarts = self.tmpl, self.tstarts
        usable = reach[tmpl] & (tmpl != excl) & (tmpl != r)
        eff = np.where(usable, tmpl, r)
        selfw, selfb = self.selfw, self.selfb
        for ci in range(len(lb) - 2, -1, -1):
            a, b = lb[ci], min(lb[ci + 1], root)
            if a >= b:
                continue
            rows = dom[eff[tstarts[a] : tstarts[b]]]
            out = np.bitwise_and.reduceat(
                rows, tstarts[a:b] - tstarts[a], axis=0
            )
            dom[a:b] = out
            sl = slice(a, b)
            dom[np.arange(a, b), selfw[sl]] |= selfb[sl]
            unreachable = ~reach[a:b]
            if unreachable.any():
                dom[a:b][unreachable] = ~np.uint64(0)
        self._cache[excl] = dom
        return dom

    def matching_vector_local(self, excl: int, w_start: int) -> List[int]:
        np = _np
        row = self.dombits(excl)[w_start]
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        doms = np.nonzero(bits[: self.r])[0].tolist()
        return doms[:-1]  # drop the region root


class KernelRegionMatcher:
    """Cone-id FINDMATCHINGVECTOR adapter with an adaptive engine.

    Drop-in for :class:`repro.dominators.shared.RegionMatcher` from
    :func:`repro.core.matching.expand_pair`'s point of view, except ids
    are cone ids — which is exactly what the kernel expansion loop
    passes in and what lets its pairs go into the shared
    :class:`~repro.core.region_cache.RegionCache` unmapped.

    ADDVECTOR queries a *different* excluded vertex on almost every
    call (each processed chain element is its own exclusion), so a
    per-``excl`` table would be built once per query and amortize
    nothing.  Each call therefore defaults to the counting engine
    (:func:`counting_vector`) — a few vectorized level sweeps, no
    per-region precomputation.  Only an exclusion re-queried at least
    ``max(4, r/128)`` times (dense reuse where one shared table beats
    repeated sweeps) graduates to the packed-bitset table — and never
    when the region's table would exceed :data:`BITSET_BYTE_CAP`,
    which keeps degenerate regions on the counting engine instead of
    allocating gigabytes.  Both engines return the identical dominator
    chain, so the switch is invisible in results.
    """

    __slots__ = ("region", "_bits", "_queries", "_switch")

    def __init__(self, region: KernelRegion):
        self.region = region
        self._bits: Optional[KernelBitsetMatcher] = None
        self._queries: Dict[int, int] = {}
        self._switch = max(4, region.r >> 7)

    def matching_vector(self, excl: int, w_start: int) -> List[int]:
        region = self.region
        local_excl = region.local_of[excl]
        local_w = region.local_of[w_start]
        seen = self._queries.get(local_excl, 0) + 1
        self._queries[local_excl] = seen
        if seen < self._switch or (
            self._bits is None
            and region.bitset_bytes() > BITSET_BYTE_CAP
        ):
            local = counting_vector(region, local_excl, local_w) or []
        else:
            if self._bits is None:
                self._bits = KernelBitsetMatcher(region)
            local = self._bits.matching_vector_local(
                local_excl, local_w
            )
        out = sorted(int(region.cone_ids[x]) for x in local)
        if not out or out[0] != w_start:
            raise ChainConstructionError(
                f"partner {w_start} vanished from the region after "
                f"removing {excl}"
            )
        return out


# ----------------------------------------------------------------------
# region expansion (the shared-backend loop, kernel edition)
# ----------------------------------------------------------------------
def kernel_expand_region(region: KernelRegion, start: int):
    """All chain pairs of one region, in chain order, in **cone ids**.

    Mirrors ``ChainComputer._expand_region``'s shared path: repeated
    source-nearest cuts, each expanded via ADDVECTOR and re-seeded from
    the pair's last elements.  The matching vectors sort ascending by
    cone id exactly like the python path's region-local ids do, so the
    returned :data:`~repro.core.region_cache.RegionPair` records are
    bit-identical to the python expansion mapped through ``orig_of``.
    """
    from ..core.matching import expand_pair

    if region.r <= 3:
        return []  # no two interior vertices: no pair can exist
    matcher = KernelRegionMatcher(region)
    pairs = []
    sources = [start]
    while True:
        local_sources = [region.local_of[s] for s in sources]
        flow, cut = kernel_min_cut(region, local_sources)
        if cut is None or flow != 2:
            break
        w1, w2 = sorted(int(region.cone_ids[x]) for x in cut)
        expanded = expand_pair(None, w1, w2, matcher=matcher)
        pairs.append(
            (
                list(expanded.side1),
                list(expanded.side2),
                dict(expanded.intervals),
            )
        )
        sources = [expanded.side1[-1], expanded.side2[-1]]
    return pairs


__all__ = [
    "BITSET_BYTE_CAP",
    "KERNELS",
    "KernelBitsetMatcher",
    "KernelConeIndex",
    "KernelRegion",
    "KernelRegionMatcher",
    "MIN_KERNEL_REGION",
    "counting_vector",
    "forced_region_threshold",
    "guarded_cone_idoms",
    "kernel_expand_region",
    "kernel_min_cut",
    "numpy_available",
    "require_numpy",
    "validate_kernels",
]
