"""The dominator tree ``T(C)`` with constant-time dominance queries.

Every vertex except the root has a unique immediate dominator [12]; the
edges ``(idom(v), v)`` form the dominator tree (paper Figure 1(b)).  This
class wraps an ``idom`` array with:

* ``dominates(a, b)`` in O(1) via DFS entry/exit intervals,
* ``chain(v)`` — the idom chain ``v, idom(v), ..., root`` that the paper's
  outer loop walks,
* ``dominated_by(v)`` — the set ``S(v)`` that the baseline [11] removes
  when restricting the graph.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from ..errors import UnreachableVertexError
from .lengauer_tarjan import UNREACHABLE


class DominatorTree:
    """Immutable dominator tree over integer vertices.

    Parameters
    ----------
    idom:
        ``idom[v]`` per vertex; ``idom[root] == root``; unreachable
        vertices hold ``-1``.
    root:
        Tree root (the flow-graph entry; for circuits in the paper's
        orientation, the circuit output).
    """

    __slots__ = ("idom", "root", "n", "_children", "_tin", "_tout", "_depth")

    def __init__(self, idom: Sequence[int], root: int):
        self.idom: List[int] = list(idom)
        self.root = root
        self.n = len(self.idom)
        if self.idom[root] != root:
            raise ValueError("idom[root] must equal root")
        self._children: List[List[int]] = [[] for _ in range(self.n)]
        for v, d in enumerate(self.idom):
            if v != root and d != UNREACHABLE:
                self._children[d].append(v)
        # DFS intervals: a dominates b iff tin[a] <= tin[b] < tout[a].
        self._tin = [UNREACHABLE] * self.n
        self._tout = [UNREACHABLE] * self.n
        self._depth = [UNREACHABLE] * self.n
        clock = 0
        stack: List[tuple] = [(root, 0, iter(self._children[root]))]
        self._tin[root] = clock
        self._depth[root] = 0
        clock += 1
        while stack:
            v, dep, it = stack[-1]
            advanced = False
            for w in it:
                self._tin[w] = clock
                self._depth[w] = dep + 1
                clock += 1
                stack.append((w, dep + 1, iter(self._children[w])))
                advanced = True
                break
            if not advanced:
                stack.pop()
                self._tout[v] = clock
                clock += 1

    # ------------------------------------------------------------------
    def is_reachable(self, v: int) -> bool:
        """True if *v* participates in the tree (can reach the root)."""
        return self._tin[v] != UNREACHABLE

    def children(self, v: int) -> List[int]:
        """Vertices whose immediate dominator is *v*."""
        return list(self._children[v])

    def depth(self, v: int) -> int:
        """Tree depth of *v* (root has depth 0)."""
        self._require(v)
        return self._depth[v]

    def dominates(self, a: int, b: int) -> bool:
        """True iff *a* dominates *b* (reflexively) — O(1)."""
        self._require(a)
        self._require(b)
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    def strictly_dominates(self, a: int, b: int) -> bool:
        """True iff *a* dominates *b* and ``a != b``."""
        return a != b and self.dominates(a, b)

    def chain(self, v: int) -> List[int]:
        """The idom chain ``[v, idom(v), ..., root]``.

        This is the sequence of cut points the paper's outer while-loop
        walks when partitioning the circuit into search regions.
        """
        self._require(v)
        out = [v]
        while v != self.root:
            v = self.idom[v]
            out.append(v)
        return out

    def strict_dominators(self, v: int) -> List[int]:
        """All proper dominators of *v*, nearest first."""
        return self.chain(v)[1:]

    def dominated_by(self, v: int) -> List[int]:
        """The set ``S(v)`` of vertices dominated by *v*, including *v*.

        This is the set the baseline [11] removes when restricting the
        circuit with respect to *v*.
        """
        self._require(v)
        out: List[int] = []
        stack = [v]
        while stack:
            cur = stack.pop()
            out.append(cur)
            stack.extend(self._children[cur])
        return out

    def iter_reachable(self) -> Iterator[int]:
        """All vertices participating in the tree, in vertex order."""
        return (v for v in range(self.n) if self._tin[v] != UNREACHABLE)

    def _require(self, v: int) -> None:
        if self._tin[v] == UNREACHABLE:
            raise UnreachableVertexError(
                f"vertex {v} cannot reach the root of this dominator tree"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        reach = sum(1 for t in self._tin if t != UNREACHABLE)
        return f"DominatorTree(root={self.root}, reachable={reach}/{self.n})"
