"""Naive set-based dominator computation — the executable definition.

``Dom(v) = {v} ∪ ⋂_{p ∈ pred(v)} Dom(p)`` iterated to a fixpoint.  This is
O(n·m) with set operations and exists purely as ground truth for the test
suite: both Lengauer–Tarjan and the iterative algorithm must reproduce its
results on every graph the property tests generate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from .iterative import reverse_post_order
from .lengauer_tarjan import UNREACHABLE


def dominator_sets(
    n: int,
    succ: Sequence[Sequence[int]],
    entry: int,
    pred: Optional[Sequence[Sequence[int]]] = None,
) -> List[Optional[Set[int]]]:
    """Full dominator sets (``None`` for unreachable vertices).

    ``entry ∈ Dom(v)`` and ``v ∈ Dom(v)`` for every reachable *v*.
    """
    if pred is None:
        pred_local: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            for w in succ[v]:
                pred_local[w].append(v)
        pred = pred_local

    rpo = reverse_post_order(n, succ, entry)
    reachable = set(rpo)
    dom: List[Optional[Set[int]]] = [None] * n
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for v in rpo:
            if v == entry:
                continue
            incoming = [
                dom[p] for p in pred[v] if p in reachable and dom[p] is not None
            ]
            if not incoming:
                continue
            new: Set[int] = set(incoming[0])
            for other in incoming[1:]:
                new &= other
            new.add(v)
            if dom[v] != new:
                dom[v] = new
                changed = True
    return dom


def compute_idoms(
    n: int,
    succ: Sequence[Sequence[int]],
    entry: int,
    pred: Optional[Sequence[Sequence[int]]] = None,
) -> List[int]:
    """Immediate dominators derived from the full dominator sets.

    The immediate dominator of *v* is the strict dominator with the largest
    dominator set (strict dominators of one vertex are totally ordered by
    domination).
    """
    dom = dominator_sets(n, succ, entry, pred)
    idom = [UNREACHABLE] * n
    idom[entry] = entry
    for v in range(n):
        if v == entry or dom[v] is None:
            continue
        strict = dom[v] - {v}
        # The immediate dominator dominates v and is dominated by every
        # other strict dominator, i.e. it has the largest dominator set.
        idom[v] = max(strict, key=lambda d: len(dom[d]))  # type: ignore[arg-type]
    return idom
