"""Lengauer–Tarjan immediate-dominator computation [1].

This is the algorithm the paper uses both as its single-vertex reference
(Table 1, Column 4) and as the SINGLEIDOM subroutine inside DOMINATORCHAIN
and inside the baseline [11].  We implement the "simple" O(m log n) variant
with iterative path compression — the version Lengauer and Tarjan report to
be fastest in practice on graphs of moderate size, and which the paper's
Section 3 singles out as "the fastest of algorithms for single-vertex
dominators on graphs of large size".

The function is orientation-agnostic: it computes dominators of a flow
graph ``(succ, entry)``.  Circuit-oriented wrappers (where the *output* is
the entry of the reversed graph) live in :mod:`repro.dominators.single`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

UNREACHABLE = -1


def compute_idoms(
    n: int,
    succ: Sequence[Sequence[int]],
    entry: int,
    pred: Optional[Sequence[Sequence[int]]] = None,
    exclude: int = UNREACHABLE,
) -> List[int]:
    """Immediate dominators of every vertex of a flow graph.

    Parameters
    ----------
    n:
        Number of vertices (``0..n-1``).
    succ:
        Flow-graph adjacency: ``succ[v]`` are the successors of *v* when
        walking away from ``entry``.
    entry:
        The flow-graph entry (root of the dominator tree).
    pred:
        Optional precomputed predecessor lists (``pred[w]`` = vertices with
        an edge to *w*); recomputed from ``succ`` when omitted.
    exclude:
        Optional vertex to treat as deleted — the result is the dominator
        tree of the restricted graph ``C − exclude``, without building a
        subgraph: the DFS never visits ``exclude``, so it stays
        :data:`UNREACHABLE` and every predecessor loop already skips it.

    Returns
    -------
    list[int]
        ``idom[v]`` for every vertex; ``idom[entry] == entry`` and
        vertices unreachable from ``entry`` get :data:`UNREACHABLE`.
    """
    if pred is None:
        pred_local: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            for w in succ[v]:
                pred_local[w].append(v)
        pred = pred_local

    # --- iterative DFS numbering -------------------------------------
    dfn = [UNREACHABLE] * n  # vertex -> dfs number
    vertex: List[int] = []  # dfs number -> vertex
    parent = [UNREACHABLE] * n  # DFS tree parent (vertex ids)
    stack: List[int] = [entry]
    dfn[entry] = 0
    vertex.append(entry)
    iter_stack: List[tuple] = [(entry, iter(succ[entry]))]
    while iter_stack:
        v, it = iter_stack[-1]
        advanced = False
        for w in it:
            if dfn[w] == UNREACHABLE and w != exclude:
                dfn[w] = len(vertex)
                vertex.append(w)
                parent[w] = v
                iter_stack.append((w, iter(succ[w])))
                advanced = True
                break
        if not advanced:
            iter_stack.pop()

    reached = len(vertex)
    semi = list(dfn)  # vertex -> dfs number of its semidominator
    label = list(range(n))  # forest labels for EVAL
    ancestor = [UNREACHABLE] * n  # forest parents for LINK/EVAL
    bucket: List[List[int]] = [[] for _ in range(n)]
    idom = [UNREACHABLE] * n

    def compress(v: int) -> None:
        # Iterative version of the recursive path compression: collect the
        # chain up to (but excluding) the forest root, then fold top-down.
        chain: List[int] = []
        u = v
        while ancestor[ancestor[u]] != UNREACHABLE:
            chain.append(u)
            u = ancestor[u]
        for w in reversed(chain):
            a = ancestor[w]
            if semi[label[a]] < semi[label[w]]:
                label[w] = label[a]
            ancestor[w] = ancestor[a]

    def eval_(v: int) -> int:
        if ancestor[v] == UNREACHABLE:
            return v
        compress(v)
        return label[v]

    for i in range(reached - 1, 0, -1):
        w = vertex[i]
        for v in pred[w]:
            if dfn[v] == UNREACHABLE:
                continue  # vertex not reachable from the entry
            u = eval_(v)
            if semi[u] < semi[w]:
                semi[w] = semi[u]
        bucket[vertex[semi[w]]].append(w)
        p = parent[w]
        ancestor[w] = p  # LINK(parent[w], w)
        if bucket[p]:
            for v in bucket[p]:
                u = eval_(v)
                idom[v] = u if semi[u] < semi[v] else p
            bucket[p] = []

    for i in range(1, reached):
        w = vertex[i]
        if idom[w] != vertex[semi[w]]:
            idom[w] = idom[idom[w]]
    idom[entry] = entry
    return idom
