"""Circuit-oriented single-vertex dominator API (paper orientation).

The paper defines: *v dominates u* iff every path from *u* to the *root*
(the circuit output, following signal direction) contains *v*.  This equals
classic flow-graph dominance on the **edge-reversed** graph with the output
as entry.  The wrappers here hide that reversal: they accept an
:class:`~repro.graph.indexed.IndexedGraph` in signal orientation and return
dominance facts in the paper's sense.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set

from ..graph.indexed import IndexedGraph
from . import dsu, iterative, lengauer_tarjan, naive
from .tree import DominatorTree

_ALGORITHMS: Dict[str, Callable] = {
    "lengauer-tarjan": lengauer_tarjan.compute_idoms,
    "lt": lengauer_tarjan.compute_idoms,
    "dsu": dsu.compute_idoms,
    "snca": dsu.compute_idoms,
    "iterative": iterative.compute_idoms,
    "chk": iterative.compute_idoms,
    "naive": naive.compute_idoms,
}

#: Algorithms whose ``compute_idoms`` accepts the ``exclude`` keyword —
#: the shared backend uses these for restricted-graph ``C − v`` chains.
EXCLUDE_CAPABLE = frozenset({"lengauer-tarjan", "lt", "dsu", "snca"})


def circuit_idoms(graph: IndexedGraph, algorithm: str = "lt") -> List[int]:
    """Immediate dominators of every vertex, paper orientation.

    ``idom[v]`` is the first vertex at which all re-converging paths
    starting at *v* meet on the way to the root; ``idom[root] == root``.
    """
    try:
        compute = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(_ALGORITHMS)}"
        ) from None
    # Reversed orientation: walk from the output toward the inputs.
    return compute(graph.n, graph.pred, graph.root, pred=graph.succ)


def circuit_dominator_tree(
    graph: IndexedGraph, algorithm: str = "lt"
) -> DominatorTree:
    """The dominator tree ``T(C)`` of a single-output cone (Figure 1(b))."""
    return DominatorTree(circuit_idoms(graph, algorithm), graph.root)


def idom_chain(graph: IndexedGraph, u: int, algorithm: str = "lt") -> List[int]:
    """``[u, idom(u), idom(idom(u)), ..., root]`` — the region cut points."""
    return circuit_dominator_tree(graph, algorithm).chain(u)


def single_dominators_of(
    graph: IndexedGraph, u: int, algorithm: str = "lt"
) -> List[int]:
    """Proper single-vertex dominators of *u*, nearest first."""
    return idom_chain(graph, u, algorithm)[1:]


def pi_dominator_vertices(
    tree: DominatorTree, sources: Sequence[int]
) -> Set[int]:
    """Distinct vertices properly dominating at least one of ``sources``.

    This realizes Table 1, Column 4 for one cone: "single-vertex dominators
    which dominate at least one primary input", with common dominators
    counted once.
    """
    marked: Set[int] = set()
    for u in sources:
        if not tree.is_reachable(u):
            continue
        v = u
        while v != tree.root:
            v = tree.idom[v]
            if v in marked:
                break  # the rest of the chain is already marked
            marked.add(v)
    return marked


def count_single_pi_dominators(graph: IndexedGraph, algorithm: str = "lt") -> int:
    """Number of distinct vertices dominating ≥1 primary input of a cone."""
    tree = circuit_dominator_tree(graph, algorithm)
    return len(pi_dominator_vertices(tree, graph.sources()))
